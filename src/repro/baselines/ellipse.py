"""Ellipse — the heuristic variant of Progressive PQO (reference [4]).

Inference criterion (Table 1): a new instance skips optimization when
it lies inside an elliptical neighborhood whose foci are a pair of
previously optimized instances that share the same optimal plan.  The
ellipse with foci ``f1, f2`` and shape parameter ``Δ ∈ (0, 1]`` is

    |q - f1| + |q - f2|  ≤  |f1 - f2| / Δ,

so smaller Δ inflates the ellipse (the paper evaluates Δ = 0.90 and
0.70).  The reused plan is the foci's shared plan.  There is no cost
reasoning at all — the source of Ellipse's unbounded sub-optimality.
"""

from __future__ import annotations

import numpy as np

from ..engine.api import EngineAPI
from ..query.instance import SelectivityVector
from ..core.technique import OnlinePQOTechnique, PlanChoice
from .store import BaselinePlanStore, StoredPlan


class Ellipse(OnlinePQOTechnique):
    """PPQO-Ellipse with shape parameter Δ."""

    def __init__(
        self,
        engine: EngineAPI,
        delta: float = 0.90,
        lambda_r: float | None = None,
    ) -> None:
        super().__init__(engine)
        if not (0.0 < delta <= 1.0):
            raise ValueError("delta must be in (0, 1]")
        self.delta = delta
        self.store = BaselinePlanStore(lambda_r=lambda_r)
        # Focus pairs: two point arrays + interfocal distances + plan ids.
        self._f1: list[tuple[float, ...]] = []
        self._f2: list[tuple[float, ...]] = []
        self._plan_of_pair: list[int] = []
        self._f1_arr = np.empty((0, 0))
        self._f2_arr = np.empty((0, 0))
        self._axis = np.empty(0)
        self._dirty = False

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"Ellipse{self.delta:g}"

    def _choose(self, sv: SelectivityVector) -> PlanChoice:
        plan_id = self._lookup(sv)
        if plan_id is not None:
            plan = next(p for p in self.store.plans() if p.plan_id == plan_id)
            return PlanChoice(
                shrunken_memo=plan.shrunken_memo,
                plan_signature=plan.signature,
                used_optimizer=False,
                check="ellipse",
                plan=plan.plan,
            )
        result = self._optimize(sv)
        plan = self.store.register(sv, result, self.engine.recost)
        self._add_pairs(sv, plan)
        return PlanChoice(
            shrunken_memo=plan.shrunken_memo,
            plan_signature=plan.signature,
            used_optimizer=True,
            check="optimizer",
            optimal_cost=result.cost,
            plan=plan.plan,
        )

    def _lookup(self, sv: SelectivityVector) -> int | None:
        if not self._f1:
            return None
        if self._dirty:
            self._f1_arr = np.asarray(self._f1)
            self._f2_arr = np.asarray(self._f2)
            self._axis = np.linalg.norm(self._f1_arr - self._f2_arr, axis=1)
            self._dirty = False
        point = np.asarray(tuple(sv))
        dist = np.linalg.norm(self._f1_arr - point, axis=1) + np.linalg.norm(
            self._f2_arr - point, axis=1
        )
        inside = dist <= self._axis / self.delta
        hits = np.flatnonzero(inside)
        if hits.size == 0:
            return None
        return self._plan_of_pair[int(hits[0])]

    def _add_pairs(self, sv: SelectivityVector, plan: StoredPlan) -> None:
        """Pair the new optimized instance with same-plan predecessors."""
        new_point = tuple(sv)
        for other in plan.points[:-1]:  # the new point itself is last
            self._f1.append(other)
            self._f2.append(new_point)
            self._plan_of_pair.append(plan.plan_id)
            self._dirty = True

    @property
    def plans_cached(self) -> int:
        return self.store.num_plans
