"""Baseline online PQO techniques the paper compares against."""

from .density import Density
from .ellipse import Ellipse
from .pcm import PCM
from .ranges import Ranges
from .store import BaselinePlanStore, StoredPlan
from .trivial import OptimizeAlways, OptimizeOnce

__all__ = [
    "BaselinePlanStore",
    "Density",
    "Ellipse",
    "OptimizeAlways",
    "OptimizeOnce",
    "PCM",
    "Ranges",
    "StoredPlan",
]
