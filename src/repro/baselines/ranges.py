"""Ranges — selectivity-range plan reuse in the style of Oracle's
adaptive cursor sharing (Lee, Zait; the paper's reference [17]).

Inference criterion (Table 1): each stored plan keeps the minimum
bounding rectangle (in selectivity space) of all optimized instances
that produced it, extended on every side by a ``near selectivity
range`` slack (the paper uses 0.01).  A new instance inside any plan's
extended rectangle reuses that plan.  Because the rectangle only ever
grows and the decision ignores cost behaviour entirely, wrong
inferences repeat (the section 3 example: any instance close to q7
keeps getting plan P1).
"""

from __future__ import annotations

import numpy as np

from ..engine.api import EngineAPI
from ..query.instance import SelectivityVector
from ..core.technique import OnlinePQOTechnique, PlanChoice
from .store import BaselinePlanStore, StoredPlan


class Ranges(OnlinePQOTechnique):
    """Per-plan MBR reuse with a fixed slack."""

    def __init__(
        self,
        engine: EngineAPI,
        slack: float = 0.01,
        lambda_r: float | None = None,
    ) -> None:
        super().__init__(engine)
        if slack < 0:
            raise ValueError("slack must be non-negative")
        self.slack = slack
        self.store = BaselinePlanStore(lambda_r=lambda_r)
        self._mbr_lo: dict[int, np.ndarray] = {}
        self._mbr_hi: dict[int, np.ndarray] = {}

    name = "Ranges"

    def _choose(self, sv: SelectivityVector) -> PlanChoice:
        plan_id = self._lookup(sv)
        if plan_id is not None:
            plan = next(p for p in self.store.plans() if p.plan_id == plan_id)
            return PlanChoice(
                shrunken_memo=plan.shrunken_memo,
                plan_signature=plan.signature,
                used_optimizer=False,
                check="range",
                plan=plan.plan,
            )
        result = self._optimize(sv)
        plan = self.store.register(sv, result, self.engine.recost)
        self._grow_mbr(sv, plan)
        return PlanChoice(
            shrunken_memo=plan.shrunken_memo,
            plan_signature=plan.signature,
            used_optimizer=True,
            check="optimizer",
            optimal_cost=result.cost,
            plan=plan.plan,
        )

    def _lookup(self, sv: SelectivityVector) -> int | None:
        point = np.asarray(tuple(sv))
        for plan_id, lo in self._mbr_lo.items():
            hi = self._mbr_hi[plan_id]
            if np.all(lo - self.slack <= point) and np.all(point <= hi + self.slack):
                return plan_id
        return None

    def _grow_mbr(self, sv: SelectivityVector, plan: StoredPlan) -> None:
        point = np.asarray(tuple(sv))
        if plan.plan_id not in self._mbr_lo:
            self._mbr_lo[plan.plan_id] = point.copy()
            self._mbr_hi[plan.plan_id] = point.copy()
        else:
            np.minimum(self._mbr_lo[plan.plan_id], point, out=self._mbr_lo[plan.plan_id])
            np.maximum(self._mbr_hi[plan.plan_id], point, out=self._mbr_hi[plan.plan_id])

    @property
    def plans_cached(self) -> int:
        return self.store.num_plans
