"""Density — parametric plan caching via density-based clustering
(Aluc, DeHaan, Bowman; the paper's reference [2]).

Inference criterion (Table 1): a new instance skips optimization when a
circular neighborhood around it contains *enough* previously optimized
instances whose optimal plan agrees.  Parameters follow the paper's
evaluation: ``radius = 0.1``, ``confidence threshold = 0.5``; a
DBSCAN-style ``min_points`` controls how many neighbors are "enough".
The modal plan among the neighbors is reused.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from ..engine.api import EngineAPI
from ..query.instance import SelectivityVector
from ..core.technique import OnlinePQOTechnique, PlanChoice
from .store import BaselinePlanStore


class Density(OnlinePQOTechnique):
    """Density-based plan inference."""

    def __init__(
        self,
        engine: EngineAPI,
        radius: float = 0.1,
        confidence: float = 0.5,
        min_points: int = 2,
        lambda_r: float | None = None,
    ) -> None:
        super().__init__(engine)
        if radius <= 0:
            raise ValueError("radius must be positive")
        if not (0.0 < confidence <= 1.0):
            raise ValueError("confidence must be in (0, 1]")
        if min_points < 1:
            raise ValueError("min_points must be >= 1")
        self.radius = radius
        self.confidence = confidence
        self.min_points = min_points
        self.store = BaselinePlanStore(lambda_r=lambda_r)
        self._points: list[tuple[float, ...]] = []
        self._plan_ids: list[int] = []
        self._points_arr = np.empty((0, 0))
        self._dirty = False

    name = "Density"

    def _choose(self, sv: SelectivityVector) -> PlanChoice:
        plan_id = self._lookup(sv)
        if plan_id is not None:
            plan = next(p for p in self.store.plans() if p.plan_id == plan_id)
            return PlanChoice(
                shrunken_memo=plan.shrunken_memo,
                plan_signature=plan.signature,
                used_optimizer=False,
                check="density",
                plan=plan.plan,
            )
        result = self._optimize(sv)
        plan = self.store.register(sv, result, self.engine.recost)
        self._points.append(tuple(sv))
        self._plan_ids.append(plan.plan_id)
        self._dirty = True
        return PlanChoice(
            shrunken_memo=plan.shrunken_memo,
            plan_signature=plan.signature,
            used_optimizer=True,
            check="optimizer",
            optimal_cost=result.cost,
            plan=plan.plan,
        )

    def _lookup(self, sv: SelectivityVector) -> int | None:
        if len(self._points) < self.min_points:
            return None
        if self._dirty:
            self._points_arr = np.asarray(self._points)
            self._dirty = False
        point = np.asarray(tuple(sv))
        dist = np.linalg.norm(self._points_arr - point, axis=1)
        neighbors = np.flatnonzero(dist <= self.radius)
        if neighbors.size < self.min_points:
            return None
        counts = Counter(self._plan_ids[int(i)] for i in neighbors)
        plan_id, votes = counts.most_common(1)[0]
        if votes / neighbors.size < self.confidence:
            return None
        return plan_id

    @property
    def plans_cached(self) -> int:
        return self.store.num_plans
