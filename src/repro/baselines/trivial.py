"""The two trivial extremes: Optimize-Always and Optimize-Once.

Optimize-Always invokes the optimizer for every instance (perfect plan
quality, maximal overhead, nothing cached); Optimize-Once optimizes the
first instance only and reuses that plan forever (minimal overhead,
unbounded and unquantified sub-optimality) — the commercial default the
paper's introduction describes.
"""

from __future__ import annotations

from typing import Optional

from ..engine.api import EngineAPI
from ..optimizer.recost import ShrunkenMemo
from ..query.instance import SelectivityVector
from ..core.technique import OnlinePQOTechnique, PlanChoice


class OptimizeAlways(OnlinePQOTechnique):
    """Optimize every single query instance."""

    name = "OptAlways"

    def _choose(self, sv: SelectivityVector) -> PlanChoice:
        result = self._optimize(sv)
        return PlanChoice(
            shrunken_memo=result.shrunken_memo,
            plan_signature=result.plan.signature(),
            used_optimizer=True,
            check="optimizer",
            optimal_cost=result.cost,
            plan=result.plan,
        )

    @property
    def plans_cached(self) -> int:
        # Optimize-Always stores nothing (numPlans = 0 in section 2.1).
        return 0


class OptimizeOnce(OnlinePQOTechnique):
    """Optimize the first instance; reuse its plan for all others."""

    name = "OptOnce"

    def __init__(self, engine: EngineAPI) -> None:
        super().__init__(engine)
        self._plan: Optional[ShrunkenMemo] = None
        self._physical = None
        self._signature: str = ""

    def _choose(self, sv: SelectivityVector) -> PlanChoice:
        if self._plan is None:
            result = self._optimize(sv)
            self._plan = result.shrunken_memo
            self._physical = result.plan
            self._signature = result.plan.signature()
            return PlanChoice(
                shrunken_memo=self._plan,
                plan_signature=self._signature,
                used_optimizer=True,
                check="optimizer",
                optimal_cost=result.cost,
                plan=self._physical,
            )
        return PlanChoice(
            shrunken_memo=self._plan,
            plan_signature=self._signature,
            used_optimizer=False,
            check="reuse-first",
            plan=self._physical,
        )

    @property
    def plans_cached(self) -> int:
        return 0 if self._plan is None else 1
