"""Shared plan store for the heuristic baselines.

The baseline techniques from the literature (PCM, Ellipse, Density,
Ranges) all keep one entry per distinct optimal plan together with the
optimized instances that produced it ("store every new plan, never
drop" — the trivial cache policy section 3 criticizes).  This module
factors that bookkeeping out, and optionally adds the Appendix H.6
variant in which a baseline uses the Recost API to run SCR's
redundancy check before storing a new plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from ..optimizer.optimizer import OptimizationResult
from ..optimizer.plans import PhysicalPlan
from ..optimizer.recost import ShrunkenMemo
from ..query.instance import SelectivityVector

RecostFn = Callable[[ShrunkenMemo, SelectivityVector], float]


@dataclass
class StoredPlan:
    """A plan with the sVectors of the optimized instances it covers."""

    plan_id: int
    signature: str
    shrunken_memo: ShrunkenMemo
    plan: PhysicalPlan | None = None
    points: list[tuple[float, ...]] = field(default_factory=list)

    def points_array(self) -> np.ndarray:
        return np.asarray(self.points, dtype=np.float64)


@dataclass
class BaselinePlanStore:
    """Plan bookkeeping shared by all heuristic baselines.

    With ``lambda_r`` set (> 1) and a recost function supplied at
    registration time, new plans are subjected to SCR-style redundancy
    rejection (the Appendix H.6 "existing techniques + Recost" variant):
    the optimized instance is then attributed to the cheapest existing
    plan instead, enlarging that plan's inference region.
    """

    lambda_r: Optional[float] = None
    _plans: dict[str, StoredPlan] = field(default_factory=dict)
    _next_id: int = 0
    plans_rejected_redundant: int = 0

    def register(
        self,
        sv: SelectivityVector,
        result: OptimizationResult,
        recost: Optional[RecostFn] = None,
    ) -> StoredPlan:
        """Record an optimized instance; returns the plan it now anchors."""
        signature = result.plan.signature()
        existing = self._plans.get(signature)
        if existing is not None:
            existing.points.append(tuple(sv))
            return existing

        if self.lambda_r is not None and self.lambda_r > 1.0 and recost is not None:
            cheapest = self._cheapest_plan(sv, recost)
            if cheapest is not None:
                plan, cost = cheapest
                if cost / result.cost <= self.lambda_r:
                    self.plans_rejected_redundant += 1
                    plan.points.append(tuple(sv))
                    return plan

        plan = StoredPlan(
            plan_id=self._next_id,
            signature=signature,
            shrunken_memo=result.shrunken_memo,
            plan=result.plan,
        )
        plan.points.append(tuple(sv))
        self._plans[signature] = plan
        self._next_id += 1
        return plan

    def _cheapest_plan(
        self, sv: SelectivityVector, recost: RecostFn
    ) -> Optional[tuple[StoredPlan, float]]:
        best: Optional[StoredPlan] = None
        best_cost = float("inf")
        for plan in self._plans.values():
            cost = recost(plan.shrunken_memo, sv)
            if cost < best_cost:
                best, best_cost = plan, cost
        if best is None:
            return None
        return best, best_cost

    def plans(self) -> list[StoredPlan]:
        return list(self._plans.values())

    @property
    def num_plans(self) -> int:
        return len(self._plans)
