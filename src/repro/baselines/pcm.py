"""PCM — the bounded variant of Progressive Parametric Query
Optimization (Bizarro, Bruno, DeWitt; the paper's reference [4]).

PCM is the only prior online technique with a sub-optimality guarantee.
Its inference criterion (Table 1 of the paper): a new instance ``q_c``
can skip optimization if it lies in the axis-aligned rectangle spanned
by a pair of previously optimized instances ``(q_lo, q_hi)`` where
``q_hi`` dominates ``q_lo`` in selectivity space and their optimal
costs are within a λ-factor.  Under the Plan Cost Monotonicity
assumption the dominating instance's plan is then λ-optimal everywhere
inside the rectangle:

    Cost(P_hi, q_c) ≤ Cost(P_hi, q_hi) = C_hi ≤ λ·C_lo ≤ λ·Copt(q_c).

The drawbacks SCR addresses: many optimizer calls are needed before
usable rectangles exist, and every new plan is stored.

Implementation notes: rectangles are materialized incrementally when an
instance is optimized (paired against all previously optimized
instances) and membership is tested with vectorized numpy comparisons.
"""

from __future__ import annotations

import numpy as np

from ..engine.api import EngineAPI
from ..query.instance import SelectivityVector
from ..core.technique import OnlinePQOTechnique, PlanChoice
from .store import BaselinePlanStore


class PCM(OnlinePQOTechnique):
    """Bounded PPQO with parameter λ."""

    def __init__(
        self,
        engine: EngineAPI,
        lam: float = 2.0,
        lambda_r: float | None = None,
    ) -> None:
        super().__init__(engine)
        self.lam = lam
        self.store = BaselinePlanStore(lambda_r=lambda_r)
        # Optimized instances: sVectors, optimal costs, anchored plan ids.
        self._points: list[tuple[float, ...]] = []
        self._costs: list[float] = []
        self._plan_ids: list[int] = []
        # Rectangles: lows, highs (arrays), plan id of the dominating end.
        self._rect_lo: list[tuple[float, ...]] = []
        self._rect_hi: list[tuple[float, ...]] = []
        self._rect_plan: list[int] = []
        self._rect_lo_arr = np.empty((0, 0))
        self._rect_hi_arr = np.empty((0, 0))
        self._dirty = False

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"PCM{self.lam:g}"

    def _choose(self, sv: SelectivityVector) -> PlanChoice:
        plan_id = self._lookup(sv)
        if plan_id is not None:
            plan = next(
                p for p in self.store.plans() if p.plan_id == plan_id
            )
            return PlanChoice(
                shrunken_memo=plan.shrunken_memo,
                plan_signature=plan.signature,
                used_optimizer=False,
                check="rectangle",
                plan=plan.plan,
            )
        result = self._optimize(sv)
        plan = self.store.register(sv, result, self.engine.recost)
        self._add_point(sv, result.cost, plan.plan_id)
        return PlanChoice(
            shrunken_memo=plan.shrunken_memo,
            plan_signature=plan.signature,
            used_optimizer=True,
            check="optimizer",
            optimal_cost=result.cost,
            plan=plan.plan,
        )

    # -- inference ---------------------------------------------------------

    def _lookup(self, sv: SelectivityVector) -> int | None:
        if not self._rect_lo:
            return None
        if self._dirty:
            self._rect_lo_arr = np.asarray(self._rect_lo)
            self._rect_hi_arr = np.asarray(self._rect_hi)
            self._dirty = False
        point = np.asarray(tuple(sv))
        inside = np.all(
            (self._rect_lo_arr <= point) & (point <= self._rect_hi_arr), axis=1
        )
        hits = np.flatnonzero(inside)
        if hits.size == 0:
            return None
        return self._rect_plan[int(hits[0])]

    # -- maintenance -----------------------------------------------------------

    def _add_point(self, sv: SelectivityVector, cost: float, plan_id: int) -> None:
        new_point = tuple(sv)
        for old_point, old_cost, old_plan in zip(
            self._points, self._costs, self._plan_ids
        ):
            old_sv = SelectivityVector(old_point)
            if sv.dominates(old_sv):
                lo, hi = old_point, new_point
                lo_cost, hi_plan = old_cost, plan_id
                hi_cost = cost
            elif old_sv.dominates(sv):
                lo, hi = new_point, old_point
                lo_cost, hi_plan = cost, old_plan
                hi_cost = old_cost
            else:
                continue
            if hi_cost <= self.lam * lo_cost:
                self._rect_lo.append(lo)
                self._rect_hi.append(hi)
                self._rect_plan.append(hi_plan)
                self._dirty = True
        self._points.append(new_point)
        self._costs.append(cost)
        self._plan_ids.append(plan_id)

    @property
    def plans_cached(self) -> int:
        return self.store.num_plans
