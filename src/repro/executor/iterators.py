"""A Volcano-style tuple-at-a-time executor.

An independent, second implementation of plan execution — the classic
open/next/close iterator model — used to cross-validate the vectorized
columnar executor (:mod:`repro.executor.engine`): both must produce the
same result cardinality for any plan and instance.  It also makes the
per-operator semantics explicit (the columnar engine fuses them), which
the examples use to explain plan behaviour.

Rows are dicts ``{"table.column": value}``; joins merge them.  This is
deliberately simple and slow — it exists for correctness checking and
pedagogy, not performance.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator

import numpy as np

from ..catalog.datagen import DatabaseData
from ..optimizer.operators import PhysicalOp
from ..optimizer.plans import PhysicalPlan, PlanNode
from ..query.instance import QueryInstance
from ..query.template import QueryTemplate

Row = dict[str, float]


class RowIterator(ABC):
    """The open/next/close contract, expressed as a Python iterator."""

    @abstractmethod
    def rows(self) -> Iterator[Row]:
        """Yield output rows."""


class ScanIterator(RowIterator):
    """Base-table scan with the instance's predicates applied."""

    def __init__(
        self,
        data: DatabaseData,
        template: QueryTemplate,
        instance: QueryInstance,
        node: PlanNode,
    ) -> None:
        self.data = data
        self.template = template
        self.instance = instance
        self.node = node

    def rows(self) -> Iterator[Row]:
        table = self.node.table
        tdata = self.data.table(table)
        columns = list(tdata.columns)
        arrays = [tdata.column(c) for c in columns]
        order = range(tdata.row_count)
        if (
            self.node.op is PhysicalOp.INDEX_SCAN
            and self.node.index_column is not None
        ):
            order = np.argsort(
                tdata.column(self.node.index_column), kind="stable"
            )
        for i in order:
            row = {f"{table}.{c}": arr[i] for c, arr in zip(columns, arrays)}
            if self._passes(table, row):
                yield row

    def _passes(self, table: str, row: Row) -> bool:
        for pred in self.template.predicates_on(table):
            idx = self.template.parameter_index(pred)
            value = self.instance.parameters[idx]
            if not pred.op.apply(row[str(pred.column)], value):
                return False
        for pred in self.template.fixed_on(table):
            if not pred.op.apply(row[str(pred.column)], pred.value):
                return False
        return True


class HashJoinIterator(RowIterator):
    """Classic build/probe hash join over row dicts."""

    def __init__(
        self, left: RowIterator, right: RowIterator, node: PlanNode
    ) -> None:
        self.left = left
        self.right = right
        self.node = node

    def rows(self) -> Iterator[Row]:
        left_key = self.node.join_left_column
        right_key = self.node.join_right_column
        build: dict[float, list[Row]] = {}
        build_rows = list(self.right.rows())
        # Orient the key to whichever side actually carries it.
        if build_rows and right_key not in build_rows[0]:
            left_key, right_key = right_key, left_key
        for row in build_rows:
            build.setdefault(row[right_key], []).append(row)
        for probe_row in self.left.rows():
            for match in build.get(probe_row[left_key], ()):  # noqa: B020
                yield {**probe_row, **match}


class NestedLoopsIterator(RowIterator):
    """Naive nested loops (inner rematerialized per outer row in spirit;
    cached here since our inputs are deterministic)."""

    def __init__(
        self, outer: RowIterator, inner: RowIterator, node: PlanNode
    ) -> None:
        self.outer = outer
        self.inner = inner
        self.node = node

    def rows(self) -> Iterator[Row]:
        left_key = self.node.join_left_column
        right_key = self.node.join_right_column
        inner_rows = list(self.inner.rows())
        if inner_rows and right_key not in inner_rows[0]:
            left_key, right_key = right_key, left_key
        for outer_row in self.outer.rows():
            for inner_row in inner_rows:
                if outer_row[left_key] == inner_row[right_key]:
                    yield {**outer_row, **inner_row}


class SortIterator(RowIterator):
    def __init__(self, child: RowIterator, node: PlanNode) -> None:
        self.child = child
        self.node = node

    def rows(self) -> Iterator[Row]:
        key = self.node.sort_column
        yield from sorted(self.child.rows(), key=lambda r: r[key])


class GroupIterator(RowIterator):
    """Hash/stream aggregation: emits one row per group key."""

    def __init__(self, child: RowIterator, node: PlanNode) -> None:
        self.child = child
        self.node = node

    def rows(self) -> Iterator[Row]:
        key = self.node.group_column
        counts: dict[float, int] = {}
        for row in self.child.rows():
            counts[row[key]] = counts.get(row[key], 0) + 1
        for value, count in counts.items():
            yield {key: value, "count": float(count)}


class CountIterator(RowIterator):
    def __init__(self, child: RowIterator) -> None:
        self.child = child

    def rows(self) -> Iterator[Row]:
        total = sum(1 for _ in self.child.rows())
        yield {"count": float(total)}


class IteratorExecutor:
    """Builds an iterator tree from a physical plan and runs it."""

    def __init__(self, data: DatabaseData, template: QueryTemplate) -> None:
        self.data = data
        self.template = template

    def execute_count(self, plan: PhysicalPlan, instance: QueryInstance) -> int:
        """Number of result rows (groups for aggregates, matching the
        columnar executor's convention)."""
        if len(instance.parameters) != self.template.dimensions:
            raise ValueError("instance must carry concrete parameters")
        root = self._build(plan.root, instance)
        if plan.root.op is PhysicalOp.SCALAR_AGGREGATE:
            return int(next(iter(root.rows()))["count"])
        return sum(1 for _ in root.rows())

    def _build(self, node: PlanNode, instance: QueryInstance) -> RowIterator:
        op = node.op
        if op.is_scan:
            return ScanIterator(self.data, self.template, instance, node)
        if op is PhysicalOp.INDEX_NESTED_LOOPS_JOIN:
            outer = self._build(node.children[0], instance)
            inner = ScanIterator(
                self.data, self.template, instance, node.children[1]
            )
            return NestedLoopsIterator(outer, inner, node)
        if op is PhysicalOp.NESTED_LOOPS_JOIN:
            return NestedLoopsIterator(
                self._build(node.children[0], instance),
                self._build(node.children[1], instance),
                node,
            )
        if op in (PhysicalOp.HASH_JOIN, PhysicalOp.MERGE_JOIN):
            return HashJoinIterator(
                self._build(node.children[0], instance),
                self._build(node.children[1], instance),
                node,
            )
        if op is PhysicalOp.SORT:
            return SortIterator(self._build(node.children[0], instance), node)
        if op in (PhysicalOp.HASH_AGGREGATE, PhysicalOp.STREAM_AGGREGATE):
            return GroupIterator(self._build(node.children[0], instance), node)
        if op is PhysicalOp.SCALAR_AGGREGATE:
            return CountIterator(self._build(node.children[0], instance))
        raise ValueError(f"cannot execute operator {op}")
