"""Columnar plan execution over the generated data.

The paper's Appendix H.7 experiment compares actual optimization and
execution wall times per technique; this executor provides the
execution side.  Plans produced by the optimizer are interpreted over
the numpy column arrays of :class:`repro.catalog.datagen.DatabaseData`.

Execution is vectorized but semantically faithful to the operator tree:
scans filter base tables, joins match key columns (hash semantics for
hash/NL joins, sort-based for merge joins), sorts order rows,
aggregates group or count.  An intermediate result is a set of
row-index vectors, one per base table touched, all of equal length —
i.e. a materialized join of row ids.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..catalog.datagen import DatabaseData
from ..optimizer.operators import PhysicalOp
from ..optimizer.plans import PhysicalPlan, PlanNode
from ..query.instance import QueryInstance
from ..query.template import QueryTemplate


@dataclass
class Intermediate:
    """A joined intermediate: per-table row-id vectors of equal length."""

    rows: dict[str, np.ndarray]

    @property
    def count(self) -> int:
        if not self.rows:
            return 0
        return len(next(iter(self.rows.values())))

    def column(self, data: DatabaseData, table: str, column: str) -> np.ndarray:
        return data.table(table).column(column)[self.rows[table]]


@dataclass
class ExecutionResult:
    """Outcome of executing one plan for one instance."""

    row_count: int
    wall_seconds: float
    operator_count: int


class PlanExecutor:
    """Executes physical plans for one (database, template) pair."""

    def __init__(self, data: DatabaseData, template: QueryTemplate) -> None:
        self.data = data
        self.template = template

    def execute(self, plan: PhysicalPlan, instance: QueryInstance) -> ExecutionResult:
        """Run ``plan`` with the instance's bound parameters."""
        if len(instance.parameters) != self.template.dimensions:
            raise ValueError(
                "instance must carry concrete parameter bindings for execution"
            )
        start = time.perf_counter()
        result = self._run(plan.root, instance)
        elapsed = time.perf_counter() - start
        if isinstance(result, Intermediate):
            rows = result.count
        else:
            rows = int(result)
        return ExecutionResult(
            row_count=rows,
            wall_seconds=elapsed,
            operator_count=plan.node_count(),
        )

    # -- node dispatch ---------------------------------------------------------

    def _run(self, node: PlanNode, instance: QueryInstance):
        op = node.op
        if op.is_scan:
            return self._scan(node, instance)
        if op is PhysicalOp.INDEX_NESTED_LOOPS_JOIN:
            outer = self._run(node.children[0], instance)
            inner = self._scan(node.children[1], instance)
            return self._join(outer, inner, node)
        if op.is_join:
            left = self._run(node.children[0], instance)
            right = self._run(node.children[1], instance)
            return self._join(left, right, node)
        if op is PhysicalOp.SORT:
            child = self._run(node.children[0], instance)
            return self._sort(child, node)
        if op is PhysicalOp.SCALAR_AGGREGATE:
            child = self._run(node.children[0], instance)
            return child.count if isinstance(child, Intermediate) else child
        if op in (PhysicalOp.HASH_AGGREGATE, PhysicalOp.STREAM_AGGREGATE):
            child = self._run(node.children[0], instance)
            return self._aggregate(child, node)
        raise ValueError(f"cannot execute operator {op}")

    # -- operators ---------------------------------------------------------------

    def _scan(self, node: PlanNode, instance: QueryInstance) -> Intermediate:
        table = node.table
        tdata = self.data.table(table)
        mask = np.ones(tdata.row_count, dtype=bool)
        for pred in self.template.predicates_on(table):
            idx = self.template.parameter_index(pred)
            value = instance.parameters[idx]
            column = tdata.column(pred.column.column)
            mask &= np.asarray(pred.op.apply(column, value))
        for pred in self.template.fixed_on(table):
            column = tdata.column(pred.column.column)
            mask &= np.asarray(pred.op.apply(column, pred.value))
        rows = np.flatnonzero(mask)
        if node.op is PhysicalOp.INDEX_SCAN and node.index_column is not None:
            # Index scans deliver rows in index order.
            order = np.argsort(
                tdata.column(node.index_column)[rows], kind="stable"
            )
            rows = rows[order]
        return Intermediate(rows={table: rows})

    def _join(
        self, left: Intermediate, right: Intermediate, node: PlanNode
    ) -> Intermediate:
        l_table, l_col = node.join_left_column.split(".", 1)
        r_table, r_col = node.join_right_column.split(".", 1)
        # Orient: the "left"/outer side of the node may be either input.
        if l_table not in left.rows:
            left, right = right, left
        l_keys = left.column(self.data, l_table, l_col)
        r_keys = right.column(self.data, r_table, r_col)

        if node.op is PhysicalOp.MERGE_JOIN:
            l_idx, r_idx = _sort_merge_match(l_keys, r_keys)
        else:
            l_idx, r_idx = _hash_match(l_keys, r_keys)

        rows = {t: ids[l_idx] for t, ids in left.rows.items()}
        rows.update({t: ids[r_idx] for t, ids in right.rows.items()})
        return Intermediate(rows=rows)

    def _sort(self, child: Intermediate, node: PlanNode) -> Intermediate:
        table, column = node.sort_column.split(".", 1)
        keys = child.column(self.data, table, column)
        order = np.argsort(keys, kind="stable")
        return Intermediate(rows={t: ids[order] for t, ids in child.rows.items()})

    def _aggregate(self, child: Intermediate, node: PlanNode) -> int:
        table, column = node.group_column.split(".", 1)
        keys = child.column(self.data, table, column)
        return int(len(np.unique(keys)))


def _hash_match(
    left_keys: np.ndarray, right_keys: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """All matching (left, right) index pairs for an equi-join."""
    order = np.argsort(right_keys, kind="stable")
    sorted_right = right_keys[order]
    starts = np.searchsorted(sorted_right, left_keys, side="left")
    ends = np.searchsorted(sorted_right, left_keys, side="right")
    counts = ends - starts
    l_idx = np.repeat(np.arange(len(left_keys)), counts)
    if counts.sum() == 0:
        return l_idx, np.empty(0, dtype=np.int64)
    offsets = np.concatenate([
        np.arange(s, e) for s, e in zip(starts, ends) if e > s
    ])
    r_idx = order[offsets]
    return l_idx, r_idx


def _sort_merge_match(
    left_keys: np.ndarray, right_keys: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Merge-join match (same output as hash; sort-based access pattern)."""
    return _hash_match(left_keys, right_keys)


def reference_row_count(
    data: DatabaseData, template: QueryTemplate, instance: QueryInstance
) -> int:
    """Ground-truth join/filter result size, computed plan-independently.

    Used by tests to verify that every physical plan for the same
    instance produces the same result cardinality.
    """
    per_table_rows: dict[str, np.ndarray] = {}
    for table in template.tables:
        tdata = data.table(table)
        mask = np.ones(tdata.row_count, dtype=bool)
        for pred in template.predicates_on(table):
            idx = template.parameter_index(pred)
            mask &= np.asarray(pred.op.apply(
                tdata.column(pred.column.column), instance.parameters[idx]
            ))
        for pred in template.fixed_on(table):
            mask &= np.asarray(pred.op.apply(
                tdata.column(pred.column.column), pred.value
            ))
        per_table_rows[table] = np.flatnonzero(mask)

    joined = Intermediate(rows={
        template.tables[0]: per_table_rows[template.tables[0]]
    })
    remaining = list(template.joins)
    while remaining:
        progressed = False
        for edge in list(remaining):
            a, b = edge.tables()
            if a in joined.rows and b in joined.rows:
                keys_a = joined.column(data, edge.left.table, edge.left.column)
                keys_b = joined.column(data, edge.right.table, edge.right.column)
                keep = keys_a == keys_b
                joined = Intermediate(rows={
                    t: ids[keep] for t, ids in joined.rows.items()
                })
                remaining.remove(edge)
                progressed = True
            elif a in joined.rows or b in joined.rows:
                inner_table = b if a in joined.rows else a
                fake = Intermediate(rows={inner_table: per_table_rows[inner_table]})
                l_col = edge.left if edge.left.table != inner_table else edge.right
                r_col = edge.right if edge.left.table != inner_table else edge.left
                l_keys = joined.column(data, l_col.table, l_col.column)
                r_keys = fake.column(data, r_col.table, r_col.column)
                l_idx, r_idx = _hash_match(l_keys, r_keys)
                rows = {t: ids[l_idx] for t, ids in joined.rows.items()}
                rows[inner_table] = fake.rows[inner_table][r_idx]
                joined = Intermediate(rows=rows)
                remaining.remove(edge)
                progressed = True
        if not progressed:
            raise RuntimeError("join graph did not converge")
    return joined.count
