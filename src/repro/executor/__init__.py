"""Columnar plan execution (the H.7 execution-time experiment substrate)."""

from .engine import ExecutionResult, Intermediate, PlanExecutor, reference_row_count

__all__ = ["ExecutionResult", "Intermediate", "PlanExecutor", "reference_row_count"]
