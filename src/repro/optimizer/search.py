"""Dynamic-programming plan search over the memo.

A System-R-style bottom-up enumeration over connected sub-join-graphs
with bushy trees, multiple access paths, four join implementations and
interesting orders.  This is the expensive "optimizer call" that online
PQO tries to avoid; its cost relative to the Recost pass is exactly the
gap the paper exploits (up to two orders of magnitude in their SQL
Server implementation, measured for ours by the recost benchmark).
"""

from __future__ import annotations

from itertools import combinations
from typing import Optional

from ..query.expressions import JoinEdge
from ..query.instance import SelectivityVector
from ..query.template import AggregationKind, QueryTemplate
from .cardinality import CardinalityModel
from .cost_model import CostModel
from .memo import Memo, MemoGroup
from .operators import PhysicalOp
from .plans import PhysicalPlan, PlanNode


class PlanSearch:
    """One plan search: template + cardinality model + cost model."""

    def __init__(
        self,
        template: QueryTemplate,
        card_model: CardinalityModel,
        cost_model: CostModel,
        schema,
    ) -> None:
        self.template = template
        self.cards = card_model
        self.costs = cost_model
        self.schema = schema

    def optimize(self, sv: SelectivityVector) -> tuple[PhysicalPlan, Memo]:
        """Find the cheapest plan for the instance with sVector ``sv``."""
        memo = Memo()
        self._seed_base_groups(memo, sv)
        self._enumerate_joins(memo, sv)
        full = frozenset(self.template.tables)
        group = memo.group(full)
        root = self._finalize(group, sv)
        if root is None:
            raise RuntimeError(
                f"plan search failed for template {self.template.name}"
            )
        return PhysicalPlan(root=root, template_name=self.template.name), memo

    # -- base access paths -------------------------------------------------

    def _seed_base_groups(self, memo: Memo, sv: SelectivityVector) -> None:
        for table in self.template.tables:
            info = self.cards.base_info(table)
            card = info.cardinality(sv)
            group = memo.group(frozenset([table]))
            group.cardinality = card

            seq = PlanNode(
                op=PhysicalOp.SEQ_SCAN,
                table=table,
                param_indices=info.param_indices,
                fixed_selectivity=info.fixed_selectivity,
                base_rows=info.rows,
                cardinality=card,
                cost=self.costs.seq_scan(info.rows, card),
            )
            group.offer(None, seq)

            # Index scans: one per indexed predicate column.  Output is
            # sorted by the index column — an interesting order.
            for pred in self.template.predicates_on(table):
                if self.schema.has_index(table, pred.column.column):
                    self._offer_index_scan(group, info, card, pred.column.column)
            for pred in self.template.fixed_on(table):
                if self.schema.has_index(table, pred.column.column):
                    self._offer_index_scan(group, info, card, pred.column.column)
            # Index on a join column enables a sorted access path even
            # without a filtering predicate on that column.
            for edge in self.template.joins:
                for ref in (edge.left, edge.right):
                    if ref.table == table and self.schema.has_index(table, ref.column):
                        self._offer_index_scan(group, info, card, ref.column)

    def _offer_index_scan(
        self, group: MemoGroup, info, card: float, column: str
    ) -> None:
        node = PlanNode(
            op=PhysicalOp.INDEX_SCAN,
            table=info.table,
            index_column=column,
            param_indices=info.param_indices,
            fixed_selectivity=info.fixed_selectivity,
            base_rows=info.rows,
            cardinality=card,
            cost=self.costs.index_scan(info.rows, card),
        )
        group.offer(f"{info.table}.{column}", node)

    # -- join enumeration ----------------------------------------------------

    def _enumerate_joins(self, memo: Memo, sv: SelectivityVector) -> None:
        tables = self.template.tables
        n = len(tables)
        if n == 1:
            return
        # Bottom-up over subset sizes; only connected subsets get groups.
        for size in range(2, n + 1):
            for combo in combinations(tables, size):
                subset = frozenset(combo)
                edges_inside = self._internal_edges(subset)
                if not self._connected(subset, edges_inside):
                    continue
                group = memo.group(subset)
                self._expand_group(memo, group, subset, sv)

    def _expand_group(
        self,
        memo: Memo,
        group: MemoGroup,
        subset: frozenset[str],
        sv: SelectivityVector,
    ) -> None:
        members = sorted(subset)
        # Enumerate partitions (S1, S2); iterate proper non-empty subsets
        # containing the first member to halve the work, then consider
        # both (S1 join S2) and (S2 join S1) physical role assignments.
        rest = [t for t in members[1:]]
        first = members[0]
        for r in range(0, len(rest)):
            for extra in combinations(rest, r):
                left = frozenset([first, *extra])
                right = subset - left
                if not right:
                    continue
                if not memo.has_group(left) or not memo.has_group(right):
                    continue
                edges = self.template.join_edges_between(left, right)
                if not edges:
                    continue
                self._offer_joins(memo, group, left, right, edges, sv)

    def _offer_joins(
        self,
        memo: Memo,
        group: MemoGroup,
        left: frozenset[str],
        right: frozenset[str],
        edges: list[JoinEdge],
        sv: SelectivityVector,
    ) -> None:
        lgroup = memo.group(left)
        rgroup = memo.group(right)
        out_card = self.cards.join_cardinality(
            lgroup.cardinality, rgroup.cardinality, edges
        )
        if group.cardinality == 0.0:
            group.cardinality = out_card
        primary = edges[0]
        # Residual edges multiply into the join selectivity of the node.
        join_sel = 1.0
        for edge in edges:
            join_sel *= self.cards.join_selectivity(edge)

        for outer_set, inner_set, outer_grp, inner_grp in (
            (left, right, lgroup, rgroup),
            (right, left, rgroup, lgroup),
        ):
            outer_col, inner_col = self._orient(primary, outer_set)
            outer_best = outer_grp.best(None)
            inner_best = inner_grp.best(None)
            if outer_best is None or inner_best is None:
                continue

            self._offer_hash_join(
                group, outer_best, inner_best, outer_col, inner_col,
                join_sel, out_card,
            )
            self._offer_index_nlj(
                group, inner_set, outer_best, outer_col, inner_col,
                join_sel, out_card,
            )
            self._offer_naive_nlj(
                group, outer_best, inner_best, outer_col, inner_col,
                join_sel, out_card,
            )
            self._offer_merge_join(
                group, outer_grp, inner_grp, outer_col, inner_col,
                join_sel, out_card,
            )

    def _offer_hash_join(
        self, group, outer_best, inner_best, outer_col, inner_col, join_sel, out_card
    ) -> None:
        """Hash join: build on the (designated) inner side."""
        build = inner_best.plan
        probe = outer_best.plan
        cost = self.costs.hash_join(build.cardinality, probe.cardinality, out_card)
        node = PlanNode(
            op=PhysicalOp.HASH_JOIN,
            children=[probe, build],
            join_left_column=outer_col,
            join_right_column=inner_col,
            join_selectivity=join_sel,
            cardinality=out_card,
            cost=cost + probe.cost + build.cost,
        )
        group.offer(None, node)

    def _offer_index_nlj(
        self, group, inner_set, outer_best, outer_col, inner_col, join_sel, out_card
    ) -> None:
        """Index nested loops: inner must be a single indexed base table."""
        if len(inner_set) != 1:
            return
        inner_table = next(iter(inner_set))
        inner_column = inner_col.split(".", 1)[1]
        if not self.schema.has_index(inner_table, inner_column):
            return
        info = self.cards.base_info(inner_table)
        outer = outer_best.plan
        # The inner side of an INLJ is probed, not scanned: its
        # cardinality/cost are folded into the join cost function, so the
        # leaf node carries zero cumulative cost of its own.
        inner_leaf = PlanNode(
            op=PhysicalOp.INDEX_SCAN,
            table=inner_table,
            index_column=inner_column,
            param_indices=info.param_indices,
            fixed_selectivity=info.fixed_selectivity,
            base_rows=info.rows,
            cardinality=0.0,
            cost=0.0,
        )
        cost = self.costs.index_nested_loops_join(
            outer.cardinality, info.rows, out_card
        )
        node = PlanNode(
            op=PhysicalOp.INDEX_NESTED_LOOPS_JOIN,
            children=[outer, inner_leaf],
            table=inner_table,
            index_column=inner_column,
            join_left_column=outer_col,
            join_right_column=inner_col,
            join_selectivity=join_sel,
            cardinality=out_card,
            cost=cost + outer.cost,
        )
        group.offer(None, node)

    def _offer_naive_nlj(
        self, group, outer_best, inner_best, outer_col, inner_col, join_sel, out_card
    ) -> None:
        outer = outer_best.plan
        inner = inner_best.plan
        cost = self.costs.nested_loops_join(outer.cardinality, inner.cost, out_card)
        node = PlanNode(
            op=PhysicalOp.NESTED_LOOPS_JOIN,
            children=[outer, inner],
            join_left_column=outer_col,
            join_right_column=inner_col,
            join_selectivity=join_sel,
            cardinality=out_card,
            cost=cost + outer.cost,
        )
        group.offer(None, node)

    def _offer_merge_join(
        self, group, outer_grp, inner_grp, outer_col, inner_col, join_sel, out_card
    ) -> None:
        """Merge join over every combination of available input orders."""
        for l_order in outer_grp.orders() + [None]:
            for r_order in inner_grp.orders() + [None]:
                lwin = outer_grp.best(l_order)
                rwin = inner_grp.best(r_order)
                if lwin is None or rwin is None:
                    continue
                lplan, rplan = lwin.plan, rwin.plan
                l_sorted = l_order == outer_col
                r_sorted = r_order == inner_col
                cost = self.costs.merge_join(
                    lplan.cardinality, rplan.cardinality, out_card,
                    l_sorted, r_sorted,
                )
                node = PlanNode(
                    op=PhysicalOp.MERGE_JOIN,
                    children=[lplan, rplan],
                    join_left_column=outer_col,
                    join_right_column=inner_col,
                    join_selectivity=join_sel,
                    left_sorted=l_sorted,
                    right_sorted=r_sorted,
                    cardinality=out_card,
                    cost=cost + lplan.cost + rplan.cost,
                )
                # Merge join output is ordered by the join columns.
                group.offer(outer_col, node)

    # -- root operators ---------------------------------------------------

    def _finalize(self, group: MemoGroup, sv: SelectivityVector) -> Optional[PlanNode]:
        """Apply aggregation / order-by on top of the full join group."""
        template = self.template
        best_root: Optional[PlanNode] = None

        candidates: list[tuple[Optional[str], PlanNode]] = []
        for order in group.orders():
            winner = group.best(order)
            if winner is not None:
                candidates.append((order, winner.plan))
        overall = group.best(None)
        if overall is not None and (None, overall.plan) not in candidates:
            candidates.append((None, overall.plan))

        for order, plan in candidates:
            node = plan
            if template.aggregation is AggregationKind.GROUP_BY:
                node = self._aggregate(node, order)
            elif template.aggregation is AggregationKind.COUNT:
                node = PlanNode(
                    op=PhysicalOp.SCALAR_AGGREGATE,
                    children=[node],
                    cardinality=1.0,
                    cost=self.costs.scalar_aggregate(node.cardinality) + node.cost,
                )
            if template.order_by is not None:
                want = f"{template.order_by.table}.{template.order_by.column}"
                produced = order if template.aggregation is AggregationKind.NONE else None
                if produced != want:
                    node = PlanNode(
                        op=PhysicalOp.SORT,
                        children=[node],
                        sort_column=want,
                        cardinality=node.cardinality,
                        cost=self.costs.sort(node.cardinality) + node.cost,
                    )
            if best_root is None or node.cost < best_root.cost:
                best_root = node
        return best_root

    def _aggregate(self, plan: PlanNode, order: Optional[str]) -> PlanNode:
        template = self.template
        gb = template.group_by
        group_key = f"{gb.table}.{gb.column}"
        groups = self.cards.group_count(gb.table, gb.column, plan.cardinality)
        if order == group_key:
            cost = self.costs.stream_aggregate(plan.cardinality, groups)
            op = PhysicalOp.STREAM_AGGREGATE
        else:
            cost = self.costs.hash_aggregate(plan.cardinality, groups)
            op = PhysicalOp.HASH_AGGREGATE
        distinct = float(
            self.cards.stats.column(gb.table, gb.column).distinct_count
        )
        return PlanNode(
            op=op,
            children=[plan],
            group_column=group_key,
            group_distinct=distinct,
            cardinality=groups,
            cost=cost + plan.cost,
        )

    # -- helpers ----------------------------------------------------------

    def _internal_edges(self, subset: frozenset[str]) -> list[JoinEdge]:
        return [
            e
            for e in self.template.joins
            if e.left.table in subset and e.right.table in subset
        ]

    def _connected(self, subset: frozenset[str], edges: list[JoinEdge]) -> bool:
        if len(subset) <= 1:
            return True
        adjacency: dict[str, set[str]] = {t: set() for t in subset}
        for e in edges:
            a, b = e.tables()
            adjacency[a].add(b)
            adjacency[b].add(a)
        start = next(iter(subset))
        seen = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for nxt in adjacency[node]:
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return len(seen) == len(subset)

    @staticmethod
    def _orient(edge: JoinEdge, outer_set: frozenset[str]) -> tuple[str, str]:
        """Return (outer_column, inner_column) qualified names."""
        if edge.left.table in outer_set:
            return str(edge.left), str(edge.right)
        return str(edge.right), str(edge.left)
