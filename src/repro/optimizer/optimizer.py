"""Optimizer front-end: ties search, cardinality and recost together.

One :class:`QueryOptimizer` is built per (template, database statistics)
pair and exposes exactly the engine capabilities the paper's technique
needs (section 4.2): a full optimizer call and the cheap Recost call.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..catalog.statistics import DatabaseStatistics
from ..query.instance import SelectivityVector
from ..query.template import QueryTemplate
from ..selectivity.estimator import SelectivityEstimator
from .cardinality import CardinalityModel
from .cost_model import CostModel
from .recost import ShrunkenMemo, shrink
from .plans import PhysicalPlan
from .search import PlanSearch


@dataclass
class OptimizationResult:
    """Everything an optimizer call produces.

    ``plan`` carries derived cardinalities/costs for the optimized
    instance; ``shrunken_memo`` is the cacheable re-costing structure;
    the memo statistics quantify the search work that recost avoids.
    """

    plan: PhysicalPlan
    cost: float
    shrunken_memo: ShrunkenMemo
    memo_groups: int
    memo_expressions: int


class QueryOptimizer:
    """Cost-based optimizer for a single query template."""

    def __init__(
        self,
        template: QueryTemplate,
        stats: DatabaseStatistics,
        estimator: SelectivityEstimator | None = None,
        cost_model: CostModel | None = None,
    ) -> None:
        self.template = template
        self.stats = stats
        self.estimator = estimator or SelectivityEstimator(stats)
        self.cost_model = cost_model or CostModel()
        self.card_model = CardinalityModel(template, stats, self.estimator)
        self._search = PlanSearch(
            template, self.card_model, self.cost_model, stats.schema
        )

    def optimize(self, sv: SelectivityVector) -> OptimizationResult:
        """Full plan search for the instance with selectivity vector ``sv``."""
        plan, memo = self._search.optimize(sv)
        shrunken = shrink(plan, memo.group_count, memo.expression_count)
        return OptimizationResult(
            plan=plan,
            cost=plan.cost,
            shrunken_memo=shrunken,
            memo_groups=memo.group_count,
            memo_expressions=memo.expression_count,
        )

    def recost(self, shrunken: ShrunkenMemo, sv: SelectivityVector) -> float:
        """Re-cost a previously optimized plan at a new instance."""
        if shrunken.template_name != self.template.name:
            raise ValueError(
                f"plan belongs to template {shrunken.template_name!r}, "
                f"not {self.template.name!r}"
            )
        return shrunken.recost(sv, self.cost_model)
