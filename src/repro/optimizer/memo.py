"""Memo data structure for the dynamic-programming plan search.

Mirrors the Cascades memo the paper's prototype works over (Appendix B):
*groups* are sets of joined relations; each group holds the *logical*
property (output cardinality at the instance being optimized) and the
best *physical expression* per interesting order (unordered, or sorted
by some column).  After optimization the winner's slice of the memo is
what survives as the ``ShrunkenMemo`` used by the Recost API.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .plans import PlanNode


@dataclass
class GroupWinner:
    """Best plan found for a (group, order) combination."""

    plan: PlanNode
    cost: float


@dataclass
class MemoGroup:
    """A memo group: one set of base relations.

    ``winners`` maps an interesting order key (``None`` for unordered,
    otherwise a qualified ``table.column`` string the output is sorted
    by) to the cheapest plan producing that order.
    """

    tables: frozenset[str]
    cardinality: float = 0.0
    winners: dict[Optional[str], GroupWinner] = field(default_factory=dict)
    expressions_considered: int = 0

    def offer(self, order: Optional[str], plan: PlanNode) -> bool:
        """Record ``plan`` if it beats the current winner for ``order``.

        Returns True if the plan was kept.
        """
        self.expressions_considered += 1
        current = self.winners.get(order)
        if current is None or plan.cost < current.cost:
            self.winners[order] = GroupWinner(plan=plan, cost=plan.cost)
            return True
        return False

    def best(self, order: Optional[str] = None) -> Optional[GroupWinner]:
        """Cheapest winner with the requested order (``None`` = any order).

        For ``order=None`` the overall cheapest plan across all orders is
        returned (an ordered plan satisfies an unordered requirement).
        """
        if order is not None:
            return self.winners.get(order)
        best: Optional[GroupWinner] = None
        for winner in self.winners.values():
            if best is None or winner.cost < best.cost:
                best = winner
        return best

    def orders(self) -> list[Optional[str]]:
        return list(self.winners.keys())


@dataclass
class Memo:
    """The whole memo: groups keyed by relation set."""

    groups: dict[frozenset[str], MemoGroup] = field(default_factory=dict)

    def group(self, tables: frozenset[str]) -> MemoGroup:
        grp = self.groups.get(tables)
        if grp is None:
            grp = MemoGroup(tables=tables)
            self.groups[tables] = grp
        return grp

    def has_group(self, tables: frozenset[str]) -> bool:
        return tables in self.groups

    @property
    def group_count(self) -> int:
        return len(self.groups)

    @property
    def expression_count(self) -> int:
        return sum(g.expressions_considered for g in self.groups.values())
