"""Cost-based query optimizer: plan search, cost model, Recost API."""

from .cardinality import CardinalityModel
from .cost_model import CostModel, CostParameters, DEFAULT_COST_PARAMETERS
from .memo import Memo, MemoGroup
from .operators import PhysicalOp
from .optimizer import OptimizationResult, QueryOptimizer
from .plans import PhysicalPlan, PlanNode
from .recost import ShrunkenMemo, shrink

__all__ = [
    "CardinalityModel",
    "CostModel",
    "CostParameters",
    "DEFAULT_COST_PARAMETERS",
    "Memo",
    "MemoGroup",
    "OptimizationResult",
    "PhysicalOp",
    "PhysicalPlan",
    "PlanNode",
    "QueryOptimizer",
    "ShrunkenMemo",
    "shrink",
]
