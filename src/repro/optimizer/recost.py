"""The Recost API: re-cost a stored plan at a new query instance.

This reproduces the paper's Appendix B mechanism.  At the end of
optimization the winner's slice of the memo is *shrunk* to exactly the
nodes of the chosen plan (``ShrunkenMemo``), dropping every group and
expression plan search considered but did not pick — the paper measures
~70 % size reduction, and we report ours in the recost benchmark.

Re-costing then replaces the parameterized predicate selectivities at
the leaves and re-derives cardinalities and costs bottom-up with pure
arithmetic — no plan search — which is why a recost call is one to two
orders of magnitude cheaper than an optimizer call.

By construction the recost of a plan ``P`` at instance ``q`` equals the
cost the optimizer's search would assign to the same plan structure at
``q`` (both use :class:`repro.optimizer.cost_model.CostModel`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..query.instance import SelectivityVector
from .cost_model import CostModel
from .operators import PhysicalOp
from .plans import PhysicalPlan, PlanNode

_MIN_CARD = 1e-6


@dataclass(frozen=True)
class _RecostNode:
    """One flattened plan node (children precede parents)."""

    op: PhysicalOp
    child_a: int  # index into the flat array, -1 if absent
    child_b: int
    base_rows: float
    fixed_selectivity: float
    param_indices: tuple[int, ...]
    join_selectivity: float
    left_sorted: bool
    right_sorted: bool
    group_distinct: float
    # INLJ inner-table constants (probed, not scanned):
    inner_base_rows: float
    inner_fixed_selectivity: float
    inner_param_indices: tuple[int, ...]


@dataclass
class ShrunkenMemo:
    """Cacheable re-costing representation of one physical plan.

    ``node_count`` vs the full memo's expression count quantifies the
    memo-shrinking step.  Instances of this class are what the plan
    cache stores alongside the executable plan (section 6.1 notes this
    is the dominant per-plan memory overhead).
    """

    template_name: str
    signature: str
    nodes: list[_RecostNode]
    full_memo_groups: int = 0
    full_memo_expressions: int = 0

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    def recost(self, sv: SelectivityVector, cost_model: CostModel) -> float:
        """Cost of this plan at the instance with selectivity vector ``sv``."""
        cards = [0.0] * len(self.nodes)
        costs = [0.0] * len(self.nodes)
        for i, node in enumerate(self.nodes):
            op = node.op
            if op.is_scan:
                card = node.base_rows * node.fixed_selectivity
                for p in node.param_indices:
                    card *= sv[p]
                card = max(card, _MIN_CARD)
                cards[i] = card
                costs[i] = cost_model.operator_cost(
                    op, out_rows=card, table_rows=node.base_rows
                )
            elif op is PhysicalOp.INDEX_NESTED_LOOPS_JOIN:
                outer_card = cards[node.child_a]
                inner_card = node.inner_base_rows * node.inner_fixed_selectivity
                for p in node.inner_param_indices:
                    inner_card *= sv[p]
                inner_card = max(inner_card, _MIN_CARD)
                out = max(outer_card * inner_card * node.join_selectivity, _MIN_CARD)
                cards[i] = out
                costs[i] = (
                    cost_model.operator_cost(
                        op,
                        out_rows=out,
                        outer_rows=outer_card,
                        table_rows=node.inner_base_rows,
                    )
                    + costs[node.child_a]
                )
            elif op is PhysicalOp.NESTED_LOOPS_JOIN:
                outer_card = cards[node.child_a]
                inner_card = cards[node.child_b]
                out = max(outer_card * inner_card * node.join_selectivity, _MIN_CARD)
                cards[i] = out
                costs[i] = (
                    cost_model.operator_cost(
                        op,
                        out_rows=out,
                        outer_rows=outer_card,
                        inner_cost=costs[node.child_b],
                    )
                    + costs[node.child_a]
                )
            elif op is PhysicalOp.HASH_JOIN:
                probe_card = cards[node.child_a]
                build_card = cards[node.child_b]
                out = max(probe_card * build_card * node.join_selectivity, _MIN_CARD)
                cards[i] = out
                costs[i] = (
                    cost_model.operator_cost(
                        op,
                        out_rows=out,
                        outer_rows=build_card,
                        inner_rows=probe_card,
                    )
                    + costs[node.child_a]
                    + costs[node.child_b]
                )
            elif op is PhysicalOp.MERGE_JOIN:
                l_card = cards[node.child_a]
                r_card = cards[node.child_b]
                out = max(l_card * r_card * node.join_selectivity, _MIN_CARD)
                cards[i] = out
                costs[i] = (
                    cost_model.operator_cost(
                        op,
                        out_rows=out,
                        outer_rows=l_card,
                        inner_rows=r_card,
                        left_sorted=node.left_sorted,
                        right_sorted=node.right_sorted,
                    )
                    + costs[node.child_a]
                    + costs[node.child_b]
                )
            elif op is PhysicalOp.SORT:
                in_card = cards[node.child_a]
                cards[i] = in_card
                costs[i] = (
                    cost_model.operator_cost(op, out_rows=in_card, outer_rows=in_card)
                    + costs[node.child_a]
                )
            elif op in (PhysicalOp.HASH_AGGREGATE, PhysicalOp.STREAM_AGGREGATE):
                in_card = cards[node.child_a]
                groups = max(1.0, min(node.group_distinct, in_card))
                cards[i] = groups
                costs[i] = (
                    cost_model.operator_cost(
                        op, out_rows=groups, outer_rows=in_card, groups=groups
                    )
                    + costs[node.child_a]
                )
            elif op is PhysicalOp.SCALAR_AGGREGATE:
                in_card = cards[node.child_a]
                cards[i] = 1.0
                costs[i] = (
                    cost_model.operator_cost(op, out_rows=1.0, outer_rows=in_card)
                    + costs[node.child_a]
                )
            else:  # pragma: no cover - vocabulary is closed
                raise ValueError(f"cannot recost operator {op}")
        return costs[-1]


def shrink(plan: PhysicalPlan, memo_groups: int = 0, memo_expressions: int = 0) -> ShrunkenMemo:
    """Flatten a plan tree into its :class:`ShrunkenMemo`."""
    nodes: list[_RecostNode] = []

    def visit(node: PlanNode) -> int:
        if node.op is PhysicalOp.INDEX_NESTED_LOOPS_JOIN:
            # The inner index-scan leaf is folded into the join node.
            outer_idx = visit(node.children[0])
            inner = node.children[1]
            nodes.append(
                _RecostNode(
                    op=node.op,
                    child_a=outer_idx,
                    child_b=-1,
                    base_rows=0.0,
                    fixed_selectivity=1.0,
                    param_indices=(),
                    join_selectivity=node.join_selectivity,
                    left_sorted=False,
                    right_sorted=False,
                    group_distinct=0.0,
                    inner_base_rows=inner.base_rows,
                    inner_fixed_selectivity=inner.fixed_selectivity,
                    inner_param_indices=inner.param_indices,
                )
            )
            return len(nodes) - 1
        child_idx = [visit(c) for c in node.children]
        nodes.append(
            _RecostNode(
                op=node.op,
                child_a=child_idx[0] if child_idx else -1,
                child_b=child_idx[1] if len(child_idx) > 1 else -1,
                base_rows=node.base_rows,
                fixed_selectivity=node.fixed_selectivity,
                param_indices=node.param_indices,
                join_selectivity=node.join_selectivity,
                left_sorted=node.left_sorted,
                right_sorted=node.right_sorted,
                group_distinct=node.group_distinct,
                inner_base_rows=0.0,
                inner_fixed_selectivity=1.0,
                inner_param_indices=(),
            )
        )
        return len(nodes) - 1

    visit(plan.root)
    return ShrunkenMemo(
        template_name=plan.template_name,
        signature=plan.signature(),
        nodes=nodes,
        full_memo_groups=memo_groups,
        full_memo_expressions=memo_expressions,
    )
