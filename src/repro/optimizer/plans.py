"""Physical plan trees and plan signatures.

A :class:`PhysicalPlan` is the optimizer's output: an operator tree
annotated with the cardinalities and costs derived at the instance it
was optimized for.  The *signature* of a plan identifies its structure
(operators, join order, access paths) independently of cardinalities —
two instances share "the same plan" exactly when their signatures match,
which is how the plan cache detects an already-stored plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .operators import PhysicalOp


@dataclass
class PlanNode:
    """One node of a physical plan tree.

    Attributes
    ----------
    op:
        Physical operator.
    children:
        Child plan nodes (0 for scans, 1 for sort/aggregate, 2 for joins).
    table:
        Base table name (scans only).
    index_column:
        Column whose index the scan/probe uses (IndexScan and
        IndexNestedLoopsJoin only).
    join_left_column / join_right_column:
        Equi-join columns, qualified ``table.column`` strings (joins only).
    sort_column:
        Sort key (Sort and StreamAggregate input order).
    group_column:
        Grouping column (aggregates).
    param_indices:
        Selectivity-vector dimensions whose predicates this node applies
        (scans only): re-costing rebinds these.
    fixed_selectivity:
        Product of constant-predicate selectivities applied at this node.
    join_selectivity:
        Fixed equi-join selectivity (joins only; paper assumption: join
        selectivities do not vary across instances).
    cardinality / cost:
        Output cardinality and *cumulative* cost derived at optimization
        time (subtree cost including children).
    """

    op: PhysicalOp
    children: list["PlanNode"] = field(default_factory=list)
    table: Optional[str] = None
    index_column: Optional[str] = None
    join_left_column: Optional[str] = None
    join_right_column: Optional[str] = None
    sort_column: Optional[str] = None
    group_column: Optional[str] = None
    param_indices: tuple[int, ...] = ()
    fixed_selectivity: float = 1.0
    join_selectivity: float = 1.0
    base_rows: float = 0.0
    left_sorted: bool = False
    right_sorted: bool = False
    group_distinct: float = 0.0
    cardinality: float = 0.0
    cost: float = 0.0

    def signature(self) -> str:
        """Structural identity of the subtree (ignores cardinalities)."""
        parts = [self.op.value]
        if self.table:
            parts.append(self.table)
        if self.index_column:
            parts.append(f"ix:{self.index_column}")
        if self.join_left_column:
            parts.append(f"{self.join_left_column}={self.join_right_column}")
        if self.sort_column:
            parts.append(f"sort:{self.sort_column}")
        if self.group_column:
            parts.append(f"grp:{self.group_column}")
        inner = ",".join(child.signature() for child in self.children)
        return f"{'/'.join(parts)}({inner})"

    def nodes(self) -> list["PlanNode"]:
        """All nodes of the subtree in post-order (children first)."""
        out: list[PlanNode] = []
        for child in self.children:
            out.extend(child.nodes())
        out.append(self)
        return out

    def pretty(self, indent: int = 0) -> str:
        """Human-readable multi-line rendering of the plan."""
        label = self.op.value
        if self.table:
            label += f" {self.table}"
        if self.index_column:
            label += f" (index on {self.index_column})"
        if self.join_left_column:
            label += f" [{self.join_left_column} = {self.join_right_column}]"
        if self.sort_column and self.op is PhysicalOp.SORT:
            label += f" by {self.sort_column}"
        if self.group_column:
            label += f" group by {self.group_column}"
        line = "  " * indent + (
            f"{label}  (card={self.cardinality:.1f}, cost={self.cost:.1f})"
        )
        lines = [line]
        for child in self.children:
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)


@dataclass
class PhysicalPlan:
    """A complete plan: root node plus bookkeeping for the plan cache."""

    root: PlanNode
    template_name: str
    plan_id: int = -1

    @property
    def cost(self) -> float:
        return self.root.cost

    @property
    def cardinality(self) -> float:
        return self.root.cardinality

    def signature(self) -> str:
        return self.root.signature()

    def node_count(self) -> int:
        return len(self.root.nodes())

    def operators(self) -> list[PhysicalOp]:
        return [node.op for node in self.root.nodes()]

    def pretty(self) -> str:
        return self.root.pretty()

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.pretty()
