"""The optimizer's cost model.

Per-operator cost functions with the shapes section 5.4 of the paper
analyses for the Bounded Cost Growth assumption:

* ``SeqScan``      — linear in table rows (independent of selectivity);
* ``IndexScan``    — linear in selected rows (random-access factor);
* ``NestedLoops``  — grows as ``s1 * s2`` (outer card x inner access);
* ``HashJoin``     — grows as ``s1 + s2``, with a memory-spill
  discontinuity (the paper notes real cost models contain such
  transitions, the source of rare BCG violations);
* ``MergeJoin``/``Sort`` — ``n log n`` (super-linear; bounded by a
  polynomial per section 5.4's log inequality);
* aggregates       — linear (hash) or sorted-input linear (stream).

All costs are cumulative: an operator's ``cost`` includes its children.
The same functions serve plan search and the Recost API, so a re-costed
plan's cost equals what the optimizer would have assigned to that plan.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .operators import PhysicalOp


@dataclass(frozen=True)
class CostParameters:
    """Tunable constants of the cost model (abstract cost units per row)."""

    seq_row: float = 1.0
    index_row: float = 4.0
    index_lookup: float = 10.0
    nlj_probe_row: float = 0.5
    hash_build_row: float = 2.0
    hash_probe_row: float = 1.2
    sort_row: float = 0.4
    merge_row: float = 0.6
    agg_row: float = 1.5
    output_row: float = 0.1
    # Hash-join spill: builds larger than this many rows pay an extra
    # pass over both inputs (models the memory->disk transition).
    hash_memory_rows: float = 200_000.0
    spill_row: float = 1.5
    startup: float = 5.0


DEFAULT_COST_PARAMETERS = CostParameters()


class CostModel:
    """Operator cost functions over input/output cardinalities.

    Methods return the *operator's own* cost; callers add children's
    cumulative costs.  Cardinalities are floats (estimated rows).
    """

    def __init__(self, params: CostParameters = DEFAULT_COST_PARAMETERS) -> None:
        self.params = params

    # -- scans ---------------------------------------------------------

    def seq_scan(self, table_rows: float, out_rows: float) -> float:
        """Full scan: read every row, emit the selected ones."""
        p = self.params
        return p.startup + table_rows * p.seq_row + out_rows * p.output_row

    def index_scan(self, table_rows: float, out_rows: float) -> float:
        """B-tree range scan: traverse + fetch only qualifying rows."""
        p = self.params
        lookup = p.index_lookup * max(1.0, math.log2(max(table_rows, 2.0)))
        return p.startup + lookup + out_rows * p.index_row + out_rows * p.output_row

    # -- joins ---------------------------------------------------------

    def nested_loops_join(
        self, outer_rows: float, inner_cost: float, out_rows: float
    ) -> float:
        """Naive nested loops: re-evaluate the inner per outer row."""
        p = self.params
        return (
            p.startup
            + outer_rows * inner_cost * p.nlj_probe_row
            + out_rows * p.output_row
        )

    def index_nested_loops_join(
        self, outer_rows: float, inner_table_rows: float, out_rows: float
    ) -> float:
        """Index nested loops: one index probe per outer row."""
        p = self.params
        probe = p.index_lookup * max(1.0, math.log2(max(inner_table_rows, 2.0)))
        matches_fetch = out_rows * p.index_row
        return (
            p.startup
            + outer_rows * probe * 0.1
            + outer_rows * p.nlj_probe_row
            + matches_fetch
            + out_rows * p.output_row
        )

    def hash_join(
        self, build_rows: float, probe_rows: float, out_rows: float
    ) -> float:
        """Hash join with a memory-spill discontinuity."""
        p = self.params
        cost = (
            p.startup
            + build_rows * p.hash_build_row
            + probe_rows * p.hash_probe_row
            + out_rows * p.output_row
        )
        if build_rows > p.hash_memory_rows:
            cost += (build_rows + probe_rows) * p.spill_row
        return cost

    def merge_join(
        self,
        left_rows: float,
        right_rows: float,
        out_rows: float,
        left_sorted: bool,
        right_sorted: bool,
    ) -> float:
        """Sort-merge join; unsorted inputs pay an n log n sort."""
        p = self.params
        cost = (
            p.startup
            + (left_rows + right_rows) * p.merge_row
            + out_rows * p.output_row
        )
        if not left_sorted:
            cost += self.sort(left_rows)
        if not right_sorted:
            cost += self.sort(right_rows)
        return cost

    # -- unary operators -------------------------------------------------

    def sort(self, rows: float) -> float:
        """``n log n`` sort cost (the super-linear operator of 5.4)."""
        p = self.params
        n = max(rows, 2.0)
        return p.startup + n * math.log2(n) * p.sort_row

    def hash_aggregate(self, in_rows: float, groups: float) -> float:
        p = self.params
        return p.startup + in_rows * p.agg_row + groups * p.output_row

    def stream_aggregate(self, in_rows: float, groups: float) -> float:
        """Aggregation over sorted input: single cheap pass."""
        p = self.params
        return p.startup + in_rows * p.agg_row * 0.4 + groups * p.output_row

    def scalar_aggregate(self, in_rows: float) -> float:
        p = self.params
        return p.startup + in_rows * p.agg_row * 0.3

    # -- dispatch (used by Recost) -----------------------------------------

    def operator_cost(
        self,
        op: PhysicalOp,
        *,
        out_rows: float,
        table_rows: float = 0.0,
        outer_rows: float = 0.0,
        inner_rows: float = 0.0,
        inner_cost: float = 0.0,
        left_sorted: bool = False,
        right_sorted: bool = False,
        groups: float = 0.0,
    ) -> float:
        """Uniform dispatch over the operator vocabulary.

        The Recost pass uses this single entry point so that search-time
        and recost-time costing cannot diverge.
        """
        if op is PhysicalOp.SEQ_SCAN:
            return self.seq_scan(table_rows, out_rows)
        if op is PhysicalOp.INDEX_SCAN:
            return self.index_scan(table_rows, out_rows)
        if op is PhysicalOp.NESTED_LOOPS_JOIN:
            return self.nested_loops_join(outer_rows, inner_cost, out_rows)
        if op is PhysicalOp.INDEX_NESTED_LOOPS_JOIN:
            return self.index_nested_loops_join(outer_rows, table_rows, out_rows)
        if op is PhysicalOp.HASH_JOIN:
            return self.hash_join(outer_rows, inner_rows, out_rows)
        if op is PhysicalOp.MERGE_JOIN:
            return self.merge_join(
                outer_rows, inner_rows, out_rows, left_sorted, right_sorted
            )
        if op is PhysicalOp.SORT:
            return self.sort(outer_rows)
        if op is PhysicalOp.HASH_AGGREGATE:
            return self.hash_aggregate(outer_rows, groups)
        if op is PhysicalOp.STREAM_AGGREGATE:
            return self.stream_aggregate(outer_rows, groups)
        if op is PhysicalOp.SCALAR_AGGREGATE:
            return self.scalar_aggregate(outer_rows)
        raise ValueError(f"unknown operator {op}")
