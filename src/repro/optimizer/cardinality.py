"""Cardinality derivation for plan search and re-costing.

Cardinalities follow the textbook model under the paper's standing
assumptions (section 5.2 footnote): selectivity independence between
base predicates, and join selectivities that stay fixed across query
instances — only the ``d`` parameterized predicate selectivities vary.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..catalog.datagen import fk_join_selectivity
from ..catalog.statistics import DatabaseStatistics
from ..query.expressions import JoinEdge
from ..query.instance import SelectivityVector
from ..query.template import QueryTemplate
from ..selectivity.estimator import SelectivityEstimator

_MIN_CARD = 1e-6


@dataclass(frozen=True)
class BaseTableInfo:
    """Per-table constants the cardinality model precomputes once.

    ``param_indices`` lists the sVector dimensions filtering this table;
    ``fixed_selectivity`` folds all constant predicates.  Re-costing only
    needs these plus the new sVector.
    """

    table: str
    rows: float
    fixed_selectivity: float
    param_indices: tuple[int, ...]

    def cardinality(self, sv: SelectivityVector) -> float:
        card = self.rows * self.fixed_selectivity
        for i in self.param_indices:
            card *= sv[i]
        return max(card, _MIN_CARD)


class CardinalityModel:
    """Derives base and join cardinalities for one query template."""

    def __init__(
        self,
        template: QueryTemplate,
        stats: DatabaseStatistics,
        estimator: SelectivityEstimator,
    ) -> None:
        self.template = template
        self.stats = stats
        self._base: dict[str, BaseTableInfo] = {}
        self._join_sel: dict[JoinEdge, float] = {}
        for table in template.tables:
            fixed_sel = 1.0
            for pred in template.fixed_on(table):
                fixed_sel *= estimator.predicate_selectivity(pred)
            param_idx = tuple(
                template.parameter_index(p) for p in template.predicates_on(table)
            )
            self._base[table] = BaseTableInfo(
                table=table,
                rows=float(stats.row_count(table)),
                fixed_selectivity=max(fixed_sel, 1e-12),
                param_indices=param_idx,
            )
        for edge in template.joins:
            self._join_sel[edge] = self._edge_selectivity(edge)

    def base_info(self, table: str) -> BaseTableInfo:
        return self._base[table]

    def base_cardinality(self, table: str, sv: SelectivityVector) -> float:
        return self._base[table].cardinality(sv)

    def table_rows(self, table: str) -> float:
        return self._base[table].rows

    def join_selectivity(self, edge: JoinEdge) -> float:
        return self._join_sel[edge]

    def join_cardinality(
        self, left_card: float, right_card: float, edges: list[JoinEdge]
    ) -> float:
        """``|L| * |R| * prod(edge selectivities)`` for the connecting edges."""
        card = left_card * right_card
        for edge in edges:
            card *= self._join_sel[edge]
        return max(card, _MIN_CARD)

    def group_count(self, group_table: str, group_column: str, in_rows: float) -> float:
        """Estimated group count: distinct values capped by input rows."""
        distinct = float(self.stats.column(group_table, group_column).distinct_count)
        return max(1.0, min(distinct, in_rows))

    def _edge_selectivity(self, edge: JoinEdge) -> float:
        """Join selectivity for an equi-join edge.

        Foreign-key edges use FK containment (``1/parent_rows``); other
        equi-joins fall back to ``1/max(distinct(l), distinct(r))``.
        """
        schema = self.stats.schema
        fk = schema.foreign_key_between(edge.left.table, edge.right.table)
        if fk is not None:
            cols = {
                (edge.left.table, edge.left.column),
                (edge.right.table, edge.right.column),
            }
            fk_cols = {
                (fk.child_table, fk.child_column),
                (fk.parent_table, fk.parent_column),
            }
            if cols == fk_cols:
                return fk_join_selectivity(schema, fk)
        left_d = self.stats.column(edge.left.table, edge.left.column).distinct_count
        right_d = self.stats.column(edge.right.table, edge.right.column).distinct_count
        return 1.0 / max(left_d, right_d, 1)
