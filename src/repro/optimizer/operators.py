"""Physical operator vocabulary of the optimizer and executor.

The operator set matches the one section 5.4 of the paper analyses for
Bounded Cost Growth: sequential/index scans, nested-loops / hash /
sort-merge joins, sorts, and hash/stream aggregation.  Each operator's
cost shape (linear, ``s1*s2``, ``s1+s2``, ``n log n``) is implemented in
:mod:`repro.optimizer.cost_model`.
"""

from __future__ import annotations

from enum import Enum


class PhysicalOp(Enum):
    """Physical operators the plan search may choose."""

    SEQ_SCAN = "SeqScan"
    INDEX_SCAN = "IndexScan"
    NESTED_LOOPS_JOIN = "NestedLoopsJoin"
    INDEX_NESTED_LOOPS_JOIN = "IndexNestedLoopsJoin"
    HASH_JOIN = "HashJoin"
    MERGE_JOIN = "MergeJoin"
    SORT = "Sort"
    HASH_AGGREGATE = "HashAggregate"
    STREAM_AGGREGATE = "StreamAggregate"
    SCALAR_AGGREGATE = "ScalarAggregate"

    @property
    def is_scan(self) -> bool:
        return self in (PhysicalOp.SEQ_SCAN, PhysicalOp.INDEX_SCAN)

    @property
    def is_join(self) -> bool:
        return self in (
            PhysicalOp.NESTED_LOOPS_JOIN,
            PhysicalOp.INDEX_NESTED_LOOPS_JOIN,
            PhysicalOp.HASH_JOIN,
            PhysicalOp.MERGE_JOIN,
        )

    @property
    def is_aggregate(self) -> bool:
        return self in (
            PhysicalOp.HASH_AGGREGATE,
            PhysicalOp.STREAM_AGGREGATE,
            PhysicalOp.SCALAR_AGGREGATE,
        )
