"""Selectivity estimation: histograms and the sVector API."""

from .estimator import SelectivityEstimator
from .histogram import EquiDepthHistogram

__all__ = ["EquiDepthHistogram", "SelectivityEstimator"]
