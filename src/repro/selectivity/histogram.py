"""Equi-depth histograms over numeric columns.

Histograms drive both directions of the selectivity machinery:

* **forward** — estimate the selectivity of ``col <= v`` / ``col >= v`` /
  ``col == v`` predicates (used by the sVector API and the optimizer's
  cardinality model), and
* **inverse** — given a target selectivity ``s``, find a parameter value
  ``v`` such that ``sel(col <= v) ~= s`` (used by the workload generator
  to place query instances at chosen points of the selectivity space,
  mirroring the paper's bucketized instance generation in section 7.1).

The representation stores *exact* cumulative row counts at the bucket
boundaries (so estimates at boundary values — including heavy point
masses at the domain minimum of skewed columns — are exact) and
interpolates linearly inside buckets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..query.instance import SELECTIVITY_FLOOR

#: A ``(lo, point, hi)`` confidence triple for one predicate's
#: selectivity: the point estimate plus bounds on where the truth lies.
SelectivityInterval = tuple[float, float, float]


@dataclass(frozen=True)
class EquiDepthHistogram:
    """An equi-depth (equi-height) histogram.

    ``boundaries`` is a strictly increasing value array; ``cum[i]`` is
    the exact number of rows with value ``<= boundaries[i]``.  The last
    cumulative count equals ``total``.
    """

    boundaries: np.ndarray
    cum: np.ndarray
    total: int

    @classmethod
    def from_values(cls, values: np.ndarray, buckets: int = 64) -> "EquiDepthHistogram":
        """Build a histogram from raw column values."""
        if len(values) == 0:
            raise ValueError("cannot build a histogram from an empty column")
        sorted_vals = np.sort(values.astype(np.float64))
        total = len(sorted_vals)
        buckets = max(1, min(buckets, total))
        quantiles = np.linspace(0.0, 1.0, buckets + 1)
        boundaries = np.unique(np.quantile(sorted_vals, quantiles))
        if len(boundaries) < 2:
            # Constant column: keep a degenerate one-bucket histogram.
            boundaries = np.array([boundaries[0], boundaries[0] + 1.0])
        cum = np.searchsorted(sorted_vals, boundaries, side="right").astype(np.int64)
        return cls(boundaries=boundaries, cum=cum, total=total)

    @property
    def min_value(self) -> float:
        return float(self.boundaries[0])

    @property
    def max_value(self) -> float:
        return float(self.boundaries[-1])

    @property
    def bucket_count(self) -> int:
        return len(self.boundaries) - 1

    @property
    def depths(self) -> np.ndarray:
        """Rows per region: index 0 is the point mass at the minimum
        boundary, index ``i >= 1`` the rows in ``(b[i-1], b[i]]``."""
        return np.diff(np.concatenate([[0], self.cum]))

    def selectivity_le(self, value: float) -> float:
        """Estimated selectivity of ``col <= value``.

        Exact at bucket boundaries; linear interpolation inside a
        bucket.  Clamped to a tiny positive floor so downstream cost
        ratios stay finite (optimizers never estimate zero rows).
        """
        if value < self.boundaries[0]:
            return self._floor()
        if value >= self.boundaries[-1]:
            return 1.0
        idx = int(np.searchsorted(self.boundaries, value, side="right")) - 1
        lo, hi = self.boundaries[idx], self.boundaries[idx + 1]
        frac = 0.0 if hi == lo else (value - lo) / (hi - lo)
        rows = self.cum[idx] + frac * (self.cum[idx + 1] - self.cum[idx])
        return max(self._floor(), min(1.0, rows / self.total))

    def selectivity_ge(self, value: float) -> float:
        """Estimated selectivity of ``col >= value``."""
        return max(self._floor(), min(1.0, 1.0 - self.selectivity_le(value)
                                      + self._point_mass(value)))

    def selectivity_eq(self, value: float) -> float:
        """Estimated selectivity of ``col == value`` (uniform-in-bucket)."""
        return max(self._floor(), self._point_mass(value))

    def quantile(self, selectivity: float) -> float:
        """Inverse estimate: value ``v`` with ``sel(col <= v) ~= selectivity``.

        The workload generator uses this to turn target selectivities
        into concrete predicate parameters.
        """
        selectivity = min(1.0, max(0.0, selectivity))
        target_rows = selectivity * self.total
        if target_rows <= self.cum[0]:
            return float(self.boundaries[0])
        idx = int(np.searchsorted(self.cum, target_rows, side="left"))
        idx = min(idx, len(self.boundaries) - 1)
        lo_cum, hi_cum = self.cum[idx - 1], self.cum[idx]
        lo, hi = self.boundaries[idx - 1], self.boundaries[idx]
        if hi_cum == lo_cum:
            return float(hi)
        frac = (target_rows - lo_cum) / (hi_cum - lo_cum)
        return float(lo + frac * (hi - lo))

    # -- interval estimates ---------------------------------------------------
    #
    # Two error sources are modelled (DESIGN.md §11):
    #
    # * **bucket resolution** — inside a bucket the true cumulative count
    #   is only known to lie between the two boundary counts, so those
    #   counts are *hard* bounds on ``sel(col <= v)``;
    # * **sample size** — the boundary counts themselves behave like a
    #   count estimate with relative standard error ``~1/sqrt(rows)``;
    #   ``sample_z`` standard errors widen the bucket bounds
    #   multiplicatively (``0`` disables the term, recovering the hard
    #   bucket bounds exactly).

    def interval_le(self, value: float, sample_z: float = 1.0) -> SelectivityInterval:
        """Confidence interval for ``sel(col <= value)``."""
        point = self.selectivity_le(value)
        if value < self.boundaries[0]:
            lo, hi = self._floor(), self._floor()
        elif value >= self.boundaries[-1]:
            lo, hi = 1.0, 1.0
        else:
            idx = int(np.searchsorted(self.boundaries, value, side="right")) - 1
            lo = max(self._floor(), float(self.cum[idx]) / self.total)
            hi = min(1.0, float(self.cum[idx + 1]) / self.total)
        return self._finish_interval(lo, point, hi, sample_z)

    def interval_ge(self, value: float, sample_z: float = 1.0) -> SelectivityInterval:
        """Confidence interval for ``sel(col >= value)``.

        The complement of the ``<=`` bounds, with the (uniform-in-bucket
        estimated) point mass at ``value`` bounded above by the whole
        containing region's mass.
        """
        point = self.selectivity_ge(value)
        lo_le, _, hi_le = self.interval_le(value, sample_z=0.0)
        lo = max(self._floor(), 1.0 - hi_le)
        hi = min(1.0, 1.0 - lo_le + self._region_mass(value))
        return self._finish_interval(lo, point, hi, sample_z)

    def interval_eq(self, value: float, sample_z: float = 1.0) -> SelectivityInterval:
        """Confidence interval for ``sel(col == value)``.

        Uniform-in-bucket gives the point; the truth can be anywhere
        between (almost) nothing and the containing region's whole mass.
        """
        point = self.selectivity_eq(value)
        lo = self._floor()
        hi = max(lo, self._region_mass(value))
        return self._finish_interval(lo, point, hi, sample_z)

    def _finish_interval(
        self, lo: float, point: float, hi: float, sample_z: float
    ) -> SelectivityInterval:
        """Apply the sample-size widening and restore the invariant."""
        if sample_z > 0.0:
            # Relative standard error of a count of ~point*total rows.
            err = sample_z / math.sqrt(max(1.0, point * self.total))
            widen = math.exp(err)
            lo = max(self._floor(), lo / widen)
            hi = min(1.0, hi * widen)
        return min(lo, point), point, max(hi, point)

    def _region_mass(self, value: float) -> float:
        """Total row fraction of the region containing ``value`` — an
        upper bound on the point mass at ``value``."""
        if value < self.boundaries[0] or value > self.boundaries[-1]:
            return 0.0
        if value == self.boundaries[0]:
            return float(self.cum[0]) / self.total
        idx = int(np.searchsorted(self.boundaries, value, side="left")) - 1
        idx = max(0, min(idx, len(self.boundaries) - 2))
        return float(self.cum[idx + 1] - self.cum[idx]) / self.total

    def _point_mass(self, value: float) -> float:
        """Estimated fraction of rows exactly equal to ``value``."""
        if value < self.boundaries[0] or value > self.boundaries[-1]:
            return 0.0
        if value == self.boundaries[0]:
            return float(self.cum[0]) / self.total
        idx = int(np.searchsorted(self.boundaries, value, side="left")) - 1
        idx = max(0, min(idx, len(self.boundaries) - 2))
        lo, hi = self.boundaries[idx], self.boundaries[idx + 1]
        width = max(1.0, hi - lo)
        return float(self.cum[idx + 1] - self.cum[idx]) / (self.total * width)

    def _floor(self) -> float:
        """Smallest selectivity this histogram will ever report."""
        return min(1.0, max(SELECTIVITY_FLOOR, 0.5 / self.total))
