"""Selectivity estimation: the engine's ``sVector`` computation API.

The paper (Appendix B) implements sVector computation by running only
the logical-property phase of the optimizer — predicate selectivities
from statistics — and short-circuiting plan search.  Here that is a
direct histogram lookup per parameterized predicate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..query.expressions import ComparisonOp, FixedPredicate, ParameterizedPredicate
from ..query.instance import (
    SELECTIVITY_FLOOR,
    QueryInstance,
    SelectivityVector,
    UncertainSelectivityVector,
)
from ..query.template import QueryTemplate
from .histogram import SelectivityInterval

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..catalog.statistics import DatabaseStatistics


@dataclass
class SelectivityEstimator:
    """Histogram-backed selectivity estimation for one database."""

    stats: "DatabaseStatistics"

    def predicate_selectivity(
        self, pred: ParameterizedPredicate | FixedPredicate, value: float | None = None
    ) -> float:
        """Selectivity of a predicate; ``value`` binds a parameterized one."""
        if isinstance(pred, FixedPredicate):
            bound = pred.value
        else:
            if value is None:
                raise ValueError("parameterized predicate needs a bound value")
            bound = value
        hist = self.stats.column(pred.column.table, pred.column.column).histogram
        if pred.op is ComparisonOp.LE:
            return hist.selectivity_le(bound)
        if pred.op is ComparisonOp.GE:
            return hist.selectivity_ge(bound)
        return hist.selectivity_eq(bound)

    def selectivity_vector(
        self, template: QueryTemplate, instance: QueryInstance
    ) -> SelectivityVector:
        """Compute the instance's selectivity vector.

        If the instance carries explicit parameter bindings, selectivities
        are estimated from histograms.  Synthetic instances that already
        carry a selectivity vector (and no parameters) pass it through —
        this mirrors workloads defined directly in selectivity space.
        """
        if not instance.parameters:
            if instance.sv is not None:
                return instance.sv
            raise ValueError(
                f"instance of {template.name} has neither parameters nor "
                "a selectivity vector"
            )
        if len(instance.parameters) != template.dimensions:
            raise ValueError(
                f"instance binds {len(instance.parameters)} parameters but "
                f"template {template.name} has d={template.dimensions}"
            )
        sels = [
            self.predicate_selectivity(pred, value)
            for pred, value in zip(template.parameterized, instance.parameters)
        ]
        return SelectivityVector.from_sequence(sels)

    def predicate_selectivity_interval(
        self,
        pred: ParameterizedPredicate | FixedPredicate,
        value: float | None = None,
        sample_z: float = 1.0,
    ) -> SelectivityInterval:
        """``(lo, point, hi)`` confidence triple for one predicate.

        The interval combines the histogram's bucket-resolution bounds
        (hard) with a sample-size term (``sample_z`` standard errors;
        see :meth:`EquiDepthHistogram.interval_le`).
        """
        if isinstance(pred, FixedPredicate):
            bound = pred.value
        else:
            if value is None:
                raise ValueError("parameterized predicate needs a bound value")
            bound = value
        hist = self.stats.column(pred.column.table, pred.column.column).histogram
        if pred.op is ComparisonOp.LE:
            return hist.interval_le(bound, sample_z=sample_z)
        if pred.op is ComparisonOp.GE:
            return hist.interval_ge(bound, sample_z=sample_z)
        return hist.interval_eq(bound, sample_z=sample_z)

    def selectivity_vector_with_error(
        self,
        template: QueryTemplate,
        instance: QueryInstance,
        sample_z: float = 1.0,
    ) -> UncertainSelectivityVector:
        """The instance's sVector with per-dimension confidence bounds.

        Synthetic instances that specify selectivities directly (no
        parameters to estimate from histograms) carry no estimation
        error and get a zero-width box.
        """
        if not instance.parameters:
            return UncertainSelectivityVector.exact(
                self.selectivity_vector(template, instance)
            )
        if len(instance.parameters) != template.dimensions:
            raise ValueError(
                f"instance binds {len(instance.parameters)} parameters but "
                f"template {template.name} has d={template.dimensions}"
            )
        bounds = [
            self.predicate_selectivity_interval(pred, value, sample_z=sample_z)
            for pred, value in zip(template.parameterized, instance.parameters)
        ]
        return UncertainSelectivityVector.from_bounds(bounds)

    def parameters_for_selectivities(
        self, template: QueryTemplate, targets: SelectivityVector
    ) -> tuple[float, ...]:
        """Inverse mapping: parameter values achieving target selectivities.

        For ``col <= ?`` the histogram quantile gives the value directly;
        for ``col >= ?`` we invert the complement.  Equality predicates
        are placed at the quantile point (best effort).  This closes the
        loop for workload generation: selectivities chosen in the
        bucketized space become concrete query parameters.
        """
        if len(targets) != template.dimensions:
            raise ValueError("target vector dimension mismatch")
        params: list[float] = []
        for pred, s in zip(template.parameterized, targets):
            hist = self.stats.column(pred.column.table, pred.column.column).histogram
            if pred.op is ComparisonOp.LE:
                params.append(hist.quantile(s))
            elif pred.op is ComparisonOp.GE:
                params.append(hist.quantile(1.0 - s))
            else:
                params.append(hist.quantile(s))
        return tuple(params)

    def table_filter_selectivity(
        self,
        template: QueryTemplate,
        table: str,
        sv: SelectivityVector,
    ) -> float:
        """Combined selectivity of all predicates on ``table``.

        Applies the paper's standing assumption of selectivity
        independence between base predicates: selectivities multiply.
        Parameterized predicate selectivities come from the instance's
        sVector, fixed ones from histograms.
        """
        sel = 1.0
        for pred in template.predicates_on(table):
            sel *= sv[template.parameter_index(pred)]
        for fixed in template.fixed_on(table):
            sel *= self.predicate_selectivity(fixed)
        # Product of per-predicate selectivities, each already floored at
        # SELECTIVITY_FLOOR — the combined floor is the two-predicate
        # product, not another ad-hoc epsilon.
        return max(sel, SELECTIVITY_FLOOR ** 2)
