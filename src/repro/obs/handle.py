"""The single injectable :class:`Observability` handle.

One object carries everything the layers need — the metrics registry,
the span recorder, the guarantee audit trail and the clock — so wiring
observability through a manager is one constructor argument, and
turning it off is passing ``None`` (every instrumented call site guards
with ``if obs is not None``, which keeps the uninstrumented hot path at
one attribute check).

:class:`EngineInstruments` pre-resolves the labeled metric children an
engine's hot path updates, so instrumented calls do one dict-free
``inc()``/``observe()`` instead of a labels lookup per call.
"""

from __future__ import annotations

from typing import Optional

from .audit import GuaranteeAudit
from .clock import Clock, SYSTEM_CLOCK
from .registry import LATENCY_BUCKETS, MetricsRegistry
from .spans import DEFAULT_SPAN_CAPACITY, SpanRecorder

ENGINE_CALL_SECONDS = "repro_engine_call_seconds"
ENGINE_FAULTS = "repro_engine_faults_total"
ENGINE_RETRIES = "repro_engine_retries_total"
ENGINE_DEGRADED = "repro_engine_degraded_total"
BREAKER_TRANSITIONS = "repro_breaker_transitions_total"
BREAKER_OPEN = "repro_breaker_open"
SPAN_SINK_ERRORS = "repro_span_sink_errors_total"
CALIBRATION_GAPS = "repro_calibration_feed_gaps_total"

_APIS = ("optimize", "recost", "selectivity")


class Observability:
    """Registry + spans + audit + clock behind one handle."""

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        clock: Clock = SYSTEM_CLOCK,
        span_capacity: int = DEFAULT_SPAN_CAPACITY,
        spans_enabled: bool = True,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.clock = clock
        self.spans = SpanRecorder(
            capacity=span_capacity, clock=clock, enabled=spans_enabled
        )
        self.spans.sink_error_counter = self.registry.counter(
            SPAN_SINK_ERRORS,
            "Span sink callbacks that raised (isolated from the hot path)",
        ).labels()
        self.audit = GuaranteeAudit(self.registry)
        from .calibration import CalibrationTracker

        self.calibration = CalibrationTracker(self.registry, spans=self.spans)
        self.slo = None  # attached via attach_slo()

    # Convenience delegates so call sites read naturally.

    def counter(self, name: str, help: str = "", labels=()):
        return self.registry.counter(name, help, labels=labels)

    def gauge(self, name: str, help: str = "", labels=()):
        return self.registry.gauge(name, help, labels=labels)

    def histogram(self, name: str, help: str = "", labels=(),
                  buckets=LATENCY_BUCKETS):
        return self.registry.histogram(name, help, labels=labels,
                                       buckets=buckets)

    def span(self, name: str, **attrs):
        return self.spans.span(name, **attrs)

    def prometheus(self) -> str:
        from .exporters import to_prometheus

        return to_prometheus(self.registry)

    def attach_slo(self, objectives=None, clock: Optional[Clock] = None,
                   min_interval_s: float = 0.0):
        """Attach an SLO burn-rate evaluator over this registry.

        Idempotent-ish: replaces any previous evaluator.  Returns the
        :class:`~repro.obs.slo.SloEvaluator`.
        """
        from .slo import SloEvaluator, default_objectives

        self.slo = SloEvaluator(
            objectives if objectives is not None else default_objectives(),
            registry=self.registry,
            clock=clock if clock is not None else self.clock,
            min_interval_s=min_interval_s,
        )
        return self.slo

    def report(self) -> dict[str, object]:
        """One JSON-serializable snapshot: outcomes, violations, spans."""
        report: dict[str, object] = {
            "outcomes": self.audit.outcome_totals(),
            "certificates": self.audit.certificate_totals(),
            "lambda_violations": self.audit.total_violations,
            "violation_events": list(self.audit.violation_events),
            "spans_recorded": self.spans.total_recorded,
            "spans_dropped": self.spans.dropped,
            "span_sink_errors": self.spans.sink_errors,
            "calibration": self.calibration.report(),
            "metrics": self.registry.snapshot(),
        }
        if self.slo is not None:
            self.slo.evaluate()
            report["slo"] = self.slo.report()
        return report


class EngineInstruments:
    """Pre-resolved metric children for one template's engine.

    Created when an :class:`Observability` handle is attached to an
    :class:`~repro.engine.api.EngineAPI`; the engine and its resilience
    wrapper update these on the hot path.
    """

    def __init__(self, obs: Observability, template: str) -> None:
        self.obs = obs
        registry = obs.registry
        call_seconds = registry.histogram(
            ENGINE_CALL_SECONDS,
            "Engine API call latency by template and api",
            labels=("template", "api"),
            buckets=LATENCY_BUCKETS,
        )
        faults = registry.counter(
            ENGINE_FAULTS, "Engine API call failures", labels=("template", "api")
        )
        degraded = registry.counter(
            ENGINE_DEGRADED,
            "Fallback answers served instead of live engine results",
            labels=("template", "api"),
        )
        self.call_seconds = {
            api: call_seconds.labels(template=template, api=api)
            for api in _APIS
        }
        self.faults = {
            api: faults.labels(template=template, api=api) for api in _APIS
        }
        self.degraded = {
            api: degraded.labels(template=template, api=api) for api in _APIS
        }
        # Degraded answers are constructed locally (stale-inflated
        # vectors, fail-closed costs) and never reach the raw engine's
        # calibration feeds — count the resulting observation gaps so
        # the doctor can qualify a template's calibration coverage.
        feed_gaps = registry.counter(
            CALIBRATION_GAPS,
            "Responses whose degraded engine answers bypassed the "
            "calibration feeds",
            labels=("template", "api"),
        )
        self.feed_gaps = {
            api: feed_gaps.labels(template=template, api=api) for api in _APIS
        }
        self.retries = registry.counter(
            ENGINE_RETRIES, "Engine call retries", labels=("template",)
        ).labels(template=template)
        self._breaker_transitions = registry.counter(
            BREAKER_TRANSITIONS,
            "Recost circuit-breaker state transitions",
            labels=("template", "transition"),
        )
        self.breaker_open = registry.gauge(
            BREAKER_OPEN,
            "1 while the template's recost breaker is open",
            labels=("template",),
        ).labels(template=template)
        # Per-template calibration handle: the engine feeds each
        # computed sVector to the selectivity-drift detector (degraded
        # fallback vectors never reach the raw engine, so they are
        # excluded automatically).
        self.calibration = obs.calibration.template(template)
        self.template = template

    def breaker_transition(self, transition: str) -> None:
        self._breaker_transitions.labels(
            template=self.template, transition=transition
        ).inc()
        if transition.endswith("->open"):
            self.breaker_open.set(1)
        elif transition.endswith("->closed"):
            self.breaker_open.set(0)


def base_engine(engine):
    """Unwrap delegating engine facades to the raw :class:`EngineAPI`.

    Wrappers compose via ``inner`` (resilience, fault injection) or
    ``_inner`` (simulated latency); the raw engine is where call timing
    lives, so that is where instruments are attached.
    """
    seen = set()
    while id(engine) not in seen:
        seen.add(id(engine))
        nxt = getattr(engine, "inner", None)
        if nxt is None:
            nxt = getattr(engine, "_inner", None)
        if nxt is None:
            return engine
        engine = nxt
    return engine


def instrument_engine(engine, obs: Observability):
    """Attach ``obs`` to an engine stack; returns the instruments.

    Idempotent per engine: re-attaching the same handle reuses the
    existing instruments (metric children are shared anyway).
    """
    base = base_engine(engine)
    existing = getattr(base, "instruments", None)
    if existing is not None and existing.obs is obs:
        return existing
    instruments = EngineInstruments(obs, base.template.name)
    base.obs = obs
    base.instruments = instruments
    return instruments
