"""The runtime guarantee audit trail.

SCR's contract (Theorem 1) is that every *certified* response satisfies
``SO(q) <= λ``; PRs 1–3 could only demonstrate that offline, by
re-costing served plans against an oracle after the run.  This module
makes the guarantee auditable live:

* every response increments **exactly one outcome counter** —
  ``certified`` / ``uncertified`` / ``shed`` — labeled by template (and
  by reason for the degraded outcomes);
* every certified response records the bound the checks actually
  verified (``S·G·L`` or ``S·R·L``) in a histogram, so an operator can
  watch how tight the served certificates are;
* a certified bound that exceeds the λ in force at decision time — a
  thing the algebra says cannot happen, so its occurrence means a bug
  or a violated BCG assumption — increments a **λ-violation counter**
  and captures a bounded log of violation details the moment it
  happens, instead of waiting for an offline oracle pass.
"""

from __future__ import annotations

import threading
from typing import Optional, Sequence

from .registry import BOUND_BUCKETS, MetricsRegistry

#: Tolerance matching the harness's violation accounting
#: (:meth:`SequenceResult.certified_violations`).
VIOLATION_EPSILON = 1e-9

#: The three outcome labels every served response maps onto.
OUTCOMES = ("certified", "uncertified", "shed")

#: Certificate kinds a served response may carry, exactly one each:
#: ``exact`` (point checks / exactly known selectivities), ``robust``
#: (bound holds for every sVector in a hard uncertainty box),
#: ``probabilistic`` (holds with probability ≥ the claimed coverage),
#: ``uncertified`` (degraded: no bound verified) and ``shed``.
CERT_KINDS = ("exact", "robust", "probabilistic", "uncertified", "shed")

RESPONSES_TOTAL = "repro_responses_total"
CERTIFIED_BOUND = "repro_certified_bound"
LAMBDA_VIOLATIONS = "repro_lambda_violations_total"
DEGRADED_REASONS = "repro_degraded_total"
CERTIFICATES_TOTAL = "repro_certificates_total"
INTERVAL_LOG_WIDTH = "repro_interval_log_width"

#: Buckets for per-dimension-summed interval log widths; ``ln(hi/lo)``
#: sums rarely exceed a few nats even for coarse histograms.
WIDTH_BUCKETS = (0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0)


class GuaranteeAudit:
    """Outcome accounting plus λ-violation flagging over one registry."""

    def __init__(
        self,
        registry: MetricsRegistry,
        bound_buckets: Sequence[float] = BOUND_BUCKETS,
        max_violation_events: int = 256,
    ) -> None:
        self.registry = registry
        self._responses = registry.counter(
            RESPONSES_TOTAL,
            "Served responses by template and guarantee outcome",
            labels=("template", "outcome"),
        )
        self._bounds = registry.histogram(
            CERTIFIED_BOUND,
            "Certified sub-optimality bounds (S*G*L or S*R*L) per response",
            labels=("template",),
            buckets=bound_buckets,
        )
        self._violations = registry.counter(
            LAMBDA_VIOLATIONS,
            "Certified bounds that exceeded the lambda in force (must stay 0)",
            labels=("template", "kind"),
        )
        self._degraded = registry.counter(
            DEGRADED_REASONS,
            "Degraded (uncertified/shed) responses by reason code",
            labels=("template", "outcome", "reason"),
        )
        self._certificates = registry.counter(
            CERTIFICATES_TOTAL,
            "Served responses by certificate kind (exactly one per response)",
            labels=("template", "kind"),
        )
        self._widths = registry.histogram(
            INTERVAL_LOG_WIDTH,
            "Total log-width of served instances' selectivity uncertainty boxes",
            labels=("template",),
            buckets=WIDTH_BUCKETS,
        )
        self.max_violation_events = max_violation_events
        self._lock = threading.Lock()
        self.violation_events: list[dict] = []

    # -- per-response entry points -------------------------------------------

    def response(self, template: str, outcome: str) -> None:
        """Count one response; ``outcome`` must be an :data:`OUTCOMES`."""
        if outcome not in OUTCOMES:
            raise ValueError(f"unknown outcome {outcome!r}; use {OUTCOMES}")
        self._responses.labels(template=template, outcome=outcome).inc()

    def outcome_children(self, template: str) -> dict:
        """Pre-resolved ``{outcome: counter child}`` for one template —
        the hot serving path increments these directly instead of paying
        a labels lookup per response."""
        return {
            outcome: self._responses.labels(template=template, outcome=outcome)
            for outcome in OUTCOMES
        }

    def certificate(self, template: str, kind: str) -> None:
        """Count one response's certificate kind (exactly one per
        response; see :data:`CERT_KINDS`)."""
        if kind not in CERT_KINDS:
            raise ValueError(f"unknown certificate kind {kind!r}; use {CERT_KINDS}")
        self._certificates.labels(template=template, kind=kind).inc()

    def certificate_children(self, template: str) -> dict:
        """Pre-resolved ``{kind: counter child}`` for one template."""
        return {
            kind: self._certificates.labels(template=template, kind=kind)
            for kind in CERT_KINDS
        }

    def interval_width(self, template: str, log_width: float) -> None:
        """Record one served instance's uncertainty-box total log width."""
        self._widths.labels(template=template).observe(log_width)

    def width_child(self, template: str):
        """Pre-resolved histogram child for :meth:`interval_width`."""
        return self._widths.labels(template=template)

    def degraded(self, template: str, outcome: str, reason: str) -> None:
        """Reason-code accounting for an uncertified or shed response.
        (The outcome counter itself is bumped by :meth:`response` —
        callers use both so the identity 'one outcome per response'
        stays exact while reasons stay queryable.)"""
        self._degraded.labels(
            template=template, outcome=outcome, reason=reason or "unknown"
        ).inc()

    def certified_bound(
        self,
        template: str,
        bound: float,
        lam: float,
        seq: Optional[int] = None,
        kind: str = "exact",
    ) -> bool:
        """Record one certified bound against the λ in force.

        Returns True when the bound violated λ (and was flagged) —
        which, per Theorem 1, never happens unless an implementation
        bug or a BCG-assumption violation slipped through.  ``kind``
        labels any flagged violation with the certificate kind whose
        claim was broken.
        """
        self._bounds.labels(template=template).observe(bound)
        if bound <= lam * (1.0 + VIOLATION_EPSILON):
            return False
        self._violations.labels(template=template, kind=kind).inc()
        with self._lock:
            if len(self.violation_events) < self.max_violation_events:
                self.violation_events.append({
                    "template": template,
                    "bound": bound,
                    "lambda": lam,
                    "seq": seq,
                    "kind": kind,
                })
        return True

    # -- report-side reads ---------------------------------------------------

    def outcome_totals(self, template: Optional[str] = None) -> dict[str, int]:
        """``{outcome: count}`` across (or for one) template."""
        totals = {}
        for outcome in OUTCOMES:
            if template is None:
                value = self.registry.total(RESPONSES_TOTAL, outcome=outcome)
            else:
                value = self.registry.value(
                    RESPONSES_TOTAL, template=template, outcome=outcome
                )
            totals[outcome] = int(value)
        return totals

    def certificate_totals(self, template: Optional[str] = None) -> dict[str, int]:
        """``{kind: count}`` across (or for one) template."""
        totals = {}
        for kind in CERT_KINDS:
            if template is None:
                value = self.registry.total(CERTIFICATES_TOTAL, kind=kind)
            else:
                value = self.registry.value(
                    CERTIFICATES_TOTAL, template=template, kind=kind
                )
            totals[kind] = int(value)
        return totals

    @property
    def total_responses(self) -> int:
        return sum(self.outcome_totals().values())

    @property
    def total_violations(self) -> int:
        return int(self.registry.total(LAMBDA_VIOLATIONS))

    @property
    def zero_violations(self) -> bool:
        """The live statement of Theorem 1 holding so far."""
        return self.total_violations == 0
