"""``repro.obs`` — the unified observability layer.

A dependency-free metrics registry (counters, gauges, histograms),
decision spans for the SCR pipeline, a runtime guarantee audit trail,
and exporters (Prometheus text exposition, JSONL span streaming), all
hanging off one injectable :class:`Observability` handle.
"""

from .audit import (
    CERTIFIED_BOUND,
    DEGRADED_REASONS,
    LAMBDA_VIOLATIONS,
    OUTCOMES,
    RESPONSES_TOTAL,
    VIOLATION_EPSILON,
    GuaranteeAudit,
)
from .clock import SYSTEM_CLOCK, Clock, FakeClock, as_clock
from .exporters import (
    JsonlWriter,
    snapshot_rows,
    to_prometheus,
    write_spans_jsonl,
    write_trace_jsonl,
)
from .handle import (
    BREAKER_OPEN,
    BREAKER_TRANSITIONS,
    ENGINE_CALL_SECONDS,
    ENGINE_DEGRADED,
    ENGINE_FAULTS,
    ENGINE_RETRIES,
    EngineInstruments,
    Observability,
    base_engine,
    instrument_engine,
)
from .registry import (
    BOUND_BUCKETS,
    DEFAULT_MAX_SERIES,
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    LabelCardinalityError,
    MetricFamily,
    MetricsRegistry,
)
from .spans import DEFAULT_SPAN_CAPACITY, Span, SpanRecorder

__all__ = [
    "BOUND_BUCKETS",
    "BREAKER_OPEN",
    "BREAKER_TRANSITIONS",
    "CERTIFIED_BOUND",
    "Clock",
    "Counter",
    "DEFAULT_MAX_SERIES",
    "DEFAULT_SPAN_CAPACITY",
    "DEGRADED_REASONS",
    "ENGINE_CALL_SECONDS",
    "ENGINE_DEGRADED",
    "ENGINE_FAULTS",
    "ENGINE_RETRIES",
    "EngineInstruments",
    "FakeClock",
    "Gauge",
    "GuaranteeAudit",
    "Histogram",
    "JsonlWriter",
    "LAMBDA_VIOLATIONS",
    "LATENCY_BUCKETS",
    "LabelCardinalityError",
    "MetricFamily",
    "MetricsRegistry",
    "OUTCOMES",
    "Observability",
    "RESPONSES_TOTAL",
    "SYSTEM_CLOCK",
    "Span",
    "SpanRecorder",
    "VIOLATION_EPSILON",
    "as_clock",
    "base_engine",
    "instrument_engine",
    "snapshot_rows",
    "to_prometheus",
    "write_spans_jsonl",
    "write_trace_jsonl",
]
