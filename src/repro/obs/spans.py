"""Lightweight decision spans for the SCR pipeline and engine calls.

A span is one timed phase of serving a query instance — the
selectivity check, the cost check, an optimizer call, the redundancy
check — with a small attribute bag (template, outcome, counts).  Spans
answer the question metrics aggregates can't: *where did this
particular response spend its time, and which check decided it?*

Spans carry the causal triple (``trace_id``/``span_id``/``parent_id``)
filled from the ambient :mod:`~repro.obs.tracectx` context, so every
phase of one request — across threads and, via
:meth:`SpanRecorder.ingest`, across processes — links into a single
tree under one trace ID.  Recording outside any trace context leaves
the IDs empty, which keeps old flat-span call sites valid.

The recorder is a bounded ring buffer (the same discipline as the
fixed :class:`~repro.engine.tracing.TraceLog`): a serving process
emitting spans forever must not grow without bound, so old spans are
dropped and counted instead.  Sinks receive every span as it
completes (how the JSONL streaming exporter and the per-trace
collector hook in), and a raising sink is isolated from the
instrumented hot path: errors are counted and a sink that fails
:data:`SINK_DETACH_AFTER` consecutive times is detached.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Optional

from .clock import Clock, SYSTEM_CLOCK
from .tracectx import (
    IdSource,
    TraceContext,
    activate,
    child_context,
    current_context,
)

#: Default ring capacity; ~100 bytes/span keeps this comfortably small.
DEFAULT_SPAN_CAPACITY = 16384

#: A live sink that raises this many times in a row is detached.
SINK_DETACH_AFTER = 8


@dataclass(frozen=True)
class Span:
    """One completed timed phase."""

    name: str
    seq: int
    start_s: float
    duration_s: float
    attrs: dict = field(default_factory=dict)
    trace_id: str = ""
    span_id: str = ""
    parent_id: str = ""

    def to_jsonable(self, include_timing: bool = True) -> dict:
        """One JSONL row.  Timing can be excluded for byte-reproducible
        golden fixtures of deterministic runs (same convention as
        :meth:`TraceLog.to_jsonable`).  The causal IDs are emitted only
        when set, so untraced spans keep the v1 row shape."""
        row: dict = {"span": self.name, "seq": self.seq}
        if self.trace_id:
            row["trace_id"] = self.trace_id
        if self.span_id:
            row["span_id"] = self.span_id
        if self.parent_id:
            row["parent_id"] = self.parent_id
        if include_timing:
            row["start_s"] = round(self.start_s, 9)
            row["duration_s"] = round(self.duration_s, 9)
        if self.attrs:
            row["attrs"] = {
                k: self.attrs[k] for k in sorted(self.attrs)
            }
        return row

    @classmethod
    def from_jsonable(cls, row: dict) -> "Span":
        """Rebuild a span from a JSONL row (the cross-process path:
        worker spans ride Response messages as jsonable dicts and are
        re-ingested on the supervisor)."""
        return cls(
            name=row.get("span", ""),
            seq=int(row.get("seq", 0)),
            start_s=float(row.get("start_s", 0.0)),
            duration_s=float(row.get("duration_s", 0.0)),
            attrs=dict(row.get("attrs", {})),
            trace_id=row.get("trace_id", ""),
            span_id=row.get("span_id", ""),
            parent_id=row.get("parent_id", ""),
        )


class SpanRecorder:
    """Thread-safe bounded recorder of :class:`Span` events.

    ``enabled=False`` makes every operation a near-free no-op, so the
    instrumented hot paths cost one attribute check when spans are off.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_SPAN_CAPACITY,
        clock: Clock = SYSTEM_CLOCK,
        enabled: bool = True,
    ) -> None:
        if capacity < 1:
            raise ValueError("span capacity must be >= 1")
        self.capacity = capacity
        self.clock = clock
        self.enabled = enabled
        self._lock = threading.Lock()
        self._ring: list[Optional[Span]] = []
        self._start = 0           # ring read position once saturated
        self._next_seq = 0
        self.dropped = 0
        self._sinks: list[Callable[[Span], None]] = []
        self._sink_failstreak: dict[int, int] = {}
        self.sink_errors = 0
        self.sinks_detached = 0
        #: Optional counter child bumped per sink error
        #: (``repro_span_sink_errors_total``, attached by Observability).
        self.sink_error_counter = None
        #: ID source for child spans made by :meth:`span`; tests set a
        #: seeded :class:`IdSource` for deterministic golden fixtures.
        self.ids: Optional[IdSource] = None

    def attach_sink(self, sink: Callable[[Span], None]) -> None:
        """Stream every subsequently recorded span to ``sink`` too."""
        with self._lock:
            self._sinks.append(sink)
            self._sink_failstreak[id(sink)] = 0

    def detach_sink(self, sink: Callable[[Span], None]) -> None:
        with self._lock:
            self._detach_locked(sink)

    def _detach_locked(self, sink: Callable[[Span], None]) -> None:
        try:
            self._sinks.remove(sink)
        except ValueError:
            return
        self._sink_failstreak.pop(id(sink), None)
        self.sinks_detached += 1

    def _emit(self, span: Span, sinks: list) -> None:
        """Feed sinks outside the ring lock, isolating failures.

        A sink raising must never break the serving path it observes;
        one that raises :data:`SINK_DETACH_AFTER` times in a row is
        assumed wedged (closed file, dead socket) and detached.
        """
        for sink in sinks:
            try:
                sink(span)
            except Exception:
                with self._lock:
                    self.sink_errors += 1
                    streak = self._sink_failstreak.get(id(sink), 0) + 1
                    self._sink_failstreak[id(sink)] = streak
                    if streak >= SINK_DETACH_AFTER:
                        self._detach_locked(sink)
                counter = self.sink_error_counter
                if counter is not None:
                    counter.inc()
            else:
                if self._sink_failstreak.get(id(sink), 0):
                    with self._lock:
                        if id(sink) in self._sink_failstreak:
                            self._sink_failstreak[id(sink)] = 0

    def record(
        self,
        name: str,
        start_s: float,
        duration_s: float,
        span_id: Optional[str] = None,
        **attrs: object,
    ) -> Optional[Span]:
        """Record one completed span.

        The causal IDs come from the ambient trace context: a span
        recorded inside ``activate(ctx)`` gets ``ctx.trace_id`` and
        parents under ``ctx.span_id``.  Pass ``span_id`` explicitly for
        the span that *is* the context — the request-level span whose
        ID the children already parented under.
        """
        if not self.enabled:
            return None
        ctx = current_context()
        if ctx is not None:
            trace_id = ctx.trace_id
            if span_id is not None:
                sid, parent = span_id, ctx.parent_id
            else:
                sid, parent = "", ctx.span_id
        else:
            trace_id, sid, parent = "", span_id or "", ""
        with self._lock:
            span = Span(
                name=name, seq=self._next_seq, start_s=start_s,
                duration_s=duration_s, attrs=attrs,
                trace_id=trace_id, span_id=sid, parent_id=parent,
            )
            self._next_seq += 1
            if len(self._ring) < self.capacity:
                self._ring.append(span)
            else:
                self._ring[self._start] = span
                self._start = (self._start + 1) % self.capacity
                self.dropped += 1
            sinks = list(self._sinks)
        self._emit(span, sinks)
        return span

    def ingest(self, span: Span) -> Optional[Span]:
        """Adopt a span recorded elsewhere (another process), keeping
        its causal IDs and timing but assigning a local sequence."""
        if not self.enabled:
            return None
        with self._lock:
            local = Span(
                name=span.name, seq=self._next_seq, start_s=span.start_s,
                duration_s=span.duration_s, attrs=span.attrs,
                trace_id=span.trace_id, span_id=span.span_id,
                parent_id=span.parent_id,
            )
            self._next_seq += 1
            if len(self._ring) < self.capacity:
                self._ring.append(local)
            else:
                self._ring[self._start] = local
                self._start = (self._start + 1) % self.capacity
                self.dropped += 1
            sinks = list(self._sinks)
        self._emit(local, sinks)
        return local

    @contextmanager
    def span(self, name: str, **attrs: object):
        """Time a block; extra attributes can be added to the yielded
        dict (it is merged into the span's attrs on exit).

        Inside a trace context, the block runs under a *child* context
        whose span ID belongs to this span — nested spans (engine
        calls, inner phases) parent under it automatically.
        """
        if not self.enabled:
            yield attrs
            return
        ambient = current_context()
        start = self.clock.perf_counter()
        if ambient is None:
            try:
                yield attrs
            finally:
                self.record(
                    name, start, self.clock.perf_counter() - start, **attrs
                )
        else:
            ctx = ambient.child(self.ids)
            try:
                with activate(ctx):
                    yield attrs
            finally:
                with activate(ctx):
                    self.record(
                        name, start, self.clock.perf_counter() - start,
                        span_id=ctx.span_id, **attrs,
                    )

    def spans(self) -> list[Span]:
        """Retained spans, oldest first."""
        with self._lock:
            return self._ring[self._start:] + self._ring[:self._start]

    def trace(self, trace_id: str) -> list[Span]:
        """Retained spans belonging to one trace, oldest first."""
        return [s for s in self.spans() if s.trace_id == trace_id]

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    @property
    def total_recorded(self) -> int:
        with self._lock:
            return self._next_seq

    def clear(self) -> None:
        with self._lock:
            self._ring = []
            self._start = 0
            self.dropped = 0


class TraceCollector:
    """A sink bucketing spans by trace ID for per-request shipping.

    Workers attach one of these so a finished request's spans can be
    popped and ridden back to the supervisor on the Response.  Bounded:
    at most ``max_traces`` traces and ``max_spans_per_trace`` spans per
    trace are retained (oldest traces evicted first), so an
    orphaned trace can't grow the worker without limit.
    """

    def __init__(
        self, max_traces: int = 1024, max_spans_per_trace: int = 256
    ) -> None:
        self.max_traces = max_traces
        self.max_spans_per_trace = max_spans_per_trace
        self._lock = threading.Lock()
        self._traces: dict[str, list[Span]] = {}
        self.evicted_traces = 0
        self.dropped_spans = 0

    def __call__(self, span: Span) -> None:
        if not span.trace_id:
            return
        with self._lock:
            bucket = self._traces.get(span.trace_id)
            if bucket is None:
                while len(self._traces) >= self.max_traces:
                    oldest = next(iter(self._traces))
                    del self._traces[oldest]
                    self.evicted_traces += 1
                bucket = self._traces[span.trace_id] = []
            if len(bucket) >= self.max_spans_per_trace:
                self.dropped_spans += 1
                return
            bucket.append(span)

    def pop(self, trace_id: str) -> list[Span]:
        """Remove and return one trace's spans (empty if unknown)."""
        with self._lock:
            return self._traces.pop(trace_id, [])

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)


__all__ = [
    "DEFAULT_SPAN_CAPACITY",
    "SINK_DETACH_AFTER",
    "Span",
    "SpanRecorder",
    "TraceCollector",
    "TraceContext",
    "child_context",
]
