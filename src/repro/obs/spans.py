"""Lightweight decision spans for the SCR pipeline and engine calls.

A span is one timed phase of serving a query instance — the
selectivity check, the cost check, an optimizer call, the redundancy
check — with a small attribute bag (template, outcome, counts).  Spans
answer the question metrics aggregates can't: *where did this
particular response spend its time, and which check decided it?*

The recorder is a bounded ring buffer (the same discipline as the
fixed :class:`~repro.engine.tracing.TraceLog`): a serving process
emitting spans forever must not grow without bound, so old spans are
dropped and counted instead.  An optional sink receives every span as
it completes, which is how the JSONL streaming exporter hooks in.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Optional

from .clock import Clock, SYSTEM_CLOCK

#: Default ring capacity; ~100 bytes/span keeps this comfortably small.
DEFAULT_SPAN_CAPACITY = 16384


@dataclass(frozen=True)
class Span:
    """One completed timed phase."""

    name: str
    seq: int
    start_s: float
    duration_s: float
    attrs: dict = field(default_factory=dict)

    def to_jsonable(self, include_timing: bool = True) -> dict:
        """One JSONL row.  Timing can be excluded for byte-reproducible
        golden fixtures of deterministic runs (same convention as
        :meth:`TraceLog.to_jsonable`)."""
        row: dict = {"span": self.name, "seq": self.seq}
        if include_timing:
            row["start_s"] = round(self.start_s, 9)
            row["duration_s"] = round(self.duration_s, 9)
        if self.attrs:
            row["attrs"] = {
                k: self.attrs[k] for k in sorted(self.attrs)
            }
        return row


class SpanRecorder:
    """Thread-safe bounded recorder of :class:`Span` events.

    ``enabled=False`` makes every operation a near-free no-op, so the
    instrumented hot paths cost one attribute check when spans are off.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_SPAN_CAPACITY,
        clock: Clock = SYSTEM_CLOCK,
        enabled: bool = True,
    ) -> None:
        if capacity < 1:
            raise ValueError("span capacity must be >= 1")
        self.capacity = capacity
        self.clock = clock
        self.enabled = enabled
        self._lock = threading.Lock()
        self._ring: list[Optional[Span]] = []
        self._start = 0           # ring read position once saturated
        self._next_seq = 0
        self.dropped = 0
        self._sinks: list[Callable[[Span], None]] = []

    def attach_sink(self, sink: Callable[[Span], None]) -> None:
        """Stream every subsequently recorded span to ``sink`` too."""
        with self._lock:
            self._sinks.append(sink)

    def record(
        self, name: str, start_s: float, duration_s: float, **attrs: object
    ) -> Optional[Span]:
        if not self.enabled:
            return None
        with self._lock:
            span = Span(
                name=name, seq=self._next_seq, start_s=start_s,
                duration_s=duration_s, attrs=attrs,
            )
            self._next_seq += 1
            if len(self._ring) < self.capacity:
                self._ring.append(span)
            else:
                self._ring[self._start] = span
                self._start = (self._start + 1) % self.capacity
                self.dropped += 1
            sinks = list(self._sinks)
        for sink in sinks:
            sink(span)
        return span

    @contextmanager
    def span(self, name: str, **attrs: object):
        """Time a block; extra attributes can be added to the yielded
        dict (it is merged into the span's attrs on exit)."""
        if not self.enabled:
            yield attrs
            return
        start = self.clock.perf_counter()
        try:
            yield attrs
        finally:
            self.record(
                name, start, self.clock.perf_counter() - start, **attrs
            )

    def spans(self) -> list[Span]:
        """Retained spans, oldest first."""
        with self._lock:
            return self._ring[self._start:] + self._ring[:self._start]

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    @property
    def total_recorded(self) -> int:
        with self._lock:
            return self._next_seq

    def clear(self) -> None:
        with self._lock:
            self._ring = []
            self._start = 0
            self.dropped = 0
