"""Causal trace context for end-to-end distributed tracing.

PR 4's spans were flat — each one a timed phase with attributes, but
with no way to say *this* ``engine.recost`` belongs to *that* request.
This module adds the three-ID causal model every tracing system
converges on (trace, span, parent) carried by a :mod:`contextvars`
context variable, so propagation:

* survives the serving thread pool — a submission captures the ambient
  context and re-activates it inside whichever worker thread serves it;
* survives single-flight collapsing — the follower keeps its own
  request context while it waits on the leader's optimize;
* survives batch probes — each batch row gets its own child context
  even though one thread probes the whole batch;
* crosses process boundaries — the cluster transport carries
  ``trace_id``/``parent_span_id`` fields, so a worker's serve spans
  parent under the supervisor-side request span (including the
  retried-on-peer path, where both incarnations' spans share one
  trace).

IDs are 16-hex-char strings from a seedable :class:`IdSource`, so
golden fixtures and differential tests can pin the exact IDs while
production traffic gets process-random ones.
"""

from __future__ import annotations

import random
import threading
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Optional

#: Version of the span JSONL schema (bumped when the row shape changes;
#: v2 added trace_id/span_id/parent_id and the header line).
SPAN_SCHEMA_VERSION = 2


@dataclass(frozen=True)
class TraceContext:
    """One request's position in its trace: who am I, who called me.

    ``span_id`` is the ID of the span *currently being served* — spans
    recorded while this context is active parent under it; the span
    that closes the context records itself *with* this ID.
    """

    trace_id: str
    span_id: str
    parent_id: str = ""

    def child(self, ids: Optional["IdSource"] = None) -> "TraceContext":
        """A child context: same trace, fresh span ID, parented here."""
        source = ids if ids is not None else _PROCESS_IDS
        return TraceContext(
            trace_id=self.trace_id,
            span_id=source.span_id(),
            parent_id=self.span_id,
        )


class IdSource:
    """Thread-safe 64-bit hex ID generator, seedable for determinism.

    The default (unseeded) instance draws from an OS-entropy-seeded
    :class:`random.Random`; tests and golden fixtures pass a seed so a
    rebuilt trace is byte-identical.
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    def _hex(self) -> str:
        with self._lock:
            value = self._rng.getrandbits(64)
        # Never all-zero: an empty/zero ID means "no context" on the wire.
        return f"{value or 1:016x}"

    def trace_id(self) -> str:
        return self._hex()

    def span_id(self) -> str:
        return self._hex()


#: Process-wide default ID source (unseeded: unique across runs).
_PROCESS_IDS = IdSource()

_CURRENT: ContextVar[Optional[TraceContext]] = ContextVar(
    "repro_trace_context", default=None
)


def current_context() -> Optional[TraceContext]:
    """The ambient trace context, or None outside any trace."""
    return _CURRENT.get()


def start_trace(
    trace_id: Optional[str] = None,
    parent_id: str = "",
    ids: Optional[IdSource] = None,
) -> TraceContext:
    """Mint a root (or remotely-parented) context without activating it.

    ``trace_id``/``parent_id`` restore a context that arrived over the
    wire — the new span ID is local, the causality remote.
    """
    source = ids if ids is not None else _PROCESS_IDS
    return TraceContext(
        trace_id=trace_id if trace_id else source.trace_id(),
        span_id=source.span_id(),
        parent_id=parent_id,
    )


def child_context(ids: Optional[IdSource] = None) -> TraceContext:
    """A child of the ambient context — or a fresh root if there is none."""
    ambient = _CURRENT.get()
    if ambient is not None:
        return ambient.child(ids)
    return start_trace(ids=ids)


@contextmanager
def activate(ctx: Optional[TraceContext]):
    """Make ``ctx`` the ambient context for the dynamic extent.

    ``None`` is accepted and deactivates tracing for the scope (used by
    pool threads re-activating whatever the submitter captured, which
    may legitimately be nothing).
    """
    token = _CURRENT.set(ctx)
    try:
        yield ctx
    finally:
        _CURRENT.reset(token)
