"""Exporters: Prometheus text exposition and JSONL streaming sinks.

Three ways the observability state leaves the process:

* :func:`to_prometheus` — the registry as Prometheus text exposition
  (version 0.0.4): ``# HELP`` / ``# TYPE`` headers, deterministic
  family and label ordering, histogram ``_bucket``/``_sum``/``_count``
  expansion.  Deterministic output is a feature — the golden-file test
  byte-compares it.
* :class:`JsonlWriter` — an append-only JSONL file sink; attach one to
  a :class:`~repro.obs.spans.SpanRecorder` to stream every span as it
  completes, or use :func:`write_spans_jsonl` /
  :func:`write_trace_jsonl` for one-shot dumps.
* :func:`snapshot_rows` — flat rows for the CLI's table renderer.
"""

from __future__ import annotations

import json
import math
from typing import IO, Iterable, Optional, Union

from .registry import MetricsRegistry
from .spans import Span, SpanRecorder
from .tracectx import SPAN_SCHEMA_VERSION


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


def _format_value(value: float) -> str:
    """Prometheus-style number: integers bare, +Inf spelled out."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _format_labels(names: tuple[str, ...], values: tuple[str, ...],
                   extra: Optional[tuple[str, str]] = None) -> str:
    pairs = [
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(names, values)
    ]
    if extra is not None:
        pairs.append(f'{extra[0]}="{_escape_label_value(extra[1])}"')
    return "{" + ",".join(pairs) + "}" if pairs else ""


def to_prometheus(registry: MetricsRegistry) -> str:
    """The whole registry as Prometheus text exposition."""
    lines: list[str] = []
    for family in registry.families():
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for values, child in family.samples():
            if family.kind == "histogram":
                for edge, count in child.bucket_counts():
                    labels = _format_labels(
                        family.label_names, values,
                        extra=("le", _format_value(edge)),
                    )
                    lines.append(f"{family.name}_bucket{labels} {count}")
                labels = _format_labels(family.label_names, values)
                lines.append(
                    f"{family.name}_sum{labels} {_format_value(child.sum)}"
                )
                lines.append(f"{family.name}_count{labels} {child.count}")
            else:
                labels = _format_labels(family.label_names, values)
                lines.append(
                    f"{family.name}{labels} {_format_value(child.value)}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


class JsonlWriter:
    """An append-only JSONL sink usable as a live span stream.

    ``writer(span)`` (the instance is callable) serializes one span per
    line, so ``recorder.attach_sink(JsonlWriter(path))`` streams the
    trace as it happens.  Also accepts plain dicts for trace events.
    """

    def __init__(self, target: Union[str, IO[str]],
                 include_timing: bool = True) -> None:
        if isinstance(target, str):
            self._fh: IO[str] = open(target, "a", encoding="utf-8")
            self._owns = True
        else:
            self._fh = target
            self._owns = False
        self.include_timing = include_timing
        self.rows_written = 0

    def __call__(self, event: Union[Span, dict]) -> None:
        self.write(event)

    def write(self, event: Union[Span, dict]) -> None:
        row = (
            event.to_jsonable(include_timing=self.include_timing)
            if isinstance(event, Span)
            else event
        )
        self._fh.write(json.dumps(row, sort_keys=True) + "\n")
        self.rows_written += 1

    def close(self) -> None:
        self._fh.flush()
        if self._owns:
            self._fh.close()

    def __enter__(self) -> "JsonlWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def span_schema_header() -> dict:
    """The header row prefixed to span JSONL dumps, so downstream
    consumers can detect schema changes (v2 added the causal
    trace_id/span_id/parent_id triple)."""
    return {"schema": "repro.spans", "version": SPAN_SCHEMA_VERSION}


def write_spans_jsonl(
    recorder: SpanRecorder,
    target: Union[str, IO[str]],
    include_timing: bool = True,
    header: bool = True,
) -> int:
    """One-shot dump of the recorder's retained spans; returns rows
    (the schema-version header line, emitted unless ``header=False``,
    is not counted)."""
    with JsonlWriter(target, include_timing=include_timing) as writer:
        if header:
            writer.write(span_schema_header())
            writer.rows_written -= 1
        for span in recorder.spans():
            writer.write(span)
        return writer.rows_written


def write_trace_jsonl(trace, target: Union[str, IO[str]],
                      include_timing: bool = False) -> int:
    """Dump a :class:`~repro.engine.tracing.TraceLog` as JSONL rows."""
    with JsonlWriter(target) as writer:
        for row in trace.to_jsonable(include_timing=include_timing):
            writer.write(row)
        return writer.rows_written


def merge_labeled_snapshots(
    sources: dict[str, dict], label: str = "source"
) -> dict:
    """Combine registry snapshots from many processes into one.

    ``sources`` maps a source identity (e.g. ``"supervisor"``,
    ``"w0:2"``) to that process's ``MetricsRegistry.snapshot()`` dump.
    Families merge by name; every series gains ``label=<identity>``, so
    same-named counters from different workers stay distinct instead of
    colliding.  ``label`` defaults to ``source`` rather than ``worker``
    because supervisor families legitimately carry their own ``worker``
    label (which worker restarted), which must not be clobbered by the
    identity of the registry the series came from.  A series that
    already uses the label name keeps its own value.
    """
    merged: dict[str, dict] = {}
    for identity, snapshot in sources.items():
        for name, family in snapshot.items():
            target = merged.setdefault(name, {
                "kind": family.get("kind", "counter"),
                "help": family.get("help", ""),
                "series": [],
            })
            for series in family.get("series", []):
                row = dict(series)
                row["labels"] = {label: identity, **series.get("labels", {})}
                target["series"].append(row)
    return merged


def snapshot_to_prometheus(snapshot: dict) -> str:
    """Render a registry *snapshot dict* as Prometheus text exposition.

    The snapshot-shaped twin of :func:`to_prometheus`, for state that
    crossed a process boundary as JSON (worker heartbeats) and so has
    no live registry behind it.  Output is deterministic: families and
    series are sorted.
    """
    lines: list[str] = []
    for name in sorted(snapshot):
        family = snapshot[name]
        if family.get("help"):
            lines.append(f"# HELP {name} {family['help']}")
        lines.append(f"# TYPE {name} {family.get('kind', 'counter')}")
        series = sorted(
            family.get("series", []),
            key=lambda row: sorted(row.get("labels", {}).items()),
        )
        for row in series:
            labels = row.get("labels", {})
            names = tuple(sorted(labels))
            values = tuple(str(labels[k]) for k in names)
            if family.get("kind") == "histogram":
                for edge, count in row.get("buckets", []):
                    edge_text = (
                        edge if isinstance(edge, str) else _format_value(edge)
                    )
                    le = _format_labels(names, values, extra=("le", edge_text))
                    lines.append(f"{name}_bucket{le} {count}")
                plain = _format_labels(names, values)
                lines.append(f"{name}_sum{plain} {_format_value(row['sum'])}")
                lines.append(f"{name}_count{plain} {row['count']}")
            else:
                plain = _format_labels(names, values)
                lines.append(f"{name}{plain} {_format_value(row['value'])}")
    return "\n".join(lines) + ("\n" if lines else "")


def snapshot_rows(registry: MetricsRegistry,
                  names: Optional[Iterable[str]] = None) -> list[dict]:
    """Flat per-series rows for the CLI table renderer."""
    wanted = set(names) if names is not None else None
    rows = []
    for family in registry.families():
        if wanted is not None and family.name not in wanted:
            continue
        for values, child in family.samples():
            row: dict = {"metric": family.name}
            row.update(dict(zip(family.label_names, values)))
            if family.kind == "histogram":
                row["count"] = child.count
                row["p50"] = round(child.quantile(0.50), 6)
                row["p99"] = round(child.quantile(0.99), 6)
                row["sum"] = round(child.sum, 6)
            else:
                value = child.value
                row["value"] = int(value) if value.is_integer() else round(value, 6)
            rows.append(row)
    return rows
