"""A dependency-free, thread-safe metrics registry.

The serving stack's three bespoke reporting paths (``ServingStats``
dicts, ``overload_report()``, the engine's resilience counters) each
grew their own counter plumbing; this module replaces all of that with
one registry of labeled metric families:

* :class:`Counter` — monotonically increasing totals;
* :class:`Gauge` — settable point-in-time values (queue depth,
  brownout level, breaker state);
* :class:`Histogram` — cumulative-bucket distributions with
  configurable edges (engine-call latency, certified bounds).

Families are identified by name and a fixed tuple of label names;
``family.labels(template="t1", api="recost")`` returns (creating on
first use) the child holding that label-set's values.  Children are
cheap handles meant to be resolved once and incremented many times on
the hot path.  Everything is guarded by fine-grained locks, and label
cardinality is capped per family so a bug interpolating unbounded
values into a label can never eat the process's memory.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Iterable, Optional, Sequence


class LabelCardinalityError(ValueError):
    """A metric family exceeded its configured label-set cap."""


#: Default per-family cap on distinct label sets.  Generous for the
#: bounded label spaces used here (templates × checks × outcomes).
DEFAULT_MAX_SERIES = 512

#: Default histogram buckets for engine-call / serving latencies, in
#: seconds.  Upper edges are inclusive (Prometheus ``le`` semantics).
LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.010, 0.025, 0.050,
    0.100, 0.250, 0.500, 1.0, 2.5,
)

#: Default buckets for certified sub-optimality bounds: dense near 1
#: (most certificates are tight) and sparse toward the λ values the
#: reproduction actually runs with.
BOUND_BUCKETS = (
    1.0, 1.1, 1.2, 1.35, 1.5, 1.75, 2.0, 2.5, 3.0, 4.0, 6.0,
)


def _validate_name(name: str) -> None:
    if not name or not all(c.isalnum() or c in "_:" for c in name):
        raise ValueError(f"invalid metric name {name!r}")


class Counter:
    """One label-set's monotonically increasing total."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """One label-set's point-in-time value."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """One label-set's bucketed distribution.

    ``buckets`` are finite upper edges; an implicit ``+Inf`` bucket
    catches the tail.  An observation lands in the first bucket whose
    edge is ``>= value`` (inclusive upper edges), and ``bucket_counts``
    reports *cumulative* counts, matching Prometheus exposition.
    """

    __slots__ = ("_lock", "buckets", "_counts", "_sum", "_count")

    def __init__(self, buckets: Sequence[float]) -> None:
        edges = tuple(float(b) for b in buckets)
        if not edges:
            raise ValueError("histogram needs at least one bucket edge")
        if list(edges) != sorted(set(edges)):
            raise ValueError("bucket edges must be strictly increasing")
        self._lock = threading.Lock()
        self.buckets = edges
        self._counts = [0] * (len(edges) + 1)  # +Inf tail bucket
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        index = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def bucket_counts(self) -> list[tuple[float, int]]:
        """Cumulative ``(upper_edge, count)`` pairs, ending at +Inf."""
        with self._lock:
            counts = list(self._counts)
        cumulative, out = 0, []
        for edge, c in zip(self.buckets, counts):
            cumulative += c
            out.append((edge, cumulative))
        out.append((float("inf"), cumulative + counts[-1]))
        return out

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile estimate (0 <= q <= 1).

        The registry view of a latency percentile: linear interpolation
        inside the bucket the target rank falls in, which is what the
        ``obs-report`` snapshot prints when raw samples are gone.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        pairs = self.bucket_counts()
        total = pairs[-1][1]
        if total == 0:
            return 0.0
        rank = q * total
        previous_edge, previous_cum = 0.0, 0
        for edge, cum in pairs:
            if cum >= rank:
                if edge == float("inf"):
                    return previous_edge  # open-ended tail: clamp
                span = cum - previous_cum
                if span == 0:
                    return edge
                fraction = (rank - previous_cum) / span
                return previous_edge + fraction * (edge - previous_edge)
            previous_edge, previous_cum = edge, cum
        return previous_edge


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """All children (label sets) of one named metric."""

    def __init__(
        self,
        name: str,
        help: str,
        kind: str,
        label_names: tuple[str, ...],
        buckets: Optional[Sequence[float]] = None,
        max_series: int = DEFAULT_MAX_SERIES,
    ) -> None:
        _validate_name(name)
        for label in label_names:
            _validate_name(label)
        self.name = name
        self.help = help
        self.kind = kind
        self.label_names = label_names
        self.buckets = tuple(buckets) if buckets is not None else None
        self.max_series = max_series
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], object] = {}

    def labels(self, **labels: object):
        """The child for one label set (created on first use)."""
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                if len(self._children) >= self.max_series:
                    raise LabelCardinalityError(
                        f"{self.name} exceeded {self.max_series} label sets; "
                        "a label is probably carrying unbounded values"
                    )
                if self.kind == "histogram":
                    child = Histogram(self.buckets)
                else:
                    child = _KINDS[self.kind]()
                self._children[key] = child
            return child

    def samples(self) -> list[tuple[tuple[str, ...], object]]:
        """``(label_values, child)`` pairs in sorted label order."""
        with self._lock:
            return sorted(self._children.items())

    @property
    def series_count(self) -> int:
        with self._lock:
            return len(self._children)


class MetricsRegistry:
    """The process's (or one manager's) named metric families.

    Re-requesting a family with the same name returns the existing one
    after checking that kind, labels and buckets agree — so every layer
    can idempotently declare the metrics it writes.
    """

    def __init__(self, max_series_per_family: int = DEFAULT_MAX_SERIES) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, MetricFamily] = {}
        self.max_series_per_family = max_series_per_family

    def _family(
        self,
        name: str,
        help: str,
        kind: str,
        labels: Iterable[str],
        buckets: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        label_names = tuple(labels)
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.label_names != label_names:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{family.kind}{family.label_names}, requested "
                        f"{kind}{label_names}"
                    )
                if kind == "histogram" and buckets is not None and (
                    family.buckets != tuple(buckets)
                ):
                    raise ValueError(
                        f"metric {name!r} already registered with buckets "
                        f"{family.buckets}"
                    )
                return family
            family = MetricFamily(
                name, help, kind, label_names, buckets=buckets,
                max_series=self.max_series_per_family,
            )
            self._families[name] = family
            return family

    def counter(self, name: str, help: str = "", labels: Iterable[str] = ()) -> MetricFamily:
        return self._family(name, help, "counter", labels)

    def gauge(self, name: str, help: str = "", labels: Iterable[str] = ()) -> MetricFamily:
        return self._family(name, help, "gauge", labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Iterable[str] = (),
        buckets: Sequence[float] = LATENCY_BUCKETS,
    ) -> MetricFamily:
        return self._family(name, help, "histogram", labels, buckets=buckets)

    def families(self) -> list[MetricFamily]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def get(self, name: str) -> Optional[MetricFamily]:
        with self._lock:
            return self._families.get(name)

    def value(self, name: str, **labels: object) -> float:
        """Convenience point-read of one counter/gauge child (0 if absent)."""
        family = self.get(name)
        if family is None:
            return 0.0
        key = tuple(str(labels[n]) for n in family.label_names)
        with family._lock:
            child = family._children.get(key)
        if child is None:
            return 0.0
        return child.value

    def total(self, name: str, **fixed: object) -> float:
        """Sum a counter/gauge family across children matching ``fixed``."""
        family = self.get(name)
        if family is None:
            return 0.0
        wanted = {
            family.label_names.index(k): str(v) for k, v in fixed.items()
        }
        out = 0.0
        for values, child in family.samples():
            if all(values[i] == v for i, v in wanted.items()):
                out += child.value
        return out

    def snapshot(self) -> dict[str, object]:
        """A plain-dict dump of every family (JSON-serializable)."""
        out: dict[str, object] = {}
        for family in self.families():
            rows = []
            for values, child in family.samples():
                labels = dict(zip(family.label_names, values))
                if family.kind == "histogram":
                    rows.append({
                        "labels": labels,
                        "count": child.count,
                        "sum": child.sum,
                        "buckets": [
                            ["+Inf" if edge == float("inf") else edge, c]
                            for edge, c in child.bucket_counts()
                        ],
                    })
                else:
                    rows.append({"labels": labels, "value": child.value})
            out[family.name] = {
                "kind": family.kind, "help": family.help, "series": rows,
            }
        return out
