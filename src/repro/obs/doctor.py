"""``repro doctor`` — the plan-cache health engine.

The observatory's raw signals (calibration histograms, drift alarms,
per-anchor lifetime counters) answer *"is my cache healthy?"* only
after being joined and judged.  This module is that judgement layer:

* :func:`anchor_report` ranks a cache's anchors by lifetime payback
  (optimizer calls saved vs. the one call each anchor cost to acquire)
  and totals the wasted spend on anchors that never earned a hit;
* :func:`template_health` joins the anchor report with the template's
  calibration score, active drift alarms and recommended actions, and
  self-checks the accounting identity (anchor hit totals must equal the
  getPlan hit counters — a mismatch is a bug, reported as an error);
* :func:`doctor_report` runs that per template over a live
  :class:`~repro.serving.manager.ConcurrentPQOManager`;
* :func:`doctor_from_sources` rebuilds the same view for a *cluster*
  from the supervisor's labeled registry snapshots (plus the workers'
  heartbeat anchor summaries) — quantiles are recomputed from the
  snapshot bucket vectors, so the cluster view's totals are exactly the
  supervisor's merged totals, not a re-measurement;
* :func:`render_doctor_report` turns either report into the text the
  ``python -m repro doctor`` CLI prints.

Report schema (``"schema": 1``)::

    {"schema": 1, "source": "local"|"cluster", "templates": {...},
     "summary": {...}, "errors": [...]}
"""

from __future__ import annotations

import math
from typing import Any, Mapping, Optional

from .calibration import (
    _ACTIONS,
    CALIBRATION_ERROR,
    DRIFT_ALARM,
    DRIFT_EVENTS,
    FEEDS,
    SIGNALS,
    _quantile_from_cumulative,
    grade_for,
)

#: Version of the doctor report layout (asserted by CI's smoke step).
DOCTOR_SCHEMA = 1

#: How many top / bottom anchors each template section lists.
DEFAULT_TOP_ANCHORS = 3

#: An anchor costs one optimizer call to acquire (the miss that
#: created it); every later hit through it saves one.
ANCHOR_ACQUISITION_CALLS = 1

#: Wasted-spend advisory threshold: recommend the efficacy advisor once
#: at least this many anchors never paid back *and* they are at least
#: this share of all anchors ever acquired.
WASTE_MIN_ANCHORS = 5
WASTE_MIN_SHARE = 0.3


# ---------------------------------------------------------------------------
# anchor-level efficacy attribution


def anchor_report(cache, top: int = DEFAULT_TOP_ANCHORS) -> dict[str, Any]:
    """Lifetime cache-efficacy attribution for one template's cache.

    ``top`` bounds both lists: the best-paying anchors (by total hits)
    and the worst (live anchors that never earned a hit, stalest
    first).  Totals include anchors already evicted — the cache folds
    their counters into its ``evicted_*`` aggregates on eviction, so
    wasted spend cannot be hidden by eviction churn.
    """
    tick = cache.tick
    rows = []
    never_hit_live = 0
    for entry in cache.instances():
        age = tick - entry.last_hit_tick if entry.last_hit_tick >= 0 else None
        if entry.total_hits == 0:
            never_hit_live += 1
        rows.append({
            "plan_id": entry.plan_id,
            "sv": [round(float(s), 6) for s in entry.sv],
            "hits_selectivity": entry.hits_selectivity,
            "hits_cost": entry.hits_cost,
            "recost_spend": entry.recost_spend,
            # Optimizer calls this anchor saved, net of acquiring it.
            "net_calls_saved": entry.total_hits - ANCHOR_ACQUISITION_CALLS,
            "last_hit_age": age,
        })
    sel, cost, spend = cache.anchor_hit_totals()
    wasted = never_hit_live + cache.evicted_never_hit
    best = sorted(
        rows,
        key=lambda r: (r["hits_selectivity"] + r["hits_cost"], r["plan_id"]),
        reverse=True,
    )
    worst = sorted(
        (r for r in rows if r["hits_selectivity"] + r["hits_cost"] == 0),
        key=lambda r: r["plan_id"],
    )
    return {
        "live_anchors": len(rows),
        "plans_cached": cache.num_plans,
        "hits_selectivity": sel,
        "hits_cost": cost,
        "recost_spend": spend,
        "optimizer_calls_saved": sel + cost,
        "never_hit_live": never_hit_live,
        "evicted_never_hit": cache.evicted_never_hit,
        # Optimizer calls spent acquiring anchors that never paid back.
        "wasted_optimizer_calls": wasted * ANCHOR_ACQUISITION_CALLS,
        "top": best[:top],
        "bottom": worst[:top],
    }


# ---------------------------------------------------------------------------
# per-template health


def _recommended_actions(
    score: Optional[Mapping[str, Any]], anchors: Mapping[str, Any]
) -> list[str]:
    """Join alarms, grade and wasted spend into concrete next steps."""
    actions: list[str] = []
    alarms = dict(score["alarms"]) if score else {}
    for signal in SIGNALS:
        if alarms.get(signal):
            actions.append(_ACTIONS[signal])
    if (
        score is not None
        and score["grade"] in ("D", "F")
        and not alarms.get("calibration")
    ):
        # Badly calibrated without a latched alarm (e.g. drift predates
        # the detector's window): the remedy is the same sweep.
        actions.append(_ACTIONS["calibration"])
    wasted = anchors["wasted_optimizer_calls"]
    acquired = anchors["live_anchors"] + anchors["evicted_never_hit"]
    if wasted >= WASTE_MIN_ANCHORS and acquired > 0 and (
        wasted / acquired >= WASTE_MIN_SHARE
    ):
        actions.append(
            "many anchors never pay back their acquisition cost — "
            "consider ManageCache(efficacy_advisor=True) or a smaller "
            "cache budget"
        )
    return actions


def template_health(
    name: str,
    scr,
    quarantined: bool = False,
    top: int = DEFAULT_TOP_ANCHORS,
) -> tuple[dict[str, Any], list[str]]:
    """One template's health section plus any accounting errors.

    ``scr`` is the template's :class:`~repro.core.scr.SCR`; calibration
    fields are ``None`` when it runs without observability.  The second
    return value lists violated invariants (empty when healthy) — the
    doctor checks the accounting identity itself rather than trusting
    the counters it is about to display.
    """
    gp = scr.get_plan
    cache = scr.cache
    errors: list[str] = []
    anchors = anchor_report(cache, top=top)
    sel, cost, _spend = cache.anchor_hit_totals(exclude_adopted=True)
    if (sel, cost) != (gp.selectivity_hits, gp.cost_hits):
        errors.append(
            f"{name}: anchor attribution out of balance — anchors say "
            f"(sel={sel}, cost={cost}) but getPlan counted "
            f"(sel={gp.selectivity_hits}, cost={gp.cost_hits})"
        )
    cal = getattr(scr, "calibration", None)
    score = cal.score() if cal is not None else None
    requests = gp.selectivity_hits + gp.cost_hits + gp.misses
    health = {
        "template": name,
        "quarantined": bool(quarantined),
        "requests": {
            "total": requests,
            "selectivity_hits": gp.selectivity_hits,
            "cost_hits": gp.cost_hits,
            "misses": gp.misses,
            "hit_rate": (
                round((gp.selectivity_hits + gp.cost_hits) / requests, 4)
                if requests else None
            ),
            "recost_calls": gp.total_recost_calls,
        },
        "calibration": score,
        "grade": score["grade"] if score is not None else "n/a",
        "alarms": (
            [s for s in SIGNALS if score["alarms"].get(s)] if score else []
        ),
        "anchors": anchors,
        "recommended_actions": _recommended_actions(score, anchors),
    }
    return health, errors


def _summarize(templates: Mapping[str, Mapping[str, Any]]) -> dict[str, Any]:
    """Cross-template rollup shared by the local and cluster views."""
    grades: dict[str, int] = {}
    alarms = 0
    wasted = 0
    saved = 0
    actions = 0
    for health in templates.values():
        grades[health["grade"]] = grades.get(health["grade"], 0) + 1
        alarms += len(health["alarms"])
        anchors = health.get("anchors")
        if anchors:
            wasted += anchors["wasted_optimizer_calls"]
            saved += anchors["optimizer_calls_saved"]
        actions += len(health.get("recommended_actions", ()))
    return {
        "templates": len(templates),
        "grades": {g: grades[g] for g in sorted(grades)},
        "active_alarms": alarms,
        "optimizer_calls_saved": saved,
        "wasted_optimizer_calls": wasted,
        "recommended_actions": actions,
    }


# ---------------------------------------------------------------------------
# local (in-process) view


def doctor_report(manager, top: int = DEFAULT_TOP_ANCHORS) -> dict[str, Any]:
    """Health report over a live manager's shards.

    Holds each shard lock only while reading that template's counters
    (canonical order, same discipline as
    :meth:`~repro.serving.manager.ConcurrentPQOManager.serving_report`).
    Works with or without observability — calibration sections are
    ``None`` when the manager runs blind.
    """
    templates: dict[str, Any] = {}
    errors: list[str] = []
    with manager._all_shard_locks():
        for name in sorted(manager._shards):
            state = manager._templates[name]
            health, errs = template_health(
                name, state.scr, quarantined=state.quarantined, top=top
            )
            templates[name] = health
            errors.extend(errs)
    return {
        "schema": DOCTOR_SCHEMA,
        "source": "local",
        "templates": templates,
        "summary": _summarize(templates),
        "errors": errors,
    }


# ---------------------------------------------------------------------------
# cluster view (from the supervisor's labeled snapshots)


def _series(snapshot: Mapping[str, Any], family: str) -> list[dict]:
    entry = snapshot.get(family)
    return list(entry.get("series", ())) if isinstance(entry, Mapping) else []


def _merge_calibration(
    snapshots: list[Mapping[str, Any]],
) -> dict[str, dict[str, Any]]:
    """Per-template calibration scores recomputed from snapshot buckets.

    Bucket vectors are summed across sources and certificate kinds per
    (template, feed); quantiles come from the merged cumulative counts
    — the identical estimate a single registry would produce, which is
    what makes the cluster view *reproduce* rather than approximate the
    supervisor's totals.  (EWMA bias is per-process state and does not
    merge, so the cluster view omits it.)
    """
    merged: dict[tuple[str, str], tuple[list[float], list[int]]] = {}
    for snapshot in snapshots:
        for row in _series(snapshot, CALIBRATION_ERROR):
            labels = row.get("labels", {})
            key = (labels.get("template", ""), labels.get("feed", ""))
            edges = [
                math.inf if e == "+Inf" else float(e)
                for e, _ in row["buckets"]
            ]
            counts = [int(c) for _, c in row["buckets"]]
            if key in merged:
                merged[key] = (
                    merged[key][0],
                    [m + c for m, c in zip(merged[key][1], counts)],
                )
            else:
                merged[key] = (edges, counts)
    out: dict[str, dict[str, Any]] = {}
    by_template: dict[str, dict[str, tuple[list[float], list[int]]]] = {}
    for (template, feed), vec in merged.items():
        by_template.setdefault(template, {})[feed] = vec
    for template, by_feed in by_template.items():
        feeds: dict[str, Any] = {}
        worst_p90 = 0.0
        graded = False
        for feed in FEEDS:
            vec = by_feed.get(feed)
            count = vec[1][-1] if vec else 0
            p50 = p90 = 0.0
            if vec and count:
                p50 = _quantile_from_cumulative(vec[0], vec[1], 0.5)
                p90 = _quantile_from_cumulative(vec[0], vec[1], 0.9)
                graded = True
                worst_p90 = max(worst_p90, p90)
            feeds[feed] = {
                "samples": count,
                "abs_log_ratio_p50": round(p50, 6),
                "abs_log_ratio_p90": round(p90, 6),
            }
        out[template] = {
            "feeds": feeds,
            "grade": grade_for(worst_p90) if graded else "n/a",
            "headroom_factor_p90": round(math.exp(worst_p90), 4),
        }
    return out


def _merge_anchor_summaries(
    anchor_summaries: Mapping[str, Mapping[str, Mapping[str, int]]],
) -> dict[str, dict[str, int]]:
    """Sum the workers' heartbeat anchor summaries per template."""
    totals: dict[str, dict[str, int]] = {}
    for per_template in anchor_summaries.values():
        for template, summary in per_template.items():
            into = totals.setdefault(template, {})
            for field, value in summary.items():
                into[field] = into.get(field, 0) + int(value)
    for summary in totals.values():
        summary["optimizer_calls_saved"] = (
            summary.get("hits_selectivity", 0) + summary.get("hits_cost", 0)
        )
        summary["wasted_optimizer_calls"] = (
            summary.get("never_hit_live", 0)
            + summary.get("evicted_never_hit", 0)
        ) * ANCHOR_ACQUISITION_CALLS
    return totals


def doctor_from_sources(
    labeled_snapshots: Mapping[str, Mapping[str, Any]],
    anchor_summaries: Optional[Mapping[str, Mapping[str, Any]]] = None,
) -> dict[str, Any]:
    """Cluster health report from labeled registry snapshots.

    ``labeled_snapshots`` is the supervisor's ``merged_snapshot()``
    (label → registry snapshot, live incarnations plus tombstones);
    ``anchor_summaries`` maps worker labels to the per-template anchor
    summaries carried on heartbeats.  Everything is recomputed from the
    snapshots alone — no live process is consulted — so the view holds
    for a cluster that has already lost workers.
    """
    snapshots = [labeled_snapshots[k] for k in sorted(labeled_snapshots)]
    calibration = _merge_calibration(snapshots)
    anchors = (
        _merge_anchor_summaries(anchor_summaries) if anchor_summaries else {}
    )
    events: dict[str, dict[str, int]] = {}
    alarms: dict[str, set] = {}
    outcomes: dict[str, dict[str, int]] = {}
    for snapshot in snapshots:
        for row in _series(snapshot, DRIFT_EVENTS):
            labels = row.get("labels", {})
            per = events.setdefault(labels.get("template", ""), {})
            signal = labels.get("signal", "")
            per[signal] = per.get(signal, 0) + int(row.get("value", 0))
        for row in _series(snapshot, DRIFT_ALARM):
            labels = row.get("labels", {})
            if row.get("value", 0):
                alarms.setdefault(labels.get("template", ""), set()).add(
                    labels.get("signal", "")
                )
        for row in _series(snapshot, "repro_responses_total"):
            labels = row.get("labels", {})
            per = outcomes.setdefault(labels.get("template", ""), {})
            outcome = labels.get("outcome", "")
            per[outcome] = per.get(outcome, 0) + int(row.get("value", 0))
    names = sorted(
        set(calibration) | set(events) | set(alarms) | set(outcomes)
        | set(anchors)
    )
    templates: dict[str, Any] = {}
    for name in names:
        score = calibration.get(name)
        anchor = anchors.get(name)
        health = {
            "template": name,
            "calibration": score,
            "grade": score["grade"] if score is not None else "n/a",
            "alarms": sorted(alarms.get(name, ())),
            "drift_events": dict(sorted(events.get(name, {}).items())),
            "outcomes": dict(sorted(outcomes.get(name, {}).items())),
            "anchors": anchor,
            "recommended_actions": [
                _ACTIONS[s] for s in SIGNALS if s in alarms.get(name, ())
            ],
        }
        templates[name] = health
    return {
        "schema": DOCTOR_SCHEMA,
        "source": "cluster",
        "sources": sorted(labeled_snapshots),
        "templates": templates,
        "summary": _summarize(templates),
        "errors": [],
    }


# ---------------------------------------------------------------------------
# rendering


def render_doctor_report(report: Mapping[str, Any]) -> str:
    """The ``python -m repro doctor`` text view of either report kind."""
    from ..harness.reporting import format_table

    rows = []
    for name in sorted(report["templates"]):
        health = report["templates"][name]
        anchors = health.get("anchors") or {}
        score = health.get("calibration") or {}
        feeds = score.get("feeds", {})
        worst_p90 = max(
            (f["abs_log_ratio_p90"] for f in feeds.values() if f["samples"]),
            default=0.0,
        )
        rows.append({
            "template": name,
            "grade": health["grade"],
            "p90_log_err": round(worst_p90, 4),
            "alarms": ",".join(health["alarms"]) or "-",
            "anchors": anchors.get("live_anchors", 0),
            "saved": anchors.get("optimizer_calls_saved", 0),
            "wasted": anchors.get("wasted_optimizer_calls", 0),
        })
    lines = [
        format_table(
            rows,
            title=f"repro doctor — {report['source']} view",
        )
    ]
    for name in sorted(report["templates"]):
        health = report["templates"][name]
        for action in health.get("recommended_actions", ()):
            lines.append(f"  action [{name}]: {action}")
    for error in report["errors"]:
        lines.append(f"  ERROR: {error}")
    if not report["errors"]:
        lines.append("  accounting identity: OK")
    return "\n".join(lines)
