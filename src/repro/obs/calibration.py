"""Cost-model calibration telemetry and per-template drift detection.

SCR's λ-certificate is computed *from the cost model and the
selectivity estimates* — if either drifts, the certificate's headroom
silently erodes long before the live λ-violation counter (which only
sees the engine's own, possibly equally drifted, numbers) can fire.
This module watches the guarantee machinery itself:

* **Calibration feeds** — every cost-check hit contributes one
  predicted-vs-recosted pair (the BCG model's predicted plan cost
  ``C·S·G`` against the engine's fresh Recost), and, when the harness
  oracle is attached, responses contribute predicted-vs-true pairs.
  Absolute log-ratios land in per-(template, certificate kind, feed)
  histograms; the signed log-ratio's EWMA is exported as a bias gauge.
* **Drift detectors** — per-template online EWMAs plus lagged-
  reference block-median shift detectors (:class:`BlockShiftDetector`)
  over the calibration ratios and over the selectivity-vector
  distribution (the log-area projection ``Σ ln s_i``).  A detector crossing its threshold raises a typed
  :class:`DriftEvent` into a bounded event log, a counter, an alarm
  gauge, and (when a span recorder is attached) the span stream.
* **Proactive recalibration** — :func:`recost_sweep` re-costs stale
  anchors' pointed plans at their own selectivity vectors under a call
  budget and refreshes the stored costs, restoring calibration after a
  uniform cost-model shift without re-optimizing.

Everything is advisory: no value computed here is ever read by the
guarantee checks themselves.
"""

from __future__ import annotations

import math
import statistics
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from .registry import MetricsRegistry

CALIBRATION_ERROR = "repro_calibration_abs_log_ratio"
CALIBRATION_BIAS = "repro_calibration_bias"
DRIFT_EVENTS = "repro_drift_events_total"
DRIFT_ALARM = "repro_drift_alarm"
RECOST_SWEEPS = "repro_recost_sweeps_total"
SWEEP_RECOST_CALLS = "repro_sweep_recost_calls_total"

#: Buckets for ``|ln(actual / predicted)|``: dense near 0 (a healthy
#: cost model is within a few percent) and sparse toward the ratios
#: where the λ headroom is effectively gone.
ERROR_BUCKETS = (0.01, 0.02, 0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 1.0, 1.5, 2.5)

#: The two calibration feeds: ``recost`` pairs are free (measured on
#: cost-check hits the checks already paid for); ``oracle`` pairs need
#: the harness oracle and compare against ground truth.
FEEDS = ("recost", "oracle")

#: Detector signals a :class:`DriftEvent` may carry.
SIGNALS = ("calibration", "selectivity")

#: p90-of-|log ratio| thresholds for the letter grades the doctor
#: prints.  ``exp(0.35) ≈ 1.42`` — past grade C the estimation error
#: alone can eat most of a λ=1.5 certificate's headroom.
GRADE_EDGES = ((0.05, "A"), (0.15, "B"), (0.35, "C"), (0.7, "D"))


def grade_for(p90_abs_log_ratio: float) -> str:
    for edge, grade in GRADE_EDGES:
        if p90_abs_log_ratio <= edge:
            return grade
    return "F"


class Ewma:
    """Exponentially weighted moving average (seeded by first sample)."""

    __slots__ = ("alpha", "value")

    def __init__(self, alpha: float = 0.1) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self.value: Optional[float] = None

    def update(self, x: float) -> float:
        if self.value is None:
            self.value = x
        else:
            self.value += self.alpha * (x - self.value)
        return self.value


class BlockShiftDetector:
    """Lagged-reference block-median shift detector (runs rule).

    Purpose-built for plan-cache calibration streams, whose three
    pathologies defeat classic mean-shift statistics (Page–Hinkley,
    CUSUM) — each was observed on the seed workloads while tuning:

    - **Outlier bursts**: the uncensored recost feed includes *failed*
      cost checks, whose ratios are outliers by construction (that is
      why they failed), so anything mean-based chases every burst.
    - **Maturation trends**: the calm stream drifts for hundreds of
      samples as the cache warms (cold-cache probes recost against far
      anchors; a mature cache hits near ones), so a global or frozen
      baseline turns warm-up into a false alarm, while a fast-adapting
      baseline absorbs real drift before a cumulative statistic can
      accumulate.
    - **Self-healing**: a drifted cost model poisons only *pre-drift*
      anchors; misses re-anchor the cache under the new model, so the
      detectable window is short (~10 blocks) and a slow detector
      misses it entirely.

    The cure for all three at once: summarise each block of ``block``
    raw samples by its **median** (burst-immune), compare it against
    the median of an older window of block medians — the ``ref``
    blocks ending ``lag`` blocks ago, so the reference trails any
    candidate shift but still tracks slow trends — and alarm when
    ``k`` of the last ``m`` deviations exceed ``tau`` *in the same
    direction* (a Western-Electric-style runs rule: one wild block is
    noise; three out of four on the same side is a shift).

    ``tau`` is in raw stream units, which for log-cost-ratio streams
    is principled: ``tau = 0.3`` means "react to a sustained cost-
    model shift of at least e^0.3 ≈ 1.35×".  ``warm`` blocks are
    consumed before the rule arms, covering the cold-cache transient.
    """

    __slots__ = (
        "tau", "k", "m", "block", "ref", "lag", "warm",
        "n", "blocks", "reference", "last_deviation",
        "_buf", "_meds", "_devs",
    )

    def __init__(
        self,
        tau: float = 0.3,
        k: int = 3,
        m: int = 4,
        block: int = 25,
        ref: int = 8,
        lag: int = 3,
        warm: int = 16,
    ) -> None:
        if not (0 < k <= m):
            raise ValueError("need 0 < k <= m")
        if lag < 1 or ref < 2:
            raise ValueError("need lag >= 1 and ref >= 2")
        self.tau = tau
        self.k = k
        self.m = m
        self.block = block
        self.ref = ref
        self.lag = lag
        self.warm = warm
        self.reset()

    def reset(self) -> None:
        """Drop everything and relearn the reference from scratch."""
        self.n = 0  # raw samples consumed
        self.blocks = 0  # block medians consumed
        self.reference: Optional[float] = None
        self.last_deviation = 0.0
        self._buf: list[float] = []
        self._meds: deque = deque(maxlen=self.ref + self.lag)
        self._devs: deque = deque(maxlen=self.m)

    @property
    def warmed_up(self) -> bool:
        return self.blocks > self.warm

    def update(self, x: float) -> bool:
        """Feed one raw sample; True when a sustained shift is seen.

        Only block-completing samples can return True — the rule runs
        once per ``block`` samples, on the block's median.
        """
        self.n += 1
        self._buf.append(x)
        if len(self._buf) < self.block:
            return False
        bm = statistics.median(self._buf)
        self._buf.clear()
        self.blocks += 1
        fired = False
        if self.blocks > self.warm and len(self._meds) > self.lag + 1:
            meds = list(self._meds)
            self.reference = statistics.median(meds[: -self.lag])
            self.last_deviation = bm - self.reference
            self._devs.append(self.last_deviation)
            if len(self._devs) == self.m:
                up = sum(1 for d in self._devs if d > self.tau)
                down = sum(1 for d in self._devs if d < -self.tau)
                fired = up >= self.k or down >= self.k
        self._meds.append(bm)
        return fired


@dataclass(frozen=True)
class DriftEvent:
    """One detector crossing, with enough context to act on it."""

    template: str
    #: Which stream drifted: ``calibration`` (cost-model log-ratios) or
    #: ``selectivity`` (the workload's sVector distribution).
    signal: str
    #: The EWMA of the stream at detection time.
    value: float
    #: The detector's lagged reference median at detection time.
    baseline: float
    #: Samples the detector had consumed when it fired.
    samples: int
    #: What an operator (or an automated policy) should do about it.
    recommended_action: str = ""


#: Default detector configurations per signal (see
#: :class:`BlockShiftDetector`; ``tau`` is in raw stream units).
#: Tuned against captured calm and drifted streams from all 21 seed
#: templates: calibration ``tau=0.3`` reacts to sustained cost-model
#: shifts ≥ e^0.3 ≈ 1.35×, detecting an injected 1.6× shift within
#: ~3–5 blocks (≈75–115 recost samples) on every seed scenario while
#: all calm runs stay silent.  The selectivity ``tau=2.0`` is coarse
#: on purpose — sv log-areas legitimately swing by whole nats between
#: instances, so only a region-mix change that moves the *block
#: median* by two nats counts as drift.
CALIBRATION_DETECTOR = dict(tau=0.3, k=3, m=4, block=25, ref=8, lag=3, warm=16)
SELECTIVITY_DETECTOR = dict(tau=2.0, k=3, m=4, block=25, ref=8, lag=3, warm=16)

_ACTIONS = {
    "calibration": (
        "run a recost sweep of stale anchors "
        "(SCR.recalibrate / repro.obs.calibration.recost_sweep)"
    ),
    "selectivity": (
        "refresh seeding for the new parameter region "
        "(anchors for the old region will age out via the advisor)"
    ),
}


class TemplateCalibration:
    """One template's calibration state: pre-resolved metric children
    plus the online detectors.  All mutation is under one small lock —
    the streams are low-rate (one sample per cost-check hit / request),
    so contention is negligible next to the engine calls around them.
    """

    def __init__(self, tracker: "CalibrationTracker", template: str) -> None:
        self.tracker = tracker
        self.template = template
        self._lock = threading.Lock()
        registry = tracker.registry
        self._error_family = registry.histogram(
            CALIBRATION_ERROR,
            "Log distance of the actual cost outside the model's "
            "predicted interval (0 = prediction held)",
            labels=("template", "kind", "feed"),
            buckets=ERROR_BUCKETS,
        )
        self._error_children: dict[tuple[str, str], object] = {}
        self._bias = {
            feed: registry.gauge(
                CALIBRATION_BIAS,
                "EWMA of the signed log cost-calibration ratio",
                labels=("template", "feed"),
            ).labels(template=template, feed=feed)
            for feed in FEEDS
        }
        self._ewma = {feed: Ewma(alpha=0.15) for feed in FEEDS}
        self._detectors = {
            "calibration": BlockShiftDetector(**CALIBRATION_DETECTOR),
            "selectivity": BlockShiftDetector(**SELECTIVITY_DETECTOR),
        }
        self._sv_ewma = Ewma(alpha=0.1)
        self.alarms: dict[str, bool] = {signal: False for signal in SIGNALS}
        self.samples: dict[str, int] = {feed: 0 for feed in FEEDS}
        self.sv_samples = 0

    def _error_child(self, kind: str, feed: str):
        child = self._error_children.get((kind, feed))
        if child is None:
            child = self._error_family.labels(
                template=self.template, kind=kind, feed=feed
            )
            self._error_children[(kind, feed)] = child
        return child

    # -- feeds ---------------------------------------------------------------

    def record_ratio(
        self,
        feed: str,
        kind: str,
        predicted: float,
        actual: float,
        log_slack_hi: float = 0.0,
        log_slack_lo: float = 0.0,
    ) -> Optional[DriftEvent]:
        """Record one predicted-vs-actual cost pair.

        When the model predicts an *interval* rather than a point — the
        Cost Bounding Lemma claims ``Cost(P, q) ∈ [pred/L^n, pred·G^n]``
        — pass the interval's log half-widths as ``log_slack_hi``
        (``n·ln G``) and ``log_slack_lo`` (``n·ln L``).  The error
        histogram then records how far the actual cost landed *outside*
        the claimed interval (0 while the model's own claim holds), so a
        well-calibrated model grades A even though legitimate
        selectivity movement makes actual ≠ predicted; with zero slack
        (the oracle feed) it degenerates to ``|ln(actual/predicted)|``.
        The drift detector and the bias EWMA consume the raw *signed*
        log ratio: a cost-model shift by a factor ``f`` moves that
        stream's mean by ``ln f`` even while every sample still lands
        inside the certificate's interval (the guarantee absorbs the
        shift by burning λ-headroom — exactly the erosion worth
        alarming on before it surfaces as violations).  Both feeds
        drive the same ``calibration`` detector: a shift is a shift
        regardless of which instrument saw it first.  Returns the
        :class:`DriftEvent` if this sample crossed the detector's
        threshold.
        """
        if predicted <= 0.0 or actual <= 0.0:
            return None
        log_ratio = math.log(actual / predicted)
        excess = max(
            0.0, log_ratio - log_slack_hi, -log_ratio - log_slack_lo
        )
        with self._lock:
            self.samples[feed] += 1
            ewma = self._ewma[feed].update(log_ratio)
            self._error_child(kind, feed).observe(excess)
            self._bias[feed].set(ewma)
            detector = self._detectors["calibration"]
            fired = detector.update(log_ratio) and not self.alarms["calibration"]
            if fired:
                event = self._make_event("calibration", ewma, detector)
        if fired:
            return self.tracker._emit(self, event)
        return None

    def record_sv(self, sv) -> Optional[DriftEvent]:
        """Feed one served instance's selectivity vector.

        Projects the vector to its log area ``Σ ln s_i`` — one float
        per request, cheap enough for the hot path — and watches the
        projection's mean for shifts (a region-mix change moves it by
        nats; stationary workloads keep it flat).
        """
        area = 0.0
        for s in sv:
            if s <= 0.0:
                return None
            area += math.log(s)
        with self._lock:
            self.sv_samples += 1
            ewma = self._sv_ewma.update(area)
            detector = self._detectors["selectivity"]
            fired = detector.update(area) and not self.alarms["selectivity"]
            if fired:
                event = self._make_event("selectivity", ewma, detector)
        if fired:
            return self.tracker._emit(self, event)
        return None

    def _make_event(
        self, signal: str, ewma: float, detector: BlockShiftDetector
    ) -> DriftEvent:
        """Build the event and latch the alarm (caller holds the lock)."""
        self.alarms[signal] = True
        event = DriftEvent(
            template=self.template,
            signal=signal,
            value=ewma,
            baseline=detector.reference or 0.0,
            samples=detector.n,
            recommended_action=_ACTIONS[signal],
        )
        detector.reset()
        return event

    def clear_alarm(self, signal: str) -> None:
        with self._lock:
            self.alarms[signal] = False
            self._detectors[signal].reset()
        self.tracker._alarm_gauge(self.template, signal).set(0)

    # -- report-side reads ---------------------------------------------------

    def score(self) -> dict[str, object]:
        """Calibration score for the doctor: per-feed |log-ratio|
        quantiles, bias, the letter grade, and how much multiplicative
        headroom the p90 error eats (``exp(p90)``)."""
        feeds: dict[str, object] = {}
        worst_p90 = 0.0
        graded = False
        for feed in FEEDS:
            count = 0
            p50 = p90 = 0.0
            for (tmpl, _kind, f), child in self._error_family.samples():
                if tmpl == self.template and f == feed:
                    count += child.count
            agg = self._aggregate_quantiles(feed)
            if agg is not None:
                p50, p90 = agg
            bias = self._ewma[feed].value
            feeds[feed] = {
                "samples": count,
                "abs_log_ratio_p50": round(p50, 6),
                "abs_log_ratio_p90": round(p90, 6),
                "bias": round(bias, 6) if bias is not None else None,
            }
            if count > 0:
                graded = True
                worst_p90 = max(worst_p90, p90)
        return {
            "feeds": feeds,
            "grade": grade_for(worst_p90) if graded else "n/a",
            "headroom_factor_p90": round(math.exp(worst_p90), 4),
            "alarms": {s: bool(self.alarms[s]) for s in SIGNALS},
        }

    def _aggregate_quantiles(self, feed: str) -> Optional[tuple[float, float]]:
        """p50/p90 of |log ratio| across this template's certificate
        kinds, merged at the bucket level (bucket edges are shared)."""
        merged: Optional[list[int]] = None
        edges: Optional[list[float]] = None
        for (tmpl, _kind, f), child in self._error_family.samples():
            if tmpl != self.template or f != feed:
                continue
            pairs = child.bucket_counts()
            if merged is None:
                edges = [edge for edge, _ in pairs]
                merged = [count for _, count in pairs]
            else:
                merged = [m + c for m, (_, c) in zip(merged, pairs)]
        if merged is None or merged[-1] == 0:
            return None
        return (
            _quantile_from_cumulative(edges, merged, 0.5),
            _quantile_from_cumulative(edges, merged, 0.9),
        )


def _quantile_from_cumulative(
    edges: list[float], cumulative: list[int], q: float
) -> float:
    """Bucket-interpolated quantile from cumulative ``(edge, count)``
    data — the same estimate :meth:`Histogram.quantile` computes, but
    over merged (or snapshot-restored) bucket vectors."""
    total = cumulative[-1]
    if total == 0:
        return 0.0
    rank = q * total
    previous_edge, previous_cum = 0.0, 0
    for edge, cum in zip(edges, cumulative):
        if cum >= rank:
            if edge == float("inf"):
                return previous_edge
            span = cum - previous_cum
            if span == 0:
                return edge
            fraction = (rank - previous_cum) / span
            return previous_edge + fraction * (edge - previous_edge)
        previous_edge, previous_cum = edge, cum
    return previous_edge


class CalibrationTracker:
    """All templates' calibration state over one metrics registry.

    One tracker hangs off each :class:`~repro.obs.handle.Observability`
    handle; per-template handles are resolved once (SCR keeps its own)
    and fed on the serving path.  Drift events land in a bounded list,
    the ``repro_drift_events_total`` counter, the ``repro_drift_alarm``
    gauge, the span stream (when attached) and any registered
    ``on_event`` callbacks — which is where proactive policies (e.g.
    auto recost sweeps) plug in.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        spans=None,
        max_events: int = 256,
    ) -> None:
        self.registry = registry
        self.spans = spans
        self.max_events = max_events
        self._lock = threading.Lock()
        self._templates: dict[str, TemplateCalibration] = {}
        self.events: list[DriftEvent] = []
        self.on_event: list[Callable[[DriftEvent], None]] = []
        self._event_counter = registry.counter(
            DRIFT_EVENTS,
            "Drift detector crossings by template and signal",
            labels=("template", "signal"),
        )
        self._alarm = registry.gauge(
            DRIFT_ALARM,
            "1 while a drift alarm is latched for (template, signal)",
            labels=("template", "signal"),
        )
        self._sweeps = registry.counter(
            RECOST_SWEEPS,
            "Proactive recost sweeps run per template",
            labels=("template",),
        )
        self._sweep_calls = registry.counter(
            SWEEP_RECOST_CALLS,
            "Recost calls spent by proactive sweeps per template",
            labels=("template",),
        )

    def template(self, name: str) -> TemplateCalibration:
        with self._lock:
            cal = self._templates.get(name)
            if cal is None:
                cal = TemplateCalibration(self, name)
                self._templates[name] = cal
            return cal

    def templates(self) -> list[TemplateCalibration]:
        with self._lock:
            return [self._templates[n] for n in sorted(self._templates)]

    def _alarm_gauge(self, template: str, signal: str):
        return self._alarm.labels(template=template, signal=signal)

    def _emit(self, cal: TemplateCalibration, event: DriftEvent) -> DriftEvent:
        """Fan one fired event out to every consumer (no locks held)."""
        self._event_counter.labels(
            template=event.template, signal=event.signal
        ).inc()
        self._alarm_gauge(event.template, event.signal).set(1)
        with self._lock:
            if len(self.events) < self.max_events:
                self.events.append(event)
        spans = self.spans
        if spans is not None and spans.enabled:
            now = spans.clock.perf_counter()
            spans.record(
                "obs.drift_event", now, 0.0,
                template=event.template, signal=event.signal,
                value=round(event.value, 6),
                baseline=round(event.baseline, 6),
                samples=event.samples,
            )
        for callback in list(self.on_event):
            try:
                callback(event)
            except Exception:  # pragma: no cover - policy bugs stay isolated
                pass
        return event

    def active_alarms(self) -> list[dict[str, str]]:
        out = []
        for cal in self.templates():
            for signal in SIGNALS:
                if cal.alarms[signal]:
                    out.append({"template": cal.template, "signal": signal})
        return out

    def note_sweep(self, template: str, recost_calls: int) -> None:
        """Book one proactive sweep and reset the template's
        calibration baseline (the sweep changed what 'predicted'
        means, so the detector must relearn its mean)."""
        self._sweeps.labels(template=template).inc()
        self._sweep_calls.labels(template=template).inc(recost_calls)
        self.template(template).clear_alarm("calibration")

    def report(self) -> dict[str, object]:
        """JSON-serializable calibration section for ``obs.report()``."""
        return {
            "templates": {
                cal.template: cal.score() for cal in self.templates()
            },
            "events": [
                {
                    "template": e.template,
                    "signal": e.signal,
                    "value": round(e.value, 6),
                    "baseline": round(e.baseline, 6),
                    "samples": e.samples,
                    "recommended_action": e.recommended_action,
                }
                for e in list(self.events)
            ],
            "active_alarms": self.active_alarms(),
        }


@dataclass
class SweepResult:
    """What one :func:`recost_sweep` did."""

    recost_calls: int = 0
    refreshed: int = 0
    skipped: int = 0
    #: Mean |ln| of the per-anchor correction applied — how far out of
    #: calibration the stored costs actually were.
    mean_correction: float = 0.0
    details: list[dict] = field(default_factory=list)


def recost_sweep(
    scr,
    budget: Optional[int] = None,
    min_staleness: int = 0,
) -> SweepResult:
    """Re-anchor stale instance entries' stored costs under a budget.

    For each live anchor (stalest first, by ``last_hit_tick``), spends
    one Recost call measuring the pointed plan's *current* cost at the
    anchor's own selectivity vector and refreshes the stored 5-tuple:
    the pointed cost moves to the fresh measurement while the stored
    sub-optimality ``S`` is kept — under a uniform cost-model shift
    (the drift mode this targets) relative plan costs are preserved, so
    ``C' = fresh/S`` restores ``C·S = Cost(P, q_e)`` exactly.

    ``budget`` caps the Recost calls; ``min_staleness`` skips anchors
    hit within that many LRU ticks (they are being revalidated by live
    traffic anyway).  Books the sweep with the tracker (resetting the
    calibration alarm) and invalidates the cache's columnar views.
    """
    cache = scr.cache
    result = SweepResult()
    tick = cache.tick
    entries = sorted(cache.instances(), key=lambda e: e.last_hit_tick)
    corrections = 0.0
    for entry in entries:
        if budget is not None and result.recost_calls >= budget:
            result.skipped += 1
            continue
        if entry.last_hit_tick >= 0 and tick - entry.last_hit_tick < min_staleness:
            result.skipped += 1
            continue
        plan = cache.maybe_plan(entry.plan_id)
        if plan is None:
            result.skipped += 1
            continue
        fresh_pointed = scr.engine.recost(plan.shrunken_memo, entry.sv)
        result.recost_calls += 1
        if fresh_pointed <= 0.0:
            result.skipped += 1
            continue
        old_pointed = entry.pointed_plan_cost
        entry.refresh_cost(
            optimal_cost=fresh_pointed / entry.suboptimality,
            suboptimality=entry.suboptimality,
        )
        result.refreshed += 1
        if old_pointed > 0.0:
            corrections += abs(math.log(fresh_pointed / old_pointed))
    if result.refreshed:
        # optimal_cost is columnarised; stale views must not survive.
        cache._mutated()
        result.mean_correction = corrections / result.refreshed
    obs = getattr(scr, "obs", None)
    if obs is not None and getattr(obs, "calibration", None) is not None:
        obs.calibration.note_sweep(
            scr.engine.template.name, result.recost_calls
        )
    return result
