"""Sliding-window SLOs with multi-window burn-rate alerting.

An SLO here is a *good/total ratio objective* evaluated over the
cumulative counters a :class:`~repro.obs.registry.MetricsRegistry`
already keeps — no new hot-path instrumentation.  The evaluator
periodically samples ``(good, total)`` from a registry snapshot and
differenciates across sliding windows, which makes the whole engine
restart-proof on the supervisor: its registry is the authoritative
cluster ledger, so a worker death changes *where* requests are served,
not what the SLO sees.

Alerting follows the multi-window burn-rate recipe (Google SRE
workbook): the *burn rate* is ``error_rate / error_budget`` (budget =
``1 - target``), and an alert fires only when both a long window and a
short window burn above threshold — the long window proves the problem
is real, the short window proves it is *still happening* and lets the
alert clear quickly once the incident ends.  Zero traffic in a window
burns nothing, so a calm cluster can never false-alert.

Three stock objectives match the guarantees this stack serves:

* ``certified_fraction`` — the share of responses that carried a
  λ-certificate (brownout and faults degrade this first);
* ``lambda_compliance`` — certified responses whose bound respected λ
  (Theorem 1 says this must be ~1.0; any burn is a bug or a violated
  BCG assumption);
* ``latency`` — the share of responses under a latency threshold,
  read from the serving histogram's cumulative buckets (target 0.99 ≈
  "p99 below threshold").
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from .clock import Clock, SYSTEM_CLOCK
from .registry import MetricsRegistry

SLO_BURN_RATE = "repro_slo_burn_rate"
SLO_ALERT_ACTIVE = "repro_slo_alert_active"
SLO_ALERTS_TOTAL = "repro_slo_alerts_total"
SLO_ERROR_RATE = "repro_slo_error_rate"

#: Retained :class:`BurnRateAlert` records per evaluator.
MAX_ALERT_EVENTS = 256


# -- snapshot arithmetic -------------------------------------------------------


def sum_counter(
    snapshot: dict, name: str, **where: str
) -> float:
    """Sum a counter family's series, filtered by label equality."""
    family = snapshot.get(name)
    if not family:
        return 0.0
    total = 0.0
    for row in family.get("series", []):
        labels = row.get("labels", {})
        if all(str(labels.get(k)) == str(v) for k, v in where.items()):
            total += float(row.get("value", 0.0))
    return total


def sum_histogram_under(
    snapshot: dict, name: str, threshold: float, **where: str
) -> tuple[float, float]:
    """``(count ≤ threshold, total count)`` summed across a histogram
    family's series (buckets are cumulative, so the first edge at or
    above the threshold carries the answer)."""
    family = snapshot.get(name)
    if not family:
        return 0.0, 0.0
    good = total = 0.0
    for row in family.get("series", []):
        labels = row.get("labels", {})
        if not all(str(labels.get(k)) == str(v) for k, v in where.items()):
            continue
        total += float(row.get("count", 0))
        for edge, cumulative in row.get("buckets", []):
            numeric = float("inf") if isinstance(edge, str) else float(edge)
            if numeric >= threshold:
                good += float(cumulative)
                break
    return good, total


# -- objectives ----------------------------------------------------------------


@dataclass(frozen=True)
class BurnWindow:
    """One long/short window pair with its firing threshold.

    The pair fires when *both* windows burn at or above
    ``burn_threshold``; the active alert clears when the short window
    drops back below it (the long window's memory of the incident must
    not keep the alert latched after recovery).
    """

    name: str
    long_s: float
    short_s: float
    burn_threshold: float


#: Default pairs, scaled for serving experiments that run seconds to
#: minutes (production deployments would use hours, same ratios).
DEFAULT_WINDOWS = (
    BurnWindow("fast", long_s=60.0, short_s=10.0, burn_threshold=6.0),
    BurnWindow("slow", long_s=300.0, short_s=60.0, burn_threshold=2.0),
)


@dataclass(frozen=True)
class SloObjective:
    """One good/total ratio objective over registry snapshots."""

    name: str
    target: float
    sampler: Callable[[dict], tuple[float, float]]
    windows: tuple[BurnWindow, ...] = DEFAULT_WINDOWS
    description: str = ""

    @property
    def budget(self) -> float:
        """The error budget; floored so target=1.0 stays computable
        (any error then burns effectively infinitely fast)."""
        return max(1.0 - self.target, 1e-9)


def certified_fraction_objective(
    target: float = 0.90,
    windows: tuple[BurnWindow, ...] = DEFAULT_WINDOWS,
    **where: str,
) -> SloObjective:
    """Share of responses served with a λ-certificate.

    ``where`` narrows the counter series by label equality — the
    cluster supervisor passes ``source="supervisor"`` so its merged
    snapshot (which also carries every worker's advisory audit) is
    read through the authoritative ledger only.
    """

    def sample(snapshot: dict) -> tuple[float, float]:
        good = sum_counter(
            snapshot, "repro_responses_total", outcome="certified", **where
        )
        total = sum_counter(snapshot, "repro_responses_total", **where)
        return good, total

    return SloObjective(
        name="certified_fraction", target=target, sampler=sample,
        windows=windows,
        description="responses carrying a certified λ-bound",
    )


def lambda_compliance_objective(
    target: float = 0.999,
    windows: tuple[BurnWindow, ...] = DEFAULT_WINDOWS,
    **where: str,
) -> SloObjective:
    """Responses NOT flagged as certified-λ-violations (must be ~all)."""

    def sample(snapshot: dict) -> tuple[float, float]:
        total = sum_counter(snapshot, "repro_responses_total", **where)
        bad = sum_counter(
            snapshot, "repro_lambda_violations_total", **where
        )
        return max(total - bad, 0.0), total

    return SloObjective(
        name="lambda_compliance", target=target, sampler=sample,
        windows=windows,
        description="responses free of certified λ-violations",
    )


def latency_objective(
    threshold_s: float = 0.25,
    target: float = 0.99,
    metric: str = "repro_serving_latency_seconds",
    windows: tuple[BurnWindow, ...] = DEFAULT_WINDOWS,
    **where: str,
) -> SloObjective:
    """Share of responses under ``threshold_s`` (target 0.99 ≈ p99)."""

    def sample(snapshot: dict) -> tuple[float, float]:
        return sum_histogram_under(snapshot, metric, threshold_s, **where)

    return SloObjective(
        name="latency", target=target, sampler=sample, windows=windows,
        description=f"responses completing within {threshold_s}s",
    )


def default_objectives(
    windows: tuple[BurnWindow, ...] = DEFAULT_WINDOWS,
) -> tuple[SloObjective, ...]:
    return (
        certified_fraction_objective(windows=windows),
        lambda_compliance_objective(windows=windows),
        latency_objective(windows=windows),
    )


def cluster_objectives(
    windows: tuple[BurnWindow, ...] = DEFAULT_WINDOWS,
) -> tuple[SloObjective, ...]:
    """Objectives over the supervisor's *merged* cluster snapshot.

    Outcome ratios read the supervisor's own exactly-one-outcome ledger
    (``source="supervisor"``) so the workers' advisory audits riding the
    same merged snapshot are not double-counted; latency reads every
    worker's serving histogram, whose dead-incarnation series keep their
    last heartbeat's cumulative counts — restarts never step the
    differencing backwards.
    """
    return (
        certified_fraction_objective(windows=windows, source="supervisor"),
        lambda_compliance_objective(windows=windows, source="supervisor"),
        latency_objective(windows=windows),
    )


# -- the evaluator -------------------------------------------------------------


@dataclass
class BurnRateAlert:
    """One firing (or clearing) of an objective's burn alert."""

    objective: str
    window: str
    at_s: float
    kind: str               # "fire" | "clear"
    burn_long: float = 0.0
    burn_short: float = 0.0

    def to_jsonable(self) -> dict:
        return {
            "objective": self.objective, "window": self.window,
            "at_s": round(self.at_s, 6), "kind": self.kind,
            "burn_long": round(self.burn_long, 4),
            "burn_short": round(self.burn_short, 4),
        }


class _ObjectiveState:
    """Sample history plus alert latch for one objective."""

    def __init__(self, objective: SloObjective) -> None:
        self.objective = objective
        self.samples: deque[tuple[float, float, float]] = deque()
        self.horizon = max(w.long_s for w in objective.windows)
        self.alert_active = False
        self.alerts_fired = 0
        self.last_windows: dict[str, dict] = {}

    def add_sample(self, t: float, good: float, total: float) -> None:
        self.samples.append((t, good, total))
        # Keep one sample at-or-before the horizon so long-window
        # differencing always has a baseline.
        cutoff = t - self.horizon
        while len(self.samples) >= 2 and self.samples[1][0] <= cutoff:
            self.samples.popleft()

    def _baseline(self, t: float, window_s: float) -> tuple[float, float]:
        """The cumulative (good, total) at the window's start: the
        youngest sample at or before ``t - window_s`` (oldest sample if
        the history is shorter than the window)."""
        cutoff = t - window_s
        best = self.samples[0]
        for sample in self.samples:
            if sample[0] <= cutoff:
                best = sample
            else:
                break
        return best[1], best[2]

    def window_rates(self, t: float, window_s: float) -> tuple[float, float]:
        """``(error_rate, burn_rate)`` over the trailing window.

        Zero traffic in the window is zero burn: an idle cluster never
        consumes budget, so calm periods can't false-alert.
        """
        now_t, now_good, now_total = self.samples[-1]
        base_good, base_total = self._baseline(t, window_s)
        delta_total = now_total - base_total
        if delta_total <= 0:
            return 0.0, 0.0
        delta_good = now_good - base_good
        error_rate = min(max(1.0 - delta_good / delta_total, 0.0), 1.0)
        return error_rate, error_rate / self.objective.budget


class SloEvaluator:
    """Evaluates objectives over registry snapshots; latches alerts.

    ``registry`` is both the default snapshot source and where the
    evaluator's own gauges land (``repro_slo_burn_rate{slo,window}``,
    ``repro_slo_alert_active{slo}``, ``repro_slo_alerts_total{slo}``).
    Callers that aggregate remote state (the cluster supervisor) pass
    an explicit snapshot to :meth:`evaluate` instead.
    """

    def __init__(
        self,
        objectives: tuple[SloObjective, ...],
        registry: MetricsRegistry,
        clock: Clock = SYSTEM_CLOCK,
        min_interval_s: float = 0.0,
    ) -> None:
        self.registry = registry
        self.clock = clock
        self.min_interval_s = min_interval_s
        self._states = {o.name: _ObjectiveState(o) for o in objectives}
        self._last_eval: Optional[float] = None
        self.alert_events: list[BurnRateAlert] = []
        self._burn_gauge = registry.gauge(
            SLO_BURN_RATE,
            "Error-budget burn rate per objective and window",
            labels=("slo", "window"),
        )
        self._error_gauge = registry.gauge(
            SLO_ERROR_RATE,
            "Windowed error rate per objective and window",
            labels=("slo", "window"),
        )
        self._active_gauge = registry.gauge(
            SLO_ALERT_ACTIVE,
            "1 while the objective's burn-rate alert is firing",
            labels=("slo",),
        )
        self._fired_counter = registry.counter(
            SLO_ALERTS_TOTAL,
            "Burn-rate alerts fired per objective",
            labels=("slo",),
        )

    @property
    def objectives(self) -> tuple[SloObjective, ...]:
        return tuple(s.objective for s in self._states.values())

    def evaluate(
        self, snapshot: Optional[dict] = None, now: Optional[float] = None
    ) -> dict[str, bool]:
        """Take one sample and update alert state.

        Returns ``{objective: alert_active}``.  Calls inside
        ``min_interval_s`` of the previous sample reuse the existing
        state (cheap enough to wire into a serving tick).
        """
        t = now if now is not None else self.clock.monotonic()
        if (
            self._last_eval is not None
            and self.min_interval_s > 0
            and (t - self._last_eval) < self.min_interval_s
        ):
            return self.active_alerts()
        self._last_eval = t
        snap = snapshot if snapshot is not None else self.registry.snapshot()
        for state in self._states.values():
            objective = state.objective
            good, total = objective.sampler(snap)
            state.add_sample(t, good, total)
            firing_pair = None
            still_hot = False
            for window in objective.windows:
                err_long, burn_long = state.window_rates(t, window.long_s)
                err_short, burn_short = state.window_rates(t, window.short_s)
                state.last_windows[window.name] = {
                    "long_s": window.long_s, "short_s": window.short_s,
                    "burn_threshold": window.burn_threshold,
                    "error_rate_long": round(err_long, 6),
                    "error_rate_short": round(err_short, 6),
                    "burn_long": round(burn_long, 4),
                    "burn_short": round(burn_short, 4),
                }
                self._burn_gauge.labels(
                    slo=objective.name, window=f"{window.name}_long"
                ).set(burn_long)
                self._burn_gauge.labels(
                    slo=objective.name, window=f"{window.name}_short"
                ).set(burn_short)
                self._error_gauge.labels(
                    slo=objective.name, window=f"{window.name}_long"
                ).set(err_long)
                self._error_gauge.labels(
                    slo=objective.name, window=f"{window.name}_short"
                ).set(err_short)
                if (
                    burn_long >= window.burn_threshold
                    and burn_short >= window.burn_threshold
                ):
                    firing_pair = firing_pair or (window, burn_long, burn_short)
                if burn_short >= window.burn_threshold:
                    still_hot = True
            if not state.alert_active and firing_pair is not None:
                window, burn_long, burn_short = firing_pair
                state.alert_active = True
                state.alerts_fired += 1
                self._fired_counter.labels(slo=objective.name).inc()
                self._record_event(BurnRateAlert(
                    objective=objective.name, window=window.name, at_s=t,
                    kind="fire", burn_long=burn_long, burn_short=burn_short,
                ))
            elif state.alert_active and not still_hot:
                state.alert_active = False
                self._record_event(BurnRateAlert(
                    objective=objective.name, window="", at_s=t, kind="clear",
                ))
            self._active_gauge.labels(slo=objective.name).set(
                1.0 if state.alert_active else 0.0
            )
        return self.active_alerts()

    def _record_event(self, event: BurnRateAlert) -> None:
        if len(self.alert_events) < MAX_ALERT_EVENTS:
            self.alert_events.append(event)

    def active_alerts(self) -> dict[str, bool]:
        return {
            name: state.alert_active for name, state in self._states.items()
        }

    def alerts_fired(self, objective: Optional[str] = None) -> int:
        if objective is not None:
            return self._states[objective].alerts_fired
        return sum(s.alerts_fired for s in self._states.values())

    def report(self) -> dict[str, object]:
        """JSON-serializable per-objective status."""
        out: dict[str, object] = {}
        for name, state in self._states.items():
            objective = state.objective
            last = state.samples[-1] if state.samples else (0.0, 0.0, 0.0)
            out[name] = {
                "target": objective.target,
                "description": objective.description,
                "good": last[1],
                "total": last[2],
                "windows": dict(state.last_windows),
                "alert_active": state.alert_active,
                "alerts_fired": state.alerts_fired,
            }
        out["events"] = [e.to_jsonable() for e in self.alert_events]
        return out


__all__ = [
    "DEFAULT_WINDOWS",
    "MAX_ALERT_EVENTS",
    "BurnRateAlert",
    "BurnWindow",
    "SloEvaluator",
    "SloObjective",
    "certified_fraction_objective",
    "cluster_objectives",
    "default_objectives",
    "lambda_compliance_objective",
    "latency_objective",
    "sum_counter",
    "sum_histogram_under",
]
