"""One injectable clock source for the whole serving stack.

Before this module, each layer picked its own time source ad hoc —
:func:`time.perf_counter` for latency samples, :func:`time.monotonic`
for deadlines, private ``clock`` kwargs on the overload machinery — so
a test that wanted to fake time had to patch three different seams and
spans could never be correlated with deadlines.  A :class:`Clock`
bundles the three operations every layer needs (monotonic "deadline"
time, high-resolution "duration" time, sleep) behind one handle that
the :class:`~repro.obs.Observability` handle carries and every layer
shares.

:class:`FakeClock` advances only when told to (or when slept on), which
makes deadline, span and brownout behaviour fully deterministic in
tests.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Union


@dataclass(frozen=True)
class Clock:
    """The three time operations the serving stack uses.

    ``monotonic`` feeds deadlines and brownout windows (absolute,
    never-jumping values); ``perf_counter`` feeds latency samples and
    span durations (highest available resolution); ``sleep`` is what
    backoff and pacing call, so a fake clock can turn waiting into
    instantaneous time travel.
    """

    monotonic: Callable[[], float] = time.monotonic
    perf_counter: Callable[[], float] = time.perf_counter
    sleep: Callable[[float], None] = time.sleep


#: The process-wide default: real wall time.
SYSTEM_CLOCK = Clock()

#: Layers that historically took a bare ``clock`` callable (returning
#: monotonic seconds) still accept one; :func:`as_clock` upgrades it.
ClockLike = Union[Clock, Callable[[], float]]


def as_clock(source: ClockLike) -> Clock:
    """Normalize a :class:`Clock` or legacy monotonic callable.

    A bare callable becomes a :class:`Clock` whose monotonic *and*
    perf-counter views are that callable (one fake time line), with a
    no-op sleep — the semantics every existing fake-clock test assumed.
    """
    if isinstance(source, Clock):
        return source
    if not callable(source):
        raise TypeError(f"clock source must be a Clock or callable, got {source!r}")
    return Clock(monotonic=source, perf_counter=source, sleep=lambda _s: None)


@dataclass
class FakeClock:
    """A manually-advanced clock for deterministic tests.

    All three views share one time line: ``advance`` moves it, and
    ``sleep`` advances it by the requested amount instead of blocking.
    Use ``fake.clock`` (a :class:`Clock`) anywhere a clock is injected.
    """

    now: float = 0.0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("time only moves forward")
        with self._lock:
            self.now += seconds

    def monotonic(self) -> float:
        with self._lock:
            return self.now

    def sleep(self, seconds: float) -> None:
        self.advance(max(0.0, seconds))

    @property
    def clock(self) -> Clock:
        return Clock(
            monotonic=self.monotonic,
            perf_counter=self.monotonic,
            sleep=self.sleep,
        )
