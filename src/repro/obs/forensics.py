"""Guarantee forensics: reconstruct and explain one request's span tree.

The tracing layer answers *what happened*; this module answers *why the
guarantee came out the way it did*.  Given the spans of one trace —
straight from a :class:`~repro.obs.spans.SpanRecorder`, or re-read from
a spans JSONL file — it rebuilds the causal tree (supervisor dispatch
attempts, worker serving, SCR checks, engine calls) and renders either
an ASCII tree or a human-readable explanation of the certificate
outcome: which anchors were scanned, whether the G·L/cost check held,
what λ-bound and coverage were certified, and which degradation
(brownout, shed, worker death) intervened.

Everything here is read-only over recorded spans, so it works the same
for a live in-process manager, the cluster supervisor's re-ingested
cross-process trees, and an offline ``spans.jsonl``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable, Optional, TextIO, Union

from .spans import Span

#: Span names with request-level meaning (anything else renders
#: generically but still participates in the tree).
ROOT_NAMES = ("cluster.request", "serving.process")


@dataclass
class TraceNode:
    """One span plus its causal children (ordered by start, then seq)."""

    span: Span
    children: list = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.span.name


def build_tree(spans: Iterable[Span]) -> list[TraceNode]:
    """Reconstruct the causal forest of one trace's spans.

    Spans whose ``parent_id`` is unknown (the parent was dropped from a
    bounded ring, or died with a worker) become roots — forensics must
    degrade to a forest, never lose spans.  Roots and children are
    ordered by ``(start_s, seq)`` so the render reads chronologically.
    """
    nodes = {}
    ordered = sorted(spans, key=lambda s: (s.start_s, s.seq))
    for span in ordered:
        node = TraceNode(span)
        # Span IDs are unique per trace; a duplicate (the same span
        # ingested twice) keeps the first occurrence.
        nodes.setdefault(span.span_id or f"~anon{span.seq}", node)
    roots: list[TraceNode] = []
    for key, node in nodes.items():
        parent = nodes.get(node.span.parent_id) if node.span.parent_id else None
        if parent is None or parent is node:
            roots.append(node)
        else:
            parent.children.append(node)
    return roots


def _fmt_duration(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.0f}us"


def _fmt_attrs(attrs: dict) -> str:
    parts = []
    for key in sorted(attrs):
        value = attrs[key]
        if isinstance(value, float):
            value = f"{value:g}"
        parts.append(f"{key}={value}")
    return " ".join(parts)


def render_tree(
    spans: Iterable[Span], include_timing: bool = True
) -> str:
    """ASCII tree of one trace: names, durations, forensic attributes."""
    roots = build_tree(spans)
    lines: list[str] = []

    def describe(node: TraceNode) -> str:
        text = node.name
        if include_timing:
            text += f" [{_fmt_duration(node.span.duration_s)}]"
        attrs = _fmt_attrs(node.span.attrs)
        if attrs:
            text += f"  ({attrs})"
        return text

    def walk(node: TraceNode, prefix: str, tail: bool) -> None:
        lines.append(f"{prefix}{'`- ' if tail else '|- '}{describe(node)}")
        child_prefix = prefix + ("   " if tail else "|  ")
        for i, child in enumerate(node.children):
            walk(child, child_prefix, i == len(node.children) - 1)

    for i, root in enumerate(roots):
        if i:
            lines.append("")
        lines.append(describe(root))
        for j, child in enumerate(root.children):
            walk(child, "", j == len(root.children) - 1)
    return "\n".join(lines)


def _first(spans: list[Span], name: str) -> Optional[Span]:
    for span in spans:
        if span.name == name:
            return span
    return None


def explain_trace(spans: Iterable[Span]) -> dict:
    """A structured verdict for one request's trace.

    Returns a JSON-serializable dict with the guarantee outcome, the
    SCR check path that produced it, the engine work spent, every
    dispatch attempt (including ones whose worker died mid-request),
    and a ``narrative`` — the same story as prose lines.
    """
    ordered = sorted(spans, key=lambda s: (s.start_s, s.seq))
    root = _first(ordered, "cluster.request") or _first(
        ordered, "serving.process"
    )
    serving = _first(ordered, "serving.process")
    info: dict = {
        "trace_id": ordered[0].trace_id if ordered else "",
        "spans": len(ordered),
        "template": (root.attrs.get("template") if root else None),
        "seq": (root.attrs.get("seq") if root else None),
        "outcome": (root.attrs.get("outcome") if root else None),
        "narrative": [],
    }
    say = info["narrative"].append
    if root is None:
        say("no request-level span found; cannot explain this trace")
        return info

    # -- dispatch attempts (cluster traces only) ------------------------------
    attempts = [s for s in ordered if s.name == "cluster.dispatch"]
    if attempts:
        info["attempts"] = [
            {
                "attempt": s.attrs.get("attempt"),
                "worker": s.attrs.get("worker"),
                "incarnation": s.attrs.get("incarnation"),
                "outcome": s.attrs.get("outcome"),
            }
            for s in attempts
        ]
        for entry in info["attempts"]:
            where = f"{entry['worker']}:{entry['incarnation']}"
            if entry["outcome"] == "worker_died":
                say(f"attempt {entry['attempt']} on {where}: worker died "
                    "mid-request; its in-process spans are lost, this "
                    "dispatch record is the surviving evidence")
            else:
                say(f"attempt {entry['attempt']} on {where}: responded")

    # -- waits ----------------------------------------------------------------
    queue_wait = _first(ordered, "serving.queue_wait")
    if queue_wait is not None:
        info["queue_wait_s"] = queue_wait.duration_s
        say(f"queued {_fmt_duration(queue_wait.duration_s)} before a "
            "serving thread picked it up")
    flight = _first(ordered, "serving.single_flight_wait")
    if flight is not None:
        info["single_flight_wait_s"] = flight.duration_s
        say(f"waited {_fmt_duration(flight.duration_s)} on another "
            "thread's in-flight optimizer call (single-flight collapse)")

    # -- the SCR check path ---------------------------------------------------
    sel = _first(ordered, "scr.selectivity_check")
    if sel is not None:
        scanned = sel.attrs.get("scanned")
        candidates = sel.attrs.get("candidates")
        if sel.attrs.get("hit"):
            info["anchor_check"] = "selectivity"
            say(f"selectivity check hit after scanning {scanned} cached "
                f"anchors ({candidates} candidate plans): the stored "
                "G*L bound certifies the cached plan without recosting")
        else:
            say(f"selectivity check scanned {scanned} cached anchors "
                f"({candidates} candidate plans) without certifying; "
                "fell through to the cost check")
    cost = _first(ordered, "scr.cost_check")
    if cost is not None:
        recosts = cost.attrs.get("recost_calls", 0)
        if cost.attrs.get("hit"):
            info["anchor_check"] = "cost"
            say(f"cost check certified the cached plan after {recosts} "
                "recost call(s): recosted cost stayed within G*L of the "
                "anchor bound")
        else:
            consulted = any(s.name == "engine.optimize" for s in ordered)
            say(f"cost check spent {recosts} recost call(s) without "
                "certifying; " + (
                    "the optimizer was consulted" if consulted
                    else "the optimizer was NOT consulted (degraded path)"
                ))

    # -- engine work ----------------------------------------------------------
    engine_calls = {}
    for span in ordered:
        if span.name.startswith("engine."):
            engine_calls[span.name] = engine_calls.get(span.name, 0) + 1
    if engine_calls:
        info["engine_calls"] = engine_calls
        say("engine work: " + ", ".join(
            f"{count}x {name.split('.', 1)[1]}"
            for name, count in sorted(engine_calls.items())
        ))

    # -- the verdict ----------------------------------------------------------
    verdict_attrs = serving.attrs if serving is not None else root.attrs
    outcome = info["outcome"]
    certificate = verdict_attrs.get("certificate")
    bound = verdict_attrs.get("certified_bound")
    coverage = verdict_attrs.get("coverage")
    info["certificate"] = certificate
    info["check"] = verdict_attrs.get("check")
    if bound is not None:
        info["certified_bound"] = bound
    if coverage is not None:
        info["coverage"] = coverage
    if outcome == "certified":
        sentence = (
            f"VERDICT: certified via {certificate} certificate"
        )
        if bound is not None:
            sentence += f"; inferred sub-optimality bound {bound:g} <= lambda"
        if coverage is not None:
            sentence += (
                f" (probabilistic: holds with coverage {coverage:g})"
            )
        say(sentence)
    elif outcome == "uncertified":
        reason = verdict_attrs.get("check") or "degraded"
        brownout = verdict_attrs.get("brownout")
        sentence = (
            "VERDICT: served WITHOUT a lambda-certificate "
            f"(degraded path: {reason})"
        )
        if brownout is not None:
            info["brownout"] = brownout
            sentence += f"; brownout level {brownout} was in force"
        say(sentence)
    elif outcome == "shed":
        reason = (
            verdict_attrs.get("reason")
            or root.attrs.get("reason")
            or root.attrs.get("detail")
            or "overload"
        )
        info["shed_reason"] = reason
        brownout = verdict_attrs.get("brownout")
        sentence = f"VERDICT: shed ({reason}) — no plan was served"
        if brownout is not None:
            info["brownout"] = brownout
            sentence += f"; brownout level {brownout} was in force"
        say(sentence)
    else:
        say(f"VERDICT: outcome {outcome!r}")
    return info


def format_explanation(info: dict) -> str:
    """The narrative as prose, headed by the request identity."""
    head = (
        f"trace {info.get('trace_id') or '<untraced>'} — "
        f"template {info.get('template')!r} seq {info.get('seq')} "
        f"({info.get('spans')} spans)"
    )
    return "\n".join([head] + [f"  {line}" for line in info["narrative"]])


# -- offline input -------------------------------------------------------------


def load_spans_jsonl(
    source: Union[str, TextIO, Iterable[str]]
) -> list[Span]:
    """Read spans back from a ``write_spans_jsonl`` file or stream.

    Accepts a path, an open text handle, or an iterable of lines; the
    schema-version header (and any malformed line) is skipped so v1
    files without IDs still load — their spans simply form a forest of
    single-node trees.
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            return load_spans_jsonl(handle)
    spans: list[Span] = []
    for line in source:
        line = line.strip()
        if not line:
            continue
        try:
            row = json.loads(line)
        except ValueError:
            continue
        if not isinstance(row, dict) or row.get("schema") == "repro.spans":
            continue
        if "span" not in row:
            continue
        spans.append(Span.from_jsonable(row))
    return spans


def traces_in(spans: Iterable[Span]) -> dict[str, list[Span]]:
    """Group spans by trace ID (untraced spans under ``""``), insertion
    ordered so the first-recorded trace comes first."""
    buckets: dict[str, list[Span]] = {}
    for span in spans:
        buckets.setdefault(span.trace_id, []).append(span)
    return buckets


__all__ = [
    "ROOT_NAMES",
    "TraceNode",
    "build_tree",
    "explain_trace",
    "format_explanation",
    "load_spans_jsonl",
    "render_tree",
    "traces_in",
]
