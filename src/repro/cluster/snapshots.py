"""Snapshot exchange: how plan caches survive their worker.

Workers periodically publish each owned template's plan cache to a
shared directory using the checksummed crash-atomic
:class:`~repro.core.persistence.CacheSnapshot` format (temp file +
fsync + rename + directory fsync).  A replacement worker — or a peer
inheriting a dead worker's partition — warm-starts by loading the
latest published snapshot, which restores the instance list and
shrunken memos and therefore almost all of the optimizer-call
investment: the chaos gate bounds a warm start at ≤20% of a cold
start's optimizer calls.

Corruption is tolerated by construction: ``load_or_none`` treats a
damaged or missing file as "no snapshot" (counted, never fatal), so a
fault injector garbling the directory degrades recovery to a cold
start instead of wedging it.
"""

from __future__ import annotations

import os
import threading
from typing import Optional

from ..core.persistence import CacheSnapshot, dump_cache
from ..core.plan_cache import PlanCache

SNAPSHOT_SUFFIX = ".cache.json"


class SnapshotStore:
    """A directory of per-template cache snapshots shared by the fleet.

    One file per template (``<dir>/<template>.cache.json``): the *latest*
    publish wins, regardless of which worker wrote it — after a failover
    the inheriting peer's publishes simply continue the lineage.
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self._lock = threading.Lock()
        self.publishes = 0
        self.loads = 0
        self.corrupt_loads = 0

    def path_for(self, template_name: str) -> str:
        return os.path.join(self.directory, template_name + SNAPSHOT_SUFFIX)

    def publish(self, template_name: str, cache: PlanCache) -> int:
        """Atomically publish one template's cache; returns bytes written.

        Serialization happens in the caller's thread (callers holding a
        shard lock should serialize under it via :func:`serialize` and
        hand the text to :meth:`publish_text` outside the lock).
        """
        return self.publish_text(template_name, dump_cache(cache))

    @staticmethod
    def serialize(cache: PlanCache) -> str:
        return dump_cache(cache)

    def publish_text(self, template_name: str, text: str) -> int:
        n = CacheSnapshot(self.path_for(template_name)).save_text(text)
        with self._lock:
            self.publishes += 1
        return n

    def load(self, template_name: str) -> Optional[PlanCache]:
        """The latest published cache, or None (missing *or* corrupt).

        A corrupt snapshot is counted in ``corrupt_loads`` and reported
        as absent: warm-start degrades to cold-start, never crashes.
        """
        path = self.path_for(template_name)
        if not os.path.exists(path):
            return None
        cache = CacheSnapshot(path).load_or_none()
        with self._lock:
            if cache is None:
                self.corrupt_loads += 1
            else:
                self.loads += 1
        return cache

    def published_templates(self) -> list[str]:
        return sorted(
            name[: -len(SNAPSHOT_SUFFIX)]
            for name in os.listdir(self.directory)
            if name.endswith(SNAPSHOT_SUFFIX)
        )

    def corrupt(self, template_name: str, garbage: bytes = b"\x00corrupt") -> None:
        """Deliberately damage a snapshot (fault injection only)."""
        path = self.path_for(template_name)
        if os.path.exists(path):
            with open(path, "r+b") as f:
                f.seek(max(0, os.path.getsize(path) // 2))
                f.write(garbage)
