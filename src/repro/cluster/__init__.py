"""Fault-tolerant multi-process serving tier (DESIGN.md §13).

Worker processes own template partitions via consistent-hash routing,
each running a full single-process serving stack; a supervisor does
heartbeat liveness, capped-backoff restarts, graceful partition drains
and snapshot warm-starts, and merges every worker's observability into
one exposition.  ``python -m repro serve`` is the CLI front door.
"""

from .faults import FAULT_KINDS, ProcessFaultInjector
from .router import HashRing
from .snapshots import SnapshotStore
from .supervisor import (
    ClusterSupervisor,
    ProcessLauncher,
    SupervisorPolicy,
    WorkerHandle,
    WorkerState,
)
from .transport import (
    Bye,
    Control,
    Heartbeat,
    Ready,
    Request,
    Response,
    WorkerLostError,
)
from .worker import ClusterWorker, WorkerSpec, worker_main

__all__ = [
    "Bye",
    "ClusterSupervisor",
    "ClusterWorker",
    "Control",
    "FAULT_KINDS",
    "HashRing",
    "Heartbeat",
    "ProcessFaultInjector",
    "ProcessLauncher",
    "Ready",
    "Request",
    "Response",
    "SnapshotStore",
    "SupervisorPolicy",
    "WorkerHandle",
    "WorkerLostError",
    "WorkerSpec",
    "WorkerState",
    "worker_main",
]
