"""Consistent-hash routing of templates onto worker processes.

Partitioning by template keeps each template's plan cache, single-flight
table and λ accounting on exactly one live worker, so the per-template
guarantees of the single-process tier carry over unchanged.  The ring
uses virtual nodes so small clusters still partition evenly, and the
consistent-hash property bounds reshuffling: a worker death moves only
the dead worker's templates, each to the next live node on the ring —
the surviving workers' partitions are untouched, which is what makes
warm peers useful (their caches stay hot through a neighbour's crash).

Hashing is SHA-1 over stable strings, so the mapping is deterministic
across processes and runs — the supervisor, the tests and an operator
reading logs all compute the same owner for a template.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Optional, Sequence

DEFAULT_VNODES = 64


def _ring_hash(key: str) -> int:
    return int.from_bytes(hashlib.sha1(key.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """A consistent-hash ring over named nodes with virtual nodes.

    ``owner(key, alive)`` walks clockwise from the key's hash to the
    first *live* node, so failover routing needs no ring rebuild: the
    dead node's ranges fall through to their ring successors and
    everything else stays put.
    """

    def __init__(self, nodes: Sequence[str], vnodes: int = DEFAULT_VNODES) -> None:
        if not nodes:
            raise ValueError("HashRing needs at least one node")
        if len(set(nodes)) != len(nodes):
            raise ValueError("duplicate node names on the ring")
        self.nodes = tuple(nodes)
        self.vnodes = vnodes
        points: list[tuple[int, str]] = []
        for node in nodes:
            for i in range(vnodes):
                points.append((_ring_hash(f"{node}#{i}"), node))
        points.sort()
        self._hashes = [h for h, _ in points]
        self._owners = [n for _, n in points]

    def owner(self, key: str, alive: Optional[Iterable[str]] = None) -> str:
        """The live node owning ``key``.

        ``alive=None`` means every node is live.  Raises ``LookupError``
        when no live node remains (total outage — callers shed).
        """
        live = set(self.nodes if alive is None else alive)
        if not live:
            raise LookupError("no live nodes on the ring")
        start = bisect.bisect_right(self._hashes, _ring_hash(key))
        n = len(self._owners)
        for step in range(n):
            node = self._owners[(start + step) % n]
            if node in live:
                return node
        raise LookupError("no live nodes on the ring")  # pragma: no cover

    def partition(
        self, keys: Iterable[str], alive: Optional[Iterable[str]] = None
    ) -> dict[str, list[str]]:
        """``{node: [keys...]}`` over the live nodes (sorted key lists)."""
        live = list(self.nodes if alive is None else alive)
        out: dict[str, list[str]] = {node: [] for node in live}
        for key in sorted(keys):
            out[self.owner(key, live)].append(key)
        return out
