"""Seeded process-level fault injection against a live cluster.

The process-scope twin of :mod:`repro.engine.faults`: where that module
garbles individual engine calls, this one kills whole workers.  Four
fault kinds, all recoverable by design:

* ``kill`` — hard process kill (SIGKILL semantics; no drain, no final
  snapshot), the canonical crash the supervisor must absorb;
* ``stall`` — heartbeats stop while the process lives, exercising the
  missed-heartbeat death path and the late-response race;
* ``corrupt_snapshot`` — a published snapshot is damaged on disk, so
  the next warm-start must detect the checksum mismatch and fall back
  to a cold start;
* ``slow_start`` — the next respawn of a worker boots slowly,
  exercising the startup-timeout path and routing-while-starting.

Everything is driven by one seeded RNG, so a chaos run is replayable:
same seed, same fault sequence at the same request counts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from .snapshots import SnapshotStore
from .supervisor import ClusterSupervisor, WorkerState
from .transport import Control

FAULT_KINDS = ("kill", "stall", "corrupt_snapshot", "slow_start")


@dataclass
class ProcessFaultInjector:
    """Injects process faults into a supervisor-run cluster."""

    supervisor: ClusterSupervisor
    seed: int = 0
    #: Relative weights of the fault kinds, in :data:`FAULT_KINDS` order.
    weights: tuple[float, float, float, float] = (0.6, 0.2, 0.1, 0.1)
    #: Stalled heartbeats auto-resume after this many injections won't
    #: happen — the supervisor kills the stalled worker first; kept for
    #: completeness when timeouts are long.
    injected: list = field(default_factory=list)

    def __post_init__(self) -> None:
        self.rng = random.Random(self.seed)
        self.store = SnapshotStore(self.supervisor.snapshot_dir)

    def _victims(self) -> list[str]:
        return [
            wid
            for wid, handle in self.supervisor.workers.items()
            if handle.state in (WorkerState.LIVE, WorkerState.STARTING)
        ]

    def inject_one(self) -> str:
        """Inject one weighted-random fault; returns ``kind:target``."""
        kind = self.rng.choices(FAULT_KINDS, weights=self.weights)[0]
        return self.inject(kind)

    def inject(self, kind: str) -> str:
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {kind!r}; use {FAULT_KINDS}")
        victims = self._victims()
        if not victims and kind != "corrupt_snapshot":
            return "noop:no-victims"
        sup = self.supervisor
        if kind == "kill":
            wid = self.rng.choice(victims)
            handle = sup.workers[wid]
            kill = getattr(handle.process, "kill", None) or getattr(
                handle.process, "terminate", None
            )
            if kill is not None:
                kill()
            target = wid
        elif kind == "stall":
            wid = self.rng.choice(victims)
            try:
                sup.workers[wid].request_q.put(Control("stall_heartbeats"))
            except (OSError, ValueError):
                pass
            target = wid
        elif kind == "corrupt_snapshot":
            published = self.store.published_templates()
            if not published:
                return "noop:no-snapshots"
            template = self.rng.choice(published)
            self.store.corrupt(template)
            target = template
        else:  # slow_start: arm the victim's *next* respawn.
            wid = self.rng.choice(victims)
            handle = sup.workers[wid]
            handle.respawn_overrides["slow_start_seconds"] = self.rng.uniform(
                0.2, 0.8
            )
            kill = getattr(handle.process, "kill", None) or getattr(
                handle.process, "terminate", None
            )
            if kill is not None:
                kill()
            target = wid
        event = f"{kind}:{target}"
        self.injected.append(event)
        return event
