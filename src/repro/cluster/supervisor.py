"""The supervisor: routing, liveness, crash recovery, merged health.

One front-end process owns the cluster: it routes requests to worker
processes along the consistent-hash ring, watches heartbeats, declares
workers dead on silence (or on a reaped process), restarts them with
capped exponential backoff, quarantines flappers, and re-routes a dead
worker's partition with a graceful drain — every in-flight future
resolves as retried-on-peer, shed, or :class:`WorkerLostError`, never
hangs.

Accounting discipline
---------------------
The supervisor's own :class:`~repro.obs.audit.GuaranteeAudit` is the
*authoritative* exactly-one-outcome ledger: every submitted request
increments exactly one of certified/uncertified/shed on the supervisor
registry, including requests whose worker died (counted shed, reason
``worker_lost``).  Worker registries arrive piggybacked on heartbeats
and are retained per (worker, incarnation) — a crash cannot retract
the counts its last heartbeat already delivered — and the merged
Prometheus exposition renders supervisor series as
``source="supervisor"`` alongside every worker-labeled series.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Optional

from ..obs import Observability
from ..obs.clock import SYSTEM_CLOCK, Clock
from ..obs.exporters import merge_labeled_snapshots, snapshot_to_prometheus
from ..obs.slo import cluster_objectives
from ..obs.spans import Span
from ..obs.tracectx import activate, start_trace
from ..query.template import QueryTemplate
from .router import DEFAULT_VNODES, HashRing
from .transport import (
    Bye,
    Control,
    Heartbeat,
    Ready,
    Request,
    Response,
    WorkerLostError,
)
from .worker import WorkerSpec, worker_main

RESTARTS_TOTAL = "repro_cluster_restarts_total"
DEATHS_TOTAL = "repro_cluster_deaths_total"
RETRIES_TOTAL = "repro_cluster_retries_total"
WORKER_LOST_TOTAL = "repro_cluster_worker_lost_total"
WORKERS_GAUGE = "repro_cluster_workers"


class WorkerState(Enum):
    STARTING = "starting"
    LIVE = "live"
    DRAINING = "draining"
    DEAD = "dead"
    QUARANTINED = "quarantined"


@dataclass(frozen=True)
class SupervisorPolicy:
    """Liveness and recovery tunables."""

    #: A live worker this long without a heartbeat is declared dead.
    heartbeat_timeout: float = 1.5
    #: A starting worker gets this long to signal Ready (slow starts
    #: included) before being declared dead.
    startup_timeout: float = 30.0
    #: Restart backoff: ``base * 2^k`` capped (k = restarts so far).
    restart_backoff_base: float = 0.1
    restart_backoff_cap: float = 5.0
    #: How many times one request may be re-routed after worker deaths
    #: before resolving as WorkerLostError.
    max_retries: int = 2
    #: Flap quarantine: this many deaths inside the window stops the
    #: restart loop (the template-quarantine pattern at process scope).
    flap_threshold: int = 5
    flap_window: float = 30.0
    #: Graceful-drain budget at shutdown before terminating stragglers.
    drain_timeout: float = 10.0
    vnodes: int = DEFAULT_VNODES
    #: Dead (worker, incarnation) registry snapshots kept verbatim per
    #: worker; older dead incarnations merge into one tombstone row so
    #: a flapping worker cannot grow the history without bound while the
    #: merged exposition stays monotone across crashes.
    registry_retention: int = 2


class ProcessLauncher:
    """Real worker processes via multiprocessing (spawn).

    Spawn, not fork: the supervisor runs a monitor thread and workers
    run thread pools, and forking a threaded process inherits poisoned
    locks.  Tests swap in a fake launcher with the same three methods.
    """

    def __init__(self, ctx=None) -> None:
        if ctx is None:
            import multiprocessing

            ctx = multiprocessing.get_context("spawn")
        self.ctx = ctx

    def make_response_queue(self):
        return self.ctx.Queue()

    def launch(self, spec: WorkerSpec, response_q):
        """Start a worker; returns ``(request_queue, process_handle)``.

        The process handle must expose ``is_alive() / terminate() /
        kill() / join(timeout) / pid / exitcode``.
        """
        request_q = self.ctx.Queue()
        process = self.ctx.Process(
            target=worker_main,
            args=(spec, request_q, response_q),
            name=f"repro-{spec.worker_id}",
            daemon=True,
        )
        process.start()
        return request_q, process


@dataclass
class _Pending:
    future: object
    request: Request
    worker_id: str
    # -- trace state (None / 0.0 when the supervisor runs spans-off) ----------
    #: Root context minted at submit; owns the ``cluster.request`` span.
    ctx: object = None
    #: Child context for the current dispatch attempt; its span_id rides
    #: the wire as ``Request.parent_span_id``.
    dispatch_ctx: object = None
    submitted_at: float = 0.0
    dispatched_at: float = 0.0


@dataclass
class WorkerHandle:
    """Supervisor-side state machine for one worker slot."""

    spec: WorkerSpec
    request_q: object = None
    process: object = None
    state: WorkerState = WorkerState.STARTING
    started_at: float = 0.0
    last_heartbeat: float = 0.0
    restarts: int = 0
    death_times: list = field(default_factory=list)
    next_restart_at: Optional[float] = None
    #: One-shot spec overrides applied to the next respawn (chaos).
    respawn_overrides: dict = field(default_factory=dict)
    # -- last-known worker-reported stats -------------------------------------
    requests_served: int = 0
    optimizer_calls: int = 0
    lambda_violations: int = 0
    warm_templates: int = 0
    cold_templates: int = 0
    warm_instances: int = 0
    bye_received: bool = False

    @property
    def worker_id(self) -> str:
        return self.spec.worker_id

    @property
    def incarnation(self) -> int:
        return self.spec.incarnation

    @property
    def routable(self) -> bool:
        return self.state in (WorkerState.STARTING, WorkerState.LIVE)


class ClusterSupervisor:
    """Owns the worker fleet and the cluster-wide request interface."""

    def __init__(
        self,
        templates: list[QueryTemplate],
        num_workers: int,
        snapshot_dir: str,
        policy: Optional[SupervisorPolicy] = None,
        launcher=None,
        clock: Clock = SYSTEM_CLOCK,
        obs: Optional[Observability] = None,
        **spec_kwargs,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.templates = {t.name: t for t in templates}
        self.policy = policy if policy is not None else SupervisorPolicy()
        self.launcher = launcher if launcher is not None else ProcessLauncher()
        self.clock = clock
        # ``trace=True`` in spec_kwargs turns on distributed tracing end
        # to end: it reaches every WorkerSpec (workers record + ship
        # spans) and enables the supervisor's own recorder, which holds
        # the connected cross-process tree.
        self._trace = bool(spec_kwargs.get("trace", False)) or (
            obs is not None and obs.spans.enabled
        )
        self.obs = obs if obs is not None else Observability(
            clock=clock, spans_enabled=self._trace
        )
        self._spec_kwargs = spec_kwargs
        self.snapshot_dir = snapshot_dir
        self.workers: dict[str, WorkerHandle] = {}
        for i in range(num_workers):
            wid = f"w{i}"
            self.workers[wid] = WorkerHandle(spec=WorkerSpec(
                worker_id=wid,
                incarnation=0,
                templates=tuple(templates),
                snapshot_dir=snapshot_dir,
                **spec_kwargs,
            ))
        self.ring = HashRing(sorted(self.workers), vnodes=self.policy.vnodes)
        self.response_q = self.launcher.make_response_queue()
        self._lock = threading.RLock()
        self._pending: dict[int, _Pending] = {}
        self._next_request_id = 0
        self._registry_history: dict[tuple[str, int], dict] = {}
        self._outcome_history: dict[tuple[str, int], dict] = {}
        self._violation_history: dict[tuple[str, int], int] = {}
        # Latest per-template anchor attribution per worker (not per
        # incarnation): a warm-started replacement *adopts* its
        # predecessor's counters with the snapshot, so keeping dead
        # incarnations too would double-count the inherited hits.
        self._anchor_history: dict[str, dict] = {}
        # Per-worker merged remains of dead incarnations beyond the
        # retention window (see SupervisorPolicy.registry_retention).
        self._registry_tombstones: dict[str, dict] = {}
        self._outcome_tombstones: dict[str, dict] = {}
        self._violation_tombstones: dict[str, int] = {}
        self._monitor: Optional[threading.Thread] = None
        self._stopping = threading.Event()
        self._closed = False
        self.submitted = 0
        reg = self.obs.registry
        self._restarts = reg.counter(
            RESTARTS_TOTAL, "Worker restarts by the supervisor",
            labels=("worker",),
        )
        self._deaths = reg.counter(
            DEATHS_TOTAL, "Worker deaths by detection reason",
            labels=("worker", "reason"),
        )
        self._retries = reg.counter(
            RETRIES_TOTAL, "In-flight requests re-routed to a peer",
        ).labels()
        self._lost = reg.counter(
            WORKER_LOST_TOTAL, "Requests resolved as WorkerLostError",
        ).labels()
        self._workers_gauge = reg.gauge(
            WORKERS_GAUGE, "Workers per lifecycle state", labels=("state",),
        )

    # -- lifecycle ------------------------------------------------------------

    def start(self, monitor: bool = True) -> "ClusterSupervisor":
        """Launch every worker; optionally start the monitor thread.

        ``monitor=False`` leaves message pumping and liveness ticks to
        the caller (:meth:`pump`, :meth:`tick`) — the deterministic mode
        the supervisor test-suite drives with a fake clock.
        """
        now = self.clock.monotonic()
        with self._lock:
            for handle in self.workers.values():
                self._launch(handle, now)
        if monitor:
            self._monitor = threading.Thread(
                target=self._monitor_loop, name="cluster-monitor", daemon=True
            )
            self._monitor.start()
        return self

    def _launch(self, handle: WorkerHandle, now: float) -> None:
        handle.request_q, handle.process = self.launcher.launch(
            handle.spec, self.response_q
        )
        handle.state = WorkerState.STARTING
        handle.started_at = now
        handle.last_heartbeat = now
        handle.next_restart_at = None
        handle.bye_received = False
        self._update_worker_gauge()

    def _monitor_loop(self) -> None:
        interval = min(0.05, self.policy.heartbeat_timeout / 4)
        while not self._stopping.is_set():
            self.pump(timeout=interval)
            self.tick()

    def pump(self, timeout: float = 0.0) -> int:
        """Drain available worker messages; returns messages handled."""
        import queue as queue_mod

        handled = 0
        while True:
            try:
                message = self.response_q.get(
                    timeout=timeout if handled == 0 else 0
                )
            except queue_mod.Empty:
                return handled
            except (EOFError, OSError):  # queue torn down during close
                return handled
            self._handle_message(message)
            handled += 1

    # -- submission / routing -------------------------------------------------

    def submit(
        self,
        template_name: str,
        sv,
        sequence_id: int = -1,
    ):
        """Route one request; returns a Future resolving to a Response.

        The future always terminates: with the worker's
        :class:`Response` (served, shed or degraded — inspect ``ok`` /
        ``error_kind``), or exceptionally with :class:`WorkerLostError`
        when the owning worker and every retry peer died under it.
        """
        from concurrent.futures import Future

        if template_name not in self.templates:
            raise KeyError(f"template {template_name!r} is not registered")
        fut: Future = Future()
        with self._lock:
            if self._closed:
                fut.set_exception(WorkerLostError("-", "supervisor closed"))
                return fut
            request = Request(
                request_id=self._next_request_id,
                template_name=template_name,
                sv=tuple(float(s) for s in sv),
                sequence_id=sequence_id,
            )
            self._next_request_id += 1
            self.submitted += 1
            ctx = submitted_at = None
            if self._trace:
                ctx = start_trace(ids=self.obs.spans.ids)
                submitted_at = self.clock.monotonic()
            # The caller's handle into forensics: every future knows the
            # trace its request belongs to ("" when tracing is off).
            fut.trace_id = ctx.trace_id if ctx is not None else ""
            if not self._dispatch(fut, request, ctx=ctx,
                                  submitted_at=submitted_at or 0.0):
                self._resolve_lost(
                    fut, request, "no routable workers",
                    ctx=ctx, submitted_at=submitted_at or 0.0,
                )
        return fut

    def _dispatch(
        self, fut, request: Request, ctx=None, submitted_at: float = 0.0
    ) -> bool:
        """Send to the ring owner among routable workers; False if none."""
        alive = [w for w, h in self.workers.items() if h.routable]
        if not alive:
            return False
        owner = self.ring.owner(request.template_name, alive)
        handle = self.workers[owner]
        dispatch_ctx = None
        dispatched_at = 0.0
        if ctx is not None:
            # One cluster.dispatch span per attempt: the worker parents
            # its spans under this attempt's ID, so a re-dispatch after
            # a death grows a *sibling* subtree in the same trace.
            dispatch_ctx = ctx.child(self.obs.spans.ids)
            dispatched_at = self.clock.monotonic()
            request = replace(
                request,
                trace_id=ctx.trace_id,
                parent_span_id=dispatch_ctx.span_id,
            )
        self._pending[request.request_id] = _Pending(
            future=fut, request=request, worker_id=owner,
            ctx=ctx, dispatch_ctx=dispatch_ctx,
            submitted_at=submitted_at, dispatched_at=dispatched_at,
        )
        try:
            handle.request_q.put(request)
        except (OSError, ValueError):
            # Queue died with the worker between checks; treat as death.
            del self._pending[request.request_id]
            self._declare_dead(handle, reason="queue_closed")
            return self._dispatch(fut, request, ctx=ctx,
                                  submitted_at=submitted_at)
        return True

    # -- span emission (no-ops when tracing is off) ---------------------------

    def _record_dispatch(
        self, pending: _Pending, worker_id: str, incarnation: int,
        outcome: str,
    ) -> None:
        if pending.dispatch_ctx is None:
            return
        now = self.clock.monotonic()
        with activate(pending.dispatch_ctx):
            self.obs.spans.record(
                "cluster.dispatch",
                pending.dispatched_at,
                now - pending.dispatched_at,
                span_id=pending.dispatch_ctx.span_id,
                worker=worker_id,
                incarnation=incarnation,
                attempt=pending.request.attempt,
                outcome=outcome,
            )

    def _record_root(
        self, ctx, submitted_at: float, request: Request, outcome: str,
        **attrs,
    ) -> None:
        if ctx is None:
            return
        now = self.clock.monotonic()
        with activate(ctx):
            self.obs.spans.record(
                "cluster.request",
                submitted_at,
                now - submitted_at,
                span_id=ctx.span_id,
                template=request.template_name,
                seq=request.sequence_id,
                outcome=outcome,
                attempts=request.attempt + 1,
                **attrs,
            )

    def _ingest_worker_spans(self, message: Response) -> None:
        if not self._trace or not message.spans:
            return
        for row in message.spans:
            try:
                self.obs.spans.ingest(Span.from_jsonable(row))
            except (AttributeError, KeyError, TypeError, ValueError):
                continue  # a malformed row must not poison the pump

    def _resolve_lost(
        self, fut, request: Request, detail: str,
        ctx=None, submitted_at: float = 0.0,
    ) -> None:
        self._lost.inc()
        audit = self.obs.audit
        audit.response(request.template_name, "shed")
        audit.certificate(request.template_name, "shed")
        audit.degraded(request.template_name, "shed", "worker_lost")
        self._record_root(
            ctx, submitted_at, request, "shed",
            reason="worker_lost", detail=detail,
        )
        if not fut.done():
            fut.set_exception(WorkerLostError("-", detail))

    # -- message handling -----------------------------------------------------

    def _handle_message(self, message) -> None:
        with self._lock:
            if isinstance(message, Response):
                self._on_response(message)
            elif isinstance(message, Heartbeat):
                self._on_heartbeat(message)
            elif isinstance(message, Ready):
                self._on_ready(message)
            elif isinstance(message, Bye):
                self._on_bye(message)

    @staticmethod
    def _stale(handle: Optional[WorkerHandle], incarnation: int) -> bool:
        """Messages from written-off or replaced incarnations are stale.

        The incarnation guard covers post-restart stragglers; the state
        guard covers the window between declaring death and the restart,
        when the incarnation hasn't advanced yet but the handle has
        already been written off (its process reaped, its partition
        re-routed) — a zombie heartbeat must not refresh its stats.
        """
        return (
            handle is None
            or handle.incarnation != incarnation
            or handle.state in (WorkerState.DEAD, WorkerState.QUARANTINED)
        )

    def _on_ready(self, message: Ready) -> None:
        handle = self.workers.get(message.worker_id)
        if self._stale(handle, message.incarnation):
            return  # a previous incarnation's late boot; ignore
        handle.state = WorkerState.LIVE
        handle.last_heartbeat = self.clock.monotonic()
        handle.warm_templates = message.warm_templates
        handle.cold_templates = message.cold_templates
        handle.warm_instances = message.warm_instances
        self._update_worker_gauge()

    def _on_heartbeat(self, message: Heartbeat) -> None:
        handle = self.workers.get(message.worker_id)
        if self._stale(handle, message.incarnation):
            return
        handle.last_heartbeat = self.clock.monotonic()
        if handle.state is WorkerState.STARTING:
            handle.state = WorkerState.LIVE
            self._update_worker_gauge()
        handle.requests_served = message.requests_served
        handle.optimizer_calls = message.optimizer_calls
        handle.lambda_violations = message.lambda_violations
        key = (message.worker_id, message.incarnation)
        self._registry_history[key] = message.registry
        self._outcome_history[key] = message.outcomes
        self._violation_history[key] = message.lambda_violations
        if message.anchor_summary:
            self._anchor_history[message.worker_id] = message.anchor_summary

    def _on_bye(self, message: Bye) -> None:
        handle = self.workers.get(message.worker_id)
        if handle is None or handle.incarnation != message.incarnation:
            return
        handle.bye_received = True
        handle.requests_served = message.requests_served

    def _on_response(self, message: Response) -> None:
        pending = self._pending.pop(message.request_id, None)
        if pending is None:
            return  # late duplicate after a re-route already resolved it
        self._account_response(message)
        if pending.ctx is not None:
            self._ingest_worker_spans(message)
            if message.ok and message.certified:
                outcome = "certified"
            elif message.ok:
                outcome = "uncertified"
            else:
                outcome = "shed"
            self._record_dispatch(
                pending, message.worker_id, message.incarnation, "response"
            )
            self._record_root(
                pending.ctx, pending.submitted_at, pending.request, outcome,
                worker=message.worker_id,
            )
        if not pending.future.done():
            pending.future.set_result(message)

    def _account_response(self, message: Response) -> None:
        """The exactly-one-outcome ledger entry for one resolution."""
        audit = self.obs.audit
        template = message.template_name
        if message.ok and message.certified:
            audit.response(template, "certified")
            audit.certificate(template, message.certificate)
            if message.certified_bound is not None and not self._lambda_relaxed:
                audit.certified_bound(
                    template, message.certified_bound,
                    self._lambda_for_template(),
                    kind=message.certificate,
                )
        elif message.ok:
            audit.response(template, "uncertified")
            audit.certificate(template, "uncertified")
            audit.degraded(template, "uncertified", message.check or "degraded")
        else:
            audit.response(template, "shed")
            audit.certificate(template, "shed")
            audit.degraded(
                template, "shed", message.error_reason or message.error_kind
            )

    @property
    def _lambda_relaxed(self) -> bool:
        # With in-worker brownout the effective λ can legitimately float
        # above the configured one; the worker-side audit (which sees
        # the relaxed λ in force) remains the violation authority then.
        return bool(self._spec_kwargs.get("overload"))

    def _lambda_for_template(self) -> float:
        return float(self._spec_kwargs.get("lam", 2.0))

    # -- liveness / recovery --------------------------------------------------

    def attach_slo(self, objectives=None, min_interval_s: float = 0.2):
        """Attach burn-rate SLOs over the merged cluster view.

        Evaluated from :meth:`tick` (so the monitor thread keeps alerts
        current) against :meth:`merged_snapshot`: outcome objectives
        read the supervisor's authoritative ledger, latency reads every
        (worker, incarnation) serving histogram — including dead
        incarnations' retained counts, which is what makes the
        differencing restart-proof.
        """
        return self.obs.attach_slo(
            objectives if objectives is not None else cluster_objectives(),
            min_interval_s=min_interval_s,
        )

    def tick(self) -> None:
        """One liveness pass: detect deaths, fire due restarts."""
        if self.obs.slo is not None:
            self.obs.slo.evaluate(self.merged_snapshot())
        now = self.clock.monotonic()
        with self._lock:
            for handle in self.workers.values():
                if handle.state is WorkerState.STARTING:
                    if (
                        handle.process is not None
                        and not self._process_alive(handle)
                    ):
                        self._declare_dead(handle, reason="exited")
                    elif now - handle.started_at > self.policy.startup_timeout:
                        self._declare_dead(handle, reason="startup_timeout")
                elif handle.state is WorkerState.LIVE:
                    if not self._process_alive(handle):
                        self._declare_dead(handle, reason="exited")
                    elif (
                        now - handle.last_heartbeat
                        > self.policy.heartbeat_timeout
                    ):
                        self._declare_dead(handle, reason="heartbeat_timeout")
                elif handle.state is WorkerState.DEAD:
                    if (
                        handle.next_restart_at is not None
                        and now >= handle.next_restart_at
                    ):
                        self._restart(handle, now)

    @staticmethod
    def _process_alive(handle: WorkerHandle) -> bool:
        is_alive = getattr(handle.process, "is_alive", None)
        return bool(is_alive()) if is_alive is not None else True

    def _declare_dead(self, handle: WorkerHandle, reason: str) -> None:
        if handle.state in (WorkerState.DEAD, WorkerState.QUARANTINED):
            return
        now = self.clock.monotonic()
        self._deaths.labels(worker=handle.worker_id, reason=reason).inc()
        # Best-effort reap: a stalled-but-alive process is killed so the
        # replacement can't race it on the snapshot directory.
        for op in ("kill", "terminate"):
            fn = getattr(handle.process, op, None)
            if fn is not None:
                try:
                    fn()
                except OSError:  # pragma: no cover - already gone
                    pass
                break
        handle.state = WorkerState.DEAD
        handle.death_times.append(now)
        cutoff = now - self.policy.flap_window
        handle.death_times = [t for t in handle.death_times if t >= cutoff]
        if len(handle.death_times) >= self.policy.flap_threshold:
            # Flapping: stop the restart loop; the partition stays
            # re-routed to peers (the process-scope quarantine).
            handle.state = WorkerState.QUARANTINED
            handle.next_restart_at = None
        else:
            backoff = min(
                self.policy.restart_backoff_base * (2 ** handle.restarts),
                self.policy.restart_backoff_cap,
            )
            handle.next_restart_at = now + backoff
        self._update_worker_gauge()
        self._reroute_pendings(handle.worker_id)

    def _reroute_pendings(self, dead_worker: str) -> None:
        """Drain the dead worker's in-flight requests: retry or resolve."""
        stranded = [
            p for p in self._pending.values() if p.worker_id == dead_worker
        ]
        dead_incarnation = self.workers[dead_worker].incarnation
        for pending in stranded:
            del self._pending[pending.request.request_id]
            request = pending.request
            # The attempt that died still becomes a span: its worker's
            # own spans are lost with the process, so this is the only
            # record that incarnation ever held the request.
            self._record_dispatch(
                pending, dead_worker, dead_incarnation, "worker_died"
            )
            if request.attempt < self.policy.max_retries:
                retry = replace(request, attempt=request.attempt + 1)
                if self._dispatch(pending.future, retry, ctx=pending.ctx,
                                  submitted_at=pending.submitted_at):
                    self._retries.inc()
                    continue
            self._resolve_lost(
                pending.future, request, f"worker {dead_worker} died",
                ctx=pending.ctx, submitted_at=pending.submitted_at,
            )

    def _restart(self, handle: WorkerHandle, now: float) -> None:
        # Chaos one-shots never survive into a replacement unless the
        # injector re-arms them explicitly via respawn_overrides.
        changes = {"die_after_requests": None, "slow_start_seconds": 0.0}
        changes.update(handle.respawn_overrides)
        handle.respawn_overrides = {}
        handle.spec = replace(
            handle.spec, incarnation=handle.incarnation + 1, **changes
        )
        handle.restarts += 1
        self._restarts.labels(worker=handle.worker_id).inc()
        self._compact_history(handle.worker_id, handle.incarnation)
        self._launch(handle, now)

    # -- dead-incarnation history retention -----------------------------------

    def _compact_history(self, worker_id: str, live_incarnation: int) -> None:
        """Fold old dead incarnations into the worker's tombstone row.

        Keeps the newest ``policy.registry_retention`` dead incarnations
        verbatim (their per-incarnation series stay individually visible
        in the merged exposition); everything older is merged — counters
        and histograms sum, gauges keep the newest value — so totals
        stay monotone while per-worker history stays O(retention).
        """
        keep = max(0, self.policy.registry_retention)
        dead = sorted(
            inc for (wid, inc) in self._registry_history
            if wid == worker_id and inc < live_incarnation
        )
        for inc in dead[:max(0, len(dead) - keep)]:
            key = (worker_id, inc)
            self._merge_snapshot_into(
                self._registry_tombstones.setdefault(worker_id, {}),
                self._registry_history.pop(key),
            )
            outcomes = self._outcome_tombstones.setdefault(worker_id, {})
            for name, count in self._outcome_history.pop(key, {}).items():
                outcomes[name] = outcomes.get(name, 0) + count
            self._violation_tombstones[worker_id] = (
                self._violation_tombstones.get(worker_id, 0)
                + self._violation_history.pop(key, 0)
            )

    @staticmethod
    def _merge_snapshot_into(acc: dict, snapshot: dict) -> None:
        """Sum one registry snapshot into an accumulated tombstone."""
        for name, family in snapshot.items():
            kind = family.get("kind", "counter")
            target = acc.setdefault(name, {
                "kind": kind, "help": family.get("help", ""), "series": [],
            })
            index = {
                tuple(sorted(row.get("labels", {}).items())): row
                for row in target["series"]
            }
            for row in family.get("series", []):
                key = tuple(sorted(row.get("labels", {}).items()))
                into = index.get(key)
                if into is None:
                    copied = {k: v for k, v in row.items()}
                    copied["labels"] = dict(row.get("labels", {}))
                    if "buckets" in copied:
                        copied["buckets"] = [
                            list(pair) for pair in copied["buckets"]
                        ]
                    index[key] = copied
                    target["series"].append(copied)
                elif kind == "gauge":
                    into["value"] = row.get("value", 0.0)
                elif "buckets" in row:
                    into["count"] = into.get("count", 0) + row.get("count", 0)
                    into["sum"] = into.get("sum", 0.0) + row.get("sum", 0.0)
                    counts = {
                        str(edge): c for edge, c in into.get("buckets", [])
                    }
                    for edge, c in row.get("buckets", []):
                        counts[str(edge)] = counts.get(str(edge), 0) + c
                    into["buckets"] = [
                        [edge, counts[str(edge)]]
                        for edge, _ in row.get("buckets", [])
                    ]
                else:
                    into["value"] = (
                        into.get("value", 0.0) + row.get("value", 0.0)
                    )

    def _update_worker_gauge(self) -> None:
        counts = {state: 0 for state in WorkerState}
        for handle in self.workers.values():
            counts[handle.state] += 1
        for state, count in counts.items():
            self._workers_gauge.labels(state=state.value).set(count)

    # -- reporting ------------------------------------------------------------

    def worker_lambda_violations(self) -> int:
        """Σ of every incarnation's last-reported λ-violation count."""
        with self._lock:
            return sum(self._violation_history.values()) + sum(
                self._violation_tombstones.values()
            )

    def trace_spans(self, trace_id: str) -> list:
        """Every retained span of one trace (supervisor + re-ingested
        worker spans), in recording order — the forensics input."""
        return self.obs.spans.trace(trace_id)

    def _labeled_sources(self) -> dict:
        """Label → raw registry snapshot, pre-merge (lock held inside)."""
        with self._lock:
            sources = {"supervisor": self.obs.registry.snapshot()}
            for (wid, inc), snapshot in sorted(self._registry_history.items()):
                sources[f"{wid}:{inc}"] = snapshot
            for wid, snapshot in sorted(self._registry_tombstones.items()):
                sources[f"{wid}:tomb"] = snapshot
        return sources

    def merged_snapshot(self) -> dict:
        """Supervisor + workers + tombstones as one labeled snapshot."""
        return merge_labeled_snapshots(self._labeled_sources())

    def anchor_summaries(self) -> dict:
        """Latest heartbeat anchor attribution per worker."""
        with self._lock:
            return {
                wid: {t: dict(s) for t, s in summary.items()}
                for wid, summary in sorted(self._anchor_history.items())
            }

    def doctor_report(self) -> dict:
        """Cluster-merged ``repro doctor`` view.

        Recomputed entirely from the same labeled snapshots the merged
        Prometheus exposition renders (plus the heartbeats' anchor
        summaries), so its totals are the supervisor's totals by
        construction — no live worker is consulted.
        """
        from ..obs.doctor import doctor_from_sources

        return doctor_from_sources(
            self._labeled_sources(), self.anchor_summaries()
        )

    def cluster_report(self) -> dict:
        """One health view: fleet table + cluster-wide accounting."""
        now = self.clock.monotonic()
        with self._lock:
            rows = []
            for wid in sorted(self.workers):
                handle = self.workers[wid]
                rows.append({
                    "worker": wid,
                    "incarnation": handle.incarnation,
                    "state": handle.state.value,
                    "restarts": handle.restarts,
                    "requests_served": handle.requests_served,
                    "optimizer_calls": handle.optimizer_calls,
                    "warm_templates": handle.warm_templates,
                    "cold_templates": handle.cold_templates,
                    "warm_instances": handle.warm_instances,
                    "heartbeat_age": round(now - handle.last_heartbeat, 3),
                    "lambda_violations": handle.lambda_violations,
                })
            audit = self.obs.audit
            outcomes = audit.outcome_totals()
            return {
                "workers": rows,
                "submitted": self.submitted,
                "in_flight": len(self._pending),
                "outcomes": outcomes,
                "resolved": sum(outcomes.values()),
                "retries": int(self.obs.registry.total(RETRIES_TOTAL)),
                "worker_lost": int(self.obs.registry.total(WORKER_LOST_TOTAL)),
                "supervisor_lambda_violations": audit.total_violations,
                "worker_lambda_violations": (
                    sum(self._violation_history.values())
                    + sum(self._violation_tombstones.values())
                ),
                "registry_incarnations": len(self._registry_history),
                "registry_tombstones": len(self._registry_tombstones),
                "snapshot_dir": self.snapshot_dir,
                **(
                    {"slo": self.obs.slo.report()}
                    if self.obs.slo is not None else {}
                ),
            }

    def prometheus(self) -> str:
        """Supervisor + every (worker, incarnation) registry, one text.

        Series are distinguished by an injected ``source`` label
        (``"supervisor"`` for the supervisor's own registry, else
        ``"<id>:<incarnation>"``); dead incarnations keep contributing
        their last heartbeat's counts, so the exposition is monotone
        across crashes.
        """
        return snapshot_to_prometheus(self.merged_snapshot())

    # -- shutdown -------------------------------------------------------------

    def close(self, timeout: Optional[float] = None) -> None:
        """Graceful drain: stop workers, resolve leftovers, never hang."""
        deadline = self.clock.monotonic() + (
            timeout if timeout is not None else self.policy.drain_timeout
        )
        with self._lock:
            if self._closed:
                return
            self._closed = True
            draining = []
            for handle in self.workers.values():
                if handle.routable:
                    handle.state = WorkerState.DRAINING
                    try:
                        handle.request_q.put(Control("stop"))
                    except (OSError, ValueError):
                        pass
                    draining.append(handle)
            self._update_worker_gauge()
        self._stopping.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)
        # Pump until every draining worker said Bye or the budget runs out.
        while self.clock.monotonic() < deadline:
            self.pump(timeout=0.05)
            with self._lock:
                if all(h.bye_received for h in draining):
                    break
        for handle in draining:
            terminate = getattr(handle.process, "terminate", None)
            if not handle.bye_received and terminate is not None:
                terminate()
            join = getattr(handle.process, "join", None)
            if join is not None:
                join(timeout=2.0)
            with self._lock:
                handle.state = WorkerState.DEAD
        self.pump(timeout=0.0)  # late responses that raced the drain
        with self._lock:
            leftovers = list(self._pending.values())
            self._pending.clear()
            for pending in leftovers:
                self._resolve_lost(
                    pending.future, pending.request, "supervisor shutdown"
                )
            self._update_worker_gauge()

    def __enter__(self) -> "ClusterSupervisor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
