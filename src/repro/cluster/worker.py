"""The worker process: a full serving stack behind two queues.

Each worker runs a complete single-process tier —
:class:`~repro.serving.manager.ConcurrentPQOManager` over resilient
engines with its own observability handle — and speaks the
:mod:`~repro.cluster.transport` protocol: requests in on a dedicated
queue, responses and heartbeats out on the shared supervisor queue.

Workers register *every* cluster template, not just their routed
partition: routing is the supervisor's concern, and a worker that
already has a template registered can absorb a dead peer's partition
the instant the supervisor re-routes it (warm-started from the peer's
last published snapshot where one exists).

``worker_main`` is the process entry point and must stay a module-level
function with a picklable :class:`WorkerSpec` argument so the spawn
start method works — spawn is the default here because fork would
duplicate the supervisor's monitor thread state into every child.
"""

from __future__ import annotations

import os
import queue
import threading
from dataclasses import dataclass, field
from typing import Optional

from ..catalog.registry import get_database
from ..engine.resilience import resilient_engine_factory
from ..harness.oracle import Oracle
from ..query.instance import QueryInstance, SelectivityVector
from ..query.template import QueryTemplate
from ..serving.latency import simulated_latency_wrapper
from ..serving.manager import ConcurrentPQOManager
from ..serving.overload import OverloadPolicy, ShedError, ShutdownError
from .snapshots import SnapshotStore
from .transport import Bye, Control, Heartbeat, Ready, Request, Response

#: Exit code a chaos-killed worker dies with (mirrors SIGKILL's 128+9).
CHAOS_EXIT_CODE = 137


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker process needs to boot — fully picklable."""

    worker_id: str
    incarnation: int
    templates: tuple[QueryTemplate, ...]
    snapshot_dir: str
    lam: float = 2.0
    db_scale: float = 1.0
    db_seed: int = 42
    threads: int = 4
    check_mode: Optional[str] = None
    heartbeat_interval: float = 0.2
    snapshot_interval: float = 1.0
    #: Simulated per-call engine latency (0 = raw speed).
    optimize_seconds: float = 0.0
    recost_seconds: float = 0.0
    #: Overload protection (brownout ladder) inside the worker.
    overload: bool = False
    #: Recost served plans at the served sVector and ship the cost in
    #: each response, so an external oracle can audit λ-certificates.
    verify: bool = False
    #: Enable distributed tracing: the worker records spans under the
    #: supervisor-issued trace context and ships each request's spans
    #: back on its Response.
    trace: bool = False
    # -- chaos hooks (seeded by the fault injector) ---------------------------
    #: Hard-exit (as if kill -9) after serving this many requests.
    die_after_requests: Optional[int] = None
    #: Sleep this long before signalling Ready (slow-start fault).
    slow_start_seconds: float = 0.0


class _MultiDB:
    """Database shim dispatching ``engine(template)`` across catalogs.

    :class:`~repro.core.manager.PQOManager` binds one database, but a
    worker's templates may span every catalog database; the manager only
    ever calls ``database.engine(template)``, so this shim resolves the
    template's own database lazily through the memoized registry.
    """

    def __init__(self, scale: float, seed: int) -> None:
        self.scale = scale
        self.seed = seed

    def engine(self, template: QueryTemplate):
        return get_database(
            template.database, scale=self.scale, seed=self.seed
        ).engine(template)


class ClusterWorker:
    """The in-process serving half of one worker.

    Owns the manager, the snapshot publisher and the heartbeat thread;
    :func:`worker_main` drives it from the request queue.  Kept separate
    from the process scaffolding so tests can exercise warm-start and
    serving logic in-process without spawning.
    """

    def __init__(self, spec: WorkerSpec, response_q) -> None:
        self.spec = spec
        self.response_q = response_q
        self.store = SnapshotStore(spec.snapshot_dir)
        self.requests_served = 0
        self.heartbeat_seq = 0
        self.heartbeats_stalled = threading.Event()
        self._stopping = threading.Event()
        self._templates = {t.name: t for t in spec.templates}
        self._oracles: dict[str, Oracle] = {}

        from ..obs import Observability, TraceCollector

        self.obs = Observability(spans_enabled=spec.trace)
        self.collector: Optional[TraceCollector] = None
        if spec.trace:
            self.collector = TraceCollector()
            self.obs.spans.attach_sink(self.collector)
        wrappers = [resilient_engine_factory(seed=spec.db_seed)]
        if spec.optimize_seconds or spec.recost_seconds:
            wrappers.append(simulated_latency_wrapper(
                optimize_seconds=spec.optimize_seconds,
                recost_seconds=spec.recost_seconds,
                selectivity_seconds=0.0,
            ))

        def wrap(engine):
            for w in wrappers:
                engine = w(engine)
            return engine

        self.manager = ConcurrentPQOManager(
            database=_MultiDB(spec.db_scale, spec.db_seed),
            default_lambda=spec.lam,
            max_workers=spec.threads,
            check_mode=spec.check_mode,
            overload=OverloadPolicy() if spec.overload else None,
            obs=self.obs,
            engine_wrapper=wrap,
        )
        self.warm_templates = 0
        self.cold_templates = 0
        self.warm_instances = 0
        for template in spec.templates:
            state = self.manager.register(template)
            restored = self.store.load(template.name)
            if restored is not None and restored.num_instances > 0:
                state.scr.cache.adopt(restored)
                self.warm_templates += 1
                self.warm_instances += restored.num_instances
            else:
                self.cold_templates += 1

    # -- serving --------------------------------------------------------------

    def serve(self, request: Request) -> None:
        """Dispatch one request; the response is pushed asynchronously."""
        instance = QueryInstance(
            request.template_name,
            sv=SelectivityVector.from_sequence(request.sv),
            sequence_id=request.sequence_id,
        )
        if self.spec.trace and request.trace_id:
            # Re-establish the supervisor's context: the wire carries
            # (trace, dispatch-span) and the manager's per-submission
            # child context parents everything this worker records under
            # that dispatch span — one connected tree across processes.
            from ..obs.tracectx import TraceContext, activate

            wire = TraceContext(
                trace_id=request.trace_id,
                span_id=request.parent_span_id,
            )
            with activate(wire):
                fut = self.manager.submit(instance)
        else:
            fut = self.manager.submit(instance)
        fut.add_done_callback(lambda f: self._respond(request, f))

    def _respond(self, request: Request, fut) -> None:
        spec = self.spec
        trace_spans: tuple = ()
        if self.collector is not None and request.trace_id:
            trace_spans = tuple(
                span.to_jsonable()
                for span in self.collector.pop(request.trace_id)
            )
        exc = fut.exception()
        if exc is None:
            choice = fut.result()
            plan_cost = None
            if spec.verify and choice.certified:
                plan_cost = self._plan_cost(
                    request.template_name, choice.shrunken_memo, request.sv
                )
            response = Response(
                request_id=request.request_id,
                worker_id=spec.worker_id,
                incarnation=spec.incarnation,
                template_name=request.template_name,
                ok=True,
                sequence_id=request.sequence_id,
                check=choice.check,
                plan_signature=choice.plan_signature,
                certified=choice.certified,
                certificate=choice.certificate,
                certified_bound=choice.certified_bound,
                coverage=choice.coverage,
                used_optimizer=choice.used_optimizer,
                recost_calls=choice.recost_calls,
                plan_cost_at_sv=plan_cost,
                spans=trace_spans,
            )
        else:
            if isinstance(exc, ShedError):
                kind, reason = "shed", exc.reason
            elif isinstance(exc, ShutdownError):
                kind, reason = "shutdown", str(exc)
            else:
                kind, reason = "error", f"{type(exc).__name__}: {exc}"
            response = Response(
                request_id=request.request_id,
                worker_id=spec.worker_id,
                incarnation=spec.incarnation,
                template_name=request.template_name,
                ok=False,
                sequence_id=request.sequence_id,
                error_kind=kind,
                error_reason=reason,
                spans=trace_spans,
            )
        self.requests_served += 1
        self.response_q.put(response)
        if (
            spec.die_after_requests is not None
            and self.requests_served >= spec.die_after_requests
        ):
            # Simulated kill -9: no drain, no final snapshot, no Bye —
            # exactly what the crash-recovery path must absorb.
            os._exit(CHAOS_EXIT_CODE)

    def _plan_cost(
        self, template_name: str, shrunken, sv: tuple[float, ...]
    ) -> Optional[float]:
        if shrunken is None:  # degraded paths may carry no memo
            return None
        oracle = self._oracles.get(template_name)
        if oracle is None:
            template = self._templates[template_name]
            db = get_database(
                template.database, scale=self.spec.db_scale, seed=self.spec.db_seed
            )
            oracle = Oracle(db, template)
            self._oracles[template_name] = oracle
        return oracle.plan_cost(
            shrunken, SelectivityVector.from_sequence(sv)
        )

    # -- heartbeats / snapshots -----------------------------------------------

    def heartbeat(self) -> None:
        if self.heartbeats_stalled.is_set():
            return
        self.heartbeat_seq += 1
        audit = self.obs.audit
        self.response_q.put(Heartbeat(
            worker_id=self.spec.worker_id,
            incarnation=self.spec.incarnation,
            seq=self.heartbeat_seq,
            requests_served=self.requests_served,
            optimizer_calls=self.optimizer_calls,
            outcomes=audit.outcome_totals(),
            registry=self.obs.registry.snapshot(),
            lambda_violations=audit.total_violations,
            anchor_summary=self.manager.anchor_summaries(),
        ))

    @property
    def optimizer_calls(self) -> int:
        return sum(
            s.scr.optimizer_calls for s in self.manager._templates.values()
        )

    def publish_snapshots(self) -> int:
        """Publish every template whose cache holds instances.

        Serialization happens under the shard lock (a rebalance-point
        style exclusive hold), the atomic file write outside it.
        """
        published = 0
        for name, state in sorted(self.manager._templates.items()):
            shard = self.manager.shard(name)
            with shard.lock:
                if state.scr.cache.num_instances == 0:
                    continue
                text = SnapshotStore.serialize(state.scr.cache)
            self.store.publish_text(name, text)
            published += 1
        return published

    def _background_loop(self, interval: float, action) -> None:
        while not self._stopping.wait(interval):
            action()

    def start_background(self) -> None:
        for interval, action, name in (
            (self.spec.heartbeat_interval, self.heartbeat, "heartbeat"),
            (self.spec.snapshot_interval, self.publish_snapshots, "snapshots"),
        ):
            t = threading.Thread(
                target=self._background_loop, args=(interval, action),
                name=f"{self.spec.worker_id}-{name}", daemon=True,
            )
            t.start()

    def stop(self) -> None:
        """Graceful drain: serve everything accepted, snapshot, stop."""
        self._stopping.set()
        self.manager.close(wait=True)
        self.publish_snapshots()
        self.response_q.put(Bye(
            worker_id=self.spec.worker_id,
            incarnation=self.spec.incarnation,
            requests_served=self.requests_served,
        ))


def worker_main(spec: WorkerSpec, request_q, response_q) -> None:
    """Process entry point: boot, signal Ready, serve until stopped."""
    if spec.slow_start_seconds > 0:
        import time

        time.sleep(spec.slow_start_seconds)
    worker = ClusterWorker(spec, response_q)
    response_q.put(Ready(
        worker_id=spec.worker_id,
        incarnation=spec.incarnation,
        warm_templates=worker.warm_templates,
        cold_templates=worker.cold_templates,
        warm_instances=worker.warm_instances,
    ))
    worker.start_background()
    while True:
        try:
            message = request_q.get(timeout=0.1)
        except queue.Empty:
            continue
        if isinstance(message, Control):
            if message.kind == "stop":
                worker.stop()
                return
            if message.kind == "stall_heartbeats":
                worker.heartbeats_stalled.set()
            elif message.kind == "resume_heartbeats":
                worker.heartbeats_stalled.clear()
            elif message.kind == "publish_snapshots":
                worker.publish_snapshots()
            continue
        worker.serve(message)
