"""Wire types between the supervisor and its worker processes.

Everything here crosses a ``multiprocessing`` queue, so it must pickle
under the spawn start method: plain module-level dataclasses carrying
primitives only.  Notably a worker response carries a *flattened*
outcome — plan signature, certificate fields, counters — rather than
the full :class:`~repro.core.technique.PlanChoice`: plan trees and
shrunken memos are per-worker state and never leave the process.  When
worker-side verification is on, the response additionally ships the
chosen plan's recosted cost at the served sVector, so a benchmark can
check the λ-certificate against its own oracle without access to the
worker's cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


class WorkerLostError(RuntimeError):
    """The owning worker died and no retry could serve this request.

    The terminal resolution of the drain protocol: an in-flight future
    whose worker crashed resolves as retried-on-peer (a normal result),
    shed, or this error — it never hangs.
    """

    def __init__(self, worker_id: str, detail: str = "") -> None:
        self.worker_id = worker_id
        super().__init__(
            f"worker {worker_id!r} lost" + (f": {detail}" if detail else "")
        )


@dataclass(frozen=True)
class Request:
    """One query instance bound for a worker."""

    request_id: int
    template_name: str
    sv: tuple[float, ...]
    sequence_id: int = -1
    attempt: int = 0
    # -- trace context (empty when the supervisor runs spans-off) -------------
    #: The supervisor-issued trace the worker's spans must join.
    trace_id: str = ""
    #: Supervisor-side span (the dispatch attempt) worker spans parent
    #: under — a re-dispatch after a death carries a *different* parent
    #: inside the *same* trace, so both incarnations' work stays one tree.
    parent_span_id: str = ""


@dataclass(frozen=True)
class Response:
    """A served (or failed) request coming back from a worker."""

    request_id: int
    worker_id: str
    incarnation: int
    template_name: str
    ok: bool
    #: Echo of the request's sequence id, so an external auditor can
    #: recover which workload instance (and thus which sVector) this
    #: response served without the supervisor keeping a side table.
    sequence_id: int = -1
    # -- flattened PlanChoice fields (when ok) --------------------------------
    check: str = ""
    plan_signature: str = ""
    certified: bool = False
    certificate: str = "uncertified"
    certified_bound: Optional[float] = None
    coverage: float = 1.0
    used_optimizer: bool = False
    recost_calls: int = 0
    #: Chosen plan's cost recosted at the served sVector (worker-side
    #: verification only) — the numerator of the oracle's SO(q).
    plan_cost_at_sv: Optional[float] = None
    # -- failure description (when not ok) ------------------------------------
    error_kind: str = ""      # "shed" | "shutdown" | "error"
    error_reason: str = ""
    #: Worker-side spans for this request's trace, as jsonable rows
    #: (``Span.to_jsonable``); the supervisor re-ingests them so one
    #: recorder holds the connected cross-process tree.  Empty when the
    #: worker runs spans-off.
    spans: tuple = ()


@dataclass(frozen=True)
class Heartbeat:
    """Periodic liveness + stats beacon from a worker."""

    worker_id: str
    incarnation: int
    seq: int
    requests_served: int
    optimizer_calls: int
    #: Outcome totals of the worker's own audit (advisory; the
    #: supervisor's audit is the authoritative accounting).
    outcomes: dict = field(default_factory=dict)
    #: Full metrics-registry snapshot (merged into the cluster-wide
    #: Prometheus exposition, labeled by worker identity).
    registry: dict = field(default_factory=dict)
    lambda_violations: int = 0
    #: Per-template anchor-efficacy attribution
    #: (:meth:`~repro.serving.manager.ConcurrentPQOManager.anchor_summaries`)
    #: — flat int dicts the cluster doctor view sums across workers.
    #: Defaulted so snapshots of the old wire format still unpickle.
    anchor_summary: dict = field(default_factory=dict)


@dataclass(frozen=True)
class Ready:
    """Worker finished booting (and warm-starting) and is serving."""

    worker_id: str
    incarnation: int
    #: Templates restored from snapshots vs started cold — the warm-start
    #: accounting the chaos gate's ≤20% optimizer-call bound audits.
    warm_templates: int = 0
    cold_templates: int = 0
    warm_instances: int = 0


@dataclass(frozen=True)
class Bye:
    """Worker acknowledging a graceful stop (final snapshots published)."""

    worker_id: str
    incarnation: int
    requests_served: int = 0


@dataclass(frozen=True)
class Control:
    """Supervisor → worker control message.

    ``kind`` is one of ``"stop"`` (graceful drain + final snapshot),
    ``"stall_heartbeats"`` / ``"resume_heartbeats"`` (fault injection),
    or ``"publish_snapshots"`` (force an immediate snapshot round).
    """

    kind: str
