"""repro — reproduction of "Leveraging Re-costing for Online Optimization
of Parameterized Queries with Guarantees" (Dutt, Narasayya, Chaudhuri;
SIGMOD 2017).

The package implements the paper's SCR online parametric-query-
optimization technique plus every substrate it depends on: a catalog
with synthetic benchmark databases, histogram-based selectivity
estimation, a memo-based cost-based optimizer with a Recost API, a
columnar executor, the prior online PQO techniques it compares
against, and the full evaluation harness.

Quickstart::

    from repro import Database, SCR, tpch_schema
    from repro.query import QueryTemplate, range_predicate, join
    from repro.workload import instances_for_template

    db = Database.create(tpch_schema(scale=0.5), seed=1)
    template = QueryTemplate(
        name="demo", database="tpch",
        tables=["orders", "lineitem"],
        joins=[join("lineitem", "l_orderkey", "orders", "o_orderkey")],
        parameterized=[range_predicate("orders", "o_totalprice", "<="),
                       range_predicate("lineitem", "l_quantity", "<=")],
    )
    scr = SCR(db.engine(template), lam=2.0)
    for instance in instances_for_template(template, 100):
        choice = scr.process(instance)
"""

from .catalog.realworld import rd1_schema, rd2_schema
from .catalog.registry import database_names, get_database
from .catalog.schema import Column, Schema, Table
from .catalog.tpcds import tpcds_schema
from .catalog.tpch import tpch_schema
from .core.manager import PQOManager
from .core.scr import SCR
from .core.technique import OnlinePQOTechnique, PlanChoice
from .engine.database import Database
from .obs import Observability
from .serving.manager import ConcurrentPQOManager
from .query.instance import QueryInstance, SelectivityVector
from .query.template import QueryTemplate

__version__ = "1.0.0"

__all__ = [
    "Column",
    "ConcurrentPQOManager",
    "Database",
    "Observability",
    "OnlinePQOTechnique",
    "PQOManager",
    "PlanChoice",
    "QueryInstance",
    "QueryTemplate",
    "SCR",
    "Schema",
    "SelectivityVector",
    "Table",
    "database_names",
    "get_database",
    "rd1_schema",
    "rd2_schema",
    "tpcds_schema",
    "tpch_schema",
]
