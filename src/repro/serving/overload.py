"""Overload protection for the concurrent serving layer.

SCR's whole point is rationing optimizer calls against a tunable
optimality bound λ; the same trade must govern behaviour under *load*
failures, not just the engine failures PR 1 covers.  When the optimizer
pool saturates, this module relaxes or skips optimization *explicitly
and observably* instead of letting queues collapse:

* **Bounded ingress** — each template's shard accepts at most
  ``queue_limit`` outstanding submissions; a full queue is resolved in
  the submitting thread (rejection as last resort: serve the nearest
  cached plan uncertified, shed only when the cache is empty).
* **Deadline budgets** — every submission can carry an end-to-end
  :class:`Deadline`; the *remaining* budget is propagated into engine
  calls (via the resilience layer's per-call budget), expired
  submissions resolve through the degraded path instead of hanging, and
  the optimizer is never invoked with less than
  ``min_optimize_budget`` seconds left.
* **Optimizer gate** — a concurrency limiter plus optional token
  bucket dedicated to optimizer calls (:class:`OptimizerGate`); gate
  wait time is a first-class pressure signal.
* **Brownout controller** — a hysteresis state machine
  (``normal → coverage-relaxed → λ-relaxed → uncertified-serve →
  shed``) driven by queue depth, optimizer-gate wait and deadline-miss
  rate.  Each level degrades along the *guarantee* axis: first
  robust-mode shards lower the coverage their uncertainty boxes demand
  (certificates honestly downgrade robust → probabilistic), then λ is
  widened through the pressure hook in
  :mod:`repro.core.dynamic_lambda`, then misses are served from cache
  explicitly ``certified=False``, and only when no cached plan exists
  is a request shed (:class:`ShedError`).

Every shed / uncertified decision and every brownout transition is
counted in :class:`~repro.serving.stats.ServingStats` and traced as an
``overload`` event with a reason code.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from enum import IntEnum
from typing import Callable, Optional, Union

from ..obs.clock import Clock, as_clock
from ..obs.handle import Observability

BROWNOUT_LEVEL = "repro_brownout_level"
BROWNOUT_TRANSITIONS_TOTAL = "repro_brownout_transitions_total"
PENDING_REQUESTS = "repro_pending_requests"
GATE_WAIT_SECONDS = "repro_gate_wait_seconds"


class ShedError(RuntimeError):
    """The serving layer refused this request under overload.

    Raised (or set on the submission's future) only as a last resort:
    when the degradation ladder bottomed out — the template's queue or
    brownout level demanded a cached answer and no cached plan exists.
    ``reason`` is a stable machine-readable code, e.g.
    ``"queue_full:no_cached_plan"``.
    """

    def __init__(self, reason: str, template: str = "") -> None:
        self.reason = reason
        self.template = template
        super().__init__(
            f"request shed ({reason})"
            + (f" for template {template!r}" if template else "")
        )


class ShutdownError(RuntimeError):
    """The manager was closed before this queued submission was served."""


# -- deadlines ----------------------------------------------------------------


@dataclass(frozen=True)
class Deadline:
    """An end-to-end serving budget on the monotonic clock.

    ``expires_at`` is an absolute :func:`time.monotonic` value so the
    budget keeps shrinking while the submission waits in queue; every
    layer (queue wait, single-flight wait, engine retries) consumes
    from the same budget.
    """

    expires_at: float
    budget_seconds: float

    @classmethod
    def after(
        cls,
        seconds: float,
        clock: Union[Clock, Callable[[], float]] = time.monotonic,
    ) -> "Deadline":
        if seconds < 0:
            raise ValueError("deadline budget must be >= 0")
        if isinstance(clock, Clock):
            clock = clock.monotonic
        return cls(expires_at=clock() + seconds, budget_seconds=seconds)

    def remaining(self, now: Optional[float] = None) -> float:
        if now is None:
            now = time.monotonic()
        return self.expires_at - now

    def expired(self, now: Optional[float] = None) -> bool:
        return self.remaining(now) <= 0.0


# -- optimizer gate -----------------------------------------------------------


class OptimizerGate:
    """Concurrency limiter (+ optional token bucket) for optimizer calls.

    The semaphore bounds how many optimizer calls run at once — the
    scarce resource SCR rations.  The optional token bucket additionally
    bounds the *rate* of optimizer calls (``tokens_per_second`` refill,
    ``burst`` capacity).  ``acquire`` blocks up to ``timeout`` seconds;
    the wait time feeds a decaying average that the brownout controller
    reads as the optimizer-pool pressure signal.
    """

    def __init__(
        self,
        concurrency: int,
        tokens_per_second: Optional[float] = None,
        burst: Optional[int] = None,
        clock: Union[Clock, Callable[[], float]] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        if tokens_per_second is not None and tokens_per_second <= 0:
            raise ValueError("tokens_per_second must be positive")
        self._sem = threading.Semaphore(concurrency)
        self.concurrency = concurrency
        self.tokens_per_second = tokens_per_second
        self.burst = float(burst if burst is not None else concurrency)
        self._clock = clock.monotonic if isinstance(clock, Clock) else clock
        self._sleep = sleep
        self._lock = threading.Lock()
        self._tokens = self.burst
        self._refilled_at = clock()
        self.acquired = 0
        self.timeouts = 0
        self.total_wait_seconds = 0.0
        #: Exponentially decayed recent wait per admission attempt; the
        #: brownout controller's optimizer-pool pressure signal.
        self.wait_ema_seconds = 0.0

    def _take_token(self, deadline_at: float) -> bool:
        """Take one token, sleeping for the refill if the budget allows."""
        if self.tokens_per_second is None:
            return True
        while True:
            with self._lock:
                now = self._clock()
                self._tokens = min(
                    self.burst,
                    self._tokens
                    + (now - self._refilled_at) * self.tokens_per_second,
                )
                self._refilled_at = now
                if self._tokens >= 1.0:
                    self._tokens -= 1.0
                    return True
                wait = (1.0 - self._tokens) / self.tokens_per_second
            if now + wait > deadline_at:
                return False
            self._sleep(wait)

    def acquire(self, timeout: float) -> bool:
        """Try to admit one optimizer call; pairs with :meth:`release`."""
        start = self._clock()
        ok = self._sem.acquire(timeout=max(0.0, timeout))
        if ok and not self._take_token(start + timeout):
            self._sem.release()
            ok = False
        waited = self._clock() - start
        with self._lock:
            self.total_wait_seconds += waited
            self.wait_ema_seconds = (
                0.8 * self.wait_ema_seconds + 0.2 * waited
            )
            if ok:
                self.acquired += 1
            else:
                self.timeouts += 1
        return ok

    def release(self) -> None:
        self._sem.release()

    def attempts(self) -> int:
        """Admission attempts so far (successful or timed out)."""
        with self._lock:
            return self.acquired + self.timeouts

    def reset_wait_ema(self) -> None:
        """Zero the wait EMA after a window with no admission attempts.

        Levels ≥ UNCERTIFIED stop consulting the gate entirely; without
        this, the last hot reading would be frozen above the recovery
        threshold and the brownout controller could never come back down.
        """
        with self._lock:
            self.wait_ema_seconds = 0.0


# -- brownout state machine ---------------------------------------------------


class BrownoutLevel(IntEnum):
    """Degradation levels, ordered by how much guarantee is given up.

    The first step degrades along the *uncertainty* axis: shards running
    a robust check mode lower the coverage their probes demand
    (``brownout_coverage``), trading certificate strength (robust →
    probabilistic) for cache hits before λ itself is touched.  Point-mode
    shards pass through COVERAGE_RELAXED unchanged — for them the ladder
    behaves exactly as before, one level later.
    """

    NORMAL = 0            # full SCR pipeline, base λ, full coverage
    COVERAGE_RELAXED = 1  # robust shards probe at reduced coverage
    LAMBDA_RELAXED = 2    # λ widened via the pressure hook; still certified
    UNCERTIFIED = 3       # misses served from cache uncertified, no optimize
    SHED = 4              # selectivity-only probe; shed when cache is empty


@dataclass(frozen=True)
class OverloadPolicy:
    """Tunables for the overload-protection subsystem.

    Thresholds come in high/low pairs: a signal above its *high* value
    counts as pressure, and recovery requires every signal below its
    *low* value — the dead band between them is the hysteresis that
    prevents flapping.
    """

    #: Per-template cap on outstanding (queued + running) submissions.
    queue_limit: int = 64
    #: Default end-to-end budget attached to submissions (None = none).
    default_deadline_seconds: Optional[float] = None
    #: Optimizer is never invoked with less remaining budget than this.
    min_optimize_budget: float = 0.002
    #: Max concurrent optimizer calls across all templates.
    optimizer_concurrency: int = 4
    #: Optional token-bucket rate/burst for optimizer calls.
    optimizer_tokens_per_second: Optional[float] = None
    optimizer_token_burst: Optional[int] = None
    #: How long a miss may wait for the optimizer gate before degrading.
    gate_timeout: float = 0.050
    #: Brownout evaluation cadence, in completed instances.
    evaluate_every: int = 25
    #: Queue-depth thresholds as fractions of total queue capacity.
    queue_high: float = 0.50
    queue_low: float = 0.125
    #: Optimizer-gate wait thresholds (seconds, decayed average).
    gate_wait_high: float = 0.020
    gate_wait_low: float = 0.005
    #: Deadline-miss-rate thresholds over the evaluation window.
    deadline_miss_high: float = 0.10
    deadline_miss_low: float = 0.02
    #: Consecutive hot/calm evaluations required to move one level.
    escalate_ticks: int = 2
    recover_ticks: int = 3
    #: λ multiplier applied from LAMBDA_RELAXED upward, and the absolute
    #: ceiling the relaxed λ never exceeds (None = uncapped).
    lambda_relax_factor: float = 1.5
    lambda_ceiling: Optional[float] = None
    #: Coverage robust-mode probes demand at COVERAGE_RELAXED and above
    #: (shrinks the uncertainty box → more hits, honestly downgraded to
    #: probabilistic certificates; λ itself stays untouched).
    brownout_coverage: float = 0.8

    def __post_init__(self) -> None:
        if self.queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if self.escalate_ticks < 1 or self.recover_ticks < 1:
            raise ValueError("hysteresis tick counts must be >= 1")
        if self.lambda_relax_factor < 1.0:
            raise ValueError("lambda_relax_factor must be >= 1")
        if not (0.0 <= self.queue_low <= self.queue_high):
            raise ValueError("queue thresholds must satisfy 0 <= low <= high")
        if not (0.0 < self.brownout_coverage <= 1.0):
            raise ValueError("brownout_coverage must be in (0, 1]")


@dataclass(frozen=True)
class OverloadSignals:
    """One evaluation tick's pressure inputs."""

    queue_fraction: float
    gate_wait_seconds: float
    deadline_miss_rate: float

    def pressure(self, policy: OverloadPolicy) -> tuple[float, str]:
        """Max signal normalized by its high threshold, plus the driver."""
        normalized = {
            "queue_depth": self.queue_fraction / max(policy.queue_high, 1e-9),
            "gate_wait": self.gate_wait_seconds
            / max(policy.gate_wait_high, 1e-9),
            "deadline_miss": self.deadline_miss_rate
            / max(policy.deadline_miss_high, 1e-9),
        }
        driver = max(normalized, key=normalized.get)
        return normalized[driver], driver

    def calm(self, policy: OverloadPolicy) -> bool:
        """True when every signal sits below its *low* threshold."""
        return (
            self.queue_fraction <= policy.queue_low
            and self.gate_wait_seconds <= policy.gate_wait_low
            and self.deadline_miss_rate <= policy.deadline_miss_low
        )


@dataclass
class BrownoutTransition:
    """One recorded level change."""

    tick: int
    previous: BrownoutLevel
    current: BrownoutLevel
    reason: str


class BrownoutController:
    """Hysteresis state machine over the brownout levels.

    Moves at most **one level per evaluation tick**; escalation needs
    ``escalate_ticks`` consecutive hot ticks, recovery needs
    ``recover_ticks`` consecutive calm ticks, and the dead band between
    the high and low thresholds counts as neither — so the controller
    cannot flap between levels on a noisy boundary signal.
    """

    def __init__(self, policy: OverloadPolicy, trace=None) -> None:
        self.policy = policy
        self.trace = trace
        self.level = BrownoutLevel.NORMAL
        self.transitions: list[BrownoutTransition] = []
        self.ticks = 0
        self._hot = 0
        self._calm = 0
        self._lock = threading.Lock()
        self._m_level = None
        self._m_transitions = None

    def attach_obs(self, obs: Observability) -> None:
        """Mirror the brownout level and transitions into the registry."""
        self._m_level = obs.registry.gauge(
            BROWNOUT_LEVEL,
            "Current brownout level (0=normal ... 4=shed)",
        ).labels()
        self._m_transitions = obs.registry.counter(
            BROWNOUT_TRANSITIONS_TOTAL,
            "Brownout level changes by destination level",
            labels=("to_level",),
        )

    def evaluate(self, signals: OverloadSignals) -> Optional[BrownoutTransition]:
        """Consume one tick's signals; returns the transition, if any."""
        with self._lock:
            self.ticks += 1
            pressure, driver = signals.pressure(self.policy)
            if pressure >= 1.0:
                self._hot += 1
                self._calm = 0
            elif signals.calm(self.policy):
                self._calm += 1
                self._hot = 0
            else:  # hysteresis dead band: hold the current level
                self._hot = 0
                self._calm = 0
            transition = None
            if (
                self._hot >= self.policy.escalate_ticks
                and self.level < BrownoutLevel.SHED
            ):
                transition = self._move(self.level + 1, f"escalate:{driver}")
                self._hot = 0
            elif (
                self._calm >= self.policy.recover_ticks
                and self.level > BrownoutLevel.NORMAL
            ):
                transition = self._move(self.level - 1, "recover:calm")
                self._calm = 0
        return transition

    def _move(self, new_level: int, reason: str) -> BrownoutTransition:
        transition = BrownoutTransition(
            tick=self.ticks,
            previous=self.level,
            current=BrownoutLevel(new_level),
            reason=reason,
        )
        self.level = transition.current
        self.transitions.append(transition)
        if self._m_level is not None:
            self._m_level.set(int(transition.current))
            self._m_transitions.labels(
                to_level=transition.current.name.lower()
            ).inc()
        if self.trace is not None:
            self.trace.overload(
                "brownout",
                self.ticks,
                detail=(
                    f"{transition.previous.name.lower()}->"
                    f"{transition.current.name.lower()}:{reason}"
                ),
            )
        return transition


# -- the coordinator ----------------------------------------------------------


class OverloadCoordinator:
    """Glue between the manager, the shards and the brownout machinery.

    Owns the optimizer gate, the global queue gauge and the evaluation
    window (served / deadline-missed counts); shards consult it on the
    miss path (:meth:`optimize_admission`) and report completions
    (:meth:`note_completed`), which drives the evaluation cadence.
    """

    def __init__(
        self,
        policy: OverloadPolicy,
        trace=None,
        clock: Union[Clock, Callable[[], float]] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.policy = policy
        self.trace = trace
        # One unified clock source: tests and legacy callers may pass a
        # bare monotonic callable; as_clock normalizes either form, and
        # `self.clock` stays the plain callable shards and deadlines use.
        self.clock_source = clock if isinstance(clock, Clock) else as_clock(clock)
        self.clock = self.clock_source.monotonic
        self.controller = BrownoutController(policy, trace=trace)
        self.gate = OptimizerGate(
            concurrency=policy.optimizer_concurrency,
            tokens_per_second=policy.optimizer_tokens_per_second,
            burst=policy.optimizer_token_burst,
            clock=self.clock,
            sleep=sleep,
        )
        self._obs: Optional[Observability] = None
        self._m_pending = None
        self._lock = threading.Lock()
        self._pending = 0
        self._num_shards = 0
        self._since_evaluate = 0
        self._window_served = 0
        self._window_missed = 0
        self._gate_attempts_seen = 0
        self.shed_total = 0

    # -- level access --------------------------------------------------------

    @property
    def level(self) -> BrownoutLevel:
        return self.controller.level

    def level_value(self) -> int:
        """Plain-int level accessor for the core-layer λ pressure hook."""
        return int(self.controller.level)

    # -- lifecycle -----------------------------------------------------------

    def attach_obs(self, obs: Observability) -> None:
        """Mirror the overload subsystem's state into the registry."""
        self._obs = obs
        self._m_pending = obs.registry.gauge(
            PENDING_REQUESTS,
            "Outstanding submissions across all shards",
        ).labels()
        obs.registry.gauge(
            GATE_WAIT_SECONDS,
            "Decayed average optimizer-gate wait (pressure signal)",
        )
        self.controller.attach_obs(obs)

    def register_shard(self) -> None:
        with self._lock:
            self._num_shards += 1

    def new_deadline(self) -> Optional[Deadline]:
        seconds = self.policy.default_deadline_seconds
        if seconds is None:
            return None
        return Deadline.after(seconds, clock=self.clock)

    # -- bounded ingress -----------------------------------------------------

    @property
    def queue_capacity(self) -> int:
        return self.policy.queue_limit * max(1, self._num_shards)

    @property
    def pending(self) -> int:
        return self._pending

    def try_enter_queue(self, stats) -> bool:
        """Admit one submission against the shard's bounded queue."""
        if not stats.try_enqueue(self.policy.queue_limit):
            return False
        with self._lock:
            self._pending += 1
            pending = self._pending
        if self._m_pending is not None:
            self._m_pending.set(pending)
        return True

    def exit_queue(self, stats) -> None:
        stats.note_dequeued()
        with self._lock:
            self._pending = max(0, self._pending - 1)
            pending = self._pending
        if self._m_pending is not None:
            self._m_pending.set(pending)

    # -- miss-path admission -------------------------------------------------

    def optimize_admission(
        self, deadline: Optional[Deadline]
    ) -> tuple[Optional[str], bool]:
        """Decide whether a miss may invoke the optimizer.

        Returns ``(denial_reason, holds_gate)``.  ``denial_reason`` is
        ``None`` when the call may proceed, in which case
        ``holds_gate`` is True and the caller must
        :meth:`release_optimize` afterwards.
        """
        level = self.controller.level
        if level >= BrownoutLevel.SHED:
            return "brownout_shed", False
        if level >= BrownoutLevel.UNCERTIFIED:
            return "brownout_uncertified", False
        timeout = self.policy.gate_timeout
        if deadline is not None:
            remaining = deadline.remaining(self.clock())
            if remaining <= self.policy.min_optimize_budget:
                return "deadline_budget", False
            timeout = min(
                timeout, remaining - self.policy.min_optimize_budget
            )
        if not self.gate.acquire(timeout):
            return "gate_timeout", False
        return None, True

    def release_optimize(self) -> None:
        self.gate.release()

    # -- completion / evaluation cadence -------------------------------------

    def note_completed(self, deadline_missed: bool, shed: bool = False) -> None:
        with self._lock:
            self._window_served += 1
            if deadline_missed:
                self._window_missed += 1
            if shed:
                self.shed_total += 1
            self._since_evaluate += 1
            due = self._since_evaluate >= self.policy.evaluate_every
            if due:
                self._since_evaluate = 0
                signals = self._signals_locked(consume=True)
                self._window_served = 0
                self._window_missed = 0
        if due:
            self.controller.evaluate(signals)

    def _signals_locked(self, consume: bool = False) -> OverloadSignals:
        served = max(1, self._window_served)
        attempts = self.gate.attempts()
        gate_wait = self.gate.wait_ema_seconds
        if attempts == self._gate_attempts_seen:
            # The gate saw no admission attempt this window — e.g. the
            # brownout level stopped consulting it.  The window's true
            # wait is zero; a frozen hot EMA must not block recovery.
            gate_wait = 0.0
            if consume:
                self.gate.reset_wait_ema()
        elif consume:
            self._gate_attempts_seen = attempts
        return OverloadSignals(
            queue_fraction=self._pending / max(1, self.queue_capacity),
            gate_wait_seconds=gate_wait,
            deadline_miss_rate=self._window_missed / served,
        )

    def signals(self) -> OverloadSignals:
        with self._lock:
            return self._signals_locked()

    # -- reporting -----------------------------------------------------------

    def report(self) -> dict[str, object]:
        """Operator-facing snapshot of the overload subsystem."""
        signals = self.signals()
        if self._obs is not None:
            self._obs.registry.gauge(GATE_WAIT_SECONDS).labels().set(
                signals.gate_wait_seconds
            )
        return {
            "brownout": self.controller.level.name.lower(),
            "transitions": len(self.controller.transitions),
            "pending": self._pending,
            "queue_capacity": self.queue_capacity,
            "queue_fraction": round(signals.queue_fraction, 3),
            "gate_wait_ms": round(signals.gate_wait_seconds * 1e3, 3),
            "gate_timeouts": self.gate.timeouts,
            "deadline_miss_rate": round(signals.deadline_miss_rate, 3),
            "shed": self.shed_total,
        }
