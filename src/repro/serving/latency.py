"""Simulated engine-call latency for serving benchmarks and tests.

The in-process optimizer answers in microseconds, which hides exactly
the effect the concurrent serving layer exists to exploit: against a
real engine, optimize / recost / sVector are RPCs that block the caller
while releasing the CPU.  :class:`SimulatedLatencyEngine` injects a
configurable ``time.sleep`` per API call so a workload behaves like
remote engine traffic — serial serving pays every sleep back-to-back,
the thread pool overlaps them.
"""

from __future__ import annotations

import time

from ..engine.api import EngineAPI
from ..optimizer.recost import ShrunkenMemo
from ..query.instance import QueryInstance, SelectivityVector


class SimulatedLatencyEngine:
    """Delegating :class:`EngineAPI` wrapper adding per-call latency."""

    def __init__(
        self,
        inner: EngineAPI,
        optimize_seconds: float = 0.010,
        recost_seconds: float = 0.001,
        selectivity_seconds: float = 0.0001,
    ) -> None:
        self._inner = inner
        self.optimize_seconds = optimize_seconds
        self.recost_seconds = recost_seconds
        self.selectivity_seconds = selectivity_seconds

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def selectivity_vector(self, instance: QueryInstance) -> SelectivityVector:
        if self.selectivity_seconds:
            time.sleep(self.selectivity_seconds)
        return self._inner.selectivity_vector(instance)

    def optimize(self, sv: SelectivityVector):
        if self.optimize_seconds:
            time.sleep(self.optimize_seconds)
        return self._inner.optimize(sv)

    def recost(self, shrunken: ShrunkenMemo, sv: SelectivityVector) -> float:
        if self.recost_seconds:
            time.sleep(self.recost_seconds)
        return self._inner.recost(shrunken, sv)


def simulated_latency_wrapper(
    optimize_seconds: float = 0.010,
    recost_seconds: float = 0.001,
    selectivity_seconds: float = 0.0001,
):
    """An ``engine_wrapper`` for the managers (serial or concurrent)."""

    def wrap(engine: EngineAPI) -> SimulatedLatencyEngine:
        return SimulatedLatencyEngine(
            engine,
            optimize_seconds=optimize_seconds,
            recost_seconds=recost_seconds,
            selectivity_seconds=selectivity_seconds,
        )

    return wrap
