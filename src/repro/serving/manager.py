"""The concurrent front-end: dispatching instances across shards.

:class:`ConcurrentPQOManager` extends the serial
:class:`~repro.core.manager.PQOManager` with a thread pool and one
:class:`~repro.serving.shard.TemplateShard` per registered template.
Independent templates never contend — each shard has its own lock, its
own SCR state and its own single-flight table.  Global concerns (the
shared plan budget, quarantine of misbehaving templates) are handled at
**rebalance points**: one thread at a time takes every shard lock in
canonical order (no worker ever holds two shard locks, so the ordering
makes deadlock impossible) and re-divides the budget exactly like the
serial manager.

Batched admission (:meth:`submit_batch`) coalesces a batch by template
and deduplicates identical selectivity vectors before dispatch, so a
burst of the same query instance costs one optimization and the
duplicates share its :class:`PlanChoice`.

With an :class:`~repro.serving.overload.OverloadPolicy` the manager adds
overload protection (DESIGN.md §9): bounded per-template ingress queues
with rejection-as-last-resort, end-to-end deadline budgets propagated
into engine calls, an optimizer gate, and the brownout controller whose
λ-relaxation hook is installed on every registered template's getPlan.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, InvalidStateError, ThreadPoolExecutor
from contextlib import contextmanager, nullcontext, suppress
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..core.dynamic_lambda import PressureRelaxedLambda
from ..core.manager import PQOManager, TemplateState
from ..core.technique import PlanChoice
from ..engine.tracing import TraceLog
from ..obs.handle import Observability, instrument_engine
from ..obs.tracectx import TraceContext, activate, child_context, current_context
from ..query.instance import QueryInstance
from ..query.template import QueryTemplate
from .overload import (
    BrownoutLevel,
    Deadline,
    OverloadCoordinator,
    OverloadPolicy,
    ShutdownError,
)
from .shard import TemplateShard
from .stats import ServingStats, merge_rows


@dataclass
class ConcurrentPQOManager(PQOManager):
    """Routes query instances to per-template shards on a thread pool.

    Parameters (beyond :class:`PQOManager`'s)
    ----------
    max_workers:
        Size of the serving thread pool.
    trace:
        Optional :class:`TraceLog` receiving ``serving`` events
        (single-flight collapses, epoch retries, batch dedup) and
        ``overload`` events (brownout transitions, sheds, rejects).
    overload:
        Optional :class:`OverloadPolicy` enabling admission control,
        deadlines and brownout degradation.  Without it the serving
        behaviour is identical to the plain concurrent manager.
    """

    max_workers: int = 8
    trace: Optional[TraceLog] = None
    overload: Optional[OverloadPolicy] = None
    #: Manager-wide default check mode for registered templates
    #: (``"point"`` / ``"robust"`` / ``"probabilistic"``); a per-template
    #: ``check_mode=`` kwarg on :meth:`register` overrides it.  ``None``
    #: leaves SCR's own default (point) in force.
    check_mode: Optional[str] = None
    #: Manager-wide default coverage for probabilistic-mode templates.
    target_coverage: Optional[float] = None
    #: Manager-wide default getPlan implementation (``"vectorized"`` /
    #: ``"scalar"``); a per-template ``check_impl=`` kwarg on
    #: :meth:`register` overrides it.  ``None`` leaves SCR's default
    #: (vectorized) in force.  Identical decisions either way; the
    #: vectorized impl additionally unlocks :meth:`submit_batch`'s
    #: single-pass batch probing.
    check_impl: Optional[str] = None
    #: Optional unified observability handle (metrics registry, spans,
    #: guarantee audit).  When set, every registered template's engine,
    #: SCR pipeline and shard report into it, and the overload
    #: coordinator shares its clock.
    obs: Optional[Observability] = None
    _shards: dict[str, TemplateShard] = field(default_factory=dict)
    _executor: Optional[ThreadPoolExecutor] = field(
        default=None, init=False, repr=False
    )
    _overload_coordinator: Optional[OverloadCoordinator] = field(
        default=None, init=False, repr=False
    )
    _registry_lock: threading.RLock = field(
        default_factory=threading.RLock, init=False, repr=False
    )
    _rebalance_lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False
    )
    _counter_lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False
    )
    _futures_lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False
    )
    _outstanding: set = field(default_factory=set, init=False, repr=False)
    _closed: bool = field(default=False, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if self.overload is not None:
            kwargs = {}
            if self.obs is not None:
                # One clock source for coordinator, shards and spans.
                kwargs["clock"] = self.obs.clock
            self._overload_coordinator = OverloadCoordinator(
                self.overload, trace=self.trace, **kwargs
            )
            if self.obs is not None:
                self._overload_coordinator.attach_obs(self.obs)
        self._executor = ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix="pqo-serve"
        )

    # -- registration ---------------------------------------------------------

    def register(
        self,
        template: QueryTemplate,
        lam: Optional[float] = None,
        **scr_kwargs,
    ) -> TemplateState:
        with self._registry_lock:
            if self.check_mode is not None:
                scr_kwargs.setdefault("check_mode", self.check_mode)
            if self.target_coverage is not None:
                scr_kwargs.setdefault("target_coverage", self.target_coverage)
            if self.check_impl is not None:
                scr_kwargs.setdefault("check_impl", self.check_impl)
            state = self._build_state(template, lam, **scr_kwargs)
            # Racy double-misses on one vector must not grow the instance
            # list without bound (see ManageCache.coalesce_identical).
            state.scr.manage_cache.coalesce_identical = True
            ov = self._overload_coordinator
            if ov is not None:
                self._install_pressure_lambda(state)
                ov.register_shard()
            if self.obs is not None:
                # Wire the whole stack into the one handle: engine-call
                # histograms/spans, getPlan phase spans, the SCR's
                # certified-bound audit feed and its calibration handle.
                state.scr.attach_observability(self.obs)
            with self._all_shard_locks():
                self._templates[template.name] = state
                self._shards[template.name] = TemplateShard(
                    state, trace=self.trace, overload=ov, obs=self.obs
                )
                self._apply_budgets()
        return state

    def _install_pressure_lambda(self, state: TemplateState) -> None:
        """Route the template's λ through the brownout pressure hook.

        Behaviour-neutral at level NORMAL; from LAMBDA_RELAXED upward
        the bound widens by ``lambda_relax_factor`` (clamped to
        ``lambda_ceiling``), trading optimality for optimizer calls
        *within* the guarantee framework — certified instances under
        pressure still satisfy ``SO ≤ λ_relaxed``.
        """
        get_plan = state.scr.get_plan
        base = get_plan.lambda_for if get_plan.lambda_for is not None else get_plan.lam
        get_plan.lambda_for = PressureRelaxedLambda(
            base,
            level_provider=self._overload_coordinator.level_value,
            relax_factor=self.overload.lambda_relax_factor,
            ceiling=self.overload.lambda_ceiling,
            relax_at_level=int(BrownoutLevel.LAMBDA_RELAXED),
        )

    def shard(self, template_name: str) -> TemplateShard:
        return self._shards[template_name]

    # -- serving --------------------------------------------------------------

    def process(
        self, instance: QueryInstance, deadline: Optional[Deadline] = None
    ) -> PlanChoice:
        """Serve one instance synchronously (callable from any thread)."""
        shard = self._shards.get(instance.template_name)
        if shard is None:
            raise KeyError(
                f"template {instance.template_name!r} is not registered"
            )
        return self._process_on(shard, instance, deadline)

    def _process_on(
        self,
        shard: TemplateShard,
        instance: QueryInstance,
        deadline: Optional[Deadline] = None,
        overflow_reason: Optional[str] = None,
    ) -> PlanChoice:
        choice = shard.process(
            instance, deadline=deadline, overflow_reason=overflow_reason
        )
        self._note_processed(shard.state)
        return choice

    def _mint_ctx(self) -> Optional[TraceContext]:
        """The per-submission trace context (None with spans off).

        A child of the submitter's ambient context when one exists —
        the cluster worker's serve loop activates the wire context
        around :meth:`submit`, so worker-side spans parent under the
        supervisor's request span — or a fresh root otherwise.  Minted
        *in the submitting thread*, then re-activated in whichever pool
        thread serves the request: that is what survives the hand-off.
        """
        obs = self.obs
        if obs is None or not obs.spans.enabled:
            return None
        return child_context(obs.spans.ids)

    def submit(
        self, instance: QueryInstance, deadline: Optional[Deadline] = None
    ) -> "Future[PlanChoice]":
        """Dispatch one instance to the serving pool.

        With overload protection on, admission is bounded: a submission
        over the template's ``queue_limit`` is resolved *in the calling
        thread* as rejection-as-last-resort — a free selectivity probe,
        then the nearest cached plan uncertified (reason
        ``queue_full``), shedding only when no cached plan exists.  The
        returned future then already holds the outcome, so callers keep
        one uniform interface.
        """
        shard = self._shards.get(instance.template_name)
        if shard is None:
            raise KeyError(
                f"template {instance.template_name!r} is not registered"
            )
        fut: "Future[PlanChoice]" = Future()
        ctx = self._mint_ctx()
        ov = self._overload_coordinator
        entered = False
        if ov is not None:
            if deadline is None:
                deadline = ov.new_deadline()
            entered = ov.try_enter_queue(shard.stats)
            if not entered:
                if self.trace is not None:
                    self.trace.overload(
                        "queue_reject",
                        shard.scr.instances_processed,
                        detail=shard.state.template.name,
                    )
                try:
                    with activate(ctx) if ctx is not None else nullcontext():
                        fut.set_result(
                            self._process_on(
                                shard, instance, deadline,
                                overflow_reason="queue_full",
                            )
                        )
                except BaseException as exc:
                    fut.set_exception(exc)
                return fut
        with self._futures_lock:
            self._outstanding.add(fut)
        fut.add_done_callback(self._forget_outstanding)
        submitted_at = (
            self.obs.clock.perf_counter() if ctx is not None else 0.0
        )
        try:
            self._executor.submit(
                self._run, fut, shard, instance, deadline, entered,
                ctx, submitted_at,
            )
        except RuntimeError:
            # The executor refused: the manager is shutting down.
            if entered:
                ov.exit_queue(shard.stats)
            with suppress(InvalidStateError):
                fut.set_exception(
                    ShutdownError(
                        "manager closed before this submission was accepted"
                    )
                )
        return fut

    def _run(
        self,
        fut: "Future[PlanChoice]",
        shard: TemplateShard,
        instance: QueryInstance,
        deadline: Optional[Deadline],
        entered: bool,
        ctx: Optional[TraceContext] = None,
        submitted_at: float = 0.0,
    ) -> None:
        try:
            if self._closed and not fut.done():
                with suppress(InvalidStateError):
                    fut.set_exception(
                        ShutdownError(
                            "manager closed before this queued submission was served"
                        )
                    )
            if fut.done():
                return  # resolved by close(wait=False); don't serve it
            try:
                with activate(ctx) if ctx is not None else nullcontext():
                    if ctx is not None:
                        # Pool hand-off latency, attributed to the request.
                        now = self.obs.clock.perf_counter()
                        self.obs.spans.record(
                            "serving.queue_wait", submitted_at,
                            now - submitted_at,
                            template=shard.state.template.name,
                        )
                    result = self._process_on(shard, instance, deadline)
            except BaseException as exc:
                with suppress(InvalidStateError):
                    fut.set_exception(exc)
            else:
                with suppress(InvalidStateError):
                    fut.set_result(result)
        finally:
            if entered:
                self._overload_coordinator.exit_queue(shard.stats)

    def _forget_outstanding(self, fut: "Future[PlanChoice]") -> None:
        with self._futures_lock:
            self._outstanding.discard(fut)

    def submit_batch(
        self,
        instances: Sequence[QueryInstance],
        dedupe: bool = True,
        deadline_seconds: Optional[float] = None,
    ) -> list["Future[PlanChoice]"]:
        """Admit a batch: coalesce by template, dedupe identical vectors.

        Returns one future per input instance, in input order; duplicate
        instances share the future (and therefore the PlanChoice) of
        their first occurrence.  ``deadline_seconds`` attaches an
        end-to-end budget to each dispatched instance (starting at its
        dispatch, not at batch entry).

        Dispatch shape: without overload protection or deadlines, each
        template's unique instances go to its shard as **one**
        matmul-shaped :meth:`TemplateShard.process_batch` task (when the
        shard's decision procedure supports batching) — the whole group
        is probed against the cache in a single broadcast pass.
        Otherwise unique instances are dispatched round-robin across
        templates so independent shards fill the pool instead of
        convoying on one shard's lock.
        """
        futures: list[Optional[Future]] = [None] * len(instances)
        per_template: dict[str, list[tuple[int, QueryInstance]]] = {}
        first_seen: dict[tuple, int] = {}
        duplicate_of: dict[int, int] = {}
        for i, instance in enumerate(instances):
            if dedupe:
                key = (instance.template_name, self._dedupe_key(instance))
                first = first_seen.get(key)
                if first is not None:
                    duplicate_of[i] = first
                    shard = self._shards.get(instance.template_name)
                    if shard is not None:
                        shard.stats.note_deduped()
                    if self.trace is not None:
                        self.trace.serving("batch_dedupe", i)
                    continue
                first_seen[key] = i
            per_template.setdefault(instance.template_name, []).append(
                (i, instance)
            )
        if self._overload_coordinator is None and deadline_seconds is None:
            leftovers = self._submit_batched_groups(per_template, futures)
        else:
            # Admission control and deadlines are per-instance decisions;
            # keep the per-instance dispatch for them.
            leftovers = per_template
        queues = [list(reversed(v)) for _, v in sorted(leftovers.items())]
        while queues:
            for queue in list(queues):
                i, instance = queue.pop()
                deadline = (
                    Deadline.after(deadline_seconds)
                    if deadline_seconds is not None
                    else None
                )
                futures[i] = self.submit(instance, deadline=deadline)
                if not queue:
                    queues.remove(queue)
        for i, first in duplicate_of.items():
            futures[i] = futures[first]
        return futures

    def _submit_batched_groups(
        self,
        per_template: dict[str, list[tuple[int, QueryInstance]]],
        futures: list[Optional[Future]],
    ) -> dict[str, list[tuple[int, QueryInstance]]]:
        """Dispatch batchable template groups; return the rest.

        A group is batchable when its shard's getPlan supports the
        broadcast probe and the group has more than one instance (a
        singleton gains nothing over the ordinary submit path).
        """
        leftovers: dict[str, list[tuple[int, QueryInstance]]] = {}
        for name, items in sorted(per_template.items()):
            shard = self._shards.get(name)
            if shard is None:
                raise KeyError(f"template {name!r} is not registered")
            if len(items) < 2 or not shard.scr.get_plan.supports_batch:
                leftovers[name] = items
                continue
            futs = [Future() for _ in items]
            for (i, _), fut in zip(items, futs):
                futures[i] = fut
                with self._futures_lock:
                    self._outstanding.add(fut)
                fut.add_done_callback(self._forget_outstanding)
            # Carry the submitter's ambient trace context across the
            # pool hand-off; the shard then mints one child per row.
            ctx = current_context()
            try:
                self._executor.submit(
                    self._run_batch, shard, [inst for _, inst in items],
                    futs, ctx,
                )
            except RuntimeError:
                # The executor refused: the manager is shutting down.
                for fut in futs:
                    with suppress(InvalidStateError):
                        fut.set_exception(
                            ShutdownError(
                                "manager closed before this submission was accepted"
                            )
                        )
        return leftovers

    def _run_batch(
        self,
        shard: TemplateShard,
        instances: list[QueryInstance],
        futs: list["Future[PlanChoice]"],
        ctx: Optional[TraceContext] = None,
    ) -> None:
        if self._closed:
            for fut in futs:
                with suppress(InvalidStateError):
                    fut.set_exception(
                        ShutdownError(
                            "manager closed before this queued submission was served"
                        )
                    )
            return
        try:
            with activate(ctx) if ctx is not None else nullcontext():
                outcomes = shard.process_batch(instances)
        except BaseException as exc:  # noqa: BLE001 - resolve all futures
            for fut in futs:
                with suppress(InvalidStateError):
                    fut.set_exception(exc)
            return
        for fut, outcome in zip(futs, outcomes):
            if isinstance(outcome, BaseException):
                with suppress(InvalidStateError):
                    fut.set_exception(outcome)
            else:
                self._note_processed(shard.state)
                with suppress(InvalidStateError):
                    fut.set_result(outcome)

    def process_many(
        self, instances: Sequence[QueryInstance], dedupe: bool = True
    ) -> list[PlanChoice]:
        """Admit a batch and wait for every result (input order)."""
        return [f.result() for f in self.submit_batch(instances, dedupe=dedupe)]

    @staticmethod
    def _dedupe_key(instance: QueryInstance) -> tuple:
        if instance.sv is not None:
            return ("sv",) + instance.sv.values
        return ("params",) + instance.parameters

    # -- global budget / quarantine at rebalance points -----------------------

    def _note_processed(self, state: TemplateState) -> None:
        with self._counter_lock:
            state.instances_seen += 1
            self._since_rebalance += 1
            # Rebalance points also run the quarantine sweep, so they
            # are due on schedule even without a global plan budget
            # (where _apply_budgets is a no-op but breaker-open
            # templates must still be marked quarantined).
            due = self._since_rebalance >= self.rebalance_every
        if due:
            self._maybe_rebalance()

    def _maybe_rebalance(self) -> None:
        # Only one rebalancer at a time; losers just keep serving — the
        # winner will see their counted instances anyway.
        if not self._rebalance_lock.acquire(blocking=False):
            return
        try:
            with self._counter_lock:
                self._since_rebalance = 0
            with self._all_shard_locks():
                for state in self._templates.values():
                    breaker = getattr(state.engine, "recost_breaker", None)
                    if breaker is not None:
                        state.quarantined = bool(
                            getattr(breaker, "is_open", False)
                        )
                self._apply_budgets()
        finally:
            self._rebalance_lock.release()

    @contextmanager
    def _all_shard_locks(self):
        """Every shard lock, in canonical (name) order.

        Workers hold at most their own single shard lock and never
        acquire a second, so a canonical-order sweep cannot deadlock.
        """
        shards = [self._shards[name] for name in sorted(self._shards)]
        for shard in shards:
            shard.lock.acquire()
        try:
            yield
        finally:
            for shard in reversed(shards):
                shard.lock.release()

    # -- reporting / lifecycle ------------------------------------------------

    def serving_stats(self) -> list[ServingStats]:
        return [self._shards[name].stats for name in sorted(self._shards)]

    def serving_report(self) -> list[dict[str, object]]:
        """Per-shard rows plus a fleet-wide TOTAL row.

        Each row merges the shard's serving counters with the template's
        health: circuit-breaker state, quarantine flag and the engine's
        degradation totals (fail-closed recosts, optimize/sVector
        fallbacks) — one view instead of three.
        """
        stats = self.serving_stats()
        rows = []
        open_breakers = 0
        quarantined_total = 0
        degraded_total = 0
        for s in stats:
            row = s.row()
            state = self._templates.get(s.template)
            breaker = getattr(state.engine, "recost_breaker", None) if state else None
            row["breaker"] = (
                getattr(getattr(breaker, "state", None), "value", "-")
                if breaker is not None
                else "-"
            )
            if breaker is not None and getattr(breaker, "is_open", False):
                open_breakers += 1
            is_quarantined = bool(state.quarantined) if state else False
            row["quarantined"] = "yes" if is_quarantined else "-"
            quarantined_total += int(is_quarantined)
            res = getattr(
                getattr(state.engine, "counters", None), "resilience", None
            ) if state else None
            degraded = (
                res.recost_failed_closed
                + res.optimize_fallbacks
                + res.selectivity_fallbacks
                if res is not None
                else 0
            )
            row["degraded"] = degraded
            degraded_total += degraded
            rows.append(row)
        if stats:
            total = merge_rows(stats)
            total["breaker"] = f"{open_breakers} open" if open_breakers else "-"
            total["quarantined"] = quarantined_total if quarantined_total else "-"
            total["degraded"] = degraded_total
            rows.append(total)
        return rows

    def overload_report(self) -> Optional[dict[str, object]]:
        """Operator snapshot of the overload subsystem (None when off)."""
        if self._overload_coordinator is None:
            return None
        return self._overload_coordinator.report()

    def obs_report(self) -> Optional[dict[str, object]]:
        """The observability handle's snapshot (None when no handle).

        Includes the outcome totals, the λ-violation count and events,
        span accounting, and the full metrics dump — the programmatic
        twin of the ``repro obs-report`` CLI command.
        """
        if self.obs is None:
            return None
        return self.obs.report()

    def prometheus(self) -> Optional[str]:
        """The registry as Prometheus text exposition (None when off)."""
        if self.obs is None:
            return None
        return self.obs.prometheus()

    def doctor_report(self) -> dict[str, object]:
        """Per-template health judgement (``python -m repro doctor``).

        Unlike :meth:`obs_report` this works without an observability
        handle too — anchor attribution and hit accounting live in the
        cache itself; only the calibration sections go ``None``.
        """
        from ..obs.doctor import doctor_report

        return doctor_report(self)

    def anchor_summaries(self) -> dict[str, dict[str, int]]:
        """Compact per-template anchor attribution for heartbeats.

        Small, flat and summable — the shape
        :func:`~repro.obs.doctor.doctor_from_sources` merges across
        workers for the cluster doctor view.
        """
        out: dict[str, dict[str, int]] = {}
        with self._all_shard_locks():
            for name in sorted(self._shards):
                cache = self._templates[name].scr.cache
                sel, cost, spend = cache.anchor_hit_totals()
                entries = list(cache.instances())
                never_hit_live = sum(
                    1 for e in entries if e.total_hits == 0
                )
                out[name] = {
                    "live_anchors": len(entries),
                    "plans_cached": cache.num_plans,
                    "hits_selectivity": sel,
                    "hits_cost": cost,
                    "recost_spend": spend,
                    "never_hit_live": never_hit_live,
                    "evicted_never_hit": cache.evicted_never_hit,
                }
        return out

    @property
    def brownout_level(self):
        """Current brownout level, or None without overload protection."""
        if self._overload_coordinator is None:
            return None
        return self._overload_coordinator.level

    def close(self, wait: bool = True) -> None:
        """Shut the serving pool down.

        ``wait=True`` drains: every already-submitted instance is served
        before the call returns.  ``wait=False`` cancels: queued
        (not-yet-started) submissions are resolved immediately with
        :class:`ShutdownError` instead of being silently dropped, so no
        caller ever blocks forever on a future that will never run.
        """
        if self._executor is None:
            return
        if wait:
            self._executor.shutdown(wait=True)
            return
        self._closed = True
        self._executor.shutdown(wait=False, cancel_futures=True)
        with self._futures_lock:
            pending = list(self._outstanding)
            self._outstanding.clear()
        for fut in pending:
            if not fut.done():
                with suppress(InvalidStateError):
                    fut.set_exception(
                        ShutdownError(
                            "manager closed before this queued submission was served"
                        )
                    )

    def __enter__(self) -> "ConcurrentPQOManager":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
