"""The concurrent front-end: dispatching instances across shards.

:class:`ConcurrentPQOManager` extends the serial
:class:`~repro.core.manager.PQOManager` with a thread pool and one
:class:`~repro.serving.shard.TemplateShard` per registered template.
Independent templates never contend — each shard has its own lock, its
own SCR state and its own single-flight table.  Global concerns (the
shared plan budget, quarantine of misbehaving templates) are handled at
**rebalance points**: one thread at a time takes every shard lock in
canonical order (no worker ever holds two shard locks, so the ordering
makes deadlock impossible) and re-divides the budget exactly like the
serial manager.

Batched admission (:meth:`submit_batch`) coalesces a batch by template
and deduplicates identical selectivity vectors before dispatch, so a
burst of the same query instance costs one optimization and the
duplicates share its :class:`PlanChoice`.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..core.manager import PQOManager, TemplateState
from ..core.technique import PlanChoice
from ..engine.tracing import TraceLog
from ..query.instance import QueryInstance
from ..query.template import QueryTemplate
from .shard import TemplateShard
from .stats import ServingStats, merge_rows


@dataclass
class ConcurrentPQOManager(PQOManager):
    """Routes query instances to per-template shards on a thread pool.

    Parameters (beyond :class:`PQOManager`'s)
    ----------
    max_workers:
        Size of the serving thread pool.
    trace:
        Optional :class:`TraceLog` receiving ``serving`` events
        (single-flight collapses, epoch retries, batch dedup).
    """

    max_workers: int = 8
    trace: Optional[TraceLog] = None
    _shards: dict[str, TemplateShard] = field(default_factory=dict)
    _executor: Optional[ThreadPoolExecutor] = field(
        default=None, init=False, repr=False
    )
    _registry_lock: threading.RLock = field(
        default_factory=threading.RLock, init=False, repr=False
    )
    _rebalance_lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False
    )
    _counter_lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False
    )

    def __post_init__(self) -> None:
        if self.max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self._executor = ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix="pqo-serve"
        )

    # -- registration ---------------------------------------------------------

    def register(
        self,
        template: QueryTemplate,
        lam: Optional[float] = None,
        **scr_kwargs,
    ) -> TemplateState:
        with self._registry_lock:
            state = self._build_state(template, lam, **scr_kwargs)
            # Racy double-misses on one vector must not grow the instance
            # list without bound (see ManageCache.coalesce_identical).
            state.scr.manage_cache.coalesce_identical = True
            with self._all_shard_locks():
                self._templates[template.name] = state
                self._shards[template.name] = TemplateShard(
                    state, trace=self.trace
                )
                self._apply_budgets()
        return state

    def shard(self, template_name: str) -> TemplateShard:
        return self._shards[template_name]

    # -- serving --------------------------------------------------------------

    def process(self, instance: QueryInstance) -> PlanChoice:
        """Serve one instance synchronously (callable from any thread)."""
        shard = self._shards.get(instance.template_name)
        if shard is None:
            raise KeyError(
                f"template {instance.template_name!r} is not registered"
            )
        choice = shard.process(instance)
        self._note_processed(shard.state)
        return choice

    def submit(self, instance: QueryInstance) -> "Future[PlanChoice]":
        """Dispatch one instance to the serving pool."""
        return self._executor.submit(self.process, instance)

    def submit_batch(
        self, instances: Sequence[QueryInstance], dedupe: bool = True
    ) -> list["Future[PlanChoice]"]:
        """Admit a batch: coalesce by template, dedupe identical vectors.

        Returns one future per input instance, in input order; duplicate
        instances share the future (and therefore the PlanChoice) of
        their first occurrence.  Unique instances are dispatched round-
        robin across templates so independent shards fill the pool
        instead of convoying on one shard's lock.
        """
        futures: list[Optional[Future]] = [None] * len(instances)
        per_template: dict[str, list[tuple[int, QueryInstance]]] = {}
        first_seen: dict[tuple, int] = {}
        duplicate_of: dict[int, int] = {}
        for i, instance in enumerate(instances):
            if dedupe:
                key = (instance.template_name, self._dedupe_key(instance))
                first = first_seen.get(key)
                if first is not None:
                    duplicate_of[i] = first
                    shard = self._shards.get(instance.template_name)
                    if shard is not None:
                        shard.stats.note_deduped()
                    if self.trace is not None:
                        self.trace.serving("batch_dedupe", i)
                    continue
                first_seen[key] = i
            per_template.setdefault(instance.template_name, []).append(
                (i, instance)
            )
        queues = [list(reversed(v)) for _, v in sorted(per_template.items())]
        while queues:
            for queue in list(queues):
                i, instance = queue.pop()
                futures[i] = self.submit(instance)
                if not queue:
                    queues.remove(queue)
        for i, first in duplicate_of.items():
            futures[i] = futures[first]
        return futures

    def process_many(
        self, instances: Sequence[QueryInstance], dedupe: bool = True
    ) -> list[PlanChoice]:
        """Admit a batch and wait for every result (input order)."""
        return [f.result() for f in self.submit_batch(instances, dedupe=dedupe)]

    @staticmethod
    def _dedupe_key(instance: QueryInstance) -> tuple:
        if instance.sv is not None:
            return ("sv",) + instance.sv.values
        return ("params",) + instance.parameters

    # -- global budget / quarantine at rebalance points -----------------------

    def _note_processed(self, state: TemplateState) -> None:
        with self._counter_lock:
            state.instances_seen += 1
            self._since_rebalance += 1
            # Rebalance points also run the quarantine sweep, so they
            # are due on schedule even without a global plan budget
            # (where _apply_budgets is a no-op but breaker-open
            # templates must still be marked quarantined).
            due = self._since_rebalance >= self.rebalance_every
        if due:
            self._maybe_rebalance()

    def _maybe_rebalance(self) -> None:
        # Only one rebalancer at a time; losers just keep serving — the
        # winner will see their counted instances anyway.
        if not self._rebalance_lock.acquire(blocking=False):
            return
        try:
            with self._counter_lock:
                self._since_rebalance = 0
            with self._all_shard_locks():
                for state in self._templates.values():
                    breaker = getattr(state.engine, "recost_breaker", None)
                    if breaker is not None:
                        state.quarantined = bool(
                            getattr(breaker, "is_open", False)
                        )
                self._apply_budgets()
        finally:
            self._rebalance_lock.release()

    @contextmanager
    def _all_shard_locks(self):
        """Every shard lock, in canonical (name) order.

        Workers hold at most their own single shard lock and never
        acquire a second, so a canonical-order sweep cannot deadlock.
        """
        shards = [self._shards[name] for name in sorted(self._shards)]
        for shard in shards:
            shard.lock.acquire()
        try:
            yield
        finally:
            for shard in reversed(shards):
                shard.lock.release()

    # -- reporting / lifecycle ------------------------------------------------

    def serving_stats(self) -> list[ServingStats]:
        return [self._shards[name].stats for name in sorted(self._shards)]

    def serving_report(self) -> list[dict[str, object]]:
        """Per-shard rows plus a fleet-wide TOTAL row."""
        stats = self.serving_stats()
        rows = [s.row() for s in stats]
        if stats:
            rows.append(merge_rows(stats))
        return rows

    def close(self, wait: bool = True) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=wait)

    def __enter__(self) -> "ConcurrentPQOManager":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
