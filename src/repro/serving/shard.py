"""One template's serving shard: thread-safe SCR with optimistic reads.

The lock discipline (DESIGN.md §8):

* the **selectivity/cost probe** runs lock-free against an immutable
  :class:`~repro.core.plan_cache.CacheSnapshot` of the instance list
  (copy-on-write, so snapshotting is O(1) between mutations);
* a probed **hit** is committed under the shard's write lock only after
  **optimistic validation** — either the cache epoch is unchanged, or
  the specific anchor is still live (its plan cached, not retired).
  The certified bound ``S·G·L`` / ``S·R·L`` depends only on write-once
  anchor fields, so a validated commit certifies exactly what a fully
  serial run would have;
* a **miss** makes the optimizer call *outside* the lock, collapsed
  through a per-vector **single-flight** table so concurrent misses on
  the same selectivity vector cost one optimizer call; only
  ``manageCache`` mutations (register / evict / retire) hold the write
  lock.

Overload protection (DESIGN.md §9) threads through the same paths:
every instance may carry an end-to-end :class:`Deadline`, misses pass
through the coordinator's optimizer-gate admission, and denied work is
resolved on the **degraded path** — the nearest cached plan served
``certified=False`` with a reason code, or a :class:`ShedError` when
the cache is empty.  Without an :class:`OverloadCoordinator` the shard
behaves exactly as before.
"""

from __future__ import annotations

import threading
from contextlib import nullcontext
from typing import Optional, Sequence

from ..core.get_plan import CheckKind, CheckMode
from ..core.manager import TemplateState
from ..core.scr import SCR
from ..core.technique import PlanChoice
from ..engine.resilience import OptimizeUnavailableError
from ..engine.tracing import TraceLog
from ..obs.clock import SYSTEM_CLOCK
from ..obs.handle import Observability
from ..obs.tracectx import activate, current_context, start_trace
from ..optimizer.recost import ShrunkenMemo
from ..query.instance import (
    AnySelectivityVector,
    QueryInstance,
    SelectivityVector,
    UncertainSelectivityVector,
    as_point,
)
from .overload import BrownoutLevel, Deadline, OverloadCoordinator, ShedError
from .stats import ServingStats

#: Probe/commit retries before degrading to the fully-serial path; a
#: retry only happens when another thread invalidated the snapshot
#: mid-probe, so contention this deep means serializing is cheaper.
MAX_OPTIMISTIC_RETRIES = 3


class TemplateShard:
    """Thread-safe serving wrapper around one template's SCR."""

    def __init__(
        self,
        state: TemplateState,
        trace: Optional[TraceLog] = None,
        flight_timeout_seconds: float = 30.0,
        overload: Optional[OverloadCoordinator] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        self.state = state
        self.scr: SCR = state.scr
        self.engine = state.engine
        # Robust/probabilistic shards probe with an uncertainty box; the
        # flag gates the usv fetch path and the brownout coverage step.
        self.robust = state.scr.check_mode is not CheckMode.POINT
        self.trace = trace
        self.flight_timeout_seconds = flight_timeout_seconds
        self.lock = threading.RLock()
        self.stats = ServingStats(template=state.template.name)
        self._overload = overload
        # One clock source for everything the shard times (latency,
        # lock waits, deadlines): the coordinator's when overload is
        # configured — so a test's fake clock drives all of it — the
        # system clock otherwise.  Previously latency used
        # time.perf_counter while deadlines used the coordinator's
        # monotonic callable, so fake clocks couldn't reach latencies.
        # the coordinator's clock must win when present: deadlines are
        # minted on it, and _now() must read the same timeline.
        if overload is not None:
            self.clock = overload.clock_source
        elif obs is not None:
            self.clock = obs.clock
        else:
            self.clock = SYSTEM_CLOCK
        self._obs = obs
        if obs is not None:
            self.stats.attach_obs(obs)
        self._flight_lock = threading.Lock()
        self._inflight: dict[tuple[float, ...], threading.Event] = {}
        # Instance sequence numbers for trace attribution are allocated
        # atomically here and passed explicitly: reading the SCR's
        # lock-protected counter lock-free would hand the same index to
        # concurrent threads.
        self._seq_lock = threading.Lock()
        self._next_seq = state.scr.instances_processed

    # -- public entry ---------------------------------------------------------

    def process(
        self,
        instance: QueryInstance,
        deadline: Optional[Deadline] = None,
        overflow_reason: Optional[str] = None,
    ) -> PlanChoice:
        """Serve one instance; safe to call from any number of threads.

        ``deadline`` is the submission's end-to-end budget (the
        coordinator's default is attached when None).  ``overflow_reason``
        marks a bounded-queue overflow being resolved in the submitting
        thread: the probe runs selectivity-only (zero engine calls) and a
        miss goes straight to the degraded path with that reason.
        """
        start = self.clock.perf_counter()
        with self._seq_lock:
            seq = self._next_seq
            self._next_seq += 1
        self.engine.begin_instance(seq)
        ov = self._overload
        if deadline is None and ov is not None:
            deadline = ov.new_deadline()
        shed = False
        outcome = "shed"
        obs = self._obs
        spans_on = obs is not None and obs.spans.enabled
        # The request's trace context: the manager mints one per
        # submission (so queue wait and pool hand-off stay attributed);
        # direct shard calls outside any trace get a fresh root.  The
        # ``serving.process`` span *is* this context's span — everything
        # recorded inside (scr.* phases, engine.* calls, single-flight
        # waits) parents under it.
        ctx = None
        if spans_on:
            ctx = current_context()
            if ctx is None:
                ctx = start_trace(ids=obs.spans.ids)
        extra: dict = {}
        try:
            with activate(ctx) if ctx is not None else nullcontext():
                with self._engine_budget(deadline):
                    choice = self._process_inner(
                        instance, deadline, overflow_reason, start
                    )
                    outcome = "certified" if choice.certified else "uncertified"
                    if spans_on:
                        extra = self._choice_attrs(choice)
                    return choice
        except ShedError as exc:
            shed = True
            if spans_on:
                extra["reason"] = exc.reason
            raise
        finally:
            missed = deadline is not None and deadline.expired(self._now())
            if missed:
                self.stats.note_deadline_miss()
            if ov is not None:
                ov.note_completed(missed, shed=shed)
                if spans_on:
                    extra["brownout"] = int(ov.level)
            if spans_on:
                with activate(ctx) if ctx is not None else nullcontext():
                    obs.spans.record(
                        "serving.process", start,
                        self.clock.perf_counter() - start,
                        span_id=ctx.span_id if ctx is not None else None,
                        template=self.state.template.name, seq=seq,
                        outcome=outcome, **extra,
                    )

    @staticmethod
    def _choice_attrs(choice: PlanChoice) -> dict:
        """Guarantee-forensics attributes for the request-level span."""
        attrs: dict = {
            "check": getattr(choice.check, "value", choice.check),
            "certificate": choice.certificate,
            "recost_calls": choice.recost_calls,
        }
        if choice.used_optimizer:
            attrs["used_optimizer"] = True
        if choice.certified and choice.certified_bound is not None:
            attrs["certified_bound"] = round(choice.certified_bound, 6)
        if choice.coverage is not None and choice.coverage != 1.0:
            attrs["coverage"] = choice.coverage
        return attrs

    def process_batch(
        self,
        instances: Sequence[QueryInstance],
        deadline: Optional[Deadline] = None,
    ) -> list["PlanChoice | BaseException"]:
        """Serve a batch of instances against one cache snapshot.

        The whole batch is probed lock-free in one broadcasted
        :meth:`~repro.core.get_plan.GetPlan.probe_batch` pass, then all
        validated hits commit under a single lock acquisition; misses
        and invalidated hits resolve through the ordinary per-instance
        paths (single-flight, optimizer, manageCache).  Failures are
        isolated per item: the returned list holds, in input order, a
        :class:`PlanChoice` or the exception that instance raised.

        The batched pass is a plain throughput optimization over one
        snapshot — it does not interleave commits between batch rows, so
        a miss earlier in the batch does not seed a hit for a later row
        the way sequential submission might.  With overload protection
        or a deadline in force (admission decisions are per instance),
        or under a decision procedure without batch support, it degrades
        to a :meth:`process` loop with the same per-item isolation.
        """
        if (
            self._overload is not None
            or deadline is not None
            or not self.scr.get_plan.supports_batch
        ):
            results: list[PlanChoice | BaseException] = []
            for instance in instances:
                try:
                    results.append(self.process(instance, deadline=deadline))
                except BaseException as exc:  # noqa: BLE001 - per-item isolation
                    results.append(exc)
            return results
        return self._process_batch_fast(instances)

    def _process_batch_fast(
        self, instances: Sequence[QueryInstance]
    ) -> list["PlanChoice | BaseException"]:
        start = self.clock.perf_counter()
        scr = self.scr
        obs = self._obs
        spans_on = obs is not None and obs.spans.enabled
        # One trace context per batch row: even though one thread probes
        # the whole batch, each row is its own request and gets its own
        # request-level span (child of the submit-time ambient context,
        # or a fresh root).  The batch-wide scr.* probe spans stay under
        # the ambient context — they belong to the batch, not one row.
        ctxs: list = [None] * len(instances)
        if spans_on:
            ambient = current_context()
            ids = obs.spans.ids
            for i in range(len(instances)):
                ctxs[i] = (
                    ambient.child(ids) if ambient is not None
                    else start_trace(ids=ids)
                )
        seqs: list[int] = []
        svs: list[AnySelectivityVector] = []
        degraded: list[bool] = []
        results: list[PlanChoice | BaseException] = [None] * len(instances)  # type: ignore[list-item]
        for i, instance in enumerate(instances):
            with self._seq_lock:
                seq = self._next_seq
                self._next_seq += 1
            seqs.append(seq)
            self.engine.begin_instance(seq)
            with activate(ctxs[i]) if ctxs[i] is not None else nullcontext():
                sv, deg = self._selectivity_vector(instance)
            if self.robust and isinstance(sv, UncertainSelectivityVector):
                self.stats.note_interval_width(sv.total_log_width)
            svs.append(sv)
            degraded.append(deg)
        snapshot = scr.cache.snapshot()
        decisions = scr.get_plan.probe_batch(
            svs, self._recost, entries=snapshot.entries
        )
        misses: list[int] = []
        retries: list[int] = []
        acquired_at = self.clock.perf_counter()
        with self.lock:
            self.stats.add_lock_wait(self.clock.perf_counter() - acquired_at)
            for i, decision in enumerate(decisions):
                if not decision.hit:
                    misses.append(i)
                elif self._commit_valid(decision, snapshot):
                    scr.get_plan.commit(decision)
                    results[i] = self._finish_locked(scr._hit_choice(decision))
                else:
                    retries.append(i)
        for i in retries:
            # Anchor vanished between probe and commit: same re-probe the
            # single-instance path runs after a failed validation.
            self.stats.note_epoch_retry()
            if self.trace is not None:
                self.trace.serving("epoch_retry", scr.instances_processed)
            try:
                with activate(ctxs[i]) if ctxs[i] is not None else nullcontext():
                    results[i] = self._serve(svs[i], depth=1)
            except BaseException as exc:  # noqa: BLE001 - per-item isolation
                results[i] = exc
        for i in misses:
            try:
                with activate(ctxs[i]) if ctxs[i] is not None else nullcontext():
                    results[i] = self._miss(svs[i], decisions[i], depth=0)
            except BaseException as exc:  # noqa: BLE001 - per-item isolation
                results[i] = exc
        for i, outcome in enumerate(results):
            extra: dict = {}
            if isinstance(outcome, BaseException):
                span_outcome = "shed"
                if spans_on and isinstance(outcome, ShedError):
                    extra["reason"] = outcome.reason
            else:
                if degraded[i]:
                    # Stale sVector fallback: nothing was certified.
                    outcome.certified = False
                span_outcome = (
                    "certified" if outcome.certified else "uncertified"
                )
                if spans_on:
                    extra = self._choice_attrs(outcome)
                self.stats.observe(
                    self.clock.perf_counter() - start,
                    outcome.check, outcome.certified,
                    certificate=outcome.certificate,
                )
            if spans_on:
                ctx = ctxs[i]
                with activate(ctx) if ctx is not None else nullcontext():
                    obs.spans.record(
                        "serving.process", start,
                        self.clock.perf_counter() - start,
                        span_id=ctx.span_id if ctx is not None else None,
                        template=self.state.template.name, seq=seqs[i],
                        outcome=span_outcome, batched=True, **extra,
                    )
        return results

    def _process_inner(
        self,
        instance: QueryInstance,
        deadline: Optional[Deadline],
        overflow_reason: Optional[str],
        start: float,
    ) -> PlanChoice:
        sv, degraded = self._selectivity_vector(instance)
        if self.robust and isinstance(sv, UncertainSelectivityVector):
            self.stats.note_interval_width(sv.total_log_width)
        coverage = self._brownout_coverage()
        now = self._now()
        if overflow_reason is not None:
            choice = self._serve(
                sv, depth=0, deadline=deadline, max_recost=0,
                deny=overflow_reason, coverage=coverage,
            )
        elif deadline is not None and deadline.expired(now):
            # The budget died in queue: skip the probe entirely and
            # resolve through the degraded path instead of hanging.
            choice = self._degrade_entry(sv, "deadline_expired")
        else:
            max_recost = None
            if (
                self._overload is not None
                and self._overload.level >= BrownoutLevel.SHED
            ):
                max_recost = 0  # selectivity-only: zero engine calls
            elif (
                deadline is not None
                and deadline.remaining(now) <= self._min_optimize_budget()
            ):
                # A nearly-expired budget funds no engine work; don't
                # let the probe's recosts count as engine faults.
                max_recost = 0
            choice = self._serve(
                sv, depth=0, deadline=deadline, max_recost=max_recost,
                coverage=coverage,
            )
        if degraded:
            # The sVector was a stale fallback: every check ran against
            # approximate selectivities, so no bound is certified.
            choice.certified = False
        self.stats.observe(
            self.clock.perf_counter() - start, choice.check, choice.certified,
            certificate=choice.certificate,
        )
        return choice

    def _brownout_coverage(self) -> Optional[float]:
        """COVERAGE_RELAXED step: robust shards tolerate more estimation
        risk under pressure by probing a box shrunk to the brownout
        coverage — more hits, certificates honestly downgraded to
        ``probabilistic``.  Point-mode shards have no box to shrink."""
        ov = self._overload
        if (
            self.robust
            and ov is not None
            and ov.level >= BrownoutLevel.COVERAGE_RELAXED
        ):
            return ov.policy.brownout_coverage
        return None

    def _selectivity_vector(
        self, instance: QueryInstance
    ) -> tuple[AnySelectivityVector, bool]:
        """sVector plus per-call degradation status.

        Robust/probabilistic shards fetch the uncertainty box
        (``selectivity_vector_with_error``); point-mode shards the plain
        vector.  Either way the resilient engine's ``*_ex`` variant
        returns the status with the vector; a shared
        ``last_selectivity_degraded`` flag must not be read here, since
        another thread's call could reset it between our call and the
        read, silently certifying an instance served from a degraded
        (stale, uncertified) vector.
        """
        if self.robust:
            ex = getattr(
                self.engine, "selectivity_vector_with_error_ex", None
            )
            if ex is not None:
                return ex(instance)
            with_error = getattr(
                self.engine, "selectivity_vector_with_error", None
            )
            if with_error is not None:
                return with_error(instance), bool(
                    getattr(self.engine, "last_selectivity_degraded", False)
                )
            # Engine stack predates the error model: probe with a
            # zero-width box (SCR treats a plain vector as exact).
        ex = getattr(self.engine, "selectivity_vector_ex", None)
        if ex is not None:
            return ex(instance)
        sv = self.engine.selectivity_vector(instance)
        # Same-thread best-effort fallback for engine wrappers that only
        # expose the legacy flag.
        return sv, bool(getattr(self.engine, "last_selectivity_degraded", False))

    # -- overload plumbing ----------------------------------------------------

    def _now(self) -> float:
        return self.clock.monotonic()

    def _min_optimize_budget(self) -> float:
        if self._overload is not None:
            return self._overload.policy.min_optimize_budget
        return 0.0

    def _engine_budget(self, deadline: Optional[Deadline]):
        """Scope the engine's per-call budget to the remaining deadline."""
        if deadline is None:
            return nullcontext()
        budget = getattr(self.engine, "call_budget", None)
        if budget is None:
            return nullcontext()
        return budget(deadline.expires_at)

    # -- optimistic read path -------------------------------------------------

    def _serve(
        self,
        sv: AnySelectivityVector,
        depth: int,
        deadline: Optional[Deadline] = None,
        max_recost: Optional[int] = None,
        deny: Optional[str] = None,
        coverage: Optional[float] = None,
    ) -> PlanChoice:
        if depth >= MAX_OPTIMISTIC_RETRIES:
            return self._serve_locked(
                sv, deadline=deadline, max_recost=max_recost, deny=deny,
                coverage=coverage,
            )
        scr = self.scr
        snapshot = scr.cache.snapshot()
        decision = scr.get_plan.probe(
            sv, self._recost, entries=snapshot.entries, max_recost=max_recost,
            coverage=coverage,
        )
        if not decision.hit:
            return self._miss(
                sv, decision, depth, deadline, max_recost, deny, coverage
            )
        acquired_at = self.clock.perf_counter()
        with self.lock:
            self.stats.add_lock_wait(self.clock.perf_counter() - acquired_at)
            if self._commit_valid(decision, snapshot):
                scr.get_plan.commit(decision)
                return self._finish_locked(scr._hit_choice(decision))
        # The anchor vanished (plan evicted / retired) between probe and
        # commit: the certificate no longer stands, so re-probe fresh.
        self.stats.note_epoch_retry()
        if self.trace is not None:
            self.trace.serving("epoch_retry", scr.instances_processed)
        return self._serve(
            sv, depth + 1, deadline=deadline, max_recost=max_recost, deny=deny,
            coverage=coverage,
        )

    def _commit_valid(self, decision, snapshot) -> bool:
        """Optimistic validation of a probed hit; caller holds the lock.

        Retiring an anchor (Appendix G) flips its flag *without* bumping
        the cache epoch, so the retired bit must be re-read here even on
        the epoch fast-path — otherwise a cost-check hit probed just
        before a concurrent retirement would certify a bound the
        violation detector already invalidated.  Retired anchors still
        serve selectivity hits (serial semantics keep them in the
        selectivity check); only cost-check certificates die with them.
        """
        anchor = decision.anchor
        if anchor is None:
            return False
        if decision.check is CheckKind.COST and anchor.retired:
            return False
        if self.scr.cache.epoch == snapshot.epoch:
            return True
        return self.scr.cache.has_plan(decision.plan_id)

    def _serve_locked(
        self,
        sv: AnySelectivityVector,
        deadline: Optional[Deadline] = None,
        max_recost: Optional[int] = None,
        deny: Optional[str] = None,
        coverage: Optional[float] = None,
    ) -> PlanChoice:
        """Fully serial fallback: the whole getPlan/manageCache cycle
        under the write lock (identical to serial SCR semantics).

        With overload machinery in play the locked cycle still honours
        the gate, the deadline and any standing denial — contention must
        not become a hole in admission control.
        """
        acquired_at = self.clock.perf_counter()
        with self.lock:
            self.stats.add_lock_wait(self.clock.perf_counter() - acquired_at)
            if (
                self._overload is None
                and deadline is None
                and max_recost is None
                and deny is None
                and coverage is None
            ):
                return self._finish_locked(self.scr._choose(sv))
            scr = self.scr
            decision = scr.get_plan.probe(
                sv, self._recost, max_recost=max_recost, coverage=coverage
            )
            scr.get_plan.commit(decision)
            if decision.hit:
                return self._finish_locked(scr._hit_choice(decision))
            reason, holds_gate = self._admission(deadline, deny)
            if reason is not None:
                return self._commit_degraded(sv, decision.recost_calls, reason)
            try:
                with self.stats.engine_calls.track():
                    result = scr._optimize(sv)
            except OptimizeUnavailableError:
                fallback = scr._fallback_choice(sv, decision.recost_calls)
                if fallback is None:
                    raise  # empty cache: nothing can be served
                return self._finish_locked(fallback)
            finally:
                if holds_gate:
                    self._overload.release_optimize()
            return self._finish_locked(
                scr._register_optimized(sv, result, decision.recost_calls)
            )

    # -- miss path with single-flight -----------------------------------------

    def _miss(
        self,
        sv: AnySelectivityVector,
        decision,
        depth: int,
        deadline: Optional[Deadline] = None,
        max_recost: Optional[int] = None,
        deny: Optional[str] = None,
        coverage: Optional[float] = None,
    ) -> PlanChoice:
        # Keyed on the point estimate: the optimizer runs at the point,
        # so two robust misses with the same point (however wide their
        # boxes) want the same plan registered.
        key = as_point(sv).values
        with self._flight_lock:
            flight = self._inflight.get(key)
            leader = flight is None
            if leader:
                flight = threading.Event()
                self._inflight[key] = flight
        if not leader:
            # Another thread is optimizing this exact vector; wait for it
            # to register, then re-probe — the fresh anchor (G = L = 1,
            # S ≤ λ_r ≤ λ) guarantees a selectivity hit.  The wait never
            # outlives the submission's remaining budget.
            self.stats.note_single_flight()
            if self.trace is not None:
                self.trace.serving(
                    "single_flight_collapse", self.scr.instances_processed
                )
            timeout = self.flight_timeout_seconds
            if deadline is not None:
                timeout = min(timeout, max(0.0, deadline.remaining(self._now())))
            obs = self._obs
            if obs is not None and obs.spans.enabled:
                wait_start = self.clock.perf_counter()
                flight.wait(timeout=timeout)
                # The collapse is the whole point of single-flight, so
                # the follower's wait gets its own span — a trace of the
                # rerouted request shows *why* it did no optimizer call.
                obs.spans.record(
                    "serving.single_flight_wait", wait_start,
                    self.clock.perf_counter() - wait_start,
                    template=self.state.template.name,
                )
            else:
                flight.wait(timeout=timeout)
            return self._serve(
                sv, depth + 1, deadline=deadline, max_recost=max_recost,
                deny=deny, coverage=coverage,
            )
        try:
            reason, holds_gate = self._admission(deadline, deny)
            if reason is not None:
                return self._degrade_miss(sv, decision, reason)
            try:
                return self._optimize_and_register(sv, decision)
            finally:
                if holds_gate:
                    self._overload.release_optimize()
        finally:
            with self._flight_lock:
                self._inflight.pop(key, None)
            flight.set()

    def _admission(
        self, deadline: Optional[Deadline], deny: Optional[str]
    ) -> tuple[Optional[str], bool]:
        """Decide the miss's fate: ``(denial_reason, holds_gate)``.

        A standing denial (queue overflow) wins outright; an expired
        deadline denies next; otherwise the coordinator applies brownout
        level, remaining budget and the optimizer gate.
        """
        if deny is not None:
            return deny, False
        if deadline is not None and deadline.expired(self._now()):
            return "deadline_expired", False
        if self._overload is None:
            return None, False
        reason, holds_gate = self._overload.optimize_admission(deadline)
        if reason == "gate_timeout":
            self.stats.note_gate_timeout()
        return reason, holds_gate

    def _optimize_and_register(
        self, sv: AnySelectivityVector, decision
    ) -> PlanChoice:
        scr = self.scr
        try:
            with self.stats.engine_calls.track():
                result = scr._optimize(sv)
        except OptimizeUnavailableError:
            acquired_at = self.clock.perf_counter()
            with self.lock:
                self.stats.add_lock_wait(self.clock.perf_counter() - acquired_at)
                # Book the miss (hit/miss counters, recost-call totals)
                # exactly as the serial path does before degrading.
                scr.get_plan.commit(decision)
                fallback = scr._fallback_choice(sv, decision.recost_calls)
                if fallback is None:
                    raise  # empty cache: nothing can be served
                return self._finish_locked(fallback)
        acquired_at = self.clock.perf_counter()
        with self.lock:
            self.stats.add_lock_wait(self.clock.perf_counter() - acquired_at)
            scr.get_plan.commit(decision)
            return self._finish_locked(
                scr._register_optimized(sv, result, decision.recost_calls)
            )

    # -- degraded path --------------------------------------------------------

    def _degrade_entry(self, sv: AnySelectivityVector, reason: str) -> PlanChoice:
        """Resolve an instance whose budget expired before any probe ran."""
        acquired_at = self.clock.perf_counter()
        with self.lock:
            self.stats.add_lock_wait(self.clock.perf_counter() - acquired_at)
            return self._commit_degraded(sv, 0, reason)

    def _degrade_miss(
        self, sv: AnySelectivityVector, decision, reason: str
    ) -> PlanChoice:
        """Resolve a denied miss: book it, then serve degraded."""
        acquired_at = self.clock.perf_counter()
        with self.lock:
            self.stats.add_lock_wait(self.clock.perf_counter() - acquired_at)
            self.scr.get_plan.commit(decision)
            return self._commit_degraded(sv, decision.recost_calls, reason)

    def _commit_degraded(
        self, sv: AnySelectivityVector, recost_calls: int, reason: str
    ) -> PlanChoice:
        """Nearest cached plan uncertified, or shed; caller holds the lock.

        Every outcome is labeled: an ``overload`` trace event carries the
        reason code, and the stats layer counts the serve or the shed.
        """
        choice = self.scr._overload_choice(sv, recost_calls)
        if choice is None:
            self.stats.note_shed(f"{reason}:no_cached_plan")
            if self.trace is not None:
                self.trace.overload(
                    "shed",
                    self.scr.instances_processed,
                    detail=f"{reason}:no_cached_plan",
                )
            raise ShedError(
                f"{reason}:no_cached_plan", template=self.state.template.name
            )
        self.stats.note_overload_serve(reason)
        if self.trace is not None:
            self.trace.overload(
                "uncertified_serve", self.scr.instances_processed, detail=reason
            )
        return self._finish_locked(choice)

    # -- shared plumbing ------------------------------------------------------

    def _recost(self, shrunken: ShrunkenMemo, sv: SelectivityVector) -> float:
        with self.stats.engine_calls.track():
            return self.engine.recost(shrunken, sv)

    def _finish_locked(self, choice: PlanChoice) -> PlanChoice:
        """Per-instance technique bookkeeping; caller holds the lock."""
        self.scr.instances_processed += 1
        if choice.used_optimizer:
            self.scr.optimizer_calls += 1
        return choice
