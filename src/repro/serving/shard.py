"""One template's serving shard: thread-safe SCR with optimistic reads.

The lock discipline (DESIGN.md §8):

* the **selectivity/cost probe** runs lock-free against an immutable
  :class:`~repro.core.plan_cache.CacheSnapshot` of the instance list
  (copy-on-write, so snapshotting is O(1) between mutations);
* a probed **hit** is committed under the shard's write lock only after
  **optimistic validation** — either the cache epoch is unchanged, or
  the specific anchor is still live (its plan cached, not retired).
  The certified bound ``S·G·L`` / ``S·R·L`` depends only on write-once
  anchor fields, so a validated commit certifies exactly what a fully
  serial run would have;
* a **miss** makes the optimizer call *outside* the lock, collapsed
  through a per-vector **single-flight** table so concurrent misses on
  the same selectivity vector cost one optimizer call; only
  ``manageCache`` mutations (register / evict / retire) hold the write
  lock.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from ..core.get_plan import CheckKind
from ..core.manager import TemplateState
from ..core.scr import SCR
from ..core.technique import PlanChoice
from ..engine.resilience import OptimizeUnavailableError
from ..engine.tracing import TraceLog
from ..optimizer.recost import ShrunkenMemo
from ..query.instance import QueryInstance, SelectivityVector
from .stats import ServingStats

#: Probe/commit retries before degrading to the fully-serial path; a
#: retry only happens when another thread invalidated the snapshot
#: mid-probe, so contention this deep means serializing is cheaper.
MAX_OPTIMISTIC_RETRIES = 3


class TemplateShard:
    """Thread-safe serving wrapper around one template's SCR."""

    def __init__(
        self,
        state: TemplateState,
        trace: Optional[TraceLog] = None,
        flight_timeout_seconds: float = 30.0,
    ) -> None:
        self.state = state
        self.scr: SCR = state.scr
        self.engine = state.engine
        self.trace = trace
        self.flight_timeout_seconds = flight_timeout_seconds
        self.lock = threading.RLock()
        self.stats = ServingStats(template=state.template.name)
        self._flight_lock = threading.Lock()
        self._inflight: dict[tuple[float, ...], threading.Event] = {}
        # Instance sequence numbers for trace attribution are allocated
        # atomically here and passed explicitly: reading the SCR's
        # lock-protected counter lock-free would hand the same index to
        # concurrent threads.
        self._seq_lock = threading.Lock()
        self._next_seq = state.scr.instances_processed

    # -- public entry ---------------------------------------------------------

    def process(self, instance: QueryInstance) -> PlanChoice:
        """Serve one instance; safe to call from any number of threads."""
        start = time.perf_counter()
        with self._seq_lock:
            seq = self._next_seq
            self._next_seq += 1
        self.engine.begin_instance(seq)
        sv, degraded = self._selectivity_vector(instance)
        choice = self._serve(sv, depth=0)
        if degraded:
            # The sVector was a stale fallback: every check ran against
            # approximate selectivities, so no bound is certified.
            choice.certified = False
        self.stats.observe(
            time.perf_counter() - start, choice.check, choice.certified
        )
        return choice

    def _selectivity_vector(
        self, instance: QueryInstance
    ) -> tuple[SelectivityVector, bool]:
        """sVector plus per-call degradation status.

        The resilient engine's ``selectivity_vector_ex`` returns the
        status with the vector; a shared ``last_selectivity_degraded``
        flag must not be read here, since another thread's call could
        reset it between our call and the read, silently certifying an
        instance served from a degraded (stale, uncertified) vector.
        """
        ex = getattr(self.engine, "selectivity_vector_ex", None)
        if ex is not None:
            return ex(instance)
        sv = self.engine.selectivity_vector(instance)
        # Same-thread best-effort fallback for engine wrappers that only
        # expose the legacy flag.
        return sv, bool(getattr(self.engine, "last_selectivity_degraded", False))

    # -- optimistic read path -------------------------------------------------

    def _serve(self, sv: SelectivityVector, depth: int) -> PlanChoice:
        if depth >= MAX_OPTIMISTIC_RETRIES:
            return self._serve_locked(sv)
        scr = self.scr
        snapshot = scr.cache.snapshot()
        decision = scr.get_plan.probe(sv, self._recost, entries=snapshot.entries)
        if not decision.hit:
            return self._miss(sv, decision, depth)
        acquired_at = time.perf_counter()
        with self.lock:
            self.stats.add_lock_wait(time.perf_counter() - acquired_at)
            if self._commit_valid(decision, snapshot):
                scr.get_plan.commit(decision)
                return self._finish_locked(scr._hit_choice(decision))
        # The anchor vanished (plan evicted / retired) between probe and
        # commit: the certificate no longer stands, so re-probe fresh.
        self.stats.note_epoch_retry()
        if self.trace is not None:
            self.trace.serving("epoch_retry", scr.instances_processed)
        return self._serve(sv, depth + 1)

    def _commit_valid(self, decision, snapshot) -> bool:
        """Optimistic validation of a probed hit; caller holds the lock.

        Retiring an anchor (Appendix G) flips its flag *without* bumping
        the cache epoch, so the retired bit must be re-read here even on
        the epoch fast-path — otherwise a cost-check hit probed just
        before a concurrent retirement would certify a bound the
        violation detector already invalidated.  Retired anchors still
        serve selectivity hits (serial semantics keep them in the
        selectivity check); only cost-check certificates die with them.
        """
        anchor = decision.anchor
        if anchor is None:
            return False
        if decision.check is CheckKind.COST and anchor.retired:
            return False
        if self.scr.cache.epoch == snapshot.epoch:
            return True
        return self.scr.cache.has_plan(decision.plan_id)

    def _serve_locked(self, sv: SelectivityVector) -> PlanChoice:
        """Fully serial fallback: the whole getPlan/manageCache cycle
        under the write lock (identical to serial SCR semantics)."""
        acquired_at = time.perf_counter()
        with self.lock:
            self.stats.add_lock_wait(time.perf_counter() - acquired_at)
            return self._finish_locked(self.scr._choose(sv))

    # -- miss path with single-flight -----------------------------------------

    def _miss(self, sv: SelectivityVector, decision, depth: int) -> PlanChoice:
        key = sv.values
        with self._flight_lock:
            flight = self._inflight.get(key)
            leader = flight is None
            if leader:
                flight = threading.Event()
                self._inflight[key] = flight
        if not leader:
            # Another thread is optimizing this exact vector; wait for it
            # to register, then re-probe — the fresh anchor (G = L = 1,
            # S ≤ λ_r ≤ λ) guarantees a selectivity hit.
            self.stats.note_single_flight()
            if self.trace is not None:
                self.trace.serving(
                    "single_flight_collapse", self.scr.instances_processed
                )
            flight.wait(timeout=self.flight_timeout_seconds)
            return self._serve(sv, depth + 1)
        try:
            return self._optimize_and_register(sv, decision)
        finally:
            with self._flight_lock:
                self._inflight.pop(key, None)
            flight.set()

    def _optimize_and_register(self, sv: SelectivityVector, decision) -> PlanChoice:
        scr = self.scr
        try:
            with self.stats.engine_calls.track():
                result = scr._optimize(sv)
        except OptimizeUnavailableError:
            acquired_at = time.perf_counter()
            with self.lock:
                self.stats.add_lock_wait(time.perf_counter() - acquired_at)
                # Book the miss (hit/miss counters, recost-call totals)
                # exactly as the serial path does before degrading.
                scr.get_plan.commit(decision)
                fallback = scr._fallback_choice(sv, decision.recost_calls)
                if fallback is None:
                    raise  # empty cache: nothing can be served
                return self._finish_locked(fallback)
        acquired_at = time.perf_counter()
        with self.lock:
            self.stats.add_lock_wait(time.perf_counter() - acquired_at)
            scr.get_plan.commit(decision)
            return self._finish_locked(
                scr._register_optimized(sv, result, decision.recost_calls)
            )

    # -- shared plumbing ------------------------------------------------------

    def _recost(self, shrunken: ShrunkenMemo, sv: SelectivityVector) -> float:
        with self.stats.engine_calls.track():
            return self.engine.recost(shrunken, sv)

    def _finish_locked(self, choice: PlanChoice) -> PlanChoice:
        """Per-instance technique bookkeeping; caller holds the lock."""
        self.scr.instances_processed += 1
        if choice.used_optimizer:
            self.scr.optimizer_calls += 1
        return choice
