"""Per-shard serving statistics for the concurrent front-end.

Each :class:`~repro.serving.shard.TemplateShard` owns one
:class:`ServingStats`; the manager aggregates them into the report the
operator reads — throughput, latency percentiles (via the metrics
layer's :class:`~repro.harness.metrics.LatencySummary`), time spent
waiting on the shard lock, and the high-water mark of concurrent
engine calls (how much optimizer/recost work actually overlapped).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Optional

from ..harness.metrics import LatencySummary
from ..obs.handle import Observability

SERVING_LATENCY_SECONDS = "repro_serving_latency_seconds"
CHECKS_TOTAL = "repro_checks_total"
QUEUE_DEPTH = "repro_queue_depth"
QUEUE_REJECTS_TOTAL = "repro_queue_rejects_total"
DEADLINE_MISSES_TOTAL = "repro_deadline_misses_total"
GATE_TIMEOUTS_TOTAL = "repro_gate_timeouts_total"


class ConcurrencyGauge:
    """Tracks how many engine calls are in flight and the peak seen."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._active = 0
        self.peak = 0
        self.total = 0

    @contextmanager
    def track(self):
        with self._lock:
            self._active += 1
            self.total += 1
            if self._active > self.peak:
                self.peak = self._active
        try:
            yield
        finally:
            with self._lock:
                self._active -= 1

    @property
    def active(self) -> int:
        return self._active


@dataclass
class ServingStats:
    """Thread-safe counters and latency samples for one shard."""

    template: str = ""
    processed: int = 0
    check_counts: dict[str, int] = field(default_factory=dict)
    certificate_counts: dict[str, int] = field(default_factory=dict)
    latencies_s: list[float] = field(default_factory=list)
    lock_wait_seconds: float = 0.0
    epoch_retries: int = 0
    single_flight_collapsed: int = 0
    batch_deduped: int = 0
    uncertified: int = 0
    # Overload-protection accounting (zero when no OverloadPolicy is set):
    shed: int = 0                  # requests refused (ShedError)
    overload_serves: int = 0       # uncertified serves on the degraded path
    deadline_misses: int = 0       # completions past their deadline
    gate_timeouts: int = 0         # misses denied by the optimizer gate
    queue_rejects: int = 0         # submissions hitting a full queue
    queue_depth: int = 0           # outstanding (queued + running) gauge
    queue_high_water: int = 0
    engine_calls: ConcurrencyGauge = field(default_factory=ConcurrencyGauge)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)
    _started_at: float = field(default_factory=time.perf_counter, repr=False)
    _last_at: float = 0.0
    _obs: Optional[Observability] = field(default=None, repr=False)

    def attach_obs(self, obs: Observability) -> None:
        """Mirror this shard's accounting into the metrics registry.

        Pre-resolves the labeled children so the per-response cost is a
        couple of lock-free-ish increments; once attached, the report
        row's outcome columns are *sourced from the registry* (the ints
        stay maintained for existing direct readers, and the exactly-
        once identity across certified/uncertified/shed is enforced by
        the audit counters).
        """
        registry = obs.registry
        self._obs = obs
        self._m_outcome = obs.audit.outcome_children(self.template)
        self._m_cert = obs.audit.certificate_children(self.template)
        self._m_width = obs.audit.width_child(self.template)
        self._m_check_children = {}
        self._m_latency = registry.histogram(
            SERVING_LATENCY_SECONDS,
            "End-to-end serving latency per template",
            labels=("template",),
        ).labels(template=self.template)
        self._m_checks = registry.counter(
            CHECKS_TOTAL,
            "Served responses by deciding check",
            labels=("template", "check"),
        )
        self._m_queue = registry.gauge(
            QUEUE_DEPTH,
            "Outstanding (queued + running) requests",
            labels=("template",),
        ).labels(template=self.template)
        self._m_queue_rejects = registry.counter(
            QUEUE_REJECTS_TOTAL,
            "Submissions refused by the bounded ingress queue",
            labels=("template",),
        ).labels(template=self.template)
        self._m_deadline = registry.counter(
            DEADLINE_MISSES_TOTAL,
            "Completions past their deadline",
            labels=("template",),
        ).labels(template=self.template)
        self._m_gate = registry.counter(
            GATE_TIMEOUTS_TOTAL,
            "Misses denied by the optimizer admission gate",
            labels=("template",),
        ).labels(template=self.template)

    def observe(
        self,
        latency_seconds: float,
        check: str,
        certified: bool,
        certificate: str = "exact",
    ) -> None:
        """Record one served instance.

        This is the single accounting point for every *served* response
        (shed requests go through :meth:`note_shed` instead), so with an
        observability handle attached it is also where the response's
        one outcome counter — certified or uncertified — and its one
        certificate-kind counter are incremented.  ``certificate`` is
        the kind the choice claims; an uncertified response counts as
        kind ``uncertified`` regardless of it (a degraded path may have
        invalidated the claim after the checks ran).
        """
        kind = certificate if certified else "uncertified"
        with self._lock:
            self.processed += 1
            self.latencies_s.append(latency_seconds)
            self.check_counts[check] = self.check_counts.get(check, 0) + 1
            if not certified:
                self.uncertified += 1
            self.certificate_counts[kind] = (
                self.certificate_counts.get(kind, 0) + 1
            )
            self._last_at = time.perf_counter()
        if self._obs is not None:
            self._m_outcome["certified" if certified else "uncertified"].inc()
            self._m_cert[kind].inc()
            self._m_latency.observe(latency_seconds)
            # Benign race: a duplicate labels() resolves the same child.
            check_child = self._m_check_children.get(check)
            if check_child is None:
                check_child = self._m_checks.labels(
                    template=self.template, check=check
                )
                self._m_check_children[check] = check_child
            check_child.inc()

    def add_lock_wait(self, seconds: float) -> None:
        with self._lock:
            self.lock_wait_seconds += seconds

    def note_epoch_retry(self) -> None:
        with self._lock:
            self.epoch_retries += 1

    def note_single_flight(self) -> None:
        with self._lock:
            self.single_flight_collapsed += 1

    def note_deduped(self, count: int = 1) -> None:
        with self._lock:
            self.batch_deduped += count

    # -- overload accounting -------------------------------------------------

    def try_enqueue(self, limit: int) -> bool:
        """Atomically claim one bounded-queue slot; False when full.

        The lock-guarded int stays authoritative (the check-and-inc must
        be atomic); the registry gauge mirrors it for exporters.
        """
        with self._lock:
            if self.queue_depth >= limit:
                self.queue_rejects += 1
                depth = None
            else:
                self.queue_depth += 1
                if self.queue_depth > self.queue_high_water:
                    self.queue_high_water = self.queue_depth
                depth = self.queue_depth
        if self._obs is not None:
            if depth is None:
                self._m_queue_rejects.inc()
            else:
                self._m_queue.set(depth)
        return depth is not None

    def note_dequeued(self) -> None:
        with self._lock:
            self.queue_depth = max(0, self.queue_depth - 1)
            depth = self.queue_depth
        if self._obs is not None:
            self._m_queue.set(depth)

    def note_shed(self, reason: str = "unknown") -> None:
        """Record one refused request — the response's single outcome
        counter (and certificate kind) for the shed path."""
        with self._lock:
            self.shed += 1
            self.certificate_counts["shed"] = (
                self.certificate_counts.get("shed", 0) + 1
            )
        obs = self._obs
        if obs is not None:
            self._m_outcome["shed"].inc()
            self._m_cert["shed"].inc()
            obs.audit.degraded(self.template, "shed", reason)

    def note_interval_width(self, log_width: float) -> None:
        """Record one served instance's uncertainty-box total log width
        (robust-mode shards only; point-mode shards never call this)."""
        if self._obs is not None:
            self._m_width.observe(log_width)

    def note_overload_serve(self, reason: str = "brownout") -> None:
        # Reason accounting only: the outcome counter for an overload
        # serve is incremented by observe() when the response completes.
        with self._lock:
            self.overload_serves += 1
        obs = self._obs
        if obs is not None:
            obs.audit.degraded(self.template, "uncertified", reason)

    def note_deadline_miss(self) -> None:
        with self._lock:
            self.deadline_misses += 1
        if self._obs is not None:
            self._m_deadline.inc()

    def note_gate_timeout(self) -> None:
        with self._lock:
            self.gate_timeouts += 1
        if self._obs is not None:
            self._m_gate.inc()

    # -- reporting -----------------------------------------------------------

    @property
    def latency(self) -> LatencySummary:
        with self._lock:
            return LatencySummary.from_seconds(self.latencies_s)

    @property
    def throughput_per_second(self) -> float:
        """Instances per second over the shard's active window."""
        with self._lock:
            if not self.processed or self._last_at <= self._started_at:
                return 0.0
            return self.processed / (self._last_at - self._started_at)

    def row(self) -> dict[str, object]:
        """One report row (matches the harness table format).

        With an observability handle attached, the outcome columns are
        sourced from the metrics registry (same numbers, one source of
        truth); the dict shape is identical either way.
        """
        latency = self.latency
        processed = self.processed
        uncertified = self.uncertified
        shed = self.shed
        obs = self._obs
        if obs is not None:
            totals = obs.audit.outcome_totals(self.template)
            processed = totals["certified"] + totals["uncertified"]
            uncertified = totals["uncertified"]
            shed = totals["shed"]
        return {
            "template": self.template,
            "processed": processed,
            "throughput_s": round(self.throughput_per_second, 1),
            "p50_ms": round(latency.p50_ms, 3),
            "p99_ms": round(latency.p99_ms, 3),
            "lock_wait_ms": round(self.lock_wait_seconds * 1e3, 3),
            "peak_engine_conc": self.engine_calls.peak,
            "sf_collapsed": self.single_flight_collapsed,
            "deduped": self.batch_deduped,
            "epoch_retries": self.epoch_retries,
            "uncertified": uncertified,
            "shed": shed,
            "overload_serves": self.overload_serves,
            "deadline_miss": self.deadline_misses,
            "gate_timeouts": self.gate_timeouts,
            "queue_rejects": self.queue_rejects,
            "queue_hw": self.queue_high_water,
        }


def merge_rows(stats: list[ServingStats]) -> dict[str, object]:
    """Fleet-wide aggregate across shards (latencies pooled)."""
    pooled: list[float] = []
    for s in stats:
        with s._lock:
            pooled.extend(s.latencies_s)
    latency = LatencySummary.from_seconds(pooled)
    return {
        "template": "TOTAL",
        "processed": sum(s.processed for s in stats),
        "throughput_s": round(sum(s.throughput_per_second for s in stats), 1),
        "p50_ms": round(latency.p50_ms, 3),
        "p99_ms": round(latency.p99_ms, 3),
        "lock_wait_ms": round(sum(s.lock_wait_seconds for s in stats) * 1e3, 3),
        "peak_engine_conc": max((s.engine_calls.peak for s in stats), default=0),
        "sf_collapsed": sum(s.single_flight_collapsed for s in stats),
        "deduped": sum(s.batch_deduped for s in stats),
        "epoch_retries": sum(s.epoch_retries for s in stats),
        "uncertified": sum(s.uncertified for s in stats),
        "shed": sum(s.shed for s in stats),
        "overload_serves": sum(s.overload_serves for s in stats),
        "deadline_miss": sum(s.deadline_misses for s in stats),
        "gate_timeouts": sum(s.gate_timeouts for s in stats),
        "queue_rejects": sum(s.queue_rejects for s in stats),
        "queue_hw": max((s.queue_high_water for s in stats), default=0),
    }
