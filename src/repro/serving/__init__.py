"""repro.serving — the concurrent serving layer.

A thread-safe front-end over the core SCR machinery: per-template
shards with a fine-grained lock discipline (lock-free probes against
copy-on-write snapshots, optimistic epoch validation, write-locked
manageCache), single-flight optimizer collapsing, batched admission
with selectivity-vector dedup, per-shard serving statistics, and
overload protection (bounded ingress, deadlines, optimizer gate and
brownout degradation along the guarantee axis).

Quickstart::

    from repro.serving import ConcurrentPQOManager, OverloadPolicy

    manager = ConcurrentPQOManager(
        database=db,
        max_workers=8,
        overload=OverloadPolicy(default_deadline_seconds=0.100),
    )
    for template in templates:
        manager.register(template, lam=2.0)
    choices = manager.process_many(instances)   # batched, deduped
    print(manager.serving_report())
    print(manager.overload_report())
    manager.close()
"""

from .latency import SimulatedLatencyEngine, simulated_latency_wrapper
from .manager import ConcurrentPQOManager
from .overload import (
    BrownoutController,
    BrownoutLevel,
    BrownoutTransition,
    Deadline,
    OptimizerGate,
    OverloadCoordinator,
    OverloadPolicy,
    OverloadSignals,
    ShedError,
    ShutdownError,
)
from .shard import TemplateShard
from .stats import ConcurrencyGauge, ServingStats, merge_rows

__all__ = [
    "BrownoutController",
    "BrownoutLevel",
    "BrownoutTransition",
    "ConcurrencyGauge",
    "ConcurrentPQOManager",
    "Deadline",
    "OptimizerGate",
    "OverloadCoordinator",
    "OverloadPolicy",
    "OverloadSignals",
    "ServingStats",
    "ShedError",
    "ShutdownError",
    "SimulatedLatencyEngine",
    "TemplateShard",
    "merge_rows",
    "simulated_latency_wrapper",
]
