"""repro.serving — the concurrent serving layer.

A thread-safe front-end over the core SCR machinery: per-template
shards with a fine-grained lock discipline (lock-free probes against
copy-on-write snapshots, optimistic epoch validation, write-locked
manageCache), single-flight optimizer collapsing, batched admission
with selectivity-vector dedup, and per-shard serving statistics.

Quickstart::

    from repro.serving import ConcurrentPQOManager

    manager = ConcurrentPQOManager(database=db, max_workers=8)
    for template in templates:
        manager.register(template, lam=2.0)
    choices = manager.process_many(instances)   # batched, deduped
    print(manager.serving_report())
    manager.close()
"""

from .latency import SimulatedLatencyEngine, simulated_latency_wrapper
from .manager import ConcurrentPQOManager
from .shard import TemplateShard
from .stats import ConcurrencyGauge, ServingStats, merge_rows

__all__ = [
    "ConcurrencyGauge",
    "ConcurrentPQOManager",
    "ServingStats",
    "SimulatedLatencyEngine",
    "TemplateShard",
    "merge_rows",
    "simulated_latency_wrapper",
]
