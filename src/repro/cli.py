"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Package overview: databases, templates, techniques.
``demo``
    The quickstart flow: SCR over a generated workload, with metrics.
``compare [--template NAME] [--m N]``
    All techniques on one template (the Table 2 line-up).
``plan-diagram [--template NAME] [--grid N]``
    ASCII plan diagram for a 2-d template.
``experiment <id>``
    One paper experiment at reduced scale (ids: lambda-sweep,
    aggregates, numopt-vs-m, numopt-vs-d, budget, recost-variants).
``obs-report [--template NAME] [--m N] [--workers N]``
    Instrumented serving run, then the observability snapshot: outcome
    counters, the live λ-violation audit, and every metric series.
    ``--prometheus FILE`` / ``--spans FILE`` additionally export the
    registry as text exposition and the decision spans as JSONL.
``doctor [--template NAME] [--m N] [--cluster N]``
    "Is my cache healthy?" — serves a demo workload, then judges it:
    per-template calibration grade (predicted-vs-recosted and
    predicted-vs-true cost error), anchor-level payback attribution
    (top/bottom anchors, wasted optimizer spend), active drift alarms
    and recommended actions.  ``--cluster N`` serves through N worker
    processes and renders the cluster-merged view instead.
``serve [--workers N] [--m N] [--chaos SEED]``
    Multi-process serving tier: a supervisor, ``N`` worker processes
    partitioned by consistent hashing, snapshot warm-starts, and (with
    ``--chaos``) seeded process-level fault injection while the
    workload runs.  Ends with the cluster health report; the gate is
    every request resolved and zero λ-violations.
"""

from __future__ import annotations

import argparse
import sys

from .baselines import Density, Ellipse, OptimizeAlways, OptimizeOnce, PCM, Ranges
from .catalog.registry import database_names, get_database
from .core.scr import SCR
from .harness.experiments import ExperimentConfig, Experiments
from .harness.reporting import format_table
from .harness.runner import SequenceSpec, WorkloadRunner
from .workload.orderings import Ordering
from .workload.suite import SuiteConfig
from .workload.templates import dimension_sweep_template, seed_templates


def _find_template(name: str):
    for template in seed_templates():
        if template.name == name:
            return template
    names = ", ".join(t.name for t in seed_templates())
    raise SystemExit(f"unknown template {name!r}; available: {names}")


def cmd_info(_args) -> None:
    templates = seed_templates()
    print("repro — SIGMOD 2017 'Leveraging Re-costing...' reproduction\n")
    print(f"databases : {', '.join(database_names())}")
    print(f"templates : {len(templates)} seed templates "
          f"(d = {min(t.dimensions for t in templates)}.."
          f"{max(t.dimensions for t in templates)})")
    rows = [
        {"template": t.name, "database": t.database,
         "tables": len(t.tables), "d": t.dimensions}
        for t in templates
    ]
    print()
    print(format_table(rows))
    print("\ntechniques: SCR (this paper), PCM, Ellipse, Density, Ranges, "
          "OptimizeOnce, OptimizeAlways")


def cmd_demo(args) -> None:
    runner = WorkloadRunner(db_scale=0.4)
    template = _find_template(args.template)
    spec = SequenceSpec(
        template=template, m=args.m, ordering=Ordering.RANDOM, seed=1
    )
    result = runner.run(spec, lambda e: SCR(e, lam=args.lam), lam=args.lam)
    print(f"SCR(lambda={args.lam}) over {args.m} instances of {template.name}:")
    print(f"  MSO            : {result.mso:.3f}  (bound {args.lam})")
    print(f"  TotalCostRatio : {result.total_cost_ratio:.3f}")
    print(f"  optimizer calls: {result.num_opt} ({result.num_opt_percent:.1f}%)")
    print(f"  plans cached   : {result.num_plans}")


def cmd_compare(args) -> None:
    runner = WorkloadRunner(db_scale=0.4)
    template = _find_template(args.template)
    spec = SequenceSpec(
        template=template, m=args.m, ordering=Ordering.RANDOM, seed=1
    )
    factories = {
        "OptAlways": OptimizeAlways,
        "OptOnce": OptimizeOnce,
        "PCM2": lambda e: PCM(e, lam=2.0),
        "Ellipse": lambda e: Ellipse(e, delta=0.9),
        "Density": lambda e: Density(e),
        "Ranges": lambda e: Ranges(e, slack=0.01),
        "SCR2": lambda e: SCR(e, lam=2.0),
    }
    rows = []
    for name, factory in factories.items():
        result = runner.run(spec, factory)
        rows.append({
            "technique": name,
            "MSO": result.mso,
            "TC": result.total_cost_ratio,
            "numOpt%": result.num_opt_percent,
            "plans": result.num_plans,
        })
    print(format_table(rows, title=f"{template.name}, m={args.m}"))


def cmd_plan_diagram(args) -> None:
    from .analysis.plan_diagram import compute_plan_diagram

    template = _find_template(args.template)
    if template.dimensions != 2:
        raise SystemExit(
            f"plan diagrams need a 2-d template; {template.name} has "
            f"d={template.dimensions}"
        )
    db = get_database(template.database, scale=0.4)
    engine = db.engine(template)
    diagram = compute_plan_diagram(engine, grid_size=args.grid)
    print(f"Plan diagram for {template.name} "
          f"({diagram.plan_count} distinct plans):\n")
    print(diagram.render_ascii())


def cmd_experiment(args) -> None:
    config = ExperimentConfig(
        suite=SuiteConfig(num_templates=8, instances_per_sequence=120,
                          instances_high_d=160),
        db_scale=0.4,
        orderings=[Ordering.RANDOM, Ordering.DECREASING_COST],
    )
    experiments = Experiments(config)
    if args.id == "lambda-sweep":
        print(format_table(experiments.lambda_sweep(),
                           title="SCR lambda sweep (Figures 8/10/14)"))
    elif args.id == "aggregates":
        print(format_table(experiments.technique_aggregates(),
                           title="Technique aggregates (Figures 9/13/16/17)"))
    elif args.id == "numopt-vs-m":
        rows = experiments.numopt_vs_m(
            dimension_sweep_template(4), lengths=(100, 250, 500)
        )
        print(format_table(rows, title="numOpt% vs m (Figure 11)"))
    elif args.id == "numopt-vs-d":
        rows = experiments.numopt_vs_dimensions(dims=(2, 4, 6), m=200)
        print(format_table(rows, title="numOpt% vs d (Figure 12)"))
    elif args.id == "budget":
        print(format_table(experiments.plan_budget_sweep(),
                           title="Plan budget sweep (Figure 19)"))
    elif args.id == "recost-variants":
        print(format_table(experiments.recost_augmented_baselines(),
                           title="Recost-augmented heuristics (Figure 21)"))
    else:
        raise SystemExit(f"unknown experiment id {args.id!r}")


def _series_label(row: dict, value_keys: frozenset = frozenset(
    ("metric", "value", "count", "p50", "p99", "sum")
)) -> str:
    """Collapse a snapshot row's label columns into one cell."""
    pairs = [f"{k}={v}" for k, v in row.items() if k not in value_keys]
    return ",".join(pairs) if pairs else "-"


def cmd_obs_report(args) -> None:
    import json

    from .obs import Observability, snapshot_rows, write_spans_jsonl
    from .serving import ConcurrentPQOManager, simulated_latency_wrapper
    from .workload import instances_for_template

    template = _find_template(args.template)
    db = get_database(template.database, scale=0.4)
    obs = Observability()
    manager = ConcurrentPQOManager(
        database=db,
        max_workers=args.workers,
        engine_wrapper=simulated_latency_wrapper(
            optimize_seconds=0.004, recost_seconds=0.0004
        ),
        obs=obs,
    )
    manager.register(template, lam=args.lam)
    instances = instances_for_template(template, args.m, seed=1)
    manager.process_many(instances, dedupe=False)
    manager.close()

    report = obs.report()
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        outcomes = report["outcomes"]
        print(f"Observability snapshot — SCR(lambda={args.lam:g}) serving "
              f"{args.m} instances of {template.name} on "
              f"{args.workers} workers\n")
        print(format_table([{
            "certified": outcomes["certified"],
            "uncertified": outcomes["uncertified"],
            "shed": outcomes["shed"],
            "responses": sum(outcomes.values()),
            "lambda_violations": report["lambda_violations"],
        }], title="Guarantee audit (violations must stay 0)"))
        rows = snapshot_rows(obs.registry)
        scalars = [
            {"metric": r["metric"], "series": _series_label(r),
             "value": r["value"]}
            for r in rows if "value" in r
        ]
        histograms = [
            {"metric": r["metric"], "series": _series_label(r),
             "count": r["count"], "p50": r["p50"], "p99": r["p99"],
             "sum": r["sum"]}
            for r in rows if "count" in r
        ]
        print()
        print(format_table(scalars, title="Counters and gauges",
                           float_format="{:g}"))
        print()
        print(format_table(histograms, title="Histograms (interpolated "
                           "quantiles)", float_format="{:.6g}"))
        print(f"\nspans: {report['spans_recorded']} recorded, "
              f"{report['spans_dropped']} dropped from the ring")
    if args.prometheus:
        with open(args.prometheus, "w", encoding="utf-8") as fh:
            fh.write(obs.prometheus())
        print(f"wrote Prometheus exposition to {args.prometheus}")
    if args.spans:
        rows_written = write_spans_jsonl(obs.spans, args.spans)
        print(f"wrote {rows_written} spans to {args.spans}")


def cmd_doctor(args) -> None:
    import json

    from .obs import Observability
    from .obs.doctor import render_doctor_report

    if args.cluster:
        import tempfile

        from .cluster import ClusterSupervisor
        from .workload import instances_for_template

        templates = seed_templates()[: args.templates]
        supervisor = ClusterSupervisor(
            templates,
            num_workers=args.cluster,
            snapshot_dir=tempfile.mkdtemp(prefix="repro-doctor-"),
            lam=args.lam,
            db_scale=0.3,
            threads=2,
        )
        supervisor.start()
        streams = {
            t.name: instances_for_template(t, args.m, seed=1)
            for t in templates
        }
        futures = [
            supervisor.submit(t.name, streams[t.name][i].sv.values,
                              sequence_id=i)
            for i in range(args.m) for t in templates
        ]
        for fut in futures:
            fut.exception()
        # Anchor summaries and registry snapshots arrive on heartbeats
        # (one per worker every 200 ms): pump until every template's
        # summary has landed, bounded so a worker that died mid-demo
        # degrades the view instead of hanging the CLI.
        import time

        deadline = time.monotonic() + 3.0
        while True:
            supervisor.pump(timeout=0.3)
            report = supervisor.doctor_report()
            sections = report["templates"]
            ready = all(
                (sections.get(t.name, {}).get("anchors") or {})
                .get("live_anchors")
                for t in templates
            )
            if ready or time.monotonic() > deadline:
                break
        prom = supervisor.prometheus() if args.prometheus else None
        supervisor.close()
    else:
        from .serving import ConcurrentPQOManager, simulated_latency_wrapper
        from .workload import instances_for_template

        template = _find_template(args.template)
        db = get_database(template.database, scale=0.4)
        obs = Observability()
        manager = ConcurrentPQOManager(
            database=db,
            max_workers=args.workers,
            engine_wrapper=simulated_latency_wrapper(
                optimize_seconds=0.004, recost_seconds=0.0004
            ),
            obs=obs,
        )
        manager.register(template, lam=args.lam)
        # Waves, not one batch: a batch is probed against one snapshot
        # (no interleaved commits), so a single cold batch would be all
        # misses and there would be no cache health to judge.
        instances = instances_for_template(template, args.m, seed=1)
        wave = max(1, args.m // 8)
        for i in range(0, len(instances), wave):
            manager.process_many(instances[i:i + wave], dedupe=False)
        report = manager.doctor_report()
        prom = manager.prometheus() if args.prometheus else None
        manager.close()

    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_doctor_report(report))
    if args.prometheus:
        with open(args.prometheus, "w", encoding="utf-8") as fh:
            fh.write(prom or "")
        print(f"wrote Prometheus exposition to {args.prometheus}")


def cmd_trace(args) -> None:
    import json

    from .obs import (
        Observability,
        explain_trace,
        format_explanation,
        load_spans_jsonl,
        render_tree,
        traces_in,
        write_spans_jsonl,
    )

    if args.file:
        spans = load_spans_jsonl(args.file)
        obs = None
    else:
        from .serving import ConcurrentPQOManager, simulated_latency_wrapper
        from .workload import instances_for_template

        template = _find_template(args.template)
        db = get_database(template.database, scale=0.4)
        obs = Observability()
        manager = ConcurrentPQOManager(
            database=db,
            max_workers=args.workers,
            engine_wrapper=simulated_latency_wrapper(
                optimize_seconds=0.004, recost_seconds=0.0004
            ),
            obs=obs,
        )
        manager.register(template, lam=args.lam)
        manager.process_many(
            instances_for_template(template, args.m, seed=1), dedupe=False
        )
        manager.close()
        spans = obs.spans.spans()

    buckets = {
        tid: rows for tid, rows in traces_in(spans).items() if tid
    }
    if not buckets:
        raise SystemExit(
            "no traced spans found (schema v1 file, or tracing was off)"
        )

    if args.explain is not None:
        matches = [
            rows for rows in buckets.values()
            if any(s.attrs.get("seq") == args.explain
                   and s.name in ("serving.process", "cluster.request")
                   for s in rows)
        ]
        if not matches:
            raise SystemExit(
                f"no request with sequence id {args.explain} in "
                f"{len(buckets)} trace(s)"
            )
        for rows in matches:
            info = explain_trace(rows)
            if args.json:
                print(json.dumps(info, indent=2, sort_keys=True))
            else:
                print(format_explanation(info))
                print()
                print(render_tree(rows))
    else:
        shown = list(buckets.items())
        if args.trace:
            shown = [
                (tid, rows) for tid, rows in shown
                if tid.startswith(args.trace)
            ]
            if not shown:
                raise SystemExit(f"no trace matching {args.trace!r}")
        elif args.limit > 0:
            shown = shown[: args.limit]
        if args.json:
            print(json.dumps(
                [explain_trace(rows) for _, rows in shown],
                indent=2, sort_keys=True,
            ))
        else:
            for i, (tid, rows) in enumerate(shown):
                if i:
                    print()
                print(f"trace {tid}")
                print(render_tree(rows))
            hidden = len(buckets) - len(shown)
            if hidden > 0:
                print(f"\n({hidden} more trace(s); use --limit 0 for all, "
                      "--explain SEQ for one request's story)")
    if obs is not None and args.spans_out:
        rows_written = write_spans_jsonl(obs.spans, args.spans_out)
        print(f"\nwrote {rows_written} spans to {args.spans_out}")


def cmd_serve(args) -> None:
    import json
    import tempfile

    from .cluster import ClusterSupervisor, ProcessFaultInjector
    from .workload.generator import instances_for_template
    from .workload.templates import seed_templates

    templates = seed_templates()
    if args.templates:
        templates = templates[: args.templates]
    snapshot_dir = args.snapshot_dir or tempfile.mkdtemp(
        prefix="repro-cluster-"
    )
    supervisor = ClusterSupervisor(
        templates,
        num_workers=args.workers,
        snapshot_dir=snapshot_dir,
        lam=args.lam,
        db_scale=args.db_scale,
        threads=args.threads,
    )
    supervisor.start()
    injector = (
        ProcessFaultInjector(supervisor, seed=args.chaos)
        if args.chaos is not None
        else None
    )
    print(f"cluster up: {args.workers} workers, {len(templates)} templates, "
          f"snapshots in {snapshot_dir}")

    streams = {
        t.name: instances_for_template(t, args.m, seed=1) for t in templates
    }
    futures = []
    for i in range(args.m):
        for template in templates:
            sv = streams[template.name][i].sv.values
            futures.append(supervisor.submit(template.name, sv, sequence_id=i))
            if (
                injector is not None
                and len(futures) % args.chaos_every == 0
            ):
                print(f"  chaos: {injector.inject_one()}")

    lost = 0
    for fut in futures:
        if fut.exception() is not None:
            lost += 1
    report = supervisor.cluster_report()
    if args.prometheus:
        with open(args.prometheus, "w", encoding="utf-8") as fh:
            fh.write(supervisor.prometheus())
        print(f"wrote merged Prometheus exposition to {args.prometheus}")
    supervisor.close()

    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return
    print()
    print(format_table(report["workers"], title="Fleet"))
    outcomes = report["outcomes"]
    print()
    print(format_table([{
        "submitted": report["submitted"],
        "resolved": report["resolved"],
        "certified": outcomes["certified"],
        "uncertified": outcomes["uncertified"],
        "shed": outcomes["shed"],
        "retries": report["retries"],
        "worker_lost": report["worker_lost"],
        "lambda_violations": (report["supervisor_lambda_violations"]
                              + report["worker_lambda_violations"]),
    }], title="Cluster accounting (exactly one outcome per request)"))
    if injector is not None:
        print(f"\nfaults injected: {len(injector.injected)} "
              f"({', '.join(injector.injected) or 'none'})")
    unresolved = report["submitted"] - report["resolved"]
    if unresolved or lost:
        print(f"\nWARNING: {unresolved} unaccounted requests, "
              f"{lost} futures raised")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info").set_defaults(func=cmd_info)

    demo = sub.add_parser("demo")
    demo.add_argument("--template", default="tpch_shipping_priority")
    demo.add_argument("--m", type=int, default=200)
    demo.add_argument("--lam", type=float, default=2.0)
    demo.set_defaults(func=cmd_demo)

    compare = sub.add_parser("compare")
    compare.add_argument("--template", default="tpcds_q25_like")
    compare.add_argument("--m", type=int, default=200)
    compare.set_defaults(func=cmd_compare)

    diagram = sub.add_parser("plan-diagram")
    diagram.add_argument("--template", default="tpcds_catalog_simple")
    diagram.add_argument("--grid", type=int, default=20)
    diagram.set_defaults(func=cmd_plan_diagram)

    experiment = sub.add_parser("experiment")
    experiment.add_argument("id", choices=[
        "lambda-sweep", "aggregates", "numopt-vs-m", "numopt-vs-d",
        "budget", "recost-variants",
    ])
    experiment.set_defaults(func=cmd_experiment)

    obs_report = sub.add_parser("obs-report")
    obs_report.add_argument("--template", default="tpch_shipping_priority")
    obs_report.add_argument("--m", type=int, default=120)
    obs_report.add_argument("--lam", type=float, default=2.0)
    obs_report.add_argument("--workers", type=int, default=4)
    obs_report.add_argument("--prometheus", metavar="FILE", default=None)
    obs_report.add_argument("--spans", metavar="FILE", default=None)
    obs_report.add_argument("--json", action="store_true",
                            help="dump the full report as JSON instead")
    obs_report.set_defaults(func=cmd_obs_report)

    doctor = sub.add_parser(
        "doctor",
        help="plan-cache health: calibration grades, anchor payback, "
             "drift alarms, recommended actions",
    )
    doctor.add_argument("--template", default="tpch_shipping_priority")
    doctor.add_argument("--m", type=int, default=120)
    doctor.add_argument("--lam", type=float, default=2.0)
    doctor.add_argument("--workers", type=int, default=4)
    doctor.add_argument("--cluster", type=int, metavar="N", default=0,
                        help="run N worker processes and report the "
                             "cluster-merged view instead")
    doctor.add_argument("--templates", type=int, default=2,
                        help="seed templates to serve in --cluster mode")
    doctor.add_argument("--prometheus", metavar="FILE", default=None)
    doctor.add_argument("--json", action="store_true",
                        help="dump the health report as JSON instead")
    doctor.set_defaults(func=cmd_doctor)

    trace = sub.add_parser(
        "trace",
        help="render span trees / explain one request's guarantee",
    )
    trace.add_argument("--template", default="tpch_shipping_priority")
    trace.add_argument("--m", type=int, default=8)
    trace.add_argument("--lam", type=float, default=2.0)
    trace.add_argument("--workers", type=int, default=4)
    trace.add_argument("--file", metavar="SPANS_JSONL", default=None,
                       help="explain an existing spans file instead of "
                            "serving a demo workload")
    trace.add_argument("--trace", metavar="TRACE_ID", default=None,
                       help="show only the trace with this ID (prefix ok)")
    trace.add_argument("--explain", type=int, metavar="SEQ", default=None,
                       help="explain the request with this sequence id")
    trace.add_argument("--limit", type=int, default=3,
                       help="trace trees to render (0 = all)")
    trace.add_argument("--spans-out", metavar="FILE", default=None,
                       help="also write the demo's spans as JSONL")
    trace.add_argument("--json", action="store_true",
                       help="emit structured explanations as JSON")
    trace.set_defaults(func=cmd_trace)

    serve = sub.add_parser("serve")
    serve.add_argument("--workers", type=int, default=4)
    serve.add_argument("--m", type=int, default=30,
                       help="instances per template")
    serve.add_argument("--templates", type=int, default=4,
                       help="number of seed templates to serve (0 = all)")
    serve.add_argument("--lam", type=float, default=2.0)
    serve.add_argument("--db-scale", type=float, default=0.3)
    serve.add_argument("--threads", type=int, default=4,
                       help="serving threads inside each worker")
    serve.add_argument("--chaos", type=int, metavar="SEED", default=None,
                       help="enable seeded fault injection")
    serve.add_argument("--chaos-every", type=int, default=40,
                       help="inject one fault every N submissions")
    serve.add_argument("--snapshot-dir", default=None,
                       help="snapshot directory (default: fresh tempdir)")
    serve.add_argument("--prometheus", metavar="FILE", default=None,
                       help="write the merged cluster exposition here")
    serve.add_argument("--json", action="store_true",
                       help="dump the cluster report as JSON instead")
    serve.set_defaults(func=cmd_serve)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    args.func(args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
