"""Query representation: templates, instances, selectivity vectors."""

from .expressions import (
    ColumnRef,
    ComparisonOp,
    FixedPredicate,
    JoinEdge,
    ParameterizedPredicate,
)
from .instance import (
    AnySelectivityVector,
    QueryInstance,
    SELECTIVITY_FLOOR,
    SelectivityVector,
    UncertainSelectivityVector,
    as_point,
    clamp_selectivity,
)
from .template import AggregationKind, QueryTemplate, join, range_predicate

__all__ = [
    "AggregationKind",
    "AnySelectivityVector",
    "ColumnRef",
    "ComparisonOp",
    "FixedPredicate",
    "JoinEdge",
    "ParameterizedPredicate",
    "QueryInstance",
    "QueryTemplate",
    "SELECTIVITY_FLOOR",
    "SelectivityVector",
    "UncertainSelectivityVector",
    "as_point",
    "clamp_selectivity",
    "join",
    "range_predicate",
]
