"""Query representation: templates, instances, selectivity vectors."""

from .expressions import (
    ColumnRef,
    ComparisonOp,
    FixedPredicate,
    JoinEdge,
    ParameterizedPredicate,
)
from .instance import QueryInstance, SelectivityVector
from .template import AggregationKind, QueryTemplate, join, range_predicate

__all__ = [
    "AggregationKind",
    "ColumnRef",
    "ComparisonOp",
    "FixedPredicate",
    "JoinEdge",
    "ParameterizedPredicate",
    "QueryInstance",
    "QueryTemplate",
    "SelectivityVector",
    "join",
    "range_predicate",
]
