"""Parameterized query templates (the paper's query template ``Q``)."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from .expressions import (
    ColumnRef,
    ComparisonOp,
    FixedPredicate,
    JoinEdge,
    ParameterizedPredicate,
)


class AggregationKind(Enum):
    """Optional aggregation applied on top of the join tree."""

    NONE = "none"
    COUNT = "count"
    GROUP_BY = "group_by"


@dataclass
class QueryTemplate:
    """A parameterized SPJ(+aggregate) query over one database.

    Attributes
    ----------
    name:
        Template identifier (e.g. ``"tpcds_q18_like"``).
    database:
        Name of the database (catalog registry key) this query runs on.
    tables:
        Tables referenced by the query.
    joins:
        Equi-join edges; the induced join graph must be connected.
    parameterized:
        The ``d`` parameterized predicates, order defines the dimensions
        of the selectivity vector.
    fixed:
        Constant predicates applied identically to every instance.
    aggregation:
        Optional aggregate on top (affects plan shape and cost only).
    group_by:
        Grouping column when ``aggregation`` is GROUP_BY.
    order_by:
        Optional sort column at the root (forces a Sort / enables
        merge-friendly plans).
    """

    name: str
    database: str
    tables: list[str]
    joins: list[JoinEdge] = field(default_factory=list)
    parameterized: list[ParameterizedPredicate] = field(default_factory=list)
    fixed: list[FixedPredicate] = field(default_factory=list)
    aggregation: AggregationKind = AggregationKind.NONE
    group_by: Optional[ColumnRef] = None
    order_by: Optional[ColumnRef] = None

    def __post_init__(self) -> None:
        if not self.tables:
            raise ValueError(f"template {self.name}: needs at least one table")
        if len(set(self.tables)) != len(self.tables):
            raise ValueError(f"template {self.name}: duplicate table references")
        table_set = set(self.tables)
        for join in self.joins:
            for tbl in join.tables():
                if tbl not in table_set:
                    raise ValueError(
                        f"template {self.name}: join references unknown table {tbl!r}"
                    )
        for pred in list(self.parameterized) + list(self.fixed):
            if pred.column.table not in table_set:
                raise ValueError(
                    f"template {self.name}: predicate on unknown table "
                    f"{pred.column.table!r}"
                )
        if len(self.tables) > 1 and not self._is_connected():
            raise ValueError(f"template {self.name}: join graph is not connected")
        if self.aggregation is AggregationKind.GROUP_BY and self.group_by is None:
            raise ValueError(f"template {self.name}: GROUP_BY requires group_by column")

    @property
    def dimensions(self) -> int:
        """Number of parameterized predicates (the paper's ``d``)."""
        return len(self.parameterized)

    def predicates_on(self, table: str) -> list[ParameterizedPredicate]:
        """Parameterized predicates that filter ``table``."""
        return [p for p in self.parameterized if p.column.table == table]

    def parameter_index(self, pred: ParameterizedPredicate) -> int:
        """Dimension index of a parameterized predicate."""
        return self.parameterized.index(pred)

    def fixed_on(self, table: str) -> list[FixedPredicate]:
        """Fixed predicates that filter ``table``."""
        return [p for p in self.fixed if p.column.table == table]

    def join_edges_between(self, left_tables: frozenset, right_tables: frozenset):
        """Join edges connecting two disjoint table sets."""
        edges = []
        for join in self.joins:
            a, b = join.tables()
            if (a in left_tables and b in right_tables) or (
                a in right_tables and b in left_tables
            ):
                edges.append(join)
        return edges

    def _is_connected(self) -> bool:
        adjacency: dict[str, set[str]] = {t: set() for t in self.tables}
        for join in self.joins:
            a, b = join.tables()
            adjacency[a].add(b)
            adjacency[b].add(a)
        seen = {self.tables[0]}
        frontier = [self.tables[0]]
        while frontier:
            node = frontier.pop()
            for nxt in adjacency[node]:
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return len(seen) == len(self.tables)


def range_predicate(table: str, column: str, op: str = "<=") -> ParameterizedPredicate:
    """Convenience constructor for a parameterized range predicate."""
    return ParameterizedPredicate(ColumnRef(table, column), ComparisonOp(op))


def join(left_table: str, left_col: str, right_table: str, right_col: str) -> JoinEdge:
    """Convenience constructor for an equi-join edge."""
    return JoinEdge(ColumnRef(left_table, left_col), ColumnRef(right_table, right_col))
