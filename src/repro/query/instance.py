"""Query instances and selectivity vectors.

An instance of a parameterized query binds a concrete value to each of
the ``d`` parameterized predicates.  Its compact representation is the
**selectivity vector** ``sVector = (s_1, ..., s_d)`` — the estimated
selectivity of each parameterized predicate — which is all that the
online PQO techniques look at (section 2 of the paper).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence, Union

#: The canonical selectivity floor shared by every producer of
#: selectivities (histogram estimates, noise wrappers, degraded-read
#: inflation).  A strictly positive floor keeps cost ratios finite;
#: centralizing it here fixes the drift of per-module epsilons.
SELECTIVITY_FLOOR = 1e-6


def clamp_selectivity(value: float, floor: float = SELECTIVITY_FLOOR) -> float:
    """Clamp one selectivity into ``[floor, 1.0]``.

    The single clamping helper every layer uses (estimator, noise
    wrapper, resilience inflation, interval endpoints), so the floor and
    ceiling cannot silently diverge between producers again.
    """
    return min(1.0, max(floor, value))


@dataclass(frozen=True)
class SelectivityVector:
    """Immutable selectivity vector with the arithmetic used by SCR."""

    values: tuple[float, ...]

    def __post_init__(self) -> None:
        for s in self.values:
            if not (0.0 < s <= 1.0):
                raise ValueError(f"selectivities must be in (0, 1], got {s}")

    @classmethod
    def of(cls, *values: float) -> "SelectivityVector":
        return cls(tuple(float(v) for v in values))

    @classmethod
    def from_sequence(cls, values: Sequence[float]) -> "SelectivityVector":
        return cls(tuple(float(v) for v in values))

    def __len__(self) -> int:
        return len(self.values)

    def __getitem__(self, i: int) -> float:
        return self.values[i]

    def __iter__(self):
        return iter(self.values)

    @property
    def log_values(self) -> tuple[float, ...]:
        """``(ln s_1, ..., ln s_d)``, cached — the vector is immutable.

        The §6.2 grid index derives cell keys from it, so an entry's
        logs are taken once at insertion instead of once per re-index.
        """
        cached = self.__dict__.get("_log_values")
        if cached is None:
            cached = tuple(math.log(s) for s in self.values)
            self.__dict__["_log_values"] = cached
        return cached

    def ratios(self, other: "SelectivityVector") -> tuple[float, ...]:
        """Per-dimension ratios ``alpha_i = other_i / self_i``.

        ``self`` plays the role of the stored instance ``q_e`` and
        ``other`` the new instance ``q_c`` (section 5.3).
        """
        if len(other) != len(self):
            raise ValueError(
                f"dimension mismatch: {len(self)} vs {len(other)}"
            )
        return tuple(o / s for s, o in zip(self.values, other.values))

    def log_distance(self, other: "SelectivityVector") -> float:
        """Symmetric log-space distance ``sum_i |ln alpha_i|``.

        Equals ``ln(G * L)``; used to order candidates by the selectivity
        check's GL product (section 6.2's pruning heuristic).
        """
        return sum(abs(math.log(a)) for a in self.ratios(other))

    def euclidean_distance(self, other: "SelectivityVector") -> float:
        """Plain Euclidean distance (used by the heuristic baselines)."""
        if len(other) != len(self):
            raise ValueError("dimension mismatch")
        return math.sqrt(
            sum((a - b) ** 2 for a, b in zip(self.values, other.values))
        )

    def dominates(self, other: "SelectivityVector") -> bool:
        """True if every selectivity of ``self`` >= that of ``other``.

        PCM's inference regions are built from dominating pairs.
        """
        if len(other) != len(self):
            raise ValueError("dimension mismatch")
        return all(a >= b for a, b in zip(self.values, other.values))


@dataclass(frozen=True)
class UncertainSelectivityVector:
    """A selectivity vector with per-dimension confidence bounds.

    ``point`` is the estimator's best guess; ``lo``/``hi`` bound where
    the *true* selectivity of each parameterized predicate may lie, and
    ``coverage`` is the probability mass the box claims (``1.0`` for
    hard bounds such as histogram bucket resolution).  The robust check
    mode evaluates SCR's guarantees at the adversarial corner of this
    box, so a certificate derived from it holds for every sVector the
    box contains (with probability ≥ ``coverage``).
    """

    point: SelectivityVector
    lo: SelectivityVector
    hi: SelectivityVector
    coverage: float = 1.0

    def __post_init__(self) -> None:
        if not (len(self.point) == len(self.lo) == len(self.hi)):
            raise ValueError("point/lo/hi dimension mismatch")
        for lo, p, hi in zip(self.lo, self.point, self.hi):
            if not (lo <= p <= hi):
                raise ValueError(
                    f"interval must satisfy lo <= point <= hi, got "
                    f"[{lo}, {p}, {hi}]"
                )
        if not (0.0 < self.coverage <= 1.0):
            raise ValueError(f"coverage must be in (0, 1], got {self.coverage}")

    @classmethod
    def exact(cls, sv: SelectivityVector) -> "UncertainSelectivityVector":
        """A zero-width box: selectivities known exactly."""
        return cls(point=sv, lo=sv, hi=sv, coverage=1.0)

    @classmethod
    def from_bounds(
        cls,
        bounds: Sequence[tuple[float, float, float]],
        coverage: float = 1.0,
    ) -> "UncertainSelectivityVector":
        """Build from per-dimension ``(lo, point, hi)`` triples."""
        return cls(
            point=SelectivityVector.from_sequence([b[1] for b in bounds]),
            lo=SelectivityVector.from_sequence([b[0] for b in bounds]),
            hi=SelectivityVector.from_sequence([b[2] for b in bounds]),
            coverage=coverage,
        )

    def __len__(self) -> int:
        return len(self.point)

    @property
    def is_point(self) -> bool:
        """True when the box has zero width in every dimension."""
        return self.lo.values == self.point.values == self.hi.values

    @property
    def log_widths(self) -> tuple[float, ...]:
        """Per-dimension interval widths ``ln(hi_i / lo_i)``."""
        return tuple(
            math.log(hi / lo) for lo, hi in zip(self.lo, self.hi)
        )

    @property
    def total_log_width(self) -> float:
        """Sum of the per-dimension log widths (0 for a point)."""
        return sum(self.log_widths)

    def scaled(self, t: float) -> "UncertainSelectivityVector":
        """Scale every interval's log-width by ``t`` around the point.

        Under the per-dimension log-uniform error model (multiplicative
        noise, the shape histogram estimation error takes), the
        probability that the truth stays inside the shrunken box scales
        as ``t`` per dimension, so coverage becomes
        ``coverage * t**d`` for ``t <= 1``.  Growing a box (``t > 1``)
        cannot raise its claim above the original coverage.
        """
        if t < 0.0:
            raise ValueError("scale factor must be >= 0")
        # The min/max guards keep lo <= point <= hi even when the
        # clamping floor sits above a tiny point estimate.
        lo = SelectivityVector.from_sequence(
            [min(p, clamp_selectivity(p * (lo / p) ** t))
             for p, lo in zip(self.point, self.lo)]
        )
        hi = SelectivityVector.from_sequence(
            [max(p, clamp_selectivity(p * (hi / p) ** t))
             for p, hi in zip(self.point, self.hi)]
        )
        coverage = self.coverage
        if t < 1.0:
            coverage = coverage * t ** len(self)
        return UncertainSelectivityVector(
            point=self.point, lo=lo, hi=hi,
            coverage=max(1e-12, min(1.0, coverage)),
        )

    def for_coverage(self, target: float) -> "UncertainSelectivityVector":
        """The box shrunk to claim ``target`` coverage (never grown).

        Inverts the ``coverage * t**d`` scaling of :meth:`scaled`; a
        target at or above the current claim returns the box unchanged
        (a box cannot honestly promise more than it already covers).
        """
        if not (0.0 < target <= 1.0):
            raise ValueError(f"target coverage must be in (0, 1], got {target}")
        if target >= self.coverage or self.is_point:
            return self
        t = (target / self.coverage) ** (1.0 / len(self))
        shrunk = self.scaled(t)
        # Report the requested claim exactly (scaled() recomputes it
        # from t with float error in the round trip).
        return UncertainSelectivityVector(
            point=shrunk.point, lo=shrunk.lo, hi=shrunk.hi, coverage=target
        )

    def widened(self, factor: float) -> "UncertainSelectivityVector":
        """Conservatively widen every interval by ``factor`` (≥ 1).

        Used by degraded reads: a wider box keeps at least the original
        coverage, so the claim is unchanged while the checks get
        strictly more pessimistic.
        """
        if factor < 1.0:
            raise ValueError("widening factor must be >= 1")
        lo = SelectivityVector.from_sequence(
            [min(p, clamp_selectivity(s / factor))
             for p, s in zip(self.point, self.lo)]
        )
        hi = SelectivityVector.from_sequence(
            [max(p, clamp_selectivity(s * factor))
             for p, s in zip(self.point, self.hi)]
        )
        return UncertainSelectivityVector(
            point=self.point, lo=lo, hi=hi, coverage=self.coverage
        )

    def contains(self, sv: SelectivityVector) -> bool:
        """True when ``sv`` lies inside the box (inclusive)."""
        return all(
            lo <= s <= hi for lo, s, hi in zip(self.lo, sv, self.hi)
        )


#: Either representation the decision procedure accepts.
AnySelectivityVector = Union[SelectivityVector, UncertainSelectivityVector]


def as_point(sv: AnySelectivityVector) -> SelectivityVector:
    """The point estimate of either selectivity representation."""
    if isinstance(sv, UncertainSelectivityVector):
        return sv.point
    return sv


@dataclass(frozen=True)
class QueryInstance:
    """A concrete instantiation of a query template.

    Attributes
    ----------
    template_name:
        Name of the :class:`~repro.query.template.QueryTemplate`.
    parameters:
        One bound constant per parameterized predicate (in template
        order).  May be empty for synthetic instances specified directly
        by selectivity (the workload generator produces both).
    sv:
        Selectivity vector; computed by the engine's sVector API for
        real instances, or chosen directly by synthetic generators.
    sequence_id:
        Position in the workload sequence (informational).
    """

    template_name: str
    parameters: tuple[float, ...] = field(default=())
    sv: SelectivityVector | None = None
    sequence_id: int = -1

    @property
    def selectivities(self) -> SelectivityVector:
        if self.sv is None:
            raise ValueError(
                "instance has no selectivity vector; call the engine's "
                "selectivity_vector API first"
            )
        return self.sv

    def with_selectivities(self, sv: SelectivityVector) -> "QueryInstance":
        return QueryInstance(self.template_name, self.parameters, sv, self.sequence_id)

    def with_sequence_id(self, sequence_id: int) -> "QueryInstance":
        return QueryInstance(self.template_name, self.parameters, self.sv, sequence_id)
