"""Query instances and selectivity vectors.

An instance of a parameterized query binds a concrete value to each of
the ``d`` parameterized predicates.  Its compact representation is the
**selectivity vector** ``sVector = (s_1, ..., s_d)`` — the estimated
selectivity of each parameterized predicate — which is all that the
online PQO techniques look at (section 2 of the paper).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence


@dataclass(frozen=True)
class SelectivityVector:
    """Immutable selectivity vector with the arithmetic used by SCR."""

    values: tuple[float, ...]

    def __post_init__(self) -> None:
        for s in self.values:
            if not (0.0 < s <= 1.0):
                raise ValueError(f"selectivities must be in (0, 1], got {s}")

    @classmethod
    def of(cls, *values: float) -> "SelectivityVector":
        return cls(tuple(float(v) for v in values))

    @classmethod
    def from_sequence(cls, values: Sequence[float]) -> "SelectivityVector":
        return cls(tuple(float(v) for v in values))

    def __len__(self) -> int:
        return len(self.values)

    def __getitem__(self, i: int) -> float:
        return self.values[i]

    def __iter__(self):
        return iter(self.values)

    def ratios(self, other: "SelectivityVector") -> tuple[float, ...]:
        """Per-dimension ratios ``alpha_i = other_i / self_i``.

        ``self`` plays the role of the stored instance ``q_e`` and
        ``other`` the new instance ``q_c`` (section 5.3).
        """
        if len(other) != len(self):
            raise ValueError(
                f"dimension mismatch: {len(self)} vs {len(other)}"
            )
        return tuple(o / s for s, o in zip(self.values, other.values))

    def log_distance(self, other: "SelectivityVector") -> float:
        """Symmetric log-space distance ``sum_i |ln alpha_i|``.

        Equals ``ln(G * L)``; used to order candidates by the selectivity
        check's GL product (section 6.2's pruning heuristic).
        """
        return sum(abs(math.log(a)) for a in self.ratios(other))

    def euclidean_distance(self, other: "SelectivityVector") -> float:
        """Plain Euclidean distance (used by the heuristic baselines)."""
        if len(other) != len(self):
            raise ValueError("dimension mismatch")
        return math.sqrt(
            sum((a - b) ** 2 for a, b in zip(self.values, other.values))
        )

    def dominates(self, other: "SelectivityVector") -> bool:
        """True if every selectivity of ``self`` >= that of ``other``.

        PCM's inference regions are built from dominating pairs.
        """
        if len(other) != len(self):
            raise ValueError("dimension mismatch")
        return all(a >= b for a, b in zip(self.values, other.values))


@dataclass(frozen=True)
class QueryInstance:
    """A concrete instantiation of a query template.

    Attributes
    ----------
    template_name:
        Name of the :class:`~repro.query.template.QueryTemplate`.
    parameters:
        One bound constant per parameterized predicate (in template
        order).  May be empty for synthetic instances specified directly
        by selectivity (the workload generator produces both).
    sv:
        Selectivity vector; computed by the engine's sVector API for
        real instances, or chosen directly by synthetic generators.
    sequence_id:
        Position in the workload sequence (informational).
    """

    template_name: str
    parameters: tuple[float, ...] = field(default=())
    sv: SelectivityVector | None = None
    sequence_id: int = -1

    @property
    def selectivities(self) -> SelectivityVector:
        if self.sv is None:
            raise ValueError(
                "instance has no selectivity vector; call the engine's "
                "selectivity_vector API first"
            )
        return self.sv

    def with_selectivities(self, sv: SelectivityVector) -> "QueryInstance":
        return QueryInstance(self.template_name, self.parameters, sv, self.sequence_id)

    def with_sequence_id(self, sequence_id: int) -> "QueryInstance":
        return QueryInstance(self.template_name, self.parameters, self.sv, sequence_id)
