"""Predicate and column expressions for parameterized query templates.

A query template (section 2 of the paper) has ``d`` *parameterized*
predicates — one-sided range or equality comparisons whose right-hand
side is bound per query instance — plus optional *fixed* predicates
whose constants never change across instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class ComparisonOp(Enum):
    """Comparison operators supported in predicates."""

    LE = "<="
    GE = ">="
    EQ = "=="

    def apply(self, lhs, rhs):
        """Vectorized evaluation (numpy-friendly)."""
        if self is ComparisonOp.LE:
            return lhs <= rhs
        if self is ComparisonOp.GE:
            return lhs >= rhs
        return lhs == rhs


@dataclass(frozen=True)
class ColumnRef:
    """A reference to ``table.column``."""

    table: str
    column: str

    def __str__(self) -> str:
        return f"{self.table}.{self.column}"


@dataclass(frozen=True)
class ParameterizedPredicate:
    """A predicate ``table.column <op> ?`` bound per query instance.

    The paper adds one-sided range predicates (``col < v`` / ``col > v``)
    to benchmark queries to obtain fine-grained selectivity control;
    these are exactly the predicates modelled here.
    """

    column: ColumnRef
    op: ComparisonOp

    def __str__(self) -> str:
        return f"{self.column} {self.op.value} ?"


@dataclass(frozen=True)
class FixedPredicate:
    """A predicate with a constant right-hand side, same for all instances."""

    column: ColumnRef
    op: ComparisonOp
    value: float

    def __str__(self) -> str:
        return f"{self.column} {self.op.value} {self.value}"


@dataclass(frozen=True)
class JoinEdge:
    """An equi-join ``left.column == right.column`` between two tables."""

    left: ColumnRef
    right: ColumnRef

    def tables(self) -> tuple[str, str]:
        return (self.left.table, self.right.table)

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"
