"""A small SQL front-end for defining parameterized query templates.

Applications interact with PQO through parameterized SQL (the paper's
setting: "the same SQL statement is executed repeatedly with different
parameter instantiations").  This module parses a practical subset —
SPJ queries with ``?`` parameter markers — into
:class:`~repro.query.template.QueryTemplate` objects:

    SELECT COUNT(*)
    FROM orders, lineitem
    WHERE lineitem.l_orderkey = orders.o_orderkey
      AND orders.o_totalprice <= ?
      AND lineitem.l_quantity >= ?
      AND lineitem.l_discount <= 3
    GROUP BY orders.o_orderdate
    ORDER BY orders.o_orderdate

Supported: a FROM list, equi-join predicates (``a.x = b.y``),
parameterized one-sided comparisons (``a.x <= ?`` / ``>= ?`` / ``= ?``),
fixed comparisons against numeric literals, ``COUNT(*)``, ``GROUP BY``
and ``ORDER BY`` on a single column.  Everything else raises
:class:`SqlParseError` with a precise message.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from .expressions import (
    ColumnRef,
    ComparisonOp,
    FixedPredicate,
    JoinEdge,
    ParameterizedPredicate,
)
from .template import AggregationKind, QueryTemplate


class SqlParseError(ValueError):
    """Raised when the SQL text falls outside the supported subset."""


_QUERY_RE = re.compile(
    r"^\s*SELECT\s+(?P<select>.+?)\s+"
    r"FROM\s+(?P<tables>.+?)"
    r"(?:\s+WHERE\s+(?P<where>.+?))?"
    r"(?:\s+GROUP\s+BY\s+(?P<group>[\w.]+))?"
    r"(?:\s+ORDER\s+BY\s+(?P<order>[\w.]+))?"
    r"\s*;?\s*$",
    re.IGNORECASE | re.DOTALL,
)

_COLUMN_RE = re.compile(r"^(\w+)\.(\w+)$")
_COMPARISON_RE = re.compile(
    r"^([\w.]+)\s*(<=|>=|=|<|>)\s*(\?|-?\d+(?:\.\d+)?)$"
)

_OP_MAP = {
    "<=": ComparisonOp.LE,
    "<": ComparisonOp.LE,   # one-sided ranges; strictness folded away
    ">=": ComparisonOp.GE,
    ">": ComparisonOp.GE,
    "=": ComparisonOp.EQ,
}


@dataclass(frozen=True)
class ParsedQuery:
    """Intermediate parse result before template validation."""

    tables: list[str]
    joins: list[JoinEdge]
    parameterized: list[ParameterizedPredicate]
    fixed: list[FixedPredicate]
    aggregation: AggregationKind
    group_by: ColumnRef | None
    order_by: ColumnRef | None


def _parse_column(text: str, context: str) -> ColumnRef:
    match = _COLUMN_RE.match(text.strip())
    if not match:
        raise SqlParseError(
            f"{context}: expected a qualified column 'table.column', "
            f"got {text.strip()!r}"
        )
    return ColumnRef(match.group(1), match.group(2))


def _split_conjuncts(where: str) -> list[str]:
    parts = re.split(r"\s+AND\s+", where, flags=re.IGNORECASE)
    return [p.strip().strip("()").strip() for p in parts if p.strip()]


def parse_sql(sql: str, name: str, database: str) -> QueryTemplate:
    """Parse parameterized SQL into a validated :class:`QueryTemplate`.

    Parameter markers (``?``) become the template's parameterized
    predicates, in textual order — the order of the selectivity-vector
    dimensions and of per-instance parameter bindings.
    """
    match = _QUERY_RE.match(sql)
    if not match:
        raise SqlParseError(
            "query must have the shape SELECT ... FROM ... [WHERE ...] "
            "[GROUP BY col] [ORDER BY col]"
        )
    parsed = _parse_clauses(match)
    return QueryTemplate(
        name=name,
        database=database,
        tables=parsed.tables,
        joins=parsed.joins,
        parameterized=parsed.parameterized,
        fixed=parsed.fixed,
        aggregation=parsed.aggregation,
        group_by=parsed.group_by,
        order_by=parsed.order_by,
    )


def _parse_clauses(match: re.Match) -> ParsedQuery:
    select = match.group("select").strip()
    aggregation = AggregationKind.NONE
    if re.fullmatch(r"COUNT\s*\(\s*\*\s*\)", select, re.IGNORECASE):
        aggregation = AggregationKind.COUNT
    elif select != "*" and not re.fullmatch(r"[\w.,\s]+", select):
        raise SqlParseError(
            f"unsupported SELECT list {select!r}; use '*', a column list, "
            "or COUNT(*)"
        )

    tables = [t.strip() for t in match.group("tables").split(",")]
    if any(not re.fullmatch(r"\w+", t) for t in tables):
        raise SqlParseError(
            f"FROM clause must be a comma-separated table list, got "
            f"{match.group('tables')!r} (joins go in WHERE)"
        )

    joins: list[JoinEdge] = []
    parameterized: list[ParameterizedPredicate] = []
    fixed: list[FixedPredicate] = []
    where = match.group("where")
    if where:
        for conjunct in _split_conjuncts(where):
            _parse_conjunct(conjunct, joins, parameterized, fixed)

    group_by = None
    if match.group("group"):
        group_by = _parse_column(match.group("group"), "GROUP BY")
        aggregation = AggregationKind.GROUP_BY
    order_by = None
    if match.group("order"):
        order_by = _parse_column(match.group("order"), "ORDER BY")

    return ParsedQuery(
        tables=tables,
        joins=joins,
        parameterized=parameterized,
        fixed=fixed,
        aggregation=aggregation,
        group_by=group_by,
        order_by=order_by,
    )


def _parse_conjunct(
    conjunct: str,
    joins: list[JoinEdge],
    parameterized: list[ParameterizedPredicate],
    fixed: list[FixedPredicate],
) -> None:
    # Join predicate: column = column.
    join_match = re.match(r"^([\w.]+)\s*=\s*([\w.]+)$", conjunct)
    if join_match and _COLUMN_RE.match(join_match.group(2).strip()):
        left = _parse_column(join_match.group(1), "join predicate")
        right = _parse_column(join_match.group(2), "join predicate")
        joins.append(JoinEdge(left, right))
        return

    comp = _COMPARISON_RE.match(conjunct)
    if not comp:
        raise SqlParseError(
            f"unsupported WHERE conjunct {conjunct!r}; supported forms: "
            "'a.x = b.y', 'a.x <= ?', 'a.x >= 5'"
        )
    column = _parse_column(comp.group(1), "comparison")
    op = _OP_MAP[comp.group(2)]
    rhs = comp.group(3)
    if rhs == "?":
        parameterized.append(ParameterizedPredicate(column, op))
    else:
        fixed.append(FixedPredicate(column, op, float(rhs)))


def template_to_sql(template: QueryTemplate) -> str:
    """Render a template back to parameterized SQL (round-trippable)."""
    if template.aggregation is AggregationKind.COUNT:
        select = "COUNT(*)"
    else:
        select = "*"
    lines = [f"SELECT {select}", f"FROM {', '.join(template.tables)}"]
    sql_op = {
        ComparisonOp.LE: "<=",
        ComparisonOp.GE: ">=",
        ComparisonOp.EQ: "=",
    }
    conjuncts: list[str] = []
    conjuncts.extend(str(j) for j in template.joins)
    conjuncts.extend(
        f"{p.column} {sql_op[p.op]} ?" for p in template.parameterized
    )
    conjuncts.extend(
        f"{p.column} {sql_op[p.op]} {p.value:g}" for p in template.fixed
    )
    if conjuncts:
        lines.append("WHERE " + "\n  AND ".join(conjuncts))
    if template.group_by is not None:
        lines.append(f"GROUP BY {template.group_by}")
    if template.order_by is not None:
        lines.append(f"ORDER BY {template.order_by}")
    return "\n".join(lines)
