"""Geometry of λ-optimal inference regions (section 5.3, Figure 4).

The selectivity-based λ-optimal region around an optimized instance
``q_e = (s_1, ..., s_d)`` is the set of instances whose G·L product
does not exceed λ.  In two dimensions it is the closed region bounded
by two straight lines and two hyperbolas through ``q_e``; its area is
``(λ - 1/λ) · ln λ · s1 · s2`` — increasing in λ and in the stored
selectivities, and independent of the plan.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..query.instance import SelectivityVector
from .bounds import BoundingFunction, LINEAR_BOUND, compute_gl


@dataclass(frozen=True)
class SelectivityRegion:
    """The selectivity-check inference region around one stored instance.

    ``budget`` is the usable sub-optimality allowance ``λ / S`` where
    ``S`` is the stored plan's sub-optimality at the anchor (section
    6.2 allows anchors whose plan is itself slightly sub-optimal).
    """

    anchor: SelectivityVector
    budget: float
    bound: BoundingFunction = LINEAR_BOUND

    def __post_init__(self) -> None:
        if self.budget < 1.0:
            raise ValueError("region budget (lambda / S) must be >= 1")

    def contains(self, sv: SelectivityVector) -> bool:
        """True iff ``sv`` passes the selectivity check for this anchor."""
        g, l = compute_gl(self.anchor, sv)
        return self.bound.selectivity_bound(g, l) <= self.budget

    def area_2d(self) -> float:
        """Closed-form area (2-d only): ``(λ - 1/λ) ln λ · s1 · s2``."""
        if len(self.anchor) != 2:
            raise ValueError("closed-form area applies to 2-d regions only")
        lam = self.budget ** (1.0 / self.bound.degree)
        s1, s2 = self.anchor[0], self.anchor[1]
        return (lam - 1.0 / lam) * math.log(lam) * s1 * s2

    def boundary_2d(self, points_per_arc: int = 64) -> list[tuple[float, float]]:
        """Sample the region boundary (2-d) for plotting / Figure 1.

        The boundary consists of four arcs meeting where the G·L product
        equals λ: two line segments ``y = (s2/s1)·λ^{±1}·x`` and two
        hyperbola segments ``x·y = s1·s2·λ^{±1}``.
        """
        if len(self.anchor) != 2:
            raise ValueError("boundary sampling applies to 2-d regions only")
        lam = self.budget ** (1.0 / self.bound.degree)
        s1, s2 = self.anchor[0], self.anchor[1]
        pts: list[tuple[float, float]] = []

        def arc(x_from: float, x_to: float, fn) -> None:
            for i in range(points_per_arc):
                t = i / (points_per_arc - 1)
                x = x_from * (x_to / x_from) ** t  # log-spaced
                pts.append((x, fn(x)))

        # Corners of the region (intersections of lines and hyperbolas):
        #  line y = (s2 λ / s1) x with hyperbola x y = s1 s2 λ  -> x = s1
        #  line y = (s2 λ / s1) x with hyperbola x y = s1 s2 / λ -> x = s1/λ
        arc(s1 / lam, s1, lambda x: (s2 * lam / s1) * x)        # upper line
        arc(s1, s1 * lam, lambda x: s1 * s2 * lam / x)          # upper hyperbola
        arc(s1 * lam, s1, lambda x: (s2 / (s1 * lam)) * x)      # lower line (back)
        arc(s1, s1 / lam, lambda x: s1 * s2 / (lam * x))        # lower hyperbola
        return pts


@dataclass(frozen=True)
class RecostRegion:
    """Membership test for the recost-based λ-optimal region.

    Unlike the selectivity region this has no closed geometric form —
    membership requires a Recost call (the ``R`` value) — but it always
    contains the selectivity region, because ``R < G`` whenever the BCG
    assumption holds (section 5.3: recost finds extra reuse whenever
    actual cost growth is slower than the conservative bound).
    """

    anchor: SelectivityVector
    budget: float
    bound: BoundingFunction = LINEAR_BOUND

    def contains(self, sv: SelectivityVector, recost_ratio: float) -> bool:
        from .bounds import compute_l

        l = compute_l(self.anchor, sv)
        return self.bound.cost_bound(recost_ratio, l) <= self.budget
