"""The manageCache module (sections 4.3 and 6.3; Algorithm 2).

Runs after an optimizer call (off the critical path in the paper's
architecture) and decides how the plan cache changes:

* plan already cached       -> add a 5-tuple pointing at it (S = 1);
* new plan, redundant       -> discard it; point the 5-tuple at the
  cheapest existing plan (``S = S_min``), provided ``S_min ≤ λ_r``
  (the paper uses ``λ_r = √λ``; Appendix E);
* new plan, not redundant   -> add it, evicting the LFU plan first if a
  plan budget ``k`` is enforced (section 6.3.1).

Also implements Appendix F's redundancy check for *existing* plans.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Optional

from ..optimizer.optimizer import OptimizationResult
from ..optimizer.recost import ShrunkenMemo
from ..query.instance import SelectivityVector
from .plan_cache import CachedPlan, InstanceEntry, PlanCache

RecostFn = Callable[[ShrunkenMemo, SelectivityVector], float]


def default_lambda_r(lam: float) -> float:
    """The paper's redundancy threshold ``λ_r = √λ`` (Appendix E)."""
    return math.sqrt(lam)


class EvictionPolicy(Enum):
    """Victim-selection policy when the plan budget ``k`` is exceeded.

    The paper uses LFU — drop the plan with minimum aggregate usage
    count over its instances (section 6.3.1), expected to work well
    when the future instance distribution matches the past.  LRU and
    RANDOM are provided as ablation comparators.
    """

    LFU = "lfu"
    LRU = "lru"
    RANDOM = "random"


@dataclass
class ManageCacheStats:
    """Bookkeeping for the manageCache decisions."""

    plans_added: int = 0
    plans_rejected_redundant: int = 0
    plans_evicted: int = 0
    existing_plan_hits: int = 0
    redundancy_recost_calls: int = 0
    instances_coalesced: int = 0
    advisor_evictions: int = 0


@dataclass
class ManageCache:
    """Configurable manageCache.

    Parameters
    ----------
    lam:
        The λ bound (used only through ``lambda_r`` by default).
    lambda_r:
        Redundancy-check threshold; new plans whose best cached
        alternative is within this factor are discarded.  ``λ_r = √λ``
        unless overridden (``λ_r <= 1`` disables rejection, i.e. the
        store-every-plan policy).
    plan_budget:
        Optional hard cap ``k`` on the number of cached plans.
    coalesce_identical:
        When True, registering an instance whose selectivity vector is
        already anchored bumps the existing anchor's usage instead of
        appending a duplicate 5-tuple.  Off by default (serial SCR keeps
        the paper's exact bookkeeping); the concurrent serving layer
        enables it so racy double-optimizations of the same vector —
        e.g. two threads missing before either registers — cannot grow
        the instance list without bound.
    """

    cache: PlanCache
    lam: float
    lambda_r: Optional[float] = None
    plan_budget: Optional[int] = None
    eviction_policy: EvictionPolicy = EvictionPolicy.LFU
    eviction_seed: int = 0
    coalesce_identical: bool = False
    #: Opt-in advisory signal from the anchor-efficacy attribution: when
    #: enabled, LFU eviction first looks for a plan none of whose
    #: anchors has ever produced a hit (pure wasted optimizer spend per
    #: the doctor's definition) before falling back to the plain
    #: aggregate-usage victim.  Off by default — the paper's
    #: Algorithm 2, and the differential suite's pinned decision
    #: counts, use plain LFU.
    efficacy_advisor: bool = False
    stats: ManageCacheStats = field(default_factory=ManageCacheStats)

    def __post_init__(self) -> None:
        if self.lambda_r is None:
            self.lambda_r = default_lambda_r(self.lam)
        if self.plan_budget is not None and self.plan_budget < 1:
            raise ValueError("plan budget k must be >= 1")
        self._rng = random.Random(self.eviction_seed)

    def register(
        self,
        sv: SelectivityVector,
        result: OptimizationResult,
        recost: RecostFn,
    ) -> InstanceEntry:
        """Process a freshly optimized instance (Algorithm 2).

        Returns the instance entry added to the instance list; its
        ``plan_id`` is the plan the instance will anchor for future
        inference (the new plan, or the redundant-winner).
        """
        signature = result.plan.signature()
        optimal_cost = result.cost

        if self.coalesce_identical:
            duplicate = self.cache.find_instance(sv)
            if duplicate is not None and not duplicate.retired:
                duplicate.usage += 1
                self.cache.usage_version += 1
                self.stats.instances_coalesced += 1
                return duplicate

        existing = self.cache.find_plan(signature)
        if existing is not None:
            self.stats.existing_plan_hits += 1
            entry = InstanceEntry(
                sv=sv,
                plan_id=existing.plan_id,
                optimal_cost=optimal_cost,
                suboptimality=1.0,
            )
            self.cache.add_instance(entry)
            return entry

        redundant = self._redundancy_check(sv, optimal_cost, recost)
        if redundant is not None:
            plan_entry, s_min = redundant
            self.stats.plans_rejected_redundant += 1
            entry = InstanceEntry(
                sv=sv,
                plan_id=plan_entry.plan_id,
                optimal_cost=optimal_cost,
                suboptimality=s_min,
            )
            self.cache.add_instance(entry)
            return entry

        if (
            self.plan_budget is not None
            and self.cache.num_plans >= self.plan_budget
        ):
            self._evict_one()
        plan_entry = self.cache.add_plan(result.plan, result.shrunken_memo)
        self.stats.plans_added += 1
        entry = InstanceEntry(
            sv=sv,
            plan_id=plan_entry.plan_id,
            optimal_cost=optimal_cost,
            suboptimality=1.0,
        )
        self.cache.add_instance(entry)
        return entry

    # -- redundancy of the new plan ----------------------------------------

    def _redundancy_check(
        self, sv: SelectivityVector, optimal_cost: float, recost: RecostFn
    ) -> Optional[tuple[CachedPlan, float]]:
        """Find the min-cost cached plan; redundant if ``S_min ≤ λ_r``."""
        if self.lambda_r is None or self.lambda_r <= 1.0:
            return None
        best: Optional[CachedPlan] = None
        best_cost = math.inf
        for plan in self.cache.plans():
            cost = recost(plan.shrunken_memo, sv)
            self.stats.redundancy_recost_calls += 1
            if cost < best_cost:
                best, best_cost = plan, cost
        if best is None:
            return None
        s_min = best_cost / optimal_cost
        if s_min <= self.lambda_r:
            return best, max(s_min, 1.0)
        return None

    # -- eviction under a plan budget ------------------------------------------

    def _evict_one(self) -> None:
        if self.eviction_policy is EvictionPolicy.LFU:
            victim = self._never_paying_victim() if self.efficacy_advisor else None
            if victim is not None:
                self.stats.advisor_evictions += 1
            else:
                victim = self.cache.min_usage_plan()
        elif self.eviction_policy is EvictionPolicy.LRU:
            victim = self.cache.lru_plan()
        else:
            plans = self.cache.plans()
            victim = self._rng.choice(plans) if plans else None
        if victim is not None:
            self.cache.drop_plan(victim.plan_id)
            self.stats.plans_evicted += 1

    def _never_paying_victim(self) -> Optional[CachedPlan]:
        """The least-used plan whose anchors have zero lifetime hits.

        Advisory only: reachable solely through ``efficacy_advisor``.
        Ties on aggregate usage break by plan id (insertion order), the
        same way :meth:`PlanCache.min_usage_plan`'s ``min`` breaks them.
        """
        candidates = [
            p for p in self.cache.plans()
            if all(
                inst.total_hits == 0
                for inst in self.cache.instances_for(p.plan_id)
            )
        ]
        if not candidates:
            return None
        return min(
            candidates, key=lambda p: self.cache.aggregate_usage(p.plan_id)
        )

    # -- Appendix F: redundancy of existing plans -------------------------------

    def purge_redundant_existing_plans(self, recost: RecostFn) -> int:
        """Drop existing plans every instance of which has a λ-optimal
        alternative among the *other* cached plans.

        Processes plans in increasing order of their instance-list size
        (the Appendix F heuristic: small plans are cheaper to check and
        more likely redundant).  Returns the number of plans dropped.
        """
        dropped = 0
        plan_ids = sorted(
            (p.plan_id for p in self.cache.plans()),
            key=lambda pid: len(self.cache.instances_for(pid)),
        )
        for plan_id in plan_ids:
            if self.cache.num_plans <= 1:
                break
            if self._try_drop_plan(plan_id, recost):
                dropped += 1
        return dropped

    def _try_drop_plan(self, plan_id: int, recost: RecostFn) -> bool:
        instances = self.cache.instances_for(plan_id)
        others = [p for p in self.cache.plans() if p.plan_id != plan_id]
        if not others:
            return False
        replacements: list[tuple[InstanceEntry, CachedPlan, float]] = []
        for inst in instances:
            best: Optional[CachedPlan] = None
            best_s = math.inf
            for plan in others:
                cost = recost(plan.shrunken_memo, inst.sv)
                self.stats.redundancy_recost_calls += 1
                s = cost / inst.optimal_cost
                if s < best_s:
                    best, best_s = plan, s
            if best is None or best_s > self.lam:
                return False  # some instance has no λ-optimal alternative
            replacements.append((inst, best, max(best_s, 1.0)))
        # All instances re-homed: drop the plan, re-add updated 5-tuples.
        self.cache.drop_plan(plan_id)
        for inst, plan, s in replacements:
            self.cache.add_instance(
                InstanceEntry(
                    sv=inst.sv,
                    plan_id=plan.plan_id,
                    optimal_cost=inst.optimal_cost,
                    suboptimality=s,
                    usage=inst.usage,
                )
            )
        return True
