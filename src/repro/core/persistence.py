"""Plan-cache persistence: survive engine restarts.

Commercial plan caches persist across sessions; the paper's instance
5-tuples are ~100 bytes and the shrunken memos a few hundred KB per
plan (section 6.1), so serializing the whole cache is cheap.  This
module round-trips a :class:`~repro.core.plan_cache.PlanCache` through
a JSON document: the shrunken memos (all that re-costing and inference
need) plus the instance list.  Executable plan trees are rebuilt on
demand by re-optimizing at the anchor — they are intentionally *not*
serialized, matching the paper's note that alternative Recost
representations trade memory for time.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from ..optimizer.operators import PhysicalOp
from ..optimizer.recost import ShrunkenMemo, _RecostNode
from ..query.instance import SelectivityVector
from .plan_cache import CachedPlan, InstanceEntry, PlanCache


def _node_to_dict(node: _RecostNode) -> dict:
    return {
        "op": node.op.value,
        "child_a": node.child_a,
        "child_b": node.child_b,
        "base_rows": node.base_rows,
        "fixed_selectivity": node.fixed_selectivity,
        "param_indices": list(node.param_indices),
        "join_selectivity": node.join_selectivity,
        "left_sorted": node.left_sorted,
        "right_sorted": node.right_sorted,
        "group_distinct": node.group_distinct,
        "inner_base_rows": node.inner_base_rows,
        "inner_fixed_selectivity": node.inner_fixed_selectivity,
        "inner_param_indices": list(node.inner_param_indices),
    }


def _node_from_dict(data: dict) -> _RecostNode:
    return _RecostNode(
        op=PhysicalOp(data["op"]),
        child_a=data["child_a"],
        child_b=data["child_b"],
        base_rows=data["base_rows"],
        fixed_selectivity=data["fixed_selectivity"],
        param_indices=tuple(data["param_indices"]),
        join_selectivity=data["join_selectivity"],
        left_sorted=data["left_sorted"],
        right_sorted=data["right_sorted"],
        group_distinct=data["group_distinct"],
        inner_base_rows=data["inner_base_rows"],
        inner_fixed_selectivity=data["inner_fixed_selectivity"],
        inner_param_indices=tuple(data["inner_param_indices"]),
    )


def dump_cache(cache: PlanCache) -> str:
    """Serialize the plan cache to a JSON string."""
    plans = []
    for plan in cache.plans():
        sm = plan.shrunken_memo
        plans.append({
            "plan_id": plan.plan_id,
            "signature": plan.signature,
            "template_name": sm.template_name,
            "nodes": [_node_to_dict(n) for n in sm.nodes],
            "full_memo_groups": sm.full_memo_groups,
            "full_memo_expressions": sm.full_memo_expressions,
        })
    instances = [
        {
            "sv": list(entry.sv),
            "plan_id": entry.plan_id,
            "optimal_cost": entry.optimal_cost,
            "suboptimality": entry.suboptimality,
            "usage": entry.usage,
            "retired": entry.retired,
        }
        for entry in cache.instances()
    ]
    return json.dumps({"version": 1, "plans": plans, "instances": instances})


def load_cache(text: str) -> PlanCache:
    """Rebuild a plan cache from :func:`dump_cache` output.

    Restored :class:`CachedPlan` entries carry ``plan=None`` — callers
    needing an executable tree re-optimize at any anchoring instance
    (one optimizer call per plan, amortized away by reuse).
    """
    data = json.loads(text)
    if data.get("version") != 1:
        raise ValueError(f"unsupported cache dump version {data.get('version')!r}")
    cache = PlanCache()
    id_map: dict[int, int] = {}
    for plan_data in data["plans"]:
        shrunken = ShrunkenMemo(
            template_name=plan_data["template_name"],
            signature=plan_data["signature"],
            nodes=[_node_from_dict(n) for n in plan_data["nodes"]],
            full_memo_groups=plan_data["full_memo_groups"],
            full_memo_expressions=plan_data["full_memo_expressions"],
        )
        entry = CachedPlan(
            plan_id=cache._next_plan_id,
            signature=plan_data["signature"],
            plan=None,
            shrunken_memo=shrunken,
        )
        cache._plans[entry.plan_id] = entry
        cache._by_signature[entry.signature] = entry.plan_id
        id_map[plan_data["plan_id"]] = entry.plan_id
        cache._next_plan_id += 1
    cache.max_plans_seen = cache.num_plans
    for inst in data["instances"]:
        cache.add_instance(InstanceEntry(
            sv=SelectivityVector.from_sequence(inst["sv"]),
            plan_id=id_map[inst["plan_id"]],
            optimal_cost=inst["optimal_cost"],
            suboptimality=inst["suboptimality"],
            usage=inst["usage"],
            retired=inst["retired"],
        ))
    return cache


@dataclass(frozen=True)
class CacheSnapshot:
    """Convenience: dump/load against a file path."""

    path: str

    def save(self, cache: PlanCache) -> int:
        text = dump_cache(cache)
        with open(self.path, "w") as f:
            f.write(text)
        return len(text)

    def load(self) -> PlanCache:
        with open(self.path) as f:
            return load_cache(f.read())
