"""Plan-cache persistence: survive engine restarts.

Commercial plan caches persist across sessions; the paper's instance
5-tuples are ~100 bytes and the shrunken memos a few hundred KB per
plan (section 6.1), so serializing the whole cache is cheap.  This
module round-trips a :class:`~repro.core.plan_cache.PlanCache` through
a JSON document: the shrunken memos (all that re-costing and inference
need) plus the instance list.  Executable plan trees are rebuilt on
demand by re-optimizing at the anchor — they are intentionally *not*
serialized, matching the paper's note that alternative Recost
representations trade memory for time.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from typing import Optional

from ..optimizer.operators import PhysicalOp
from ..optimizer.recost import ShrunkenMemo, _RecostNode
from ..query.instance import SelectivityVector
from .plan_cache import CachedPlan, InstanceEntry, PlanCache


class CacheCorruptionError(ValueError):
    """A cache dump is truncated, bit-flipped or otherwise unusable.

    Subclasses :class:`ValueError` so pre-existing callers that caught
    broad validation errors keep working.
    """


def _payload_checksum(payload: dict) -> str:
    """SHA-256 over the canonical JSON encoding of the payload.

    The canonical form (sorted keys, no whitespace) survives a JSON
    round-trip bit-for-bit, so the checksum can be recomputed from the
    parsed document at load time.
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _node_to_dict(node: _RecostNode) -> dict:
    return {
        "op": node.op.value,
        "child_a": node.child_a,
        "child_b": node.child_b,
        "base_rows": node.base_rows,
        "fixed_selectivity": node.fixed_selectivity,
        "param_indices": list(node.param_indices),
        "join_selectivity": node.join_selectivity,
        "left_sorted": node.left_sorted,
        "right_sorted": node.right_sorted,
        "group_distinct": node.group_distinct,
        "inner_base_rows": node.inner_base_rows,
        "inner_fixed_selectivity": node.inner_fixed_selectivity,
        "inner_param_indices": list(node.inner_param_indices),
    }


def _node_from_dict(data: dict) -> _RecostNode:
    return _RecostNode(
        op=PhysicalOp(data["op"]),
        child_a=data["child_a"],
        child_b=data["child_b"],
        base_rows=data["base_rows"],
        fixed_selectivity=data["fixed_selectivity"],
        param_indices=tuple(data["param_indices"]),
        join_selectivity=data["join_selectivity"],
        left_sorted=data["left_sorted"],
        right_sorted=data["right_sorted"],
        group_distinct=data["group_distinct"],
        inner_base_rows=data["inner_base_rows"],
        inner_fixed_selectivity=data["inner_fixed_selectivity"],
        inner_param_indices=tuple(data["inner_param_indices"]),
    )


def dump_cache(cache: PlanCache) -> str:
    """Serialize the plan cache to a JSON string."""
    plans = []
    for plan in cache.plans():
        sm = plan.shrunken_memo
        plans.append({
            "plan_id": plan.plan_id,
            "signature": plan.signature,
            "template_name": sm.template_name,
            "nodes": [_node_to_dict(n) for n in sm.nodes],
            "full_memo_groups": sm.full_memo_groups,
            "full_memo_expressions": sm.full_memo_expressions,
        })
    instances = [
        {
            "sv": list(entry.sv),
            "plan_id": entry.plan_id,
            "optimal_cost": entry.optimal_cost,
            "suboptimality": entry.suboptimality,
            "usage": entry.usage,
            "retired": entry.retired,
            "hits_selectivity": entry.hits_selectivity,
            "hits_cost": entry.hits_cost,
            "recost_spend": entry.recost_spend,
            "last_hit_tick": entry.last_hit_tick,
        }
        for entry in cache.instances()
    ]
    payload = {
        "plans": plans,
        "instances": instances,
        "evicted": {
            "hits_selectivity": cache.evicted_hits_selectivity,
            "hits_cost": cache.evicted_hits_cost,
            "recost_spend": cache.evicted_recost_spend,
            "never_hit": cache.evicted_never_hit,
        },
        "adopted": {
            "hits_selectivity": cache.adopted_hits_selectivity,
            "hits_cost": cache.adopted_hits_cost,
            "recost_spend": cache.adopted_recost_spend,
        },
    }
    return json.dumps({
        "version": 2,
        "checksum": _payload_checksum(payload),
        "payload": payload,
    })


def load_cache(text: str) -> PlanCache:
    """Rebuild a plan cache from :func:`dump_cache` output.

    Restored :class:`CachedPlan` entries carry ``plan=None`` — callers
    needing an executable tree re-optimize at any anchoring instance
    (one optimizer call per plan, amortized away by reuse).

    Raises
    ------
    CacheCorruptionError
        If the document is truncated, fails JSON parsing, is missing
        fields, or its embedded SHA-256 checksum does not match the
        payload.
    ValueError
        If the document parses cleanly but declares an unsupported
        format version.
    """
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CacheCorruptionError(
            f"cache dump is not valid JSON (truncated?): {exc}"
        ) from exc
    if not isinstance(data, dict):
        raise CacheCorruptionError("cache dump is not a JSON object")
    version = data.get("version")
    if version == 2:
        payload = data.get("payload")
        stored = data.get("checksum")
        if not isinstance(payload, dict) or not isinstance(stored, str):
            raise CacheCorruptionError("cache dump missing payload/checksum")
        actual = _payload_checksum(payload)
        if actual != stored:
            raise CacheCorruptionError(
                f"cache dump checksum mismatch: stored {stored[:12]}..., "
                f"computed {actual[:12]}..."
            )
    elif version == 1:
        # Legacy un-checksummed format: the document is the payload.
        payload = data
    else:
        raise ValueError(f"unsupported cache dump version {version!r}")
    try:
        return _cache_from_payload(payload)
    except (KeyError, TypeError, IndexError, AttributeError) as exc:
        raise CacheCorruptionError(
            f"cache dump payload is malformed: {exc!r}"
        ) from exc


def _cache_from_payload(data: dict) -> PlanCache:
    cache = PlanCache()
    id_map: dict[int, int] = {}
    for plan_data in data["plans"]:
        shrunken = ShrunkenMemo(
            template_name=plan_data["template_name"],
            signature=plan_data["signature"],
            nodes=[_node_from_dict(n) for n in plan_data["nodes"]],
            full_memo_groups=plan_data["full_memo_groups"],
            full_memo_expressions=plan_data["full_memo_expressions"],
        )
        entry = CachedPlan(
            plan_id=cache._next_plan_id,
            signature=plan_data["signature"],
            plan=None,
            shrunken_memo=shrunken,
        )
        cache._plans[entry.plan_id] = entry
        cache._by_signature[entry.signature] = entry.plan_id
        id_map[plan_data["plan_id"]] = entry.plan_id
        cache._next_plan_id += 1
    cache.max_plans_seen = cache.num_plans
    for inst in data["instances"]:
        cache.add_instance(InstanceEntry(
            sv=SelectivityVector.from_sequence(inst["sv"]),
            plan_id=id_map[inst["plan_id"]],
            optimal_cost=inst["optimal_cost"],
            suboptimality=inst["suboptimality"],
            usage=inst["usage"],
            retired=inst["retired"],
            # Efficacy attribution arrived after v2 dumps existed; old
            # documents simply restore with zeroed counters.
            hits_selectivity=inst.get("hits_selectivity", 0),
            hits_cost=inst.get("hits_cost", 0),
            recost_spend=inst.get("recost_spend", 0),
            last_hit_tick=inst.get("last_hit_tick", -1),
        ))
    evicted = data.get("evicted", {})
    cache.evicted_hits_selectivity = evicted.get("hits_selectivity", 0)
    cache.evicted_hits_cost = evicted.get("hits_cost", 0)
    cache.evicted_recost_spend = evicted.get("recost_spend", 0)
    cache.evicted_never_hit = evicted.get("never_hit", 0)
    adopted = data.get("adopted", {})
    cache.adopted_hits_selectivity = adopted.get("hits_selectivity", 0)
    cache.adopted_hits_cost = adopted.get("hits_cost", 0)
    cache.adopted_recost_spend = adopted.get("recost_spend", 0)
    return cache


def _fsync_directory(directory: str) -> None:
    """Flush the directory entry after an ``os.replace``.

    The rename itself is atomic, but without a directory fsync a power
    loss can still forget *which* name the entry points at.  Filesystems
    that refuse fsync on directory handles (some network mounts) degrade
    to rename-only atomicity, which is what the previous behaviour was.
    """
    flags = os.O_RDONLY | getattr(os, "O_DIRECTORY", 0)
    try:
        dfd = os.open(directory, flags)
    except OSError:  # pragma: no cover - exotic filesystems only
        return
    try:
        os.fsync(dfd)
    except OSError:  # pragma: no cover - exotic filesystems only
        pass
    finally:
        os.close(dfd)


@dataclass(frozen=True)
class CacheSnapshot:
    """Crash-safe dump/load against a file path.

    ``save`` writes to a temporary file in the target directory, fsyncs
    it, atomically renames it over the destination with
    :func:`os.replace`, and fsyncs the directory so the rename survives
    power loss — a crash mid-save leaves the previous snapshot intact,
    never a truncated one, and a reader racing a save always observes
    either the old or the new complete document.  ``load`` verifies the
    embedded checksum and raises :class:`CacheCorruptionError` on any
    damage, leaving the file untouched for forensics.
    """

    path: str

    def save(self, cache: PlanCache) -> int:
        return self.save_text(dump_cache(cache))

    def save_text(self, text: str) -> int:
        """Atomically publish an already-serialized dump.

        Split out so callers that must serialize under a lock (the
        cluster workers dump under the shard lock) can do the disk I/O
        outside it.
        """
        directory = os.path.dirname(os.path.abspath(self.path))
        fd, tmp_path = tempfile.mkstemp(
            dir=directory, prefix=os.path.basename(self.path) + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as f:
                f.write(text)
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp_path, self.path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        _fsync_directory(directory)
        return len(text)

    def load(self) -> PlanCache:
        with open(self.path) as f:
            return load_cache(f.read())

    def load_or_none(self) -> Optional[PlanCache]:
        """Best-effort load: ``None`` on a missing or damaged snapshot.

        The warm-start path uses this — a corrupt or torn snapshot must
        degrade a replacement worker to a cold start, never crash it.
        """
        try:
            return self.load()
        except (OSError, CacheCorruptionError, ValueError):
            return None
