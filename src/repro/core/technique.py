"""The online PQO technique interface (problem setting of section 2).

An online technique processes a workload sequence one instance at a
time; for each instance it must produce a plan — either one it has
cached or the result of a fresh optimizer call — through exactly the
engine APIs of section 4.2.  SCR and every baseline implement this
interface, so the harness measures them identically.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional

from ..engine.api import EngineAPI
from ..optimizer.plans import PhysicalPlan
from ..optimizer.recost import ShrunkenMemo
from ..query.instance import AnySelectivityVector, QueryInstance, as_point


@dataclass
class PlanChoice:
    """What a technique decided for one query instance."""

    shrunken_memo: ShrunkenMemo
    plan_signature: str
    used_optimizer: bool
    check: str = ""            # technique-specific label ("selectivity", ...)
    recost_calls: int = 0
    optimal_cost: Optional[float] = None  # known only if we optimized
    plan: Optional[PhysicalPlan] = None   # executable plan tree
    #: False when a degraded path served this instance (optimizer
    #: fallback, stale sVector): no λ bound was verified for it.
    certified: bool = True
    #: The sub-optimality bound the checks actually verified (S·G·L,
    #: S·R·L, or the entry's registered bound after an optimizer call);
    #: None when no bound was certified.  Feeds the guarantee audit.
    certified_bound: Optional[float] = None
    #: Certificate kind claimed for this response when ``certified``:
    #: "exact" (point checks / exactly known selectivities), "robust"
    #: (holds for every sVector in a hard uncertainty box) or
    #: "probabilistic" (holds with probability ≥ ``coverage``).
    certificate: str = "exact"
    #: Coverage of the uncertainty box the certificate holds over.
    coverage: float = 1.0


class OnlinePQOTechnique(ABC):
    """Base class for online PQO techniques."""

    #: human-readable name used in reports, overridden by subclasses.
    name: str = "abstract"

    def __init__(self, engine: EngineAPI) -> None:
        self.engine = engine
        self.instances_processed = 0
        self.optimizer_calls = 0

    def process(self, instance: QueryInstance) -> PlanChoice:
        """Handle one arriving query instance."""
        self.engine.begin_instance(self.instances_processed)
        sv = self._fetch_sv(instance)
        choice = self._choose(sv)
        if getattr(self.engine, "last_selectivity_degraded", False):
            # The sVector was a stale fallback: every check ran against
            # approximate selectivities, so no bound is certified.
            choice.certified = False
        self.instances_processed += 1
        if choice.used_optimizer:
            self.optimizer_calls += 1
        return choice

    def _fetch_sv(self, instance: QueryInstance) -> AnySelectivityVector:
        """Fetch the instance's selectivity representation.

        Techniques that consume estimation uncertainty (SCR's robust
        check modes) override this to request the uncertain variant.
        """
        return self.engine.selectivity_vector(instance)

    @abstractmethod
    def _choose(self, sv: AnySelectivityVector) -> PlanChoice:
        """Pick a plan for the instance with selectivity vector ``sv``."""

    @property
    @abstractmethod
    def plans_cached(self) -> int:
        """Number of plans currently stored."""

    @property
    def max_plans_cached(self) -> int:
        """Peak number of plans stored (defaults to the current count)."""
        return self.plans_cached

    def _optimize(self, sv: AnySelectivityVector):
        """Make a (counted) optimizer call through the engine.

        Always optimizes at the *point* estimate — the optimizer's own
        cardinality model works from best guesses, not boxes.
        """
        return self.engine.optimize(as_point(sv))
