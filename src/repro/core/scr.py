"""SCR: the paper's online PQO technique (Selectivity / Cost /
Redundancy checks), tying getPlan and manageCache together.

Per arriving instance:

1. getPlan runs the selectivity check and then the capped, G·L-ordered
   cost check over the instance list; a hit reuses the cached plan and
   certifies λ-optimality.
2. On a miss, the optimizer is called and manageCache decides whether
   the resulting plan enters the cache (redundancy check, plan budget).
3. Cost-check observations feed the Appendix G violation detector,
   which retires anchors whose plan cost behaviour contradicts the
   BCG/PCM assumptions.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from ..engine.api import EngineAPI
from ..engine.resilience import OptimizeUnavailableError
from ..engine.tracing import TraceLog
from ..obs.handle import Observability, base_engine, instrument_engine
from ..query.instance import (
    AnySelectivityVector,
    QueryInstance,
    SelectivityVector,
    UncertainSelectivityVector,
    as_point,
)
from .bounds import BoundingFunction, LINEAR_BOUND, adversarial_corner, compute_gl
from .columnar import log_l1_distances, np
from .get_plan import (
    CandidateOrder,
    CheckKind,
    CheckMode,
    GetPlan,
    GetPlanDecision,
    certificate_kind,
)
from .manage_cache import EvictionPolicy, ManageCache
from .plan_cache import PlanCache
from .technique import OnlinePQOTechnique, PlanChoice
from .violations import ViolationDetector


class SCR(OnlinePQOTechnique):
    """The SCR technique with a configurable sub-optimality bound λ.

    Parameters
    ----------
    engine:
        The per-template engine API (optimize / recost / sVector).
    lam:
        Sub-optimality bound λ ≥ 1.  Every processed instance is
        guaranteed ``SO(q) ≤ λ`` whenever the BCG assumption holds.
    lambda_r:
        Redundancy threshold; defaults to √λ (Appendix E).
    plan_budget:
        Optional cap ``k`` on cached plans (section 6.3.1).
    max_recost_candidates:
        Recost-call cap per getPlan invocation (section 6.2 heuristic).
    bound:
        BCG bounding function, ``f(α)=α`` by default.
    lambda_for:
        Optional dynamic-λ schedule (Appendix D); overrides ``lam`` per
        anchor according to its optimal cost.
    detect_violations:
        Enable the Appendix G violation detector.
    check_mode:
        ``"point"`` (the paper's checks), ``"robust"`` (checks at the
        adversarial corner of the instance's uncertainty box) or
        ``"probabilistic"`` (robust checks at ``target_coverage``).
    target_coverage:
        Coverage certified by the probabilistic mode.
    check_impl:
        ``"vectorized"`` (default) or ``"scalar"`` — which getPlan
        decision-procedure implementation runs (identical decisions;
        see :class:`~repro.core.get_plan.GetPlan`).
    """

    def __init__(
        self,
        engine: EngineAPI,
        lam: float = 2.0,
        lambda_r: Optional[float] = None,
        plan_budget: Optional[int] = None,
        max_recost_candidates: int = 8,
        bound: BoundingFunction = LINEAR_BOUND,
        lambda_for: Optional[Callable[[float], float]] = None,
        detect_violations: bool = True,
        eviction_policy: EvictionPolicy = EvictionPolicy.LFU,
        candidate_order: CandidateOrder = CandidateOrder.GL,
        spatial_index: bool = False,
        trace: Optional[TraceLog] = None,
        obs: Optional[Observability] = None,
        check_mode: "CheckMode | str" = CheckMode.POINT,
        target_coverage: float = 0.95,
        check_impl: str = "vectorized",
    ) -> None:
        super().__init__(engine)
        self.lam = lam
        self.trace = trace
        self.obs = obs
        self.check_mode = CheckMode.coerce(check_mode)
        self.cache = PlanCache()
        if spatial_index and self.check_mode is not CheckMode.POINT:
            raise ValueError(
                "spatial_index supports only check_mode='point'; the "
                "grid index prunes by point distance and would skip "
                "anchors whose adversarial corner still certifies"
            )
        if spatial_index:
            from .spatial_index import IndexedGetPlan, InstanceGridIndex

            index = InstanceGridIndex()
            self.cache.on_instance_added.append(index.add)
            self.cache.on_plan_dropped.append(index.remove_plan)
            self.get_plan = IndexedGetPlan(
                cache=self.cache,
                lam=lam,
                index=index,
                max_recost_candidates=max_recost_candidates,
                bound=bound,
                lambda_for=lambda_for,
                candidate_order=candidate_order,
                check_impl=check_impl,
            )
        else:
            self.get_plan = GetPlan(
                cache=self.cache,
                lam=lam,
                max_recost_candidates=max_recost_candidates,
                bound=bound,
                lambda_for=lambda_for,
                candidate_order=candidate_order,
                check_mode=self.check_mode,
                target_coverage=target_coverage,
                check_impl=check_impl,
            )
        self.manage_cache = ManageCache(
            cache=self.cache,
            lam=lam,
            lambda_r=lambda_r,
            plan_budget=plan_budget,
            eviction_policy=eviction_policy,
        )
        self.detector = ViolationDetector(bound=bound) if detect_violations else None
        self.calibration = None
        if obs is not None:
            self.attach_observability(obs)

    def attach_observability(self, obs) -> None:
        """Wire the full stack into one handle, after the fact.

        Same wiring the constructor's ``obs`` argument performs; the
        serving manager uses this when it owns the handle and builds
        the SCR itself.  Idempotent (the per-template calibration
        handle is resolved, not recreated).
        """
        self.obs = obs
        instrument_engine(self.engine, obs)
        self.get_plan.spans = obs.spans
        self.calibration = obs.calibration.template(self.engine.template.name)

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"SCR{self.lam:g}"

    def _audit_bound(self, bound: float, lam: float, kind: str = "exact") -> None:
        """Feed one certified bound to the guarantee audit trail.

        This is the live λ-violation check: the histogram records the
        bound, and a bound above the λ in force flags a violation the
        moment it is served instead of waiting for an offline oracle
        pass.  Shared by the serial and concurrent serving paths (both
        funnel through :meth:`_hit_choice` / :meth:`_register_optimized`).
        ``kind`` labels any flagged violation with the certificate kind
        whose claim it broke.
        """
        if self.obs is not None:
            self.obs.audit.certified_bound(
                self.engine.template.name, bound, lam,
                seq=self.instances_processed, kind=kind,
            )

    def _fetch_sv(self, instance: QueryInstance) -> AnySelectivityVector:
        """Fetch the point sVector, or the uncertain one in robust modes."""
        if self.check_mode is CheckMode.POINT:
            return self.engine.selectivity_vector(instance)
        return self.engine.selectivity_vector_with_error(instance)

    def _choose(self, sv: AnySelectivityVector) -> PlanChoice:
        decision = self.get_plan(sv, self.engine.recost)
        if decision.hit:
            return self._hit_choice(decision)
        return self._miss_choice(sv, decision)

    def _hit_choice(self, decision: GetPlanDecision) -> PlanChoice:
        """Build the :class:`PlanChoice` for a (committed) cache hit.

        Also feeds the Appendix G violation detector on cost-check hits.
        Shared with the concurrent serving layer, which calls it under
        the shard's write lock after validating the probe's snapshot.
        """
        if decision.check is CheckKind.COST and decision.anchor is not None:
            if self.detector is not None:
                self.detector.check(
                    decision.anchor, decision.g, decision.l,
                    decision.recost_ratio,
                )
        self._feed_recost_calibration(decision)
        plan = self.cache.plan(decision.plan_id)
        if self.trace is not None:
            self.trace.decision(
                self.instances_processed,
                decision.check.value,
                plan.signature,
                certified_bound=decision.inferred_suboptimality,
            )
        bound = decision.inferred_suboptimality
        lam = (
            self.get_plan._effective_lambda(decision.anchor)
            if decision.anchor is not None else self.lam
        )
        self._audit_bound(bound, lam, kind=decision.certificate)
        return PlanChoice(
            shrunken_memo=plan.shrunken_memo,
            plan_signature=plan.signature,
            used_optimizer=False,
            check=decision.check.value,
            recost_calls=decision.recost_calls,
            plan=plan.plan,
            certified_bound=bound,
            certificate=decision.certificate,
            coverage=decision.coverage,
        )

    def _feed_recost_calibration(self, decision: GetPlanDecision) -> None:
        """Feed every Recost comparison the cost phase made into the
        calibration observatory.

        Free samples: each already paid its Recost call.  Predicted =
        the anchor's stored pointed cost ``C·S``; actual = the fresh
        Recost (``r·C``); the Cost Bounding Lemma's interval
        ``[C·S/L^n, C·S·G^n]`` is the slack (legitimate selectivity
        movement), so only cost-model inconsistency lands in the error
        histogram — while a uniform model shift moves the raw-ratio
        stream the drift detector watches.  Fed on hits *and* misses:
        a drifting model inflates exactly the ratios that fail the
        cost check, so a hits-only feed would censor its own evidence.
        """
        if self.calibration is None or not decision.recost_samples:
            return
        degree = self.get_plan.bound.degree
        for anchor, r, g, l in decision.recost_samples:
            self.calibration.record_ratio(
                "recost", decision.certificate,
                predicted=anchor.pointed_plan_cost,
                actual=r * anchor.optimal_cost,
                log_slack_hi=degree * math.log(max(g, 1.0)),
                log_slack_lo=degree * math.log(max(l, 1.0)),
            )

    def _miss_choice(
        self, sv: AnySelectivityVector, decision: GetPlanDecision
    ) -> PlanChoice:
        self._feed_recost_calibration(decision)
        try:
            result = self._optimize(sv)
        except OptimizeUnavailableError:
            fallback = self._fallback_choice(sv, decision.recost_calls)
            if fallback is None:
                raise  # empty cache: nothing can be served
            return fallback
        return self._register_optimized(sv, result, decision.recost_calls)

    def _register_optimized(
        self, sv: AnySelectivityVector, result, recost_calls: int
    ) -> PlanChoice:
        """Run manageCache on a fresh optimizer result and build the
        choice.  The concurrent serving layer calls this under the shard
        write lock, with the optimizer call itself made outside it."""
        point = as_point(sv)
        recosts_before = self.manage_cache.stats.redundancy_recost_calls
        spans = self.obs.spans if self.obs is not None else None
        if spans is not None and spans.enabled:
            start = spans.clock.perf_counter()
            entry = self.manage_cache.register(point, result, self.engine.recost)
            spans.record(
                "scr.redundancy_check", start,
                spans.clock.perf_counter() - start,
                template=self.engine.template.name,
                cached=entry.suboptimality == 1.0,
            )
        else:
            entry = self.manage_cache.register(point, result, self.engine.recost)
        redundancy_recosts = (
            self.manage_cache.stats.redundancy_recost_calls - recosts_before
        )
        chosen = self.cache.plan(entry.plan_id)
        if self.trace is not None:
            self.trace.decision(
                self.instances_processed, "optimizer", chosen.signature
            )
        # A freshly optimized instance is served with the bound its
        # 5-tuple registered: 1 for its own (or an identical) plan, the
        # redundancy winner's S_min otherwise.  Under robust checks the
        # plan is only known optimal *at the point estimate*; the bound
        # valid over the whole box inflates by the corner's (G·L)^n.
        bound_value, cert, coverage = self._fresh_certificate(
            point, sv, entry.suboptimality
        )
        # A fresh-optimizer robust bound may legitimately exceed λ (wide
        # boxes: nothing tighter is certifiable without more statistics);
        # the response's claim *is* that bound, so the live audit checks
        # it against max(λ, bound) rather than flagging a violation of a
        # λ-claim the certificate never made (DESIGN.md §11).
        self._audit_bound(bound_value, max(self.lam, bound_value), kind=cert)
        return PlanChoice(
            shrunken_memo=chosen.shrunken_memo,
            plan_signature=chosen.signature,
            used_optimizer=True,
            check="optimizer",
            recost_calls=recost_calls + redundancy_recosts,
            optimal_cost=result.cost,
            plan=chosen.plan,
            certified_bound=bound_value,
            certificate=cert,
            coverage=coverage,
        )

    def _fresh_certificate(
        self,
        point: SelectivityVector,
        sv: AnySelectivityVector,
        suboptimality: float,
    ) -> tuple[float, str, float]:
        """Certificate for a freshly optimized instance.

        Point mode: the registered bound, exact.  Robust modes: the plan
        is optimal at the point estimate ``p``, so for any true vector
        ``x`` in the box ``SubOpt ≤ S · (G·L)(p→x)^n`` — maximized at
        the adversarial corner against ``p`` itself.
        """
        if (
            self.check_mode is CheckMode.POINT
            or not isinstance(sv, UncertainSelectivityVector)
        ):
            return suboptimality, "exact", 1.0
        _, box = self.get_plan._resolve_box(sv, None)
        cert = certificate_kind(box)
        if box.is_point:
            return suboptimality, cert, box.coverage
        corner = adversarial_corner(point, box)
        g, l = compute_gl(point, corner)
        bound_value = suboptimality * self.get_plan.bound.selectivity_bound(g, l)
        return bound_value, cert, box.coverage

    def _nearest_entry(self, sv: AnySelectivityVector):
        """The cached anchor closest to ``sv`` in log-selectivity space —
        the best available plan when no bound can be verified (optimizer
        down, deadline exhausted, brownout).

        Under the vectorized implementation the ranking is one L1
        distance over the columnar ``log_sv`` matrix.  Ranking is not
        guarantee-bearing (the serve is uncertified either way), so the
        ``np.log``-vs-``math.log`` ulp difference from the scalar scan
        is acceptable; ties resolve to the first entry in list order in
        both implementations.
        """
        point = as_point(sv)
        if self.get_plan.vectorized:
            view = self.cache.columnar()
            if len(view) == 0:
                return None
            distances = log_l1_distances(
                view.log_sv, np.array(point.values, dtype=np.float64)
            )
            return view.entries[int(np.argmin(distances))]
        best = None
        best_distance = float("inf")
        for entry in self.cache.instances():
            distance = entry.sv.log_distance(point)
            if distance < best_distance:
                best, best_distance = entry, distance
        return best

    def _fallback_choice(
        self, sv: AnySelectivityVector, recost_calls: int
    ) -> Optional[PlanChoice]:
        """Serve the nearest cached plan when the optimizer is down.

        The plan carries no verified λ bound, so the choice is flagged
        ``uncertified`` — the guarantee is never silently weakened.
        """
        best = self._nearest_entry(sv)
        if best is None:
            return None
        plan = self.cache.plan(best.plan_id)
        self.engine.counters.resilience.optimize_fallbacks += 1
        instruments = getattr(base_engine(self.engine), "instruments", None)
        if instruments is not None:
            instruments.degraded["optimize"].inc()
        if self.engine.trace is not None:
            self.engine.trace.degraded(
                "optimize", self.instances_processed,
                detail=f"serving cached plan {plan.signature[:60]}",
            )
        if self.trace is not None:
            self.trace.decision(
                self.instances_processed, "fallback", plan.signature
            )
        return PlanChoice(
            shrunken_memo=plan.shrunken_memo,
            plan_signature=plan.signature,
            used_optimizer=False,
            check="fallback",
            recost_calls=recost_calls,
            plan=plan.plan,
            certified=False,
        )

    def _overload_choice(
        self, sv: AnySelectivityVector, recost_calls: int
    ) -> Optional[PlanChoice]:
        """Serve the nearest cached plan under overload degradation.

        Unlike :meth:`_fallback_choice` this is a *load* decision, not
        an engine fault: it books no resilience counters and is labeled
        ``check="overload"`` so operators can tell brownout serves from
        engine-failure fallbacks.  The choice is uncertified — no λ
        bound was verified for it.  Returns ``None`` on an empty cache
        (the caller sheds the request).
        """
        best = self._nearest_entry(sv)
        if best is None:
            return None
        plan = self.cache.plan(best.plan_id)
        if self.trace is not None:
            self.trace.decision(
                self.instances_processed, "overload", plan.signature
            )
        return PlanChoice(
            shrunken_memo=plan.shrunken_memo,
            plan_signature=plan.signature,
            used_optimizer=False,
            check="overload",
            recost_calls=recost_calls,
            plan=plan.plan,
            certified=False,
        )

    @property
    def plans_cached(self) -> int:
        return self.cache.num_plans

    @property
    def max_plans_cached(self) -> int:
        return self.cache.max_plans_seen

    def purge_redundant_plans(self) -> int:
        """Appendix F maintenance: drop existing plans made redundant."""
        return self.manage_cache.purge_redundant_existing_plans(self.engine.recost)

    def recalibrate(self, budget: Optional[int] = None, min_staleness: int = 0):
        """Proactive recost sweep of stale anchors (drift remediation).

        Re-anchors stored costs at fresh Recost measurements under a
        call budget and resets the calibration drift alarm; see
        :func:`repro.obs.calibration.recost_sweep`.
        """
        from ..obs.calibration import recost_sweep

        return recost_sweep(self, budget=budget, min_staleness=min_staleness)
