"""Cache coverage analysis: how much of the selectivity space can the
current plan cache serve without the optimizer?

The paper's inference regions are per-anchor; the *union* of the cached
anchors' selectivity regions (plus, optimistically, their recost
regions) determines the probability an arriving instance avoids an
optimizer call.  This module estimates that union by Monte Carlo
sampling — a "cache warmth" gauge an operator can watch, and the
quantity that Figure 11/18's falling numOpt curves implicitly track.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..optimizer.recost import ShrunkenMemo
from ..query.instance import SelectivityVector
from .bounds import BoundingFunction, LINEAR_BOUND, compute_gl
from .plan_cache import PlanCache

RecostFn = Callable[[ShrunkenMemo, SelectivityVector], float]


@dataclass(frozen=True)
class CoverageReport:
    """Monte Carlo coverage estimate over a sampled region."""

    samples: int
    selectivity_check_hits: int
    cost_check_hits: int

    @property
    def selectivity_coverage(self) -> float:
        """Fraction servable by the selectivity check alone."""
        return self.selectivity_check_hits / self.samples if self.samples else 0.0

    @property
    def total_coverage(self) -> float:
        """Fraction servable by either check (needs a recost function)."""
        hits = self.selectivity_check_hits + self.cost_check_hits
        return hits / self.samples if self.samples else 0.0


def sample_coverage(
    cache: PlanCache,
    lam: float,
    dimensions: int,
    samples: int = 500,
    seed: int = 0,
    low: float = 0.005,
    high: float = 1.0,
    bound: BoundingFunction = LINEAR_BOUND,
    recost: Optional[RecostFn] = None,
    max_recost_candidates: int = 8,
) -> CoverageReport:
    """Estimate cache coverage over log-uniform samples of the space.

    Mirrors getPlan's decision logic (without mutating usage counts):
    a sample is selectivity-covered if any anchor has
    ``(G·L)^n ≤ λ/S``, and cost-covered if any of the nearest
    ``max_recost_candidates`` anchors passes ``R·L^n ≤ λ/S`` (only
    evaluated when ``recost`` is supplied).
    """
    if lam < 1.0:
        raise ValueError("lambda must be >= 1")
    rng = np.random.default_rng(seed)
    points = np.exp(
        rng.uniform(np.log(low), np.log(high), size=(samples, dimensions))
    )
    entries = list(cache.instances())

    sel_hits = 0
    cost_hits = 0
    for row in points:
        sv = SelectivityVector.from_sequence(row)
        candidates: list[tuple[float, float, object]] = []
        covered = False
        for entry in entries:
            if len(entry.sv) != dimensions:
                raise ValueError(
                    "cache anchors and sample dimensions disagree"
                )
            g, l = compute_gl(entry.sv, sv)
            if bound.selectivity_bound(g, l) <= lam / entry.suboptimality:
                sel_hits += 1
                covered = True
                break
            if not entry.retired:
                candidates.append((g * l, l, entry))
        if covered or recost is None:
            continue
        candidates.sort(key=lambda item: item[0])
        for _, l, entry in candidates[:max_recost_candidates]:
            plan = cache.plan(entry.plan_id)
            r = recost(plan.shrunken_memo, sv) / entry.optimal_cost
            if bound.cost_bound(r, l) <= lam / entry.suboptimality:
                cost_hits += 1
                break
    return CoverageReport(
        samples=samples,
        selectivity_check_hits=sel_hits,
        cost_check_hits=cost_hits,
    )
