"""Session-level PQO manager: many templates, one memory budget.

The paper treats one parameterized query at a time; a real deployment
hosts many templates concurrently, and the plan-cache memory they share
is bounded.  :class:`PQOManager` routes arriving instances to a
per-template SCR and enforces a *global* plan budget by periodically
re-dividing it among templates proportionally to their recent optimizer
pressure — templates that keep needing new plans get more slots, stable
templates shrink toward a floor of one plan.

It also applies the paper's section 4.3 adoption guidance: templates
whose optimization time is trivial relative to execution cost gain
little from PQO, so the manager can auto-select λ per template from the
observed optimize-time/cost ratio (the "Choosing λ" heuristic of
section 6.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..engine.api import EngineAPI
from ..engine.database import Database
from ..query.instance import QueryInstance
from ..query.template import QueryTemplate
from .scr import SCR
from .technique import PlanChoice


@dataclass
class TemplateState:
    """Manager bookkeeping for one registered template."""

    template: QueryTemplate
    scr: SCR
    engine: EngineAPI
    budget: Optional[int] = None
    instances_seen: int = 0
    #: True while the template's recost circuit breaker is open: the
    #: engine is misbehaving for this template, so it is frozen at the
    #: minimum plan-budget share until the breaker closes again.
    quarantined: bool = False


def choose_lambda(
    optimize_seconds: float,
    execution_cost: float,
    cost_per_second: float = 50_000.0,
    lambda_min: float = 1.1,
    lambda_max: float = 2.0,
) -> float:
    """Section 6.2's "Choosing λ" heuristic.

    A query whose optimization overhead is large relative to its
    execution cost should run with a generous λ (reuse aggressively);
    one whose optimization is trivial should keep λ tight.  The ratio
    ``optimize_time / execution_time`` is mapped linearly into
    ``[λ_min, λ_max]`` and clamped.
    """
    if execution_cost <= 0:
        return lambda_max
    execution_seconds = execution_cost / cost_per_second
    if execution_seconds <= 0:
        return lambda_max
    ratio = optimize_seconds / execution_seconds
    # ratio 0 -> lambda_min; ratio >= 1 (optimization dominates) -> max.
    clamped = min(1.0, max(0.0, ratio))
    return lambda_min + (lambda_max - lambda_min) * clamped


@dataclass
class PQOManager:
    """Routes query instances to per-template SCR instances.

    Parameters
    ----------
    database:
        The database all templates run against.
    global_plan_budget:
        Optional cap on the total number of plans cached across all
        templates.  ``None`` leaves every template unbounded.
    default_lambda:
        λ used when a template is registered without one.
    rebalance_every:
        Re-divide the global budget after this many processed instances.
    """

    database: Database
    global_plan_budget: Optional[int] = None
    default_lambda: float = 2.0
    rebalance_every: int = 200
    scr_factory: Callable[..., SCR] = SCR
    #: Optional engine decorator applied at registration — e.g.
    #: :func:`repro.engine.resilience.resilient_engine_factory` to put
    #: every template's engine behind retries and a circuit breaker.
    engine_wrapper: Optional[Callable[[EngineAPI], EngineAPI]] = None
    _templates: dict[str, TemplateState] = field(default_factory=dict)
    _since_rebalance: int = 0

    def _build_state(
        self,
        template: QueryTemplate,
        lam: Optional[float] = None,
        **scr_kwargs,
    ) -> TemplateState:
        """Construct the per-template engine + SCR state (shared with
        :class:`~repro.serving.ConcurrentPQOManager`)."""
        if template.name in self._templates:
            raise ValueError(f"template {template.name!r} already registered")
        engine = self.database.engine(template)
        if self.engine_wrapper is not None:
            engine = self.engine_wrapper(engine)
        return TemplateState(
            template=template,
            scr=self.scr_factory(
                engine, lam=lam or self.default_lambda, **scr_kwargs
            ),
            engine=engine,
        )

    def register(
        self,
        template: QueryTemplate,
        lam: Optional[float] = None,
        **scr_kwargs,
    ) -> TemplateState:
        """Register a template; returns its state handle."""
        state = self._build_state(template, lam, **scr_kwargs)
        self._templates[template.name] = state
        self._apply_budgets()
        return state

    def process(self, instance: QueryInstance) -> PlanChoice:
        """Route one instance to its template's SCR."""
        state = self._templates.get(instance.template_name)
        if state is None:
            raise KeyError(
                f"template {instance.template_name!r} is not registered"
            )
        choice = state.scr.process(instance)
        state.instances_seen += 1
        self._update_quarantine(state)
        self._since_rebalance += 1
        if (
            self.global_plan_budget is not None
            and self._since_rebalance >= self.rebalance_every
        ):
            self._apply_budgets()
            self._since_rebalance = 0
        return choice

    # -- quarantine ----------------------------------------------------------

    def _update_quarantine(self, state: TemplateState) -> None:
        """Track the template's recost breaker; quarantine while open."""
        breaker = getattr(state.engine, "recost_breaker", None)
        if breaker is None:
            return
        is_open = bool(getattr(breaker, "is_open", False))
        if is_open != state.quarantined:
            state.quarantined = is_open
            self._apply_budgets()

    @property
    def quarantined_templates(self) -> list[str]:
        return sorted(
            name for name, s in self._templates.items() if s.quarantined
        )

    # -- budget division -----------------------------------------------------

    def _apply_budgets(self) -> None:
        if self.global_plan_budget is None or not self._templates:
            return
        states = list(self._templates.values())
        # Weight templates by optimizer pressure (+1 smoothing), floor 1.
        # Quarantined templates are frozen at the floor: their optimizer
        # pressure is an artifact of engine failures, not real demand.
        weights = [
            1 if s.quarantined else max(1, s.scr.optimizer_calls + 1)
            for s in states
        ]
        total_weight = sum(weights)
        budget = max(self.global_plan_budget, len(states))
        shares = [
            1 if s.quarantined else max(1, int(budget * w / total_weight))
            for s, w in zip(states, weights)
        ]
        # Fix rounding drift by trimming the largest shares.
        while sum(shares) > budget:
            shares[shares.index(max(shares))] -= 1
        for state, share in zip(states, shares):
            state.budget = share
            state.scr.manage_cache.plan_budget = share
            self._shrink_to_budget(state)

    def _shrink_to_budget(self, state: TemplateState) -> None:
        while (
            state.budget is not None
            and state.scr.cache.num_plans > state.budget
        ):
            victim = state.scr.cache.min_usage_plan()
            if victim is None:
                break
            state.scr.cache.drop_plan(victim.plan_id)
            state.scr.manage_cache.stats.plans_evicted += 1

    # -- reporting -------------------------------------------------------------

    @property
    def total_plans_cached(self) -> int:
        return sum(s.scr.plans_cached for s in self._templates.values())

    @property
    def total_optimizer_calls(self) -> int:
        return sum(s.scr.optimizer_calls for s in self._templates.values())

    def state(self, template_name: str) -> TemplateState:
        return self._templates[template_name]

    def report(self) -> list[dict[str, object]]:
        """Per-template summary rows."""
        rows = []
        for name, state in sorted(self._templates.items()):
            rows.append({
                "template": name,
                "instances": state.instances_seen,
                "optimizer_calls": state.scr.optimizer_calls,
                "plans": state.scr.plans_cached,
                "budget": state.budget if state.budget is not None else "-",
                "lambda": state.scr.lam,
                "quarantined": "yes" if state.quarantined else "-",
            })
        return rows
