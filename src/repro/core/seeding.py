"""Offline cache seeding — the paper's section 9 future-work direction.

"It is an interesting area of future work to ... combine some of the
benefits of offline exploration (e.g., similar to [8]) with those of
the online technique."

This module implements that hybrid in the spirit of anorexic plan
diagrams [Harish et al., VLDB 2007]: before any online instance
arrives, sample the selectivity space on a log-spaced grid (or
log-uniform randomly), optimize each sample, and feed the results
through SCR's own manageCache — so the λ_r redundancy check "anorexes"
the seeded plan set down to a small cover.  The online phase then
starts with warm inference regions instead of paying the cold-start
optimizer calls the paper observes for every online technique.

Seeding cost is an *offline* budget and is therefore accounted
separately from the technique's online optimizer calls.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import product

import numpy as np

from ..engine.api import EngineAPI
from ..query.instance import SelectivityVector
from .scr import SCR


@dataclass(frozen=True)
class SeedingReport:
    """What offline seeding did."""

    points_optimized: int
    plans_seeded: int
    plans_rejected_redundant: int
    offline_optimize_seconds: float


def grid_points(
    dimensions: int,
    points_per_dim: int,
    low: float = 0.005,
    high: float = 1.0,
) -> list[SelectivityVector]:
    """Log-spaced full-factorial grid over the selectivity space.

    The grid has ``points_per_dim ** dimensions`` points; callers should
    keep that small for high-d templates (use :func:`random_points`).
    """
    if points_per_dim < 1:
        raise ValueError("points_per_dim must be >= 1")
    axis = np.exp(np.linspace(math.log(low), math.log(high), points_per_dim))
    return [
        SelectivityVector.from_sequence(combo)
        for combo in product(axis, repeat=dimensions)
    ]


def random_points(
    dimensions: int,
    count: int,
    seed: int = 0,
    low: float = 0.005,
    high: float = 1.0,
) -> list[SelectivityVector]:
    """Log-uniform random sample of the selectivity space."""
    rng = np.random.default_rng(seed)
    matrix = np.exp(
        rng.uniform(math.log(low), math.log(high), size=(count, dimensions))
    )
    return [SelectivityVector.from_sequence(row) for row in matrix]


def seed_cache(
    scr: SCR,
    engine: EngineAPI,
    points: list[SelectivityVector],
) -> SeedingReport:
    """Optimize ``points`` offline and register them in the SCR cache.

    Uses the technique's own manageCache, so the λ_r redundancy check
    keeps the seeded plan set anorexic, and every seeded instance
    becomes a 5-tuple anchor usable by the online checks.  The engine's
    counters record the offline work; the caller may snapshot/reset
    them to separate offline from online accounting.
    """
    before_opt = engine.counters.optimize.calls
    before_seconds = engine.counters.optimize.total_seconds
    before_rejects = scr.manage_cache.stats.plans_rejected_redundant

    for sv in points:
        # Skip points already λ-covered by earlier seeds: this is what
        # keeps a dense grid from flooding the instance list.
        decision = scr.get_plan(sv, engine.recost)
        if decision.hit:
            continue
        result = engine.optimize(sv)
        scr.manage_cache.register(sv, result, engine.recost)

    return SeedingReport(
        points_optimized=engine.counters.optimize.calls - before_opt,
        plans_seeded=scr.cache.num_plans,
        plans_rejected_redundant=(
            scr.manage_cache.stats.plans_rejected_redundant - before_rejects
        ),
        offline_optimize_seconds=(
            engine.counters.optimize.total_seconds - before_seconds
        ),
    )
