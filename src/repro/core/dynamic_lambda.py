"""Dynamic (cost-dependent) λ — Appendix D.

Cheap query instances tolerate larger sub-optimality because low-cost
regions of the selectivity space have small selectivity regions and
high plan density; expensive instances deserve a tighter bound.  The
paper proposes asking the user for a range ``[λ_min, λ_max]`` and
mapping an anchor's optimal cost ``C`` to a λ via an exponentially
decaying function.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class DynamicLambda:
    """Exponential-decay cost→λ schedule.

    ``λ(C) = λ_min + (λ_max − λ_min) · exp(−C / cost_scale)``

    ``cost_scale`` anchors the decay: instances around this cost get
    roughly the midpoint of the range, far cheaper instances approach
    ``λ_max`` and far costlier ones approach ``λ_min``.
    """

    lambda_min: float
    lambda_max: float
    cost_scale: float

    def __post_init__(self) -> None:
        if self.lambda_min < 1.0:
            raise ValueError("lambda_min must be >= 1")
        if self.lambda_max < self.lambda_min:
            raise ValueError("lambda_max must be >= lambda_min")
        if self.cost_scale <= 0:
            raise ValueError("cost_scale must be positive")

    def __call__(self, cost: float) -> float:
        decay = math.exp(-max(cost, 0.0) / self.cost_scale)
        return self.lambda_min + (self.lambda_max - self.lambda_min) * decay
