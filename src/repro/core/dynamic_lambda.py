"""Dynamic (cost-dependent) λ — Appendix D.

Cheap query instances tolerate larger sub-optimality because low-cost
regions of the selectivity space have small selectivity regions and
high plan density; expensive instances deserve a tighter bound.  The
paper proposes asking the user for a range ``[λ_min, λ_max]`` and
mapping an anchor's optimal cost ``C`` to a λ via an exponentially
decaying function.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Union


@dataclass(frozen=True)
class DynamicLambda:
    """Exponential-decay cost→λ schedule.

    ``λ(C) = λ_min + (λ_max − λ_min) · exp(−C / cost_scale)``

    ``cost_scale`` anchors the decay: instances around this cost get
    roughly the midpoint of the range, far cheaper instances approach
    ``λ_max`` and far costlier ones approach ``λ_min``.
    """

    lambda_min: float
    lambda_max: float
    cost_scale: float

    def __post_init__(self) -> None:
        if self.lambda_min < 1.0:
            raise ValueError("lambda_min must be >= 1")
        if self.lambda_max < self.lambda_min:
            raise ValueError("lambda_max must be >= lambda_min")
        if self.cost_scale <= 0:
            raise ValueError("cost_scale must be positive")

    def __call__(self, cost: float) -> float:
        decay = math.exp(-max(cost, 0.0) / self.cost_scale)
        return self.lambda_min + (self.lambda_max - self.lambda_min) * decay

    def state_token(self) -> tuple:
        """Memoization token for the vectorized getPlan path.

        The schedule is a pure function of the anchor cost, so a λ
        vector computed once per columnar epoch stays valid until the
        instance list changes; a frozen instance has no mutable state
        to encode.  Returning a token (rather than not defining the
        method) is the opt-in: callables without one are re-evaluated
        per probe because their output may change between calls.
        """
        return ()


class PressureRelaxedLambda:
    """Pressure-driven λ relaxation — the brownout hook into dynamic λ.

    Wraps a base λ (a constant or any cost→λ schedule such as
    :class:`DynamicLambda`) and widens it by ``relax_factor`` whenever
    ``level_provider()`` reports a brownout level of ``relax_at_level``
    or higher, clamped to ``ceiling``.  Widening λ trades optimality for
    optimizer calls *within the guarantee framework*: instances
    certified under pressure still satisfy ``SO ≤ λ_relaxed``, they just
    carry the wider bound.  Below ``relax_at_level`` the base λ is
    returned exactly, so installing the hook is behaviour-neutral when
    the serving layer is not under pressure.

    ``level_provider`` is a plain ``() -> int`` so this core-layer hook
    has no dependency on the serving package; the serving coordinator
    passes its brownout level accessor and the ladder position its
    LAMBDA_RELAXED step occupies (coverage relaxation sits *below* it,
    so λ must not widen there).
    """

    def __init__(
        self,
        base: Union[float, Callable[[float], float]],
        level_provider: Callable[[], int],
        relax_factor: float = 1.5,
        ceiling: float | None = None,
        relax_at_level: int = 1,
    ) -> None:
        if relax_factor < 1.0:
            raise ValueError("relax_factor must be >= 1")
        if ceiling is not None and ceiling < 1.0:
            raise ValueError("ceiling must be >= 1")
        if relax_at_level < 1:
            raise ValueError("relax_at_level must be >= 1")
        self.base = base
        self.level_provider = level_provider
        self.relax_factor = relax_factor
        self.ceiling = ceiling
        self.relax_at_level = relax_at_level

    def base_lambda(self, cost: float) -> float:
        return self.base(cost) if callable(self.base) else self.base

    def __call__(self, cost: float) -> float:
        lam = self.base_lambda(cost)
        if self.level_provider() >= self.relax_at_level:
            lam *= self.relax_factor
            if self.ceiling is not None:
                lam = min(lam, self.ceiling)
        return max(lam, 1.0)

    def state_token(self) -> "tuple | None":
        """Memoization token for the vectorized getPlan path.

        The relaxation depends on the live brownout level, so the token
        captures whether relaxation is currently in force; a change of
        level invalidates any memoized λ vector.  A wrapped base
        schedule must expose its own token for the composition to be
        memoizable — ``None`` disables memoization (the hook is then
        re-evaluated per probe, which is always correct, just slower).
        """
        if callable(self.base):
            base_token = getattr(self.base, "state_token", None)
            if base_token is None:
                return None
            inner = base_token()
            if inner is None:
                return None
        else:
            inner = ()
        relaxed = self.level_provider() >= self.relax_at_level
        return (relaxed, inner)
