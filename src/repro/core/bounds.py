"""Bounded-cost-growth arithmetic: G, L, R and the sub-optimality bounds.

Implements section 5 of the paper.  For a stored (previously optimized)
instance ``q_e`` and a new instance ``q_c`` with per-dimension
selectivity ratios ``alpha_i = s_i(q_c) / s_i(q_e)``:

* ``G = prod over alpha_i > 1 of alpha_i``   (net cost increment factor)
* ``L = prod over alpha_i < 1 of 1/alpha_i`` (net cost decrement factor)

Under the BCG assumption with bounding functions ``f_i(alpha) = alpha``:

* Cost Bounding Lemma:  ``C/L < Cost(P_e, q_c) < G * C``
* Sub-optimality bound: ``SubOpt(P_e, q_c) < G * L``
* with the exact recost ratio ``R = Cost(P_e, q_c) / C`` the bound
  tightens to ``R * L``.

For ``f_i(alpha) = alpha**n`` the bounds become ``(G*L)**n`` and
``R * L**n`` (section 5.3 notes the generalization for ``alpha**2``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..query.instance import SelectivityVector


@dataclass(frozen=True)
class BoundingFunction:
    """The per-dimension cost-growth bound ``f_i(alpha) = alpha**degree``.

    ``degree=1`` is the paper's default, validated in section 5.4 for
    scans, nested-loops joins, hash joins, unions etc.  ``degree=2``
    covers super-linear (sorting-based) operators via the log inequality
    the paper cites.
    """

    degree: float = 1.0

    def __post_init__(self) -> None:
        if self.degree < 1.0:
            raise ValueError("bounding degree must be >= 1")

    def selectivity_bound(self, g: float, l: float) -> float:
        """Theorem 1 generalized: SubOpt < (G*L) ** degree."""
        return (g * l) ** self.degree

    def cost_bound(self, r: float, l: float) -> float:
        """Improved bound with exact recost ratio: R * L ** degree."""
        return r * (l ** self.degree)


LINEAR_BOUND = BoundingFunction(degree=1.0)
QUADRATIC_BOUND = BoundingFunction(degree=2.0)


def compute_g(stored: SelectivityVector, new: SelectivityVector) -> float:
    """Net cost increment factor ``G`` between a stored and a new instance."""
    g = 1.0
    for alpha in stored.ratios(new):
        if alpha > 1.0:
            g *= alpha
    return g


def compute_l(stored: SelectivityVector, new: SelectivityVector) -> float:
    """Net cost decrement factor ``L`` between a stored and a new instance."""
    l = 1.0
    for alpha in stored.ratios(new):
        if alpha < 1.0:
            l /= alpha
    return l


def compute_gl(stored: SelectivityVector, new: SelectivityVector) -> tuple[float, float]:
    """Both factors in one pass (the hot path of the selectivity check)."""
    g = 1.0
    l = 1.0
    for alpha in stored.ratios(new):
        if alpha > 1.0:
            g *= alpha
        elif alpha < 1.0:
            l /= alpha
    return g, l


def cost_bounds(
    stored_cost: float,
    stored: SelectivityVector,
    new: SelectivityVector,
    bound: BoundingFunction = LINEAR_BOUND,
) -> tuple[float, float]:
    """Cost Bounding Lemma: (lower, upper) bounds on ``Cost(P, q_c)``.

    ``stored_cost`` is ``Cost(P, q_e)``.  Bounds are
    ``stored_cost / L**n`` and ``stored_cost * G**n``.
    """
    g, l = compute_gl(stored, new)
    n = bound.degree
    return stored_cost / (l ** n), stored_cost * (g ** n)


def suboptimality_bound(
    stored: SelectivityVector,
    new: SelectivityVector,
    bound: BoundingFunction = LINEAR_BOUND,
) -> float:
    """Theorem 1: upper bound on ``SubOpt(P_e, q_c)`` from sVectors alone."""
    g, l = compute_gl(stored, new)
    return bound.selectivity_bound(g, l)


def recost_suboptimality_bound(
    recost_ratio: float,
    stored: SelectivityVector,
    new: SelectivityVector,
    bound: BoundingFunction = LINEAR_BOUND,
) -> float:
    """Improved bound ``R * L**n`` once the plan has been re-costed."""
    l = compute_l(stored, new)
    return bound.cost_bound(recost_ratio, l)


def gl_log_distance(stored: SelectivityVector, new: SelectivityVector) -> float:
    """``ln(G * L)`` — the candidate-ordering key of section 6.2."""
    return sum(abs(math.log(alpha)) for alpha in stored.ratios(new))
