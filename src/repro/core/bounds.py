"""Bounded-cost-growth arithmetic: G, L, R and the sub-optimality bounds.

Implements section 5 of the paper.  For a stored (previously optimized)
instance ``q_e`` and a new instance ``q_c`` with per-dimension
selectivity ratios ``alpha_i = s_i(q_c) / s_i(q_e)``:

* ``G = prod over alpha_i > 1 of alpha_i``   (net cost increment factor)
* ``L = prod over alpha_i < 1 of 1/alpha_i`` (net cost decrement factor)

Under the BCG assumption with bounding functions ``f_i(alpha) = alpha``:

* Cost Bounding Lemma:  ``C/L < Cost(P_e, q_c) < G * C``
* Sub-optimality bound: ``SubOpt(P_e, q_c) < G * L``
* with the exact recost ratio ``R = Cost(P_e, q_c) / C`` the bound
  tightens to ``R * L``.

For ``f_i(alpha) = alpha**n`` the bounds become ``(G*L)**n`` and
``R * L**n`` (section 5.3 notes the generalization for ``alpha**2``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..query.instance import SelectivityVector, UncertainSelectivityVector


@dataclass(frozen=True)
class BoundingFunction:
    """The per-dimension cost-growth bound ``f_i(alpha) = alpha**degree``.

    ``degree=1`` is the paper's default, validated in section 5.4 for
    scans, nested-loops joins, hash joins, unions etc.  ``degree=2``
    covers super-linear (sorting-based) operators via the log inequality
    the paper cites.
    """

    degree: float = 1.0

    def __post_init__(self) -> None:
        if self.degree < 1.0:
            raise ValueError("bounding degree must be >= 1")

    def selectivity_bound(self, g: float, l: float) -> float:
        """Theorem 1 generalized: SubOpt < (G*L) ** degree."""
        return (g * l) ** self.degree

    def cost_bound(self, r: float, l: float) -> float:
        """Improved bound with exact recost ratio: R * L ** degree."""
        return r * (l ** self.degree)


LINEAR_BOUND = BoundingFunction(degree=1.0)
QUADRATIC_BOUND = BoundingFunction(degree=2.0)


def compute_g(stored: SelectivityVector, new: SelectivityVector) -> float:
    """Net cost increment factor ``G`` between a stored and a new instance."""
    g = 1.0
    for alpha in stored.ratios(new):
        if alpha > 1.0:
            g *= alpha
    return g


def compute_l(stored: SelectivityVector, new: SelectivityVector) -> float:
    """Net cost decrement factor ``L`` between a stored and a new instance."""
    l = 1.0
    for alpha in stored.ratios(new):
        if alpha < 1.0:
            l /= alpha
    return l


def compute_gl(stored: SelectivityVector, new: SelectivityVector) -> tuple[float, float]:
    """Both factors in one pass (the hot path of the selectivity check)."""
    g = 1.0
    l = 1.0
    for alpha in stored.ratios(new):
        if alpha > 1.0:
            g *= alpha
        elif alpha < 1.0:
            l /= alpha
    return g, l


def cost_bounds(
    stored_cost: float,
    stored: SelectivityVector,
    new: SelectivityVector,
    bound: BoundingFunction = LINEAR_BOUND,
) -> tuple[float, float]:
    """Cost Bounding Lemma: (lower, upper) bounds on ``Cost(P, q_c)``.

    ``stored_cost`` is ``Cost(P, q_e)``.  Bounds are
    ``stored_cost / L**n`` and ``stored_cost * G**n``.
    """
    g, l = compute_gl(stored, new)
    n = bound.degree
    return stored_cost / (l ** n), stored_cost * (g ** n)


def suboptimality_bound(
    stored: SelectivityVector,
    new: SelectivityVector,
    bound: BoundingFunction = LINEAR_BOUND,
) -> float:
    """Theorem 1: upper bound on ``SubOpt(P_e, q_c)`` from sVectors alone."""
    g, l = compute_gl(stored, new)
    return bound.selectivity_bound(g, l)


def recost_suboptimality_bound(
    recost_ratio: float,
    stored: SelectivityVector,
    new: SelectivityVector,
    bound: BoundingFunction = LINEAR_BOUND,
) -> float:
    """Improved bound ``R * L**n`` once the plan has been re-costed."""
    l = compute_l(stored, new)
    return bound.cost_bound(recost_ratio, l)


def gl_log_distance(stored: SelectivityVector, new: SelectivityVector) -> float:
    """``ln(G * L)`` — the candidate-ordering key of section 6.2."""
    return sum(abs(math.log(alpha)) for alpha in stored.ratios(new))


# -- adversarial corners (robust check mode; DESIGN.md §11) ------------------
#
# The robust checks must bound SubOpt for *every* sVector inside an
# uncertainty box, not just the point estimate.  Because G·L and R·L^n
# factor per dimension and each per-dimension factor is quasi-convex in
# the unknown selectivity, the box maximum is attained at a per-dimension
# interval *endpoint* — one extra vector op picks it, and the existing
# bound arithmetic then runs unchanged on the corner vector.


def corner_picks_hi(anchor_s: float, lo: float, hi: float) -> bool:
    """The per-dimension endpoint predicate of the adversarial corner.

    ``hi`` maximizes the G·L contribution iff it is at least as far from
    the anchor selectivity ``e`` in log space as ``lo`` is, i.e.
    ``ln(hi) − ln(e) ≥ ln(e) − ln(lo)``  ⇔  ``lo·hi ≥ e²`` (ties break
    to ``hi``; either endpoint attains the max then).  This is the exact
    predicate :func:`repro.core.columnar.corner_matrix` evaluates on the
    lo/hi row vectors against the anchor matrix, so the scalar and
    vectorized robust checks agree bit for bit.
    """
    return lo * hi >= anchor_s * anchor_s


def adversarial_corner(
    anchor: SelectivityVector, usv: UncertainSelectivityVector
) -> SelectivityVector:
    """The corner of ``usv``'s box maximizing ``G·L`` against ``anchor``.

    Per dimension, with anchor selectivity ``e`` and unknown ``x``, the
    G·L contribution is ``f(x) = max(x/e, e/x)`` — decreasing below
    ``e``, increasing above, hence quasi-convex — so its maximum over
    ``[lo, hi]`` sits at whichever endpoint is farther from ``e`` in
    log space: ``hi`` iff ``ln(hi) - ln(e) >= ln(e) - ln(lo)``, i.e.
    ``lo * hi >= e * e`` (ties break to ``hi``; either endpoint attains
    the max then).  The returned vector therefore satisfies
    ``(G·L)(anchor → corner) >= (G·L)(anchor → x)`` for every ``x`` in
    the box, and for a zero-width box it *is* the point estimate, making
    the robust check bit-for-bit identical to the point check there.
    """
    return SelectivityVector.from_sequence(
        [hi if corner_picks_hi(e, lo, hi) else lo
         for e, lo, hi in zip(anchor, usv.lo, usv.hi)]
    )


def cost_corner(
    point: SelectivityVector,
    anchor: SelectivityVector,
    usv: UncertainSelectivityVector,
) -> SelectivityVector:
    """The corner maximizing the recost-anchored bound ``G(c→x)·L(e→x)``.

    The cost check's recost ratio ``R`` is measured at the *point*
    estimate ``c``; transporting ``Cost(P, c)`` to an unknown true
    vector ``x`` costs at most ``G(c→x)^n`` (Cost Bounding Lemma) while
    the optimal-cost side keeps ``L(e→x)^n`` against the stored anchor
    ``e``.  Per dimension the factor is
    ``f(x) = max(x/c_i, 1) * max(e_i/x, 1)`` — a product of a
    non-decreasing and a non-increasing quasi-convex piece whose shape is
    decreasing, then constant, then increasing — so the box maximum is
    again at an endpoint; we evaluate both and keep the larger (ties to
    ``hi``).  For a zero-width box the corner equals ``c``, where
    ``G(c→c) = 1`` and ``L(e→c)`` is the point check's L, reproducing
    the point cost check exactly.
    """

    def factor(x: float, c: float, e: float) -> float:
        g = x / c if x > c else 1.0
        l = e / x if x < e else 1.0
        return g * l

    picked = []
    for c, e, lo, hi in zip(point, anchor, usv.lo, usv.hi):
        picked.append(hi if factor(hi, c, e) >= factor(lo, c, e) else lo)
    return SelectivityVector.from_sequence(picked)


def compute_cost_gl(
    point: SelectivityVector,
    anchor: SelectivityVector,
    corner: SelectivityVector,
) -> tuple[float, float]:
    """``(G(point→corner), L(anchor→corner))`` for the robust cost check.

    The increment factor transports the recost result from the point
    estimate to the corner; the decrement factor is the ordinary L
    against the stored anchor.  Both loops mirror :func:`compute_gl`'s
    arithmetic exactly (``g *= alpha`` / ``l /= alpha``) so that a
    zero-width box — where ``corner == point`` — reproduces the point
    cost check's ``L`` bit-for-bit.
    """
    g = 1.0
    for alpha in point.ratios(corner):
        if alpha > 1.0:
            g *= alpha
    l = 1.0
    for alpha in anchor.ratios(corner):
        if alpha < 1.0:
            l /= alpha
    return g, l
