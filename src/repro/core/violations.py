"""Detection of PCM / BCG assumption violations — Appendix G.

Whenever a cost check re-costs a stored plan ``P`` at a new instance,
the observed cost pair together with the selectivity ratios lets us
test whether ``P``'s cost function actually respects the assumptions
at the anchor:

* **BCG upper bound violated** — the observed growth exceeds the
  bounding function: ``Cost(P, q_c) > f(G) · f(1/L)⁻¹ · Cost(P, q_e)``
  simplifies (with ``f(α)=αⁿ``) to ``R·Lⁿ > Gⁿ · S``-style checks; we
  test the two sides separately below.
* **PCM (monotonicity) violated** — cost moved in the wrong direction
  for a dominated/dominating pair.

A violating anchor is *retired*: it is excluded from future cost checks
so it cannot keep producing bad inferences (the selectivity check keeps
it, consistent with the paper's observation that SCR's small localized
regions limit the damage of violations).
"""

from __future__ import annotations

from dataclasses import dataclass

from .bounds import BoundingFunction, LINEAR_BOUND
from .plan_cache import InstanceEntry


@dataclass
class ViolationReport:
    """Outcome of one violation test."""

    bcg_violated: bool = False
    pcm_violated: bool = False

    @property
    def any(self) -> bool:
        return self.bcg_violated or self.pcm_violated


@dataclass
class ViolationDetector:
    """Tests observed recost ratios against the assumed cost growth.

    ``tolerance`` absorbs floating-point and mild model noise so only
    substantive violations retire an anchor.
    """

    bound: BoundingFunction = LINEAR_BOUND
    tolerance: float = 1.02
    violations_detected: int = 0
    anchors_retired: int = 0

    def check(
        self,
        entry: InstanceEntry,
        g: float,
        l: float,
        recost_ratio: float,
    ) -> ViolationReport:
        """Check one cost-check observation against PCM and BCG.

        ``recost_ratio`` is ``R = Cost(P, q_c) / C`` where ``C`` is the
        anchor's optimal cost, so the plan's own cost ratio between the
        two instances is ``R / S``.
        """
        report = ViolationReport()
        n = self.bound.degree
        plan_growth = recost_ratio / entry.suboptimality  # Cost(P,qc)/Cost(P,qe)

        # BCG: growth must satisfy 1/L**n < plan_growth < G**n.
        upper = (g ** n) * self.tolerance
        lower = 1.0 / ((l ** n) * self.tolerance)
        if plan_growth > upper or plan_growth < lower:
            report.bcg_violated = True

        # PCM: pure dominance cases have a definite direction.
        if l == 1.0 and g > 1.0 and plan_growth < 1.0 / self.tolerance:
            report.pcm_violated = True
        if g == 1.0 and l > 1.0 and plan_growth > self.tolerance:
            report.pcm_violated = True

        if report.any:
            self.violations_detected += 1
            if not entry.retired:
                entry.retired = True
                self.anchors_retired += 1
        return report
