"""Columnar (structure-of-arrays) view of the instance list.

The per-instance Python arithmetic of ``getPlan``'s selectivity check is
the serving cost at high hit rates (ROADMAP item 2; the paper's §6.2
overheads discussion).  This module restructures the instance list into
parallel ``numpy`` arrays so one probe computes G·L against *all*
candidate anchors in a handful of array ops, and a batch of incoming
instances is evaluated against the whole cache in one broadcasted pass.

Layout
------
One :class:`ColumnarInstances` view holds, for the ``N`` entries of a
cache epoch (``d`` = template dimensionality):

* ``sv`` — the raw selectivity matrix ``(N, d)``;
* ``log_sv`` — the same matrix in natural-log space ``(N, d)`` (L1
  distances in this space are ``ln(G·L)``; used for nearest-anchor
  ranking and the §6.2 grid-index cell keys);
* ``sub`` / ``cost`` / ``plan_ids`` — the S, C and PP columns of the
  paper's 5-tuple as ``(N,)`` vectors;
* ``area`` — ``Π_i s_i`` per row, the AREA candidate-order key,
  computed once per epoch instead of once per probe.

Copy-on-write discipline
------------------------
Views are immutable and built lazily per cache epoch by
:meth:`~repro.core.plan_cache.PlanCache.columnar`, exactly like
:class:`~repro.core.plan_cache.CacheSnapshot` — between mutations the
same view is handed out, so columnar access on the hot path is O(1).
Only the *write-once* guarantee-bearing fields (``sv``, ``plan_id``,
``optimal_cost``, ``suboptimality``) are columnarised.  The two advisory
fields that mutate without an epoch bump — ``usage`` (bumped by commits)
and ``retired`` (flipped by the Appendix G violation detector) — are
deliberately **not** snapshotted into arrays: the vectorized decision
procedure reads them live from the entry objects, mirroring the scalar
reference bit for bit even when a flag flips between epoch rebuilds.

Equivalence contract
--------------------
Every kernel here reproduces the scalar reference arithmetic of
:mod:`repro.core.bounds` with the *same IEEE-754 operation sequence*:
``np.multiply.reduce`` / ``np.divide.reduce`` apply their operation
sequentially left-to-right for the short (d ≤ 16) inner axis, matching
the scalar loops' ``g *= alpha`` / ``l /= alpha`` exactly, and the
adversarial-corner selection vectorizes the very ``lo·hi ≥ e²``
endpoint predicate of :func:`repro.core.bounds.adversarial_corner`.
This is why ``sv`` is stored raw alongside ``log_sv``: deriving G·L
from log-space sums would round differently from the scalar products
and break the decision-equivalence contract the differential suite
(``tests/test_vectorized_equivalence.py``) enforces.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import TYPE_CHECKING, Optional, Sequence

try:  # numpy is a hard dependency of the package, but the scalar
    import numpy as np  # decision procedure must keep working without it

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised only on broken installs
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

if TYPE_CHECKING:  # pragma: no cover
    from .plan_cache import InstanceEntry


def _require_numpy() -> None:
    if not HAVE_NUMPY:  # pragma: no cover - exercised only on broken installs
        raise RuntimeError(
            "numpy is required for the columnar getPlan hot path; "
            "use check_impl='scalar' without it"
        )


@dataclass(frozen=True)
class ColumnarInstances:
    """Immutable columnar view of one epoch of the instance list.

    ``entries`` is the row-aligned tuple of the live
    :class:`~repro.core.plan_cache.InstanceEntry` objects — row ``i`` of
    every array describes ``entries[i]``, and decisions still reference
    the entry object itself (the anchor the certificate names).
    """

    epoch: int
    entries: tuple["InstanceEntry", ...]
    sv: "np.ndarray"        # (N, d) raw selectivities
    log_sv: "np.ndarray"    # (N, d) natural logs
    sub: "np.ndarray"       # (N,) S column
    cost: "np.ndarray"      # (N,) C column
    plan_ids: "np.ndarray"  # (N,) PP column
    area: "np.ndarray"      # (N,) Π_i s_i (AREA candidate-order key)

    @classmethod
    def build(
        cls, epoch: int, entries: Sequence["InstanceEntry"]
    ) -> "ColumnarInstances":
        _require_numpy()
        entries = tuple(entries)
        if not entries:
            empty2 = np.empty((0, 0), dtype=np.float64)
            empty1 = np.empty(0, dtype=np.float64)
            return cls(
                epoch=epoch, entries=entries, sv=empty2, log_sv=empty2,
                sub=empty1, cost=empty1,
                plan_ids=np.empty(0, dtype=np.int64), area=empty1,
            )
        sv = np.array([e.sv.values for e in entries], dtype=np.float64)
        return cls(
            epoch=epoch,
            entries=entries,
            sv=sv,
            log_sv=np.log(sv),
            sub=np.array([e.suboptimality for e in entries], dtype=np.float64),
            cost=np.array([e.optimal_cost for e in entries], dtype=np.float64),
            plan_ids=np.array([e.plan_id for e in entries], dtype=np.int64),
            # multiply.reduce applies left-to-right over the short inner
            # axis: bit-identical to InstanceEntry.sv_product's loop.
            area=np.multiply.reduce(sv, axis=1),
        )

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def dimensions(self) -> int:
        return self.sv.shape[1]

    @cached_property
    def sv_sq(self) -> "np.ndarray":
        """``sv²`` broadcast-shaped ``(1, N, d)`` — the anchor side of the
        robust corner predicate ``lo·hi ≥ e²``, shared across every probe
        of the epoch instead of rebuilt per box.  (``cached_property``
        writes the instance ``__dict__`` directly, so it coexists with
        the frozen dataclass.)"""
        return self.sv[None, :, :] * self.sv[None, :, :]

    def usage_rank(self, version: int) -> "np.ndarray":
        """Row rank under the USAGE candidate order, memoized per cache
        ``usage_version``.

        ``rank[i] < rank[j]`` iff row ``i`` precedes row ``j`` in a
        stable descending-usage sort; ranks are unique, so sorting any
        row subset (taken in row order) by rank reproduces the scalar
        path's stable ``sort(key=-usage)`` over that subset exactly.
        Usage mutates without an epoch bump, which is why the memo keys
        on the cache's usage version rather than living in ``build``.
        """
        memo = self.__dict__.get("_usage_rank")
        if memo is not None and memo[0] == version:
            return memo[1]
        usage = np.array([e.usage for e in self.entries], dtype=np.int64)
        order = np.argsort(-usage, kind="stable")
        rank = np.empty(len(order), dtype=np.int64)
        rank[order] = np.arange(len(order), dtype=np.int64)
        self.__dict__["_usage_rank"] = (version, rank)
        return rank


# -- G/L kernels --------------------------------------------------------------
#
# All kernels take an already-validated (B, d) matrix of incoming points
# (B = 1 for a single probe) and return (B, N) factor matrices.  The
# (B, N, d) intermediate is the memory hot spot; callers chunk over B.


def gl_matrix(
    sv: "np.ndarray", points: "np.ndarray"
) -> tuple["np.ndarray", "np.ndarray"]:
    """``(G, L)`` of every (incoming point, stored anchor) pair.

    Mirrors :func:`repro.core.bounds.compute_gl` exactly: per-dimension
    ratios ``alpha = point / anchor``, ``G = Π_{alpha>1} alpha`` via
    sequential multiply, ``L`` via sequential divide starting at 1.0
    (``l /= alpha``), so every float matches the scalar loop.
    """
    alphas = points[:, None, :] / sv[None, :, :]
    g = np.multiply.reduce(np.where(alphas > 1.0, alphas, 1.0), axis=2)
    l = np.divide.reduce(np.where(alphas < 1.0, alphas, 1.0), axis=2,
                         initial=1.0)
    return g, l


def corner_matrix(
    sv: "np.ndarray", lo: "np.ndarray", hi: "np.ndarray",
    sv_sq: Optional["np.ndarray"] = None,
) -> "np.ndarray":
    """Adversarial corner of each box against each stored anchor.

    Vectorizes :func:`repro.core.bounds.adversarial_corner`'s endpoint
    predicate (``lo·hi ≥ e²`` picks ``hi``, ties to ``hi``) over the
    ``(B, d)`` box bounds and the ``(N, d)`` anchor matrix, returning
    the ``(B, N, d)`` corner tensor.  ``sv_sq`` is the precomputed
    ``(1, N, d)`` anchor-squared tensor (``ColumnarInstances.sv_sq``);
    without it the squares are rebuilt per call.
    """
    if sv_sq is None:
        sv_sq = sv[None, :, :] * sv[None, :, :]
    return np.where(
        (lo * hi)[:, None, :] >= sv_sq,
        hi[:, None, :],
        lo[:, None, :],
    )


def corner_gl_matrix(
    sv: "np.ndarray", lo: "np.ndarray", hi: "np.ndarray",
    sv_sq: Optional["np.ndarray"] = None,
) -> tuple["np.ndarray", "np.ndarray"]:
    """``(G, L)`` evaluated at each box's adversarial corner."""
    corner = corner_matrix(sv, lo, hi, sv_sq)
    alphas = corner / sv[None, :, :]
    g = np.multiply.reduce(np.where(alphas > 1.0, alphas, 1.0), axis=2)
    l = np.divide.reduce(np.where(alphas < 1.0, alphas, 1.0), axis=2,
                         initial=1.0)
    return g, l


def log_l1_distances(log_sv: "np.ndarray", point: "np.ndarray") -> "np.ndarray":
    """``ln(G·L)`` of one point against every anchor (L1 in log space).

    Used for nearest-anchor *ranking* (degraded serves, seeding), where
    bit-parity with ``math.log`` is not load-bearing — never for the
    certified checks themselves.
    """
    if log_sv.shape[0] == 0:
        return np.empty(0, dtype=np.float64)
    return np.abs(np.log(point)[None, :] - log_sv).sum(axis=1)


def chunk_rows(batch: int, n: int, d: int, budget: int = 2_000_000) -> int:
    """Rows per kernel chunk so the (B, N, d) intermediate stays small."""
    if batch <= 1:
        return 1
    per_row = max(1, n * max(1, d))
    return max(1, min(batch, budget // per_row))
