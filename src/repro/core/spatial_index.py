"""Grid index over the instance list in log-selectivity space (§6.2).

Section 6.2 notes that once the instance list grows to several thousand
entries, even the selectivity check's scan becomes comparable to the
sVector computation, and suggests a spatial index that can supply
low-G·L anchors without scanning the whole list.

Since ``ln(G·L) = Σ_i |ln s_i(q_c) − ln s_i(q_e)|`` is the L1 distance
in log-selectivity space, a uniform grid over that space answers
"anchors with G·L ≤ λ" queries by visiting only cells within an L∞
radius of ``ln λ`` — sound because the L1 ball is contained in the L∞
box of the same radius.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Optional

from ..optimizer.recost import ShrunkenMemo
from ..query.instance import SelectivityVector
from .bounds import compute_gl
from .get_plan import CheckKind, GetPlan, GetPlanDecision
from .plan_cache import InstanceEntry


def _cell_of(sv: SelectivityVector, width: float) -> tuple[int, ...]:
    return tuple(int(math.floor(math.log(s) / width)) for s in sv)


@dataclass
class InstanceGridIndex:
    """Uniform grid over log-selectivity space holding instance entries.

    ``cell_log_width`` is the cell edge in natural-log units; 0.5 means
    each cell spans a multiplicative selectivity factor of e^0.5 ≈ 1.65
    per dimension — about the reach of a λ = 2 region, so membership
    queries touch only the immediate cell neighborhood.
    """

    cell_log_width: float = 0.5
    _cells: dict[tuple[int, ...], list[InstanceEntry]] = field(
        default_factory=dict
    )
    _count: int = 0

    def __post_init__(self) -> None:
        if self.cell_log_width <= 0:
            raise ValueError("cell_log_width must be positive")

    def add(self, entry: InstanceEntry) -> None:
        cell = _cell_of(entry.sv, self.cell_log_width)
        self._cells.setdefault(cell, []).append(entry)
        self._count += 1

    def remove_plan(self, plan_id: int) -> int:
        """Drop every entry pointing at ``plan_id`` (plan eviction)."""
        removed = 0
        for cell, entries in list(self._cells.items()):
            kept = [e for e in entries if e.plan_id != plan_id]
            removed += len(entries) - len(kept)
            if kept:
                self._cells[cell] = kept
            else:
                del self._cells[cell]
        self._count -= removed
        return removed

    def __len__(self) -> int:
        return self._count

    @property
    def occupied_cells(self) -> int:
        return len(self._cells)

    def near(
        self, sv: SelectivityVector, log_radius: float
    ) -> Iterator[InstanceEntry]:
        """Entries whose cell lies within L∞ ``log_radius`` of ``sv``.

        A superset of all entries with ``ln(G·L) ≤ log_radius``
        (soundness: L1 ≤ radius implies L∞ ≤ radius, and the cell
        quantization error adds at most one cell width, accounted for
        in the ring bound).
        """
        center = _cell_of(sv, self.cell_log_width)
        ring = int(math.ceil(log_radius / self.cell_log_width)) + 1
        # Iterate occupied cells (not the exponential cell box): for the
        # instance-list sizes §6.2 worries about, occupied cells are few
        # relative to the full grid, and distance checks are cheap.
        for cell, entries in self._cells.items():
            if len(cell) != len(center):
                continue
            if all(abs(a - b) <= ring for a, b in zip(cell, center)):
                yield from entries

    def all_entries(self) -> Iterator[InstanceEntry]:
        for entries in self._cells.values():
            yield from entries


class IndexedGetPlan(GetPlan):
    """getPlan backed by the grid index.

    The selectivity check visits only near cells; the cost check draws
    its capped candidate set from an expanding neighborhood instead of
    a global G·L sort.  The λ-optimality guarantee is unaffected — both
    checks remain exactly as conservative — the index only changes
    *which* anchors are examined, trading a little reuse coverage for
    sub-linear scan cost on large instance lists.
    """

    def __init__(
        self,
        cache,
        lam: float,
        index: Optional[InstanceGridIndex] = None,
        cost_check_log_radius: float = 3.0,
        **kwargs,
    ) -> None:
        super().__init__(cache=cache, lam=lam, **kwargs)
        # ``index or ...`` would misfire here: an empty grid has
        # len() == 0 and is falsy.
        self.index = index if index is not None else InstanceGridIndex()
        self.cost_check_log_radius = cost_check_log_radius

    def probe(
        self,
        sv: SelectivityVector,
        recost: Callable[[ShrunkenMemo, SelectivityVector], float],
        entries: Optional[Iterable[InstanceEntry]] = None,
    ) -> GetPlanDecision:
        if entries is not None:
            # An explicit entry set (a concurrency snapshot) bypasses the
            # index: the grid is not copy-on-write, so scan the snapshot.
            return super().probe(sv, recost, entries)
        lam_max = self.lam if self.lambda_for is None else None
        # ---- selectivity check over the near neighborhood only.
        sel_radius = math.log(lam_max) if lam_max else self.cost_check_log_radius
        candidates: list[tuple[float, float, float, InstanceEntry]] = []
        for entry in self.index.near(sv, self.cost_check_log_radius):
            self.entries_scanned += 1
            g, l = compute_gl(entry.sv, sv)
            budget = self._effective_lambda(entry) / entry.suboptimality
            if (
                math.log(g * l) <= sel_radius + 1e-12
                and self.bound.selectivity_bound(g, l) <= budget
            ):
                return GetPlanDecision(
                    plan_id=entry.plan_id, check=CheckKind.SELECTIVITY,
                    anchor=entry, g=g, l=l,
                )
            if not entry.retired:
                candidates.append((g * l, g, l, entry))

        # ---- cost check over the neighborhood candidates, G·L order.
        candidates.sort(key=lambda item: item[0])
        recost_calls = 0
        for _, g, l, entry in candidates[: self.max_recost_candidates]:
            plan = self.cache.maybe_plan(entry.plan_id)
            if plan is None:
                continue  # evicted under a concurrent probe; skip
            new_cost = recost(plan.shrunken_memo, sv)
            recost_calls += 1
            r = new_cost / entry.optimal_cost
            budget = self._effective_lambda(entry) / entry.suboptimality
            if self.bound.cost_bound(r, l) <= budget:
                return GetPlanDecision(
                    plan_id=entry.plan_id, check=CheckKind.COST, anchor=entry,
                    recost_calls=recost_calls, recost_ratio=r, g=g, l=l,
                )

        return GetPlanDecision(
            plan_id=None, check=CheckKind.OPTIMIZER, recost_calls=recost_calls
        )
