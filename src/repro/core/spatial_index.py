"""Grid index over the instance list in log-selectivity space (§6.2).

Section 6.2 notes that once the instance list grows to several thousand
entries, even the selectivity check's scan becomes comparable to the
sVector computation, and suggests a spatial index that can supply
low-G·L anchors without scanning the whole list.

Since ``ln(G·L) = Σ_i |ln s_i(q_c) − ln s_i(q_e)|`` is the L1 distance
in log-selectivity space, a uniform grid over that space answers
"anchors with G·L ≤ λ" queries by visiting only cells within an L∞
radius of ``ln λ`` — sound because the L1 ball is contained in the L∞
box of the same radius.

The index rides the columnar layout two ways: the occupied-cell ring
check runs as one vectorized L∞ distance over the stacked cell-key
matrix, and each visited cell hands out a per-cell
:class:`~repro.core.columnar.ColumnarInstances` mini-view so the
selectivity check inside the neighborhood is the same handful of numpy
ops as the flat vectorized scan.  Cell *assignment* stays on
``math.log`` (via ``SelectivityVector.log_values``) regardless of
implementation, so an entry lands in the same cell whether it was added
one at a time or in bulk.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Optional

from ..optimizer.recost import ShrunkenMemo
from ..query.instance import (
    AnySelectivityVector,
    SelectivityVector,
)
from .bounds import compute_gl
from .columnar import HAVE_NUMPY, ColumnarInstances, gl_matrix, np
from .get_plan import CheckKind, CheckMode, GetPlan, GetPlanDecision
from .plan_cache import InstanceEntry


def _cell_of(sv: SelectivityVector, width: float) -> tuple[int, ...]:
    return tuple(int(math.floor(lv / width)) for lv in sv.log_values)


@dataclass
class InstanceGridIndex:
    """Uniform grid over log-selectivity space holding instance entries.

    ``cell_log_width`` is the cell edge in natural-log units; 0.5 means
    each cell spans a multiplicative selectivity factor of e^0.5 ≈ 1.65
    per dimension — about the reach of a λ = 2 region, so membership
    queries touch only the immediate cell neighborhood.
    """

    cell_log_width: float = 0.5
    _cells: dict[tuple[int, ...], list[InstanceEntry]] = field(
        default_factory=dict
    )
    _count: int = 0
    #: Per-cell mutation counters versioning the columnar mini-views.
    _versions: dict[tuple[int, ...], int] = field(default_factory=dict)
    _views: dict[tuple[int, ...], ColumnarInstances] = field(
        default_factory=dict
    )
    #: Stacked (num_cells, d) int cell-key matrix for the vectorized
    #: ring check; rebuilt lazily after any cell set change.
    _key_matrix: Optional[object] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.cell_log_width <= 0:
            raise ValueError("cell_log_width must be positive")

    def add(self, entry: InstanceEntry) -> None:
        cell = _cell_of(entry.sv, self.cell_log_width)
        bucket = self._cells.get(cell)
        if bucket is None:
            self._cells[cell] = [entry]
            self._key_matrix = None  # new occupied cell
        else:
            bucket.append(entry)
        self._versions[cell] = self._versions.get(cell, 0) + 1
        self._count += 1

    def remove_plan(self, plan_id: int) -> int:
        """Drop every entry pointing at ``plan_id`` (plan eviction)."""
        removed = 0
        for cell, entries in list(self._cells.items()):
            kept = [e for e in entries if e.plan_id != plan_id]
            dropped = len(entries) - len(kept)
            if not dropped:
                continue
            removed += dropped
            self._versions[cell] = self._versions.get(cell, 0) + 1
            if kept:
                self._cells[cell] = kept
            else:
                del self._cells[cell]
                self._versions.pop(cell, None)
                self._views.pop(cell, None)
                self._key_matrix = None
        self._count -= removed
        return removed

    def __len__(self) -> int:
        return self._count

    @property
    def occupied_cells(self) -> int:
        return len(self._cells)

    def cell_view(self, cell: tuple[int, ...]) -> ColumnarInstances:
        """The columnar mini-view of one occupied cell.

        Cached per cell and invalidated by the cell's mutation counter
        (the ``epoch`` field of the view doubles as the version tag), so
        steady-state probes reuse the arrays; a cell that gained or lost
        entries is re-columnarised by its next visitor.
        """
        version = self._versions.get(cell, 0)
        view = self._views.get(cell)
        if view is None or view.epoch != version:
            view = ColumnarInstances.build(version, self._cells[cell])
            self._views[cell] = view
        return view

    def near_cells(
        self, sv: SelectivityVector, log_radius: float
    ) -> Iterator[tuple[int, ...]]:
        """Occupied cells within L∞ ``log_radius`` of ``sv``'s cell.

        Yields cells in insertion order (the order :meth:`near` scans
        them), using one vectorized L∞ distance over the stacked key
        matrix when numpy is present; cells of a foreign dimensionality
        are skipped either way.
        """
        center = _cell_of(sv, self.cell_log_width)
        ring = int(math.ceil(log_radius / self.cell_log_width)) + 1
        cells = list(self._cells.keys())
        if HAVE_NUMPY and cells:
            keys = self._keys_for(cells, len(center))
            if keys is not None:
                within = np.abs(
                    keys - np.array(center, dtype=np.int64)
                ).max(axis=1) <= ring
                for i in np.flatnonzero(within).tolist():
                    yield cells[i]
                return
        # Scalar fallback (no numpy, or mixed dimensionalities).
        for cell in cells:
            if len(cell) != len(center):
                continue
            if all(abs(a - b) <= ring for a, b in zip(cell, center)):
                yield cell

    def _keys_for(self, cells: list, dims: int) -> Optional[object]:
        """The stacked cell-key matrix, or None when cells have mixed
        dimensionality (then the scalar ring check runs)."""
        keys = self._key_matrix
        if keys is None or keys.shape[0] != len(cells):
            if any(len(c) != dims for c in cells):
                return None
            keys = np.array(cells, dtype=np.int64)
            self._key_matrix = keys
        elif keys.shape[1] != dims:
            return None
        return keys

    def near(
        self, sv: SelectivityVector, log_radius: float
    ) -> Iterator[InstanceEntry]:
        """Entries whose cell lies within L∞ ``log_radius`` of ``sv``.

        A superset of all entries with ``ln(G·L) ≤ log_radius``
        (soundness: L1 ≤ radius implies L∞ ≤ radius, and the cell
        quantization error adds at most one cell width, accounted for
        in the ring bound).
        """
        for cell in self.near_cells(sv, log_radius):
            yield from self._cells[cell]

    def all_entries(self) -> Iterator[InstanceEntry]:
        for entries in self._cells.values():
            yield from entries


class IndexedGetPlan(GetPlan):
    """getPlan backed by the grid index.

    The selectivity check visits only near cells; the cost check draws
    its capped candidate set from that neighborhood instead of a global
    scan, reusing :meth:`GetPlan._cost_phase` (so the configured
    candidate order and the per-call ``max_recost`` cap apply here
    too).  The λ-optimality guarantee is unaffected — both checks
    remain exactly as conservative — the index only changes *which*
    anchors are examined, trading a little reuse coverage for
    sub-linear scan cost on large instance lists.

    Under ``check_impl="vectorized"`` each visited cell is probed
    through its columnar mini-view.  The in-radius gate compares
    ``np.log`` against ``math.log`` bit patterns there, so an anchor a
    ulp from the radius edge may be gated differently than under the
    scalar implementation — that gate is a pruning heuristic, never the
    certificate (the λ/S budget check is), so the guarantee is
    indifferent to which side such an anchor lands on.
    """

    def __init__(
        self,
        cache,
        lam: float,
        index: Optional[InstanceGridIndex] = None,
        cost_check_log_radius: float = 3.0,
        **kwargs,
    ) -> None:
        super().__init__(cache=cache, lam=lam, **kwargs)
        if self.check_mode is not CheckMode.POINT:
            raise ValueError(
                "IndexedGetPlan supports only check_mode='point'; the "
                "grid prunes by point distance and would skip anchors "
                "whose adversarial corner still certifies"
            )
        # ``index or ...`` would misfire here: an empty grid has
        # len() == 0 and is falsy.
        self.index = index if index is not None else InstanceGridIndex()
        self.cost_check_log_radius = cost_check_log_radius

    @property
    def supports_batch(self) -> bool:
        """Batch probes degrade to a probe loop: the neighborhood (and
        hence the candidate set) is per-instance, so there is no shared
        anchor matrix for a broadcast pass to amortize."""
        return False

    def probe(
        self,
        sv: AnySelectivityVector,
        recost: Callable[[ShrunkenMemo, SelectivityVector], float],
        entries: Optional[Iterable[InstanceEntry]] = None,
        max_recost: Optional[int] = None,
        coverage: Optional[float] = None,
    ) -> GetPlanDecision:
        if entries is not None:
            # An explicit entry set (a concurrency snapshot) bypasses the
            # index: the grid is not copy-on-write, so scan the snapshot.
            return super().probe(
                sv, recost, entries, max_recost=max_recost, coverage=coverage
            )
        lam_max = self.lam if self.lambda_for is None else None
        # ---- selectivity check over the near neighborhood only.
        sel_radius = math.log(lam_max) if lam_max else self.cost_check_log_radius
        if self.vectorized:
            decision, candidates = self._indexed_selectivity_vectorized(
                sv, sel_radius
            )
        else:
            decision, candidates = self._indexed_selectivity_scalar(
                sv, sel_radius
            )
        if decision is not None:
            return decision
        # ---- cost check over the neighborhood candidates.
        return self._cost_phase(sv, None, recost, candidates, max_recost)

    def _indexed_selectivity_scalar(
        self, sv: SelectivityVector, sel_radius: float
    ) -> tuple[
        Optional[GetPlanDecision],
        list[tuple[float, float, float, InstanceEntry]],
    ]:
        candidates: list[tuple[float, float, float, InstanceEntry]] = []
        for entry in self.index.near(sv, self.cost_check_log_radius):
            self.entries_scanned += 1
            g, l = compute_gl(entry.sv, sv)
            budget = self._effective_lambda(entry) / entry.suboptimality
            if (
                math.log(g * l) <= sel_radius + 1e-12
                and self.bound.selectivity_bound(g, l) <= budget
            ):
                return GetPlanDecision(
                    plan_id=entry.plan_id, check=CheckKind.SELECTIVITY,
                    anchor=entry, g=g, l=l,
                ), candidates
            if not entry.retired:
                candidates.append((g * l, g, l, entry))
        return None, candidates

    def _indexed_selectivity_vectorized(
        self, sv: SelectivityVector, sel_radius: float
    ) -> tuple[
        Optional[GetPlanDecision],
        list[tuple[float, float, float, InstanceEntry]],
    ]:
        """Cell-by-cell columnar scan of the near neighborhood.

        Cells are visited in the same order as the scalar scan, and the
        first passing entry within a cell wins (argmax over the cell's
        pass mask), so hits land on the same anchor as the scalar path
        modulo the documented radius-gate ulp caveat.
        """
        candidates: list[tuple[float, float, float, InstanceEntry]] = []
        pts = np.array([sv.values], dtype=np.float64)
        for cell in self.index.near_cells(sv, self.cost_check_log_radius):
            view = self.index.cell_view(cell)
            n = len(view)
            if n == 0:
                continue
            g_row, l_row = gl_matrix(view.sv, pts)
            g, l = g_row[0], l_row[0]
            gl = g * l
            budget = self._budget_vector(view)
            degree = self.bound.degree
            check = gl if degree == 1.0 else np.array(
                [v ** degree for v in gl.tolist()], dtype=np.float64
            )
            mask = (np.log(gl) <= sel_radius + 1e-12) & (check <= budget)
            hit = int(np.argmax(mask)) if bool(mask.any()) else -1
            limit = hit if hit >= 0 else n
            self.entries_scanned += (hit + 1) if hit >= 0 else n
            fail = np.flatnonzero(~mask[:limit])
            keys = gl[fail].tolist()
            gs = g[fail].tolist()
            ls = l[fail].tolist()
            for key, gv, lv, i in zip(keys, gs, ls, fail.tolist()):
                entry = view.entries[i]
                if not entry.retired:
                    candidates.append((key, gv, lv, entry))
            if hit >= 0:
                entry = view.entries[hit]
                return GetPlanDecision(
                    plan_id=entry.plan_id, check=CheckKind.SELECTIVITY,
                    anchor=entry, g=float(g[hit]), l=float(l[hit]),
                ), candidates
        return None, candidates
