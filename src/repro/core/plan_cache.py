"""The SCR plan cache: plan list + instance list (section 6.1).

The cache stores two structures:

* a **plan list** — the retained physical plans together with their
  cacheable re-costing representation (the shrunken memo), and
* an **instance list** — one 5-tuple ``I = <V, PP, C, S, U>`` per
  optimized query instance, where ``V`` is the selectivity vector,
  ``PP`` points into the plan list (possibly at a plan *other* than the
  instance's optimal one when the redundancy check rejected the new
  plan), ``C`` is the optimizer-estimated optimal cost at the instance,
  ``S`` the sub-optimality of the pointed plan there, and ``U`` a usage
  counter feeding the LFU eviction policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..optimizer.plans import PhysicalPlan
from ..optimizer.recost import ShrunkenMemo
from ..query.instance import SelectivityVector

# Approximate per-object memory overheads (bytes), used only for the
# bookkeeping-overhead reporting the paper discusses in section 6.1.
INSTANCE_TUPLE_BYTES = 100
PLAN_BASE_BYTES = 2048
PLAN_NODE_BYTES = 256


@dataclass
class CachedPlan:
    """One entry of the plan list."""

    plan_id: int
    signature: str
    plan: PhysicalPlan
    shrunken_memo: ShrunkenMemo
    last_used_tick: int = 0  # logical time of last reuse (LRU eviction)

    def memory_bytes(self) -> int:
        return PLAN_BASE_BYTES + PLAN_NODE_BYTES * self.shrunken_memo.node_count


@dataclass
class InstanceEntry:
    """One 5-tuple of the instance list."""

    sv: SelectivityVector        # V
    plan_id: int                 # PP (pointer into the plan list)
    optimal_cost: float          # C
    suboptimality: float         # S  (of the pointed plan at this instance)
    usage: int = 1               # U
    retired: bool = False        # Appendix G: excluded from cost checks
                                 # after a detected assumption violation.
    # -- efficacy attribution (advisory; never read by the checks) ----------
    #: Lifetime certified reuses through this anchor's selectivity check.
    hits_selectivity: int = 0
    #: Lifetime certified reuses through this anchor's cost check.
    hits_cost: int = 0
    #: Recost calls spent on cost-check hits *through this anchor* —
    #: the marginal engine spend its reuses still cost.
    recost_spend: int = 0
    #: Cache tick of the last hit (-1 = never hit); ages against the
    #: cache's current tick for the doctor's staleness ranking.
    last_hit_tick: int = -1

    @property
    def pointed_plan_cost(self) -> float:
        """``Cost(P(q_e), q_e) = C * S``."""
        return self.optimal_cost * self.suboptimality

    @property
    def total_hits(self) -> int:
        return self.hits_selectivity + self.hits_cost

    def refresh_cost(self, optimal_cost: float, suboptimality: float) -> None:
        """Re-anchor the stored costs after a recost sweep re-measured
        them.  Guarantee-bearing fields are otherwise write-once; a sweep
        may only *raise* pessimism through the caller's discipline (the
        caller passes the freshly measured optimal cost and the pointed
        plan's measured sub-optimality there, both ≥ 1× reality)."""
        self.optimal_cost = optimal_cost
        self.suboptimality = suboptimality

    @property
    def sv_product(self) -> float:
        """``Π_i s_i`` — the AREA candidate-order key (Figure 4's region
        area grows with it).  ``sv`` is write-once, so the product is
        computed at most once per entry instead of once per probe."""
        cached = self.__dict__.get("_sv_product")
        if cached is None:
            cached = 1.0
            for s in self.sv:
                cached *= s
            self.__dict__["_sv_product"] = cached
        return cached


@dataclass(frozen=True)
class CacheSnapshot:
    """An immutable view of the instance list at one cache epoch.

    The concurrent serving layer runs the lock-free selectivity/cost
    probe against a snapshot and later validates — under the shard's
    write lock — that the epoch is unchanged (or that the specific
    anchor is still live) before committing a hit.  Entries are shared
    references: the only fields a commit mutates (``usage``) are
    advisory, while the guarantee-bearing fields (``sv``, ``plan_id``,
    ``optimal_cost``, ``suboptimality``) are written once at insertion.
    """

    epoch: int
    entries: tuple[InstanceEntry, ...]


@dataclass
class PlanCache:
    """Plan list + instance list with the paper's maintenance operations."""

    _plans: dict[int, CachedPlan] = field(default_factory=dict)
    _by_signature: dict[str, int] = field(default_factory=dict)
    _instances: list[InstanceEntry] = field(default_factory=list)
    _next_plan_id: int = 0
    _tick: int = 0
    max_plans_seen: int = 0
    plans_dropped: int = 0
    #: Monotonic mutation counter; bumped on every structural change
    #: (plan added/dropped, instance added).  Lock-free readers compare
    #: epochs to detect that a snapshot went stale.
    epoch: int = 0
    #: Monotonic *usage* counter; bumped whenever any instance's ``U``
    #: changes.  Usage edits are advisory (they reorder LFU/USAGE scans
    #: but never move an anchor), so they deliberately do not bump
    #: ``epoch`` — columnar views stay valid across them and memoize
    #: usage-derived orderings against this counter instead.
    usage_version: int = 0
    #: Anchor-hit totals carried by entries that were evicted with their
    #: plan (``drop_plan``).  Keeping them makes the efficacy accounting
    #: identity — Σ per-anchor hits (+ evicted) = getPlan's hit counters
    #: — survive eviction and warm-start adoption.
    evicted_hits_selectivity: int = 0
    evicted_hits_cost: int = 0
    evicted_recost_spend: int = 0
    #: Evicted anchors that never earned a single hit (pure wasted
    #: optimizer spend, the doctor's headline waste figure).
    evicted_never_hit: int = 0
    #: Hit totals that arrived with adopted (warm-start) contents.
    #: They predate this process's getPlan counters, so the accounting
    #: identity excludes them (``anchor_hit_totals(exclude_adopted=True)``).
    adopted_hits_selectivity: int = 0
    adopted_hits_cost: int = 0
    adopted_recost_spend: int = 0
    _snapshot: Optional[CacheSnapshot] = field(default=None, repr=False)
    _columnar: Optional[object] = field(default=None, repr=False)
    # Observers (e.g. the §6.2 spatial index) notified on mutation.
    on_instance_added: list = field(default_factory=list)
    on_plan_dropped: list = field(default_factory=list)

    def _mutated(self) -> None:
        self.epoch += 1
        self._snapshot = None
        self._columnar = None

    def snapshot(self) -> CacheSnapshot:
        """Copy-on-write snapshot of the instance list.

        Between mutations the same tuple is handed out, so snapshotting
        on the hot path is O(1); a mutation invalidates the cached copy
        and the next reader rebuilds it.
        """
        snap = self._snapshot
        if snap is None or snap.epoch != self.epoch:
            snap = CacheSnapshot(epoch=self.epoch, entries=tuple(self._instances))
            self._snapshot = snap
        return snap

    def columnar(self):
        """Copy-on-write columnar view of the instance list.

        The structure-of-arrays twin of :meth:`snapshot`: built from the
        same entries tuple (so ``columnar().entries is snapshot.entries``
        within an epoch), cached until the next structural mutation, and
        rebuilt lazily by the first reader after one.  The vectorized
        ``getPlan`` hot path probes these arrays; decisions still point
        at the shared :class:`InstanceEntry` objects.
        """
        from .columnar import ColumnarInstances

        snap = self.snapshot()
        view = self._columnar
        if (
            view is None
            or view.epoch != snap.epoch
            or view.entries is not snap.entries
        ):
            view = ColumnarInstances.build(snap.epoch, snap.entries)
            self._columnar = view
        return view

    def touch(self, plan_id: int) -> None:
        """Record a reuse of ``plan_id`` (advances the LRU clock)."""
        self._tick += 1
        self.usage_version += 1
        plan = self._plans.get(plan_id)
        if plan is not None:
            plan.last_used_tick = self._tick

    def adopt(self, other: PlanCache) -> None:
        """Replace this cache's contents with ``other``'s, in place.

        Warm-start installs a restored snapshot into a live SCR stack,
        where ``get_plan``, ``manage_cache``, and the spatial index all
        hold references to *this* object — so the contents move, not the
        identity.  The epoch advances past both caches' so every
        outstanding snapshot/columnar view reads as stale.
        """
        # Hit totals carried by the adopted contents were earned against
        # a *previous* process's getPlan counters; bank them as the
        # adopted baseline so the identity survives warm start.
        osel, ocost, ospend = other.anchor_hit_totals()
        self.adopted_hits_selectivity += osel + other.adopted_hits_selectivity
        self.adopted_hits_cost += ocost + other.adopted_hits_cost
        self.adopted_recost_spend += ospend + other.adopted_recost_spend
        self._plans = other._plans
        self._by_signature = other._by_signature
        self._instances = other._instances
        self._next_plan_id = other._next_plan_id
        self._tick = max(self._tick, other._tick)
        self.max_plans_seen = max(self.max_plans_seen, other.max_plans_seen)
        self.plans_dropped += other.plans_dropped
        self.evicted_hits_selectivity += other.evicted_hits_selectivity
        self.evicted_hits_cost += other.evicted_hits_cost
        self.evicted_recost_spend += other.evicted_recost_spend
        self.evicted_never_hit += other.evicted_never_hit
        self.epoch = max(self.epoch, other.epoch)
        self.usage_version = max(self.usage_version, other.usage_version)
        self._mutated()
        for entry in self._instances:
            for listener in self.on_instance_added:
                listener(entry)

    # -- plan list ---------------------------------------------------------

    def find_plan(self, signature: str) -> Optional[CachedPlan]:
        plan_id = self._by_signature.get(signature)
        return self._plans[plan_id] if plan_id is not None else None

    def plan(self, plan_id: int) -> CachedPlan:
        return self._plans[plan_id]

    def has_plan(self, plan_id: int) -> bool:
        """True while ``plan_id`` is live.  Plan ids are never reused,
        so this is the revalidation test for an optimistic hit."""
        return plan_id in self._plans

    def maybe_plan(self, plan_id: int) -> Optional[CachedPlan]:
        """Like :meth:`plan` but None when the plan has been dropped —
        the lookup lock-free probes use, since a concurrent eviction can
        remove a snapshot anchor's plan mid-scan."""
        return self._plans.get(plan_id)

    def add_plan(self, plan: PhysicalPlan, shrunken: ShrunkenMemo) -> CachedPlan:
        signature = plan.signature()
        existing = self.find_plan(signature)
        if existing is not None:
            return existing
        entry = CachedPlan(
            plan_id=self._next_plan_id,
            signature=signature,
            plan=plan,
            shrunken_memo=shrunken,
        )
        self._plans[entry.plan_id] = entry
        self._by_signature[signature] = entry.plan_id
        self._next_plan_id += 1
        self.max_plans_seen = max(self.max_plans_seen, len(self._plans))
        self._mutated()
        return entry

    def drop_plan(self, plan_id: int) -> None:
        """Remove a plan *and* every instance entry pointing to it.

        Dropping the pointing instances is what preserves the bounded
        sub-optimality guarantee (section 6.3.1): no future inference
        can be made through an anchor whose plan is gone.
        """
        entry = self._plans.pop(plan_id, None)
        if entry is None:
            raise KeyError(f"no cached plan with id {plan_id}")
        del self._by_signature[entry.signature]
        for inst in self._instances:
            if inst.plan_id == plan_id:
                # Fold the departing anchors' lifetime attribution into
                # the evicted totals so the accounting identity holds.
                self.evicted_hits_selectivity += inst.hits_selectivity
                self.evicted_hits_cost += inst.hits_cost
                self.evicted_recost_spend += inst.recost_spend
                if inst.total_hits == 0:
                    self.evicted_never_hit += 1
        self._instances = [i for i in self._instances if i.plan_id != plan_id]
        self.plans_dropped += 1
        self._mutated()
        for listener in self.on_plan_dropped:
            listener(plan_id)

    def plans(self) -> list[CachedPlan]:
        return list(self._plans.values())

    @property
    def num_plans(self) -> int:
        return len(self._plans)

    # -- instance list -------------------------------------------------------

    def add_instance(self, entry: InstanceEntry) -> None:
        if entry.plan_id not in self._plans:
            raise KeyError(f"instance points at unknown plan {entry.plan_id}")
        self._instances.append(entry)
        self._mutated()
        for listener in self.on_instance_added:
            listener(entry)

    def find_instance(self, sv: SelectivityVector) -> Optional[InstanceEntry]:
        """First live instance entry with exactly this selectivity vector."""
        for entry in self._instances:
            if entry.sv.values == sv.values:
                return entry
        return None

    def instances(self) -> Iterator[InstanceEntry]:
        return iter(self._instances)

    def instances_for(self, plan_id: int) -> list[InstanceEntry]:
        return [i for i in self._instances if i.plan_id == plan_id]

    @property
    def num_instances(self) -> int:
        return len(self._instances)

    def aggregate_usage(self, plan_id: int) -> int:
        """Sum of U over the plan's instances (the LFU eviction key)."""
        return sum(i.usage for i in self._instances if i.plan_id == plan_id)

    def min_usage_plan(self) -> Optional[CachedPlan]:
        """The plan with minimum aggregate usage count (LFU victim)."""
        if not self._plans:
            return None
        return min(
            self._plans.values(), key=lambda p: self.aggregate_usage(p.plan_id)
        )

    def lru_plan(self) -> Optional[CachedPlan]:
        """The least recently reused plan (LRU victim)."""
        if not self._plans:
            return None
        return min(self._plans.values(), key=lambda p: p.last_used_tick)

    # -- bookkeeping -----------------------------------------------------------

    @property
    def tick(self) -> int:
        """The current LRU clock value (``last_hit_tick`` ages against it)."""
        return self._tick

    def anchor_hit_totals(
        self, exclude_adopted: bool = False
    ) -> tuple[int, int, int]:
        """``(selectivity, cost, recost_spend)`` summed over live anchors
        *and* evicted ones — the left side of the accounting identity
        against :class:`~repro.core.get_plan.GetPlan`'s hit counters.
        With ``exclude_adopted`` the warm-start baseline is subtracted,
        which is the form the identity takes in a process that adopted a
        snapshot (the prior process's hits are in the anchors but not in
        this process's getPlan counters)."""
        sel = self.evicted_hits_selectivity
        cost = self.evicted_hits_cost
        spend = self.evicted_recost_spend
        for entry in self._instances:
            sel += entry.hits_selectivity
            cost += entry.hits_cost
            spend += entry.recost_spend
        if exclude_adopted:
            sel -= self.adopted_hits_selectivity
            cost -= self.adopted_hits_cost
            spend -= self.adopted_recost_spend
        return sel, cost, spend

    def memory_bytes(self) -> int:
        """Approximate cache memory (plan list dominates; section 6.1)."""
        plans = sum(p.memory_bytes() for p in self._plans.values())
        return plans + INSTANCE_TUPLE_BYTES * len(self._instances)
