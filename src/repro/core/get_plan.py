"""The getPlan module (sections 4.3, 5 and 6.2; Algorithm 1).

Given a new query instance's selectivity vector, decide — on the
critical path of query execution — whether a cached plan can be used
while preserving λ-optimality:

1. **Selectivity check** over the instance list: reuse anchor ``q_e``'s
   plan if ``G·L ≤ λ/S`` (no engine call at all).
2. **Cost check** over the surviving candidates, cheapest-G·L first and
   capped (the section 6.2 pruning heuristic): reuse if ``R·L ≤ λ/S``
   where ``R`` comes from one Recost call.
3. Otherwise report a miss; the caller makes the optimizer call.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Iterable, Optional

from ..obs.spans import SpanRecorder
from ..optimizer.recost import ShrunkenMemo
from ..query.instance import (
    AnySelectivityVector,
    SelectivityVector,
    UncertainSelectivityVector,
    as_point,
)
from .bounds import (
    BoundingFunction,
    LINEAR_BOUND,
    adversarial_corner,
    compute_cost_gl,
    compute_gl,
    cost_corner,
)
from .plan_cache import InstanceEntry, PlanCache


class CheckKind(Enum):
    """Which mechanism produced the plan decision for an instance."""

    SELECTIVITY = "selectivity"
    COST = "cost"
    OPTIMIZER = "optimizer"


class CheckMode(Enum):
    """How the guarantee checks treat selectivity-estimation error.

    * ``POINT`` — the paper's checks, evaluated at the point estimate
      (certificates are exact *conditional on the estimate being
      right*);
    * ``ROBUST`` — evaluate every check at the adversarial corner of the
      instance's uncertainty box, so a certification holds for *every*
      sVector the box contains;
    * ``PROBABILISTIC`` — robust checks against the box shrunk to a
      target coverage ``p``, certifying ``SubOpt ≤ λ`` with probability
      at least ``p``.
    """

    POINT = "point"
    ROBUST = "robust"
    PROBABILISTIC = "probabilistic"

    @classmethod
    def coerce(cls, mode: "CheckMode | str") -> "CheckMode":
        if isinstance(mode, CheckMode):
            return mode
        return cls(mode)


def certificate_kind(box: Optional[UncertainSelectivityVector]) -> str:
    """The certificate kind a hit against ``box`` may claim.

    A point check (no box) — or a zero-width hard box, i.e. exactly
    known selectivities — certifies ``exact``; a hard box certifies
    ``robust`` (valid for every vector in the box); a sub-1 coverage box
    certifies ``probabilistic``.
    """
    if box is None or (box.is_point and box.coverage >= 1.0):
        return "exact"
    if box.coverage >= 1.0:
        return "robust"
    return "probabilistic"


class CandidateOrder(Enum):
    """Cost-check candidate ordering (§6.2 and its alternatives).

    * ``GL`` — increasing G·L product (the paper's choice: low-G·L
      anchors are most likely to pass the cost check);
    * ``AREA`` — decreasing selectivity-region area, i.e. anchors whose
      regions cover the most space first (∝ Π s_i for fixed λ);
    * ``USAGE`` — decreasing usage count U (popular anchors first).
    """

    GL = "gl"
    AREA = "area"
    USAGE = "usage"


@dataclass
class GetPlanDecision:
    """Outcome of one getPlan invocation."""

    plan_id: Optional[int]
    check: CheckKind
    anchor: Optional[InstanceEntry] = None
    recost_calls: int = 0
    # Data for Appendix G violation detection (g/l are always *point*
    # values, even under robust checks — the live detector compares them
    # against the executed plan, not against the adversarial corner):
    recost_ratio: float = 0.0
    g: float = 0.0
    l: float = 0.0
    #: Corner-evaluated certified bound (set only by robust-mode hits);
    #: valid for every sVector in the checked box.
    bound_value: Optional[float] = None
    #: Which certificate kind this decision may claim on a hit.
    certificate: str = "exact"
    #: Coverage of the box the certificate holds over (1.0 = hard).
    coverage: float = 1.0

    @property
    def hit(self) -> bool:
        return self.plan_id is not None

    @property
    def inferred_suboptimality(self) -> float:
        """The bound certified for the reused plan.

        ``S·G·L`` / ``S·R·L`` at the point estimate, or the
        corner-evaluated :attr:`bound_value` under robust checks.
        """
        if self.bound_value is not None:
            return self.bound_value
        if self.anchor is None:
            return 1.0
        if self.check is CheckKind.SELECTIVITY:
            return self.anchor.suboptimality * self.g * self.l
        return self.anchor.suboptimality * self.recost_ratio * self.l


@dataclass
class GetPlan:
    """Configurable getPlan with the paper's pruning heuristic.

    Parameters
    ----------
    lam:
        The sub-optimality bound λ (or a per-instance λ via
        ``lambda_for``; see Appendix D).
    max_recost_candidates:
        Cap on Recost calls per getPlan invocation; candidates are
        tried in increasing G·L order (section 6.2: "instances with
        large values of GL are less likely to satisfy the cost check").
    bound:
        BCG bounding function (linear by default).
    lambda_for:
        Optional map from an anchor's optimal cost to the λ that anchors
        with that cost should enforce (the dynamic-λ extension).
    check_mode:
        How estimation error enters the checks (:class:`CheckMode`).
        ``POINT`` is the paper's behavior; ``ROBUST`` and
        ``PROBABILISTIC`` evaluate the checks at the adversarial corner
        of the instance's uncertainty box.
    target_coverage:
        The coverage ``p`` that ``PROBABILISTIC`` mode certifies at.
    """

    cache: PlanCache
    lam: float
    max_recost_candidates: int = 8
    bound: BoundingFunction = LINEAR_BOUND
    lambda_for: Optional[Callable[[float], float]] = None
    candidate_order: CandidateOrder = CandidateOrder.GL
    check_mode: CheckMode = CheckMode.POINT
    target_coverage: float = 0.95
    #: Optional span recorder timing the two check phases (set when an
    #: Observability handle is wired in; None keeps probes span-free).
    spans: Optional[SpanRecorder] = None
    # Statistics for the overheads discussion of section 6.2:
    selectivity_hits: int = 0
    cost_hits: int = 0
    misses: int = 0
    total_recost_calls: int = 0
    max_recost_calls_single: int = 0
    entries_scanned: int = 0

    def __post_init__(self) -> None:
        if self.lam < 1.0:
            raise ValueError("lambda must be >= 1")
        if self.max_recost_candidates < 0:
            raise ValueError("max_recost_candidates must be >= 0")
        self.check_mode = CheckMode.coerce(self.check_mode)
        if not (0.0 < self.target_coverage <= 1.0):
            raise ValueError(
                f"target_coverage must be in (0, 1], got {self.target_coverage}"
            )

    def _effective_lambda(self, entry: InstanceEntry) -> float:
        if self.lambda_for is None:
            return self.lam
        return self.lambda_for(entry.optimal_cost)

    def __call__(
        self,
        sv: AnySelectivityVector,
        recost: Callable[[ShrunkenMemo, SelectivityVector], float],
    ) -> GetPlanDecision:
        """Run both checks; ``recost`` is the engine's Recost API."""
        decision = self.probe(sv, recost)
        self.commit(decision)
        return decision

    def _resolve_box(
        self,
        sv: AnySelectivityVector,
        coverage: Optional[float],
    ) -> tuple[SelectivityVector, Optional[UncertainSelectivityVector]]:
        """Split the input into (point estimate, uncertainty box or None).

        ``None`` means point checks.  In ``ROBUST`` mode a plain vector
        becomes a zero-width box (selectivities taken as exact);
        ``PROBABILISTIC`` shrinks the box to the configured coverage.  A
        per-call ``coverage`` (the brownout ladder's COVERAGE_RELAXED
        step) lowers the claim further — shrinking the box — in either
        robust mode; it never widens one.
        """
        point = as_point(sv)
        if self.check_mode is CheckMode.POINT:
            return point, None
        if isinstance(sv, UncertainSelectivityVector):
            box = sv
        else:
            box = UncertainSelectivityVector.exact(sv)
        if self.check_mode is CheckMode.PROBABILISTIC:
            box = box.for_coverage(self.target_coverage)
        if coverage is not None and coverage < box.coverage:
            box = box.for_coverage(coverage)
        return point, box

    def probe(
        self,
        sv: AnySelectivityVector,
        recost: Callable[[ShrunkenMemo, SelectivityVector], float],
        entries: Optional[Iterable[InstanceEntry]] = None,
        max_recost: Optional[int] = None,
        coverage: Optional[float] = None,
    ) -> GetPlanDecision:
        """Both checks, without committing any cache bookkeeping.

        ``entries`` defaults to the live instance list; the concurrent
        serving layer passes a :class:`~.plan_cache.CacheSnapshot`'s
        entries so the scan runs lock-free, then calls :meth:`commit`
        under the shard lock once the snapshot is validated.  Other than
        the advisory scan counter, ``probe`` does not mutate the cache.

        ``max_recost`` lowers the cost-check cap for this call only —
        the overload path passes ``0`` to run the (free) selectivity
        check while spending zero engine calls under brownout.

        ``coverage`` lowers the probability claim of robust-mode checks
        for this call only (brownout's interval-relaxation step); point
        mode ignores it.
        """
        if entries is None:
            entries = self.cache.instances()
        point, box = self._resolve_box(sv, coverage)
        spans = self.spans
        timed = spans is not None and spans.enabled
        start = spans.clock.perf_counter() if timed else 0.0
        decision, candidates = self._selectivity_phase(point, box, entries)
        if timed:
            spans.record(
                "scr.selectivity_check", start,
                spans.clock.perf_counter() - start,
                hit=decision is not None, candidates=len(candidates),
            )
        if decision is not None:
            return decision
        if timed:
            start = spans.clock.perf_counter()
        decision = self._cost_phase(point, box, recost, candidates, max_recost)
        if timed:
            spans.record(
                "scr.cost_check", start, spans.clock.perf_counter() - start,
                hit=decision.hit, recost_calls=decision.recost_calls,
            )
        return decision

    def _selectivity_phase(
        self,
        point: SelectivityVector,
        box: Optional[UncertainSelectivityVector],
        entries: Iterable[InstanceEntry],
    ) -> tuple[
        Optional[GetPlanDecision],
        list[tuple[float, float, float, InstanceEntry]],
    ]:
        """Selectivity check (pure arithmetic over the instance list).

        Returns a hit decision or, on a miss, the surviving cost-check
        candidates as ``(order key, G, L, entry)`` tuples where G/L are
        point values and the key is the (corner) G·L product.

        With a box, each entry costs one extra vector op: the
        adversarial corner's G·L drives the check while the point G·L
        still feeds the decision (the live violation detector compares
        point values against the executed plan).
        """
        robust = box is not None
        cert = certificate_kind(box)
        cov = box.coverage if robust else 1.0
        candidates: list[tuple[float, float, float, InstanceEntry]] = []
        for entry in entries:
            self.entries_scanned += 1
            g, l = compute_gl(entry.sv, point)
            if robust:
                corner = adversarial_corner(entry.sv, box)
                gc, lc = compute_gl(entry.sv, corner)
            else:
                gc, lc = g, l
            check_value = self.bound.selectivity_bound(gc, lc)
            budget = self._effective_lambda(entry) / entry.suboptimality
            if check_value <= budget:
                return GetPlanDecision(
                    plan_id=entry.plan_id,
                    check=CheckKind.SELECTIVITY,
                    anchor=entry,
                    g=g,
                    l=l,
                    bound_value=(
                        entry.suboptimality * check_value if robust else None
                    ),
                    certificate=cert,
                    coverage=cov,
                ), candidates
            if not entry.retired:
                candidates.append((gc * lc, g, l, entry))
        return None, candidates

    def _cost_phase(
        self,
        point: SelectivityVector,
        box: Optional[UncertainSelectivityVector],
        recost: Callable[[ShrunkenMemo, SelectivityVector], float],
        candidates: list[tuple[float, float, float, InstanceEntry]],
        max_recost: Optional[int] = None,
    ) -> GetPlanDecision:
        """Cost check: capped number of Recost calls, ordered per the
        configured heuristic (G·L ascending is the paper's).

        Recost always runs at the *point* estimate; with a box, the
        Cost Bounding Lemma transports that cost to the corner
        maximizing ``G(point→x)·L(anchor→x)``, so the certified bound
        ``S·R·(G·L)^n`` holds for every sVector in the box.
        """
        robust = box is not None
        cert = certificate_kind(box)
        cov = box.coverage if robust else 1.0
        self._order_candidates(candidates)
        cap = self.max_recost_candidates
        if max_recost is not None:
            cap = min(cap, max_recost)
        recost_calls = 0
        for _, g, l, entry in candidates[:cap]:
            plan = self.cache.maybe_plan(entry.plan_id)
            if plan is None:
                continue  # evicted under a concurrent probe; skip
            new_cost = recost(plan.shrunken_memo, point)
            recost_calls += 1
            r = new_cost / entry.optimal_cost
            budget = self._effective_lambda(entry) / entry.suboptimality
            if robust:
                corner = cost_corner(point, entry.sv, box)
                gg, ll = compute_cost_gl(point, entry.sv, corner)
                check_value = r * self.bound.selectivity_bound(gg, ll)
            else:
                check_value = self.bound.cost_bound(r, l)
            if check_value <= budget:
                return GetPlanDecision(
                    plan_id=entry.plan_id,
                    check=CheckKind.COST,
                    anchor=entry,
                    recost_calls=recost_calls,
                    recost_ratio=r,
                    g=g,
                    l=l,
                    bound_value=(
                        entry.suboptimality * check_value if robust else None
                    ),
                    certificate=cert,
                    coverage=cov,
                )
        return GetPlanDecision(
            plan_id=None, check=CheckKind.OPTIMIZER, recost_calls=recost_calls
        )

    def commit(self, decision: GetPlanDecision) -> None:
        """Apply the bookkeeping of a probed decision (usage counters,
        LRU clock, hit/miss statistics).  Callers that probed against a
        snapshot must hold the cache's write lock and have revalidated
        the decision before committing."""
        if decision.check is CheckKind.SELECTIVITY:
            decision.anchor.usage += 1
            self.cache.touch(decision.plan_id)
            self.selectivity_hits += 1
        elif decision.check is CheckKind.COST:
            decision.anchor.usage += 1
            self.cache.touch(decision.plan_id)
            self.cost_hits += 1
            self._note_recosts(decision.recost_calls)
        else:
            self.misses += 1
            self._note_recosts(decision.recost_calls)

    def _order_candidates(
        self, candidates: list[tuple[float, float, float, InstanceEntry]]
    ) -> None:
        if self.candidate_order is CandidateOrder.GL:
            candidates.sort(key=lambda item: item[0])
        elif self.candidate_order is CandidateOrder.AREA:
            # Region area grows with the product of the anchor's
            # selectivities (Figure 4's closed form): largest first.
            candidates.sort(
                key=lambda item: -_product(item[3].sv)
            )
        else:  # USAGE: most-used anchors first.
            candidates.sort(key=lambda item: -item[3].usage)

    def _note_recosts(self, calls: int) -> None:
        self.total_recost_calls += calls
        self.max_recost_calls_single = max(self.max_recost_calls_single, calls)


def _product(sv: SelectivityVector) -> float:
    out = 1.0
    for s in sv:
        out *= s
    return out
