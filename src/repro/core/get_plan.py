"""The getPlan module (sections 4.3, 5 and 6.2; Algorithm 1).

Given a new query instance's selectivity vector, decide — on the
critical path of query execution — whether a cached plan can be used
while preserving λ-optimality:

1. **Selectivity check** over the instance list: reuse anchor ``q_e``'s
   plan if ``G·L ≤ λ/S`` (no engine call at all).
2. **Cost check** over the surviving candidates, cheapest-G·L first and
   capped (the section 6.2 pruning heuristic): reuse if ``R·L ≤ λ/S``
   where ``R`` comes from one Recost call.
3. Otherwise report a miss; the caller makes the optimizer call.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Iterable, Optional

from ..obs.spans import SpanRecorder
from ..optimizer.recost import ShrunkenMemo
from ..query.instance import (
    AnySelectivityVector,
    SelectivityVector,
    UncertainSelectivityVector,
    as_point,
)
from .bounds import (
    BoundingFunction,
    LINEAR_BOUND,
    adversarial_corner,
    compute_cost_gl,
    compute_gl,
    cost_corner,
)
from .columnar import (
    HAVE_NUMPY,
    ColumnarInstances,
    chunk_rows,
    corner_gl_matrix,
    gl_matrix,
    np,
)
from .plan_cache import InstanceEntry, PlanCache

#: Decision-procedure implementations selectable per GetPlan/SCR/shard.
#: Both produce identical decisions (the differential suite in
#: ``tests/test_vectorized_equivalence.py`` enforces it); ``scalar`` is
#: the readable reference, ``vectorized`` the columnar numpy hot path.
CHECK_IMPLS = ("scalar", "vectorized")


class CheckKind(Enum):
    """Which mechanism produced the plan decision for an instance."""

    SELECTIVITY = "selectivity"
    COST = "cost"
    OPTIMIZER = "optimizer"


class CheckMode(Enum):
    """How the guarantee checks treat selectivity-estimation error.

    * ``POINT`` — the paper's checks, evaluated at the point estimate
      (certificates are exact *conditional on the estimate being
      right*);
    * ``ROBUST`` — evaluate every check at the adversarial corner of the
      instance's uncertainty box, so a certification holds for *every*
      sVector the box contains;
    * ``PROBABILISTIC`` — robust checks against the box shrunk to a
      target coverage ``p``, certifying ``SubOpt ≤ λ`` with probability
      at least ``p``.
    """

    POINT = "point"
    ROBUST = "robust"
    PROBABILISTIC = "probabilistic"

    @classmethod
    def coerce(cls, mode: "CheckMode | str") -> "CheckMode":
        if isinstance(mode, CheckMode):
            return mode
        return cls(mode)


def certificate_kind(box: Optional[UncertainSelectivityVector]) -> str:
    """The certificate kind a hit against ``box`` may claim.

    A point check (no box) — or a zero-width hard box, i.e. exactly
    known selectivities — certifies ``exact``; a hard box certifies
    ``robust`` (valid for every vector in the box); a sub-1 coverage box
    certifies ``probabilistic``.
    """
    if box is None or (box.is_point and box.coverage >= 1.0):
        return "exact"
    if box.coverage >= 1.0:
        return "robust"
    return "probabilistic"


class CandidateOrder(Enum):
    """Cost-check candidate ordering (§6.2 and its alternatives).

    * ``GL`` — increasing G·L product (the paper's choice: low-G·L
      anchors are most likely to pass the cost check);
    * ``AREA`` — decreasing selectivity-region area, i.e. anchors whose
      regions cover the most space first (∝ Π s_i for fixed λ);
    * ``USAGE`` — decreasing usage count U (popular anchors first).
    """

    GL = "gl"
    AREA = "area"
    USAGE = "usage"


@dataclass
class GetPlanDecision:
    """Outcome of one getPlan invocation."""

    plan_id: Optional[int]
    check: CheckKind
    anchor: Optional[InstanceEntry] = None
    recost_calls: int = 0
    # Data for Appendix G violation detection (g/l are always *point*
    # values, even under robust checks — the live detector compares them
    # against the executed plan, not against the adversarial corner):
    recost_ratio: float = 0.0
    g: float = 0.0
    l: float = 0.0
    #: Corner-evaluated certified bound (set only by robust-mode hits);
    #: valid for every sVector in the checked box.
    bound_value: Optional[float] = None
    #: Which certificate kind this decision may claim on a hit.
    certificate: str = "exact"
    #: Coverage of the box the certificate holds over (1.0 = hard).
    coverage: float = 1.0
    #: Every Recost comparison the cost phase made — ``(anchor, r, g,
    #: l)`` per call, *including failed checks*.  The calibration
    #: observatory feeds on these; keeping the failures matters because
    #: a drifting cost model inflates exactly the ratios that fail the
    #: check, so a hits-only feed would censor its own evidence.
    recost_samples: tuple = ()

    @property
    def hit(self) -> bool:
        return self.plan_id is not None

    @property
    def inferred_suboptimality(self) -> float:
        """The bound certified for the reused plan.

        ``S·G·L`` / ``S·R·L`` at the point estimate, or the
        corner-evaluated :attr:`bound_value` under robust checks.
        """
        if self.bound_value is not None:
            return self.bound_value
        if self.anchor is None:
            return 1.0
        if self.check is CheckKind.SELECTIVITY:
            return self.anchor.suboptimality * self.g * self.l
        return self.anchor.suboptimality * self.recost_ratio * self.l


@dataclass
class GetPlan:
    """Configurable getPlan with the paper's pruning heuristic.

    Parameters
    ----------
    lam:
        The sub-optimality bound λ (or a per-instance λ via
        ``lambda_for``; see Appendix D).
    max_recost_candidates:
        Cap on Recost calls per getPlan invocation; candidates are
        tried in increasing G·L order (section 6.2: "instances with
        large values of GL are less likely to satisfy the cost check").
    bound:
        BCG bounding function (linear by default).
    lambda_for:
        Optional map from an anchor's optimal cost to the λ that anchors
        with that cost should enforce (the dynamic-λ extension).
    check_mode:
        How estimation error enters the checks (:class:`CheckMode`).
        ``POINT`` is the paper's behavior; ``ROBUST`` and
        ``PROBABILISTIC`` evaluate the checks at the adversarial corner
        of the instance's uncertainty box.
    target_coverage:
        The coverage ``p`` that ``PROBABILISTIC`` mode certifies at.
    check_impl:
        ``"vectorized"`` (default) runs the selectivity check as a few
        numpy ops over the cache's columnar view; ``"scalar"`` keeps the
        per-entry reference loop.  Both produce identical decisions —
        the vectorized kernels replay the scalar IEEE-754 operation
        sequence (see :mod:`repro.core.columnar`) — so the knob is a
        performance choice, not a semantic one.  Falls back to scalar
        automatically when numpy is unavailable.
    """

    cache: PlanCache
    lam: float
    max_recost_candidates: int = 8
    bound: BoundingFunction = LINEAR_BOUND
    lambda_for: Optional[Callable[[float], float]] = None
    candidate_order: CandidateOrder = CandidateOrder.GL
    check_mode: CheckMode = CheckMode.POINT
    target_coverage: float = 0.95
    check_impl: str = "vectorized"
    #: Optional span recorder timing the two check phases (set when an
    #: Observability handle is wired in; None keeps probes span-free).
    spans: Optional[SpanRecorder] = None
    # Statistics for the overheads discussion of section 6.2:
    selectivity_hits: int = 0
    cost_hits: int = 0
    misses: int = 0
    total_recost_calls: int = 0
    max_recost_calls_single: int = 0
    entries_scanned: int = 0

    def __post_init__(self) -> None:
        if self.lam < 1.0:
            raise ValueError("lambda must be >= 1")
        if self.max_recost_candidates < 0:
            raise ValueError("max_recost_candidates must be >= 0")
        self.check_mode = CheckMode.coerce(self.check_mode)
        if not (0.0 < self.target_coverage <= 1.0):
            raise ValueError(
                f"target_coverage must be in (0, 1], got {self.target_coverage}"
            )
        if self.check_impl not in CHECK_IMPLS:
            raise ValueError(
                f"check_impl must be one of {CHECK_IMPLS}, got {self.check_impl!r}"
            )
        if not HAVE_NUMPY:
            self.check_impl = "scalar"
        # Memoized (view, state token, λ vector) for the vectorized path;
        # see _budget_vector.
        self._lambda_memo: Optional[tuple] = None
        self._budget_memo: Optional[tuple] = None

    @property
    def vectorized(self) -> bool:
        return self.check_impl == "vectorized"

    @property
    def supports_batch(self) -> bool:
        """Whether :meth:`probe_batch` runs as a true matmul-shaped batch
        (it always *works*, degrading to a probe loop otherwise)."""
        return self.vectorized

    def _effective_lambda(self, entry: InstanceEntry) -> float:
        if self.lambda_for is None:
            return self.lam
        return self.lambda_for(entry.optimal_cost)

    def __call__(
        self,
        sv: AnySelectivityVector,
        recost: Callable[[ShrunkenMemo, SelectivityVector], float],
    ) -> GetPlanDecision:
        """Run both checks; ``recost`` is the engine's Recost API."""
        decision = self.probe(sv, recost)
        self.commit(decision)
        return decision

    def _resolve_box(
        self,
        sv: AnySelectivityVector,
        coverage: Optional[float],
    ) -> tuple[SelectivityVector, Optional[UncertainSelectivityVector]]:
        """Split the input into (point estimate, uncertainty box or None).

        ``None`` means point checks.  In ``ROBUST`` mode a plain vector
        becomes a zero-width box (selectivities taken as exact);
        ``PROBABILISTIC`` shrinks the box to the configured coverage.  A
        per-call ``coverage`` (the brownout ladder's COVERAGE_RELAXED
        step) lowers the claim further — shrinking the box — in either
        robust mode; it never widens one.
        """
        point = as_point(sv)
        if self.check_mode is CheckMode.POINT:
            return point, None
        if isinstance(sv, UncertainSelectivityVector):
            box = sv
        else:
            box = UncertainSelectivityVector.exact(sv)
        if self.check_mode is CheckMode.PROBABILISTIC:
            box = box.for_coverage(self.target_coverage)
        if coverage is not None and coverage < box.coverage:
            box = box.for_coverage(coverage)
        return point, box

    def probe(
        self,
        sv: AnySelectivityVector,
        recost: Callable[[ShrunkenMemo, SelectivityVector], float],
        entries: Optional[Iterable[InstanceEntry]] = None,
        max_recost: Optional[int] = None,
        coverage: Optional[float] = None,
    ) -> GetPlanDecision:
        """Both checks, without committing any cache bookkeeping.

        ``entries`` defaults to the live instance list; the concurrent
        serving layer passes a :class:`~.plan_cache.CacheSnapshot`'s
        entries so the scan runs lock-free, then calls :meth:`commit`
        under the shard lock once the snapshot is validated.  Other than
        the advisory scan counter, ``probe`` does not mutate the cache.

        ``max_recost`` lowers the cost-check cap for this call only —
        the overload path passes ``0`` to run the (free) selectivity
        check while spending zero engine calls under brownout.

        ``coverage`` lowers the probability claim of robust-mode checks
        for this call only (brownout's interval-relaxation step); point
        mode ignores it.
        """
        point, box = self._resolve_box(sv, coverage)
        view = self._columnar_view(entries) if self.vectorized else None
        spans = self.spans
        timed = spans is not None and spans.enabled
        start = spans.clock.perf_counter() if timed else 0.0
        if view is not None:
            decision, candidates, presorted = self._selectivity_phase_vectorized(
                point, box, view, self._effective_cap(max_recost)
            )
            scanned = len(view) if timed else 0
        else:
            if entries is None:
                entries = self.cache.instances()
            if timed and not isinstance(entries, (tuple, list)):
                entries = tuple(entries)
            decision, candidates = self._selectivity_phase(point, box, entries)
            presorted = False
            scanned = len(entries) if timed else 0
        if timed:
            # ``candidates`` counts the cost-check candidates actually
            # materialized: the vectorized miss path stops at the recost
            # cap (only that prefix is ever consumed), so its count can
            # read lower than the scalar scan's full survivor list.
            attrs: dict = {
                "hit": decision is not None, "candidates": len(candidates),
                "scanned": scanned,
            }
            if decision is not None:
                attrs["bound"] = round(decision.inferred_suboptimality, 6)
                attrs["certificate"] = decision.certificate
                if decision.coverage != 1.0:
                    attrs["coverage"] = decision.coverage
            spans.record(
                "scr.selectivity_check", start,
                spans.clock.perf_counter() - start, **attrs,
            )
        if decision is not None:
            return decision
        if timed:
            start = spans.clock.perf_counter()
        decision = self._cost_phase(
            point, box, recost, candidates, max_recost, presorted=presorted
        )
        if timed:
            attrs = {"hit": decision.hit, "recost_calls": decision.recost_calls}
            if decision.hit:
                attrs["bound"] = round(decision.inferred_suboptimality, 6)
                attrs["certificate"] = decision.certificate
                if decision.coverage != 1.0:
                    attrs["coverage"] = decision.coverage
            spans.record(
                "scr.cost_check", start, spans.clock.perf_counter() - start,
                **attrs,
            )
        return decision

    def _columnar_view(
        self, entries: Optional[Iterable[InstanceEntry]]
    ) -> ColumnarInstances:
        """Resolve the columnar view the vectorized phases probe.

        ``None`` means the live instance list — the cache's cached
        per-epoch view.  A snapshot's entries tuple usually *is* the
        tuple the cached view was built from (identity check, no
        epoch-number guessing); anything else — a raced snapshot, an
        explicit entry subset — gets a transient view built on the spot,
        which costs one columnarisation but stays decision-identical.
        """
        if entries is None:
            return self.cache.columnar()
        entries = entries if isinstance(entries, tuple) else tuple(entries)
        view = self.cache.columnar()
        if view.entries is entries:
            return view
        return ColumnarInstances.build(-1, entries)

    def _selectivity_phase(
        self,
        point: SelectivityVector,
        box: Optional[UncertainSelectivityVector],
        entries: Iterable[InstanceEntry],
    ) -> tuple[
        Optional[GetPlanDecision],
        list[tuple[float, float, float, InstanceEntry]],
    ]:
        """Selectivity check (pure arithmetic over the instance list).

        Returns a hit decision or, on a miss, the surviving cost-check
        candidates as ``(order key, G, L, entry)`` tuples where G/L are
        point values and the key is the (corner) G·L product.

        With a box, each entry costs one extra vector op: the
        adversarial corner's G·L drives the check while the point G·L
        still feeds the decision (the live violation detector compares
        point values against the executed plan).
        """
        robust = box is not None
        cert = certificate_kind(box)
        cov = box.coverage if robust else 1.0
        candidates: list[tuple[float, float, float, InstanceEntry]] = []
        for entry in entries:
            self.entries_scanned += 1
            g, l = compute_gl(entry.sv, point)
            if robust:
                corner = adversarial_corner(entry.sv, box)
                gc, lc = compute_gl(entry.sv, corner)
            else:
                gc, lc = g, l
            check_value = self.bound.selectivity_bound(gc, lc)
            budget = self._effective_lambda(entry) / entry.suboptimality
            if check_value <= budget:
                return GetPlanDecision(
                    plan_id=entry.plan_id,
                    check=CheckKind.SELECTIVITY,
                    anchor=entry,
                    g=g,
                    l=l,
                    bound_value=(
                        entry.suboptimality * check_value if robust else None
                    ),
                    certificate=cert,
                    coverage=cov,
                ), candidates
            if not entry.retired:
                candidates.append((gc * lc, g, l, entry))
        return None, candidates

    # -- vectorized selectivity phase (columnar hot path) --------------------

    def _effective_cap(self, max_recost: Optional[int]) -> int:
        """The number of cost-check candidates this probe can consume."""
        if max_recost is None:
            return self.max_recost_candidates
        return min(self.max_recost_candidates, max_recost)

    def _budget_vector(self, view: ColumnarInstances) -> "np.ndarray":
        """``λ/S`` per stored instance, as an ``(N,)`` vector.

        With a constant λ this is one broadcast divide, memoized per
        view (views are immutable).  With a dynamic λ the callable must
        run per anchor cost; callables exposing a ``state_token()``
        (see :mod:`repro.core.dynamic_lambda`) get the resulting λ
        vector memoized per (view, token) so steady-state probes skip
        the Python loop, while token-less callables are re-evaluated
        every probe — always correct, just slower.
        """
        if self.lambda_for is None:
            memo = self._budget_memo
            if memo is not None and memo[0] is view:
                return memo[1]
            budget = self.lam / view.sub
            self._budget_memo = (view, budget)
            return budget
        token_fn = getattr(self.lambda_for, "state_token", None)
        token = token_fn() if token_fn is not None else None
        memo = self._lambda_memo
        if (
            token is not None
            and memo is not None
            and memo[0] is view
            and memo[1] == token
        ):
            lam_vec = memo[2]
        else:
            lam_vec = np.array(
                [self.lambda_for(c) for c in view.cost.tolist()],
                dtype=np.float64,
            )
            if token is not None:
                self._lambda_memo = (view, token, lam_vec)
        return lam_vec / view.sub

    def _selectivity_phase_vectorized(
        self,
        point: SelectivityVector,
        box: Optional[UncertainSelectivityVector],
        view: ColumnarInstances,
        cap: Optional[int] = None,
    ) -> tuple[
        Optional[GetPlanDecision],
        list[tuple[float, float, float, InstanceEntry]],
        bool,
    ]:
        """Columnar selectivity check: G·L against all anchors at once.

        Same contract as :meth:`_selectivity_phase` plus a ``presorted``
        flag: on a miss the surviving candidates come back already in
        the configured candidate order (sorted columnar-side via a
        stable argsort, which permutes equal keys exactly like the
        scalar path's stable ``list.sort``), so the cost phase skips its
        own sort.  ``cap`` (this probe's recost budget) lets the miss
        path materialize only the candidate prefix the cost phase can
        consume.
        """
        if len(view) == 0:
            return None, [], False
        pts = np.array([point.values], dtype=np.float64)
        g_row, l_row = gl_matrix(view.sv, pts)
        if box is not None:
            lo = np.array([box.lo.values], dtype=np.float64)
            hi = np.array([box.hi.values], dtype=np.float64)
            gc_row, lc_row = corner_gl_matrix(view.sv, lo, hi, view.sv_sq)
        else:
            gc_row, lc_row = g_row, l_row
        return self._decide_row(
            point, box, view, g_row[0], l_row[0], gc_row[0], lc_row[0],
            self._budget_vector(view), cap,
        )

    def _decide_row(
        self,
        point: SelectivityVector,
        box: Optional[UncertainSelectivityVector],
        view: ColumnarInstances,
        g: "np.ndarray",
        l: "np.ndarray",
        gc: "np.ndarray",
        lc: "np.ndarray",
        budget: "np.ndarray",
        cap: Optional[int] = None,
    ) -> tuple[
        Optional[GetPlanDecision],
        list[tuple[float, float, float, InstanceEntry]],
        bool,
    ]:
        """Turn one probe's precomputed factor vectors into a decision.

        Replays the scalar scan's semantics exactly: the hit is the
        *first* passing entry in list order; ``entries_scanned`` counts
        entries up to and including the hit (all of them on a miss); the
        cost-check candidates are the non-retired failing entries seen
        *before* the hit (all failing entries on a miss), with
        ``retired`` read live off the entry objects — the flag flips
        without an epoch bump, so the arrays can't carry it.

        ``cap`` is this probe's effective recost budget: once the miss
        path has sorted columnar-side, only the first ``cap`` surviving
        candidates can ever be consumed by the cost phase, so only that
        prefix is materialized as Python tuples (the dominant per-probe
        cost at large N).  Decisions are unaffected; only the advisory
        span attribute counting materialized candidates sees the cap.
        """
        robust = box is not None
        cert = certificate_kind(box)
        cov = box.coverage if robust else 1.0
        entries_t = view.entries
        glc = gc * lc
        degree = self.bound.degree
        if degree == 1.0:
            # pow(x, 1.0) is exact, so this IS the scalar check value.
            check = glc
        else:
            # numpy's pow special-cases small exponents (x**2 -> x*x)
            # and may round differently from libm; replay CPython's pow
            # per element to keep the ablation degrees bit-identical.
            check = np.array(
                [v ** degree for v in glc.tolist()], dtype=np.float64
            )
        mask = check <= budget
        hit = int(np.argmax(mask)) if bool(mask.any()) else -1
        if hit >= 0:
            self.entries_scanned += hit + 1
            entry = entries_t[hit]
            fail = np.flatnonzero(~mask[:hit])
            decision = GetPlanDecision(
                plan_id=entry.plan_id,
                check=CheckKind.SELECTIVITY,
                anchor=entry,
                g=float(g[hit]),
                l=float(l[hit]),
                bound_value=(
                    entry.suboptimality * float(check[hit]) if robust else None
                ),
                certificate=cert,
                coverage=cov,
            )
            presorted = False
        else:
            self.entries_scanned += len(entries_t)
            fail = np.flatnonzero(~mask)
            decision = None
            # Sort columnar-side while the keys are still vectors; the
            # stable argsort yields the same permutation as the scalar
            # path's stable list.sort over bit-identical keys, and
            # sort-then-filter-retired equals filter-then-sort because
            # stability preserves the survivors' relative order.
            if self.candidate_order is CandidateOrder.GL:
                fail = fail[np.argsort(glc[fail], kind="stable")]
                presorted = True
            elif self.candidate_order is CandidateOrder.AREA:
                fail = fail[np.argsort(-view.area[fail], kind="stable")]
                presorted = True
            else:
                # USAGE mutates without epoch bumps; the per-row rank is
                # memoized against the cache's usage_version instead.
                # Ranks are unique (ties broken by row order, exactly as
                # the scalar stable sort breaks them), so this subset
                # sort equals the scalar sort over the same candidates.
                rank = view.usage_rank(self.cache.usage_version)
                fail = fail[np.argsort(rank[fail], kind="stable")]
                presorted = True
            if presorted and cap is not None and cap < fail.size:
                return (
                    None,
                    self._materialize_prefix(fail, glc, g, l, entries_t, cap),
                    True,
                )
        idx = fail.tolist()
        keys = glc[fail].tolist()
        gs = g[fail].tolist()
        ls = l[fail].tolist()
        candidates = [
            (key, gv, lv, entries_t[i])
            for key, gv, lv, i in zip(keys, gs, ls, idx)
            if not entries_t[i].retired
        ]
        return decision, candidates, decision is None and presorted

    @staticmethod
    def _materialize_prefix(
        fail: "np.ndarray",
        glc: "np.ndarray",
        g: "np.ndarray",
        l: "np.ndarray",
        entries_t: tuple[InstanceEntry, ...],
        cap: int,
    ) -> list[tuple[float, float, float, InstanceEntry]]:
        """First ``cap`` non-retired candidates of an already-ordered
        index vector, touching as few rows as possible.

        ``retired`` must be read live per entry, so the filter can't be
        vectorized; instead the ordered indices are consumed in doubling
        windows (retirement is rare, so the first window almost always
        suffices) and materialization stops at ``cap`` tuples — the
        exact prefix the cost phase consumes.
        """
        candidates: list[tuple[float, float, float, InstanceEntry]] = []
        pos = 0
        window = max(cap, 1)
        total = int(fail.size)
        while len(candidates) < cap and pos < total:
            chunk = fail[pos:pos + window]
            rows = zip(
                glc[chunk].tolist(), g[chunk].tolist(), l[chunk].tolist(),
                chunk.tolist(),
            )
            for key, gv, lv, i in rows:
                entry = entries_t[i]
                if not entry.retired:
                    candidates.append((key, gv, lv, entry))
                    if len(candidates) == cap:
                        break
            pos += window
            window *= 2
        return candidates

    def _cost_phase(
        self,
        point: SelectivityVector,
        box: Optional[UncertainSelectivityVector],
        recost: Callable[[ShrunkenMemo, SelectivityVector], float],
        candidates: list[tuple[float, float, float, InstanceEntry]],
        max_recost: Optional[int] = None,
        presorted: bool = False,
    ) -> GetPlanDecision:
        """Cost check: capped number of Recost calls, ordered per the
        configured heuristic (G·L ascending is the paper's).

        ``presorted`` skips the ordering step when the selectivity phase
        already delivered the candidates in the configured order (the
        vectorized path sorts columnar-side).

        Recost always runs at the *point* estimate; with a box, the
        Cost Bounding Lemma transports that cost to the corner
        maximizing ``G(point→x)·L(anchor→x)``, so the certified bound
        ``S·R·(G·L)^n`` holds for every sVector in the box.
        """
        robust = box is not None
        cert = certificate_kind(box)
        cov = box.coverage if robust else 1.0
        if not presorted:
            self._order_candidates(candidates)
        cap = self.max_recost_candidates
        if max_recost is not None:
            cap = min(cap, max_recost)
        recost_calls = 0
        samples: list = []
        for _, g, l, entry in candidates[:cap]:
            plan = self.cache.maybe_plan(entry.plan_id)
            if plan is None:
                continue  # evicted under a concurrent probe; skip
            new_cost = recost(plan.shrunken_memo, point)
            recost_calls += 1
            r = new_cost / entry.optimal_cost
            samples.append((entry, r, g, l))
            budget = self._effective_lambda(entry) / entry.suboptimality
            if robust:
                corner = cost_corner(point, entry.sv, box)
                gg, ll = compute_cost_gl(point, entry.sv, corner)
                check_value = r * self.bound.selectivity_bound(gg, ll)
            else:
                check_value = self.bound.cost_bound(r, l)
            if check_value <= budget:
                return GetPlanDecision(
                    plan_id=entry.plan_id,
                    check=CheckKind.COST,
                    anchor=entry,
                    recost_calls=recost_calls,
                    recost_ratio=r,
                    g=g,
                    l=l,
                    bound_value=(
                        entry.suboptimality * check_value if robust else None
                    ),
                    certificate=cert,
                    coverage=cov,
                    recost_samples=tuple(samples),
                )
        return GetPlanDecision(
            plan_id=None, check=CheckKind.OPTIMIZER, recost_calls=recost_calls,
            certificate=cert, recost_samples=tuple(samples),
        )

    def commit(self, decision: GetPlanDecision) -> None:
        """Apply the bookkeeping of a probed decision (usage counters,
        LRU clock, hit/miss statistics).  Callers that probed against a
        snapshot must hold the cache's write lock and have revalidated
        the decision before committing."""
        if decision.check is CheckKind.SELECTIVITY:
            anchor = decision.anchor
            anchor.usage += 1
            self.cache.touch(decision.plan_id)
            anchor.hits_selectivity += 1
            anchor.last_hit_tick = self.cache.tick
            self.selectivity_hits += 1
        elif decision.check is CheckKind.COST:
            anchor = decision.anchor
            anchor.usage += 1
            self.cache.touch(decision.plan_id)
            anchor.hits_cost += 1
            anchor.recost_spend += decision.recost_calls
            anchor.last_hit_tick = self.cache.tick
            self.cost_hits += 1
            self._note_recosts(decision.recost_calls)
        else:
            self.misses += 1
            self._note_recosts(decision.recost_calls)

    def _order_candidates(
        self, candidates: list[tuple[float, float, float, InstanceEntry]]
    ) -> None:
        if self.candidate_order is CandidateOrder.GL:
            # The (corner) G·L key was computed once by the selectivity
            # phase and travels in the tuple; never re-derive it here.
            candidates.sort(key=lambda item: item[0])
        elif self.candidate_order is CandidateOrder.AREA:
            # Region area grows with the product of the anchor's
            # selectivities (Figure 4's closed form): largest first.
            # sv_product is cached per entry, not recomputed per sort.
            candidates.sort(key=lambda item: -item[3].sv_product)
        else:  # USAGE: most-used anchors first.
            candidates.sort(key=lambda item: -item[3].usage)

    def _note_recosts(self, calls: int) -> None:
        self.total_recost_calls += calls
        self.max_recost_calls_single = max(self.max_recost_calls_single, calls)

    # -- batch probing (matmul-shaped; ConcurrentPQOManager.submit_batch) ----

    def probe_batch(
        self,
        svs: "Iterable[AnySelectivityVector]",
        recost: Callable[[ShrunkenMemo, SelectivityVector], float],
        entries: Optional[Iterable[InstanceEntry]] = None,
        max_recost: Optional[int] = None,
        coverage: Optional[float] = None,
    ) -> list[GetPlanDecision]:
        """Probe many instances against the cache in one broadcast pass.

        Computes the (B, N) G·L factor matrices for the whole batch —
        chunked so the (B, N, d) intermediate stays bounded — then
        assembles each row's decision with exactly the per-probe logic,
        including per-row cost phases for the rows whose selectivity
        check missed.  Decision-identical to calling :meth:`probe` per
        vector (the order of probes is the list order); like ``probe``
        it commits nothing.  Without numpy (or under
        ``check_impl="scalar"``) it degrades to that probe loop.
        """
        svs = list(svs)
        if not svs:
            return []
        if not self.vectorized:
            if entries is not None and not isinstance(entries, tuple):
                entries = tuple(entries)
            return [
                self.probe(
                    sv, recost, entries=entries,
                    max_recost=max_recost, coverage=coverage,
                )
                for sv in svs
            ]
        view = self._columnar_view(entries)
        resolved = [self._resolve_box(sv, coverage) for sv in svs]
        decisions: list[GetPlanDecision] = []
        if len(view) == 0:
            for point, box in resolved:
                decisions.append(
                    self._cost_phase(point, box, recost, [], max_recost)
                )
            return decisions
        budget = self._budget_vector(view)
        cap = self._effective_cap(max_recost)
        # The check mode fixes box-ness uniformly across the batch.
        robust = resolved[0][1] is not None
        pts = np.array([p.values for p, _ in resolved], dtype=np.float64)
        batch, dims = pts.shape
        step = chunk_rows(batch, len(view), dims)
        for lo_row in range(0, batch, step):
            chunk = resolved[lo_row:lo_row + step]
            g_m, l_m = gl_matrix(view.sv, pts[lo_row:lo_row + step])
            if robust:
                # The adversarial corner depends only on the (lo, hi)
                # box — not on the probe point — and the kernel is
                # row-independent over the batch axis, so identical
                # boxes (common: a whole batch often shares one
                # coverage box) are evaluated once and gathered back by
                # inverse index.  Bit-identical: each row's result is a
                # pure function of its own box row.
                box_rows: dict[tuple, int] = {}
                inverse = [
                    box_rows.setdefault((b.lo.values, b.hi.values), len(box_rows))
                    for _, b in chunk
                ]
                lo = np.array([k[0] for k in box_rows], dtype=np.float64)
                hi = np.array([k[1] for k in box_rows], dtype=np.float64)
                gc_m, lc_m = corner_gl_matrix(view.sv, lo, hi, view.sv_sq)
                if len(box_rows) < len(chunk):
                    inv = np.array(inverse, dtype=np.intp)
                    gc_m, lc_m = gc_m[inv], lc_m[inv]
            else:
                gc_m, lc_m = g_m, l_m
            for j, (point, box) in enumerate(chunk):
                decision, candidates, presorted = self._decide_row(
                    point, box, view,
                    g_m[j], l_m[j], gc_m[j], lc_m[j], budget, cap,
                )
                if decision is None:
                    decision = self._cost_phase(
                        point, box, recost, candidates, max_recost,
                        presorted=presorted,
                    )
                decisions.append(decision)
        return decisions
