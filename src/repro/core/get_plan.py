"""The getPlan module (sections 4.3, 5 and 6.2; Algorithm 1).

Given a new query instance's selectivity vector, decide — on the
critical path of query execution — whether a cached plan can be used
while preserving λ-optimality:

1. **Selectivity check** over the instance list: reuse anchor ``q_e``'s
   plan if ``G·L ≤ λ/S`` (no engine call at all).
2. **Cost check** over the surviving candidates, cheapest-G·L first and
   capped (the section 6.2 pruning heuristic): reuse if ``R·L ≤ λ/S``
   where ``R`` comes from one Recost call.
3. Otherwise report a miss; the caller makes the optimizer call.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Iterable, Optional

from ..obs.spans import SpanRecorder
from ..optimizer.recost import ShrunkenMemo
from ..query.instance import SelectivityVector
from .bounds import BoundingFunction, LINEAR_BOUND, compute_gl
from .plan_cache import InstanceEntry, PlanCache


class CheckKind(Enum):
    """Which mechanism produced the plan decision for an instance."""

    SELECTIVITY = "selectivity"
    COST = "cost"
    OPTIMIZER = "optimizer"


class CandidateOrder(Enum):
    """Cost-check candidate ordering (§6.2 and its alternatives).

    * ``GL`` — increasing G·L product (the paper's choice: low-G·L
      anchors are most likely to pass the cost check);
    * ``AREA`` — decreasing selectivity-region area, i.e. anchors whose
      regions cover the most space first (∝ Π s_i for fixed λ);
    * ``USAGE`` — decreasing usage count U (popular anchors first).
    """

    GL = "gl"
    AREA = "area"
    USAGE = "usage"


@dataclass
class GetPlanDecision:
    """Outcome of one getPlan invocation."""

    plan_id: Optional[int]
    check: CheckKind
    anchor: Optional[InstanceEntry] = None
    recost_calls: int = 0
    # Data for Appendix G violation detection (only set on cost checks):
    recost_ratio: float = 0.0
    g: float = 0.0
    l: float = 0.0

    @property
    def hit(self) -> bool:
        return self.plan_id is not None

    @property
    def inferred_suboptimality(self) -> float:
        """The bound certified for the reused plan (``S·G·L`` or ``S·R·L``)."""
        if self.anchor is None:
            return 1.0
        if self.check is CheckKind.SELECTIVITY:
            return self.anchor.suboptimality * self.g * self.l
        return self.anchor.suboptimality * self.recost_ratio * self.l


@dataclass
class GetPlan:
    """Configurable getPlan with the paper's pruning heuristic.

    Parameters
    ----------
    lam:
        The sub-optimality bound λ (or a per-instance λ via
        ``lambda_for``; see Appendix D).
    max_recost_candidates:
        Cap on Recost calls per getPlan invocation; candidates are
        tried in increasing G·L order (section 6.2: "instances with
        large values of GL are less likely to satisfy the cost check").
    bound:
        BCG bounding function (linear by default).
    lambda_for:
        Optional map from an anchor's optimal cost to the λ that anchors
        with that cost should enforce (the dynamic-λ extension).
    """

    cache: PlanCache
    lam: float
    max_recost_candidates: int = 8
    bound: BoundingFunction = LINEAR_BOUND
    lambda_for: Optional[Callable[[float], float]] = None
    candidate_order: CandidateOrder = CandidateOrder.GL
    #: Optional span recorder timing the two check phases (set when an
    #: Observability handle is wired in; None keeps probes span-free).
    spans: Optional[SpanRecorder] = None
    # Statistics for the overheads discussion of section 6.2:
    selectivity_hits: int = 0
    cost_hits: int = 0
    misses: int = 0
    total_recost_calls: int = 0
    max_recost_calls_single: int = 0
    entries_scanned: int = 0

    def __post_init__(self) -> None:
        if self.lam < 1.0:
            raise ValueError("lambda must be >= 1")
        if self.max_recost_candidates < 0:
            raise ValueError("max_recost_candidates must be >= 0")

    def _effective_lambda(self, entry: InstanceEntry) -> float:
        if self.lambda_for is None:
            return self.lam
        return self.lambda_for(entry.optimal_cost)

    def __call__(
        self,
        sv: SelectivityVector,
        recost: Callable[[ShrunkenMemo, SelectivityVector], float],
    ) -> GetPlanDecision:
        """Run both checks; ``recost`` is the engine's Recost API."""
        decision = self.probe(sv, recost)
        self.commit(decision)
        return decision

    def probe(
        self,
        sv: SelectivityVector,
        recost: Callable[[ShrunkenMemo, SelectivityVector], float],
        entries: Optional[Iterable[InstanceEntry]] = None,
        max_recost: Optional[int] = None,
    ) -> GetPlanDecision:
        """Both checks, without committing any cache bookkeeping.

        ``entries`` defaults to the live instance list; the concurrent
        serving layer passes a :class:`~.plan_cache.CacheSnapshot`'s
        entries so the scan runs lock-free, then calls :meth:`commit`
        under the shard lock once the snapshot is validated.  Other than
        the advisory scan counter, ``probe`` does not mutate the cache.

        ``max_recost`` lowers the cost-check cap for this call only —
        the overload path passes ``0`` to run the (free) selectivity
        check while spending zero engine calls under brownout.
        """
        if entries is None:
            entries = self.cache.instances()
        spans = self.spans
        timed = spans is not None and spans.enabled
        start = spans.clock.perf_counter() if timed else 0.0
        decision, candidates = self._selectivity_phase(sv, entries)
        if timed:
            spans.record(
                "scr.selectivity_check", start,
                spans.clock.perf_counter() - start,
                hit=decision is not None, candidates=len(candidates),
            )
        if decision is not None:
            return decision
        if timed:
            start = spans.clock.perf_counter()
        decision = self._cost_phase(sv, recost, candidates, max_recost)
        if timed:
            spans.record(
                "scr.cost_check", start, spans.clock.perf_counter() - start,
                hit=decision.hit, recost_calls=decision.recost_calls,
            )
        return decision

    def _selectivity_phase(
        self,
        sv: SelectivityVector,
        entries: Iterable[InstanceEntry],
    ) -> tuple[
        Optional[GetPlanDecision],
        list[tuple[float, float, float, InstanceEntry]],
    ]:
        """Selectivity check (pure arithmetic over the instance list).

        Returns a hit decision or, on a miss, the surviving cost-check
        candidates as ``(G·L, G, L, entry)`` tuples.
        """
        candidates: list[tuple[float, float, float, InstanceEntry]] = []
        for entry in entries:
            self.entries_scanned += 1
            g, l = compute_gl(entry.sv, sv)
            budget = self._effective_lambda(entry) / entry.suboptimality
            if self.bound.selectivity_bound(g, l) <= budget:
                return GetPlanDecision(
                    plan_id=entry.plan_id,
                    check=CheckKind.SELECTIVITY,
                    anchor=entry,
                    g=g,
                    l=l,
                ), candidates
            if not entry.retired:
                candidates.append((g * l, g, l, entry))
        return None, candidates

    def _cost_phase(
        self,
        sv: SelectivityVector,
        recost: Callable[[ShrunkenMemo, SelectivityVector], float],
        candidates: list[tuple[float, float, float, InstanceEntry]],
        max_recost: Optional[int] = None,
    ) -> GetPlanDecision:
        """Cost check: capped number of Recost calls, ordered per the
        configured heuristic (G·L ascending is the paper's)."""
        self._order_candidates(candidates)
        cap = self.max_recost_candidates
        if max_recost is not None:
            cap = min(cap, max_recost)
        recost_calls = 0
        for _, g, l, entry in candidates[:cap]:
            plan = self.cache.maybe_plan(entry.plan_id)
            if plan is None:
                continue  # evicted under a concurrent probe; skip
            new_cost = recost(plan.shrunken_memo, sv)
            recost_calls += 1
            r = new_cost / entry.optimal_cost
            budget = self._effective_lambda(entry) / entry.suboptimality
            if self.bound.cost_bound(r, l) <= budget:
                return GetPlanDecision(
                    plan_id=entry.plan_id,
                    check=CheckKind.COST,
                    anchor=entry,
                    recost_calls=recost_calls,
                    recost_ratio=r,
                    g=g,
                    l=l,
                )
        return GetPlanDecision(
            plan_id=None, check=CheckKind.OPTIMIZER, recost_calls=recost_calls
        )

    def commit(self, decision: GetPlanDecision) -> None:
        """Apply the bookkeeping of a probed decision (usage counters,
        LRU clock, hit/miss statistics).  Callers that probed against a
        snapshot must hold the cache's write lock and have revalidated
        the decision before committing."""
        if decision.check is CheckKind.SELECTIVITY:
            decision.anchor.usage += 1
            self.cache.touch(decision.plan_id)
            self.selectivity_hits += 1
        elif decision.check is CheckKind.COST:
            decision.anchor.usage += 1
            self.cache.touch(decision.plan_id)
            self.cost_hits += 1
            self._note_recosts(decision.recost_calls)
        else:
            self.misses += 1
            self._note_recosts(decision.recost_calls)

    def _order_candidates(
        self, candidates: list[tuple[float, float, float, InstanceEntry]]
    ) -> None:
        if self.candidate_order is CandidateOrder.GL:
            candidates.sort(key=lambda item: item[0])
        elif self.candidate_order is CandidateOrder.AREA:
            # Region area grows with the product of the anchor's
            # selectivities (Figure 4's closed form): largest first.
            candidates.sort(
                key=lambda item: -_product(item[3].sv)
            )
        else:  # USAGE: most-used anchors first.
            candidates.sort(key=lambda item: -item[3].usage)

    def _note_recosts(self, calls: int) -> None:
        self.total_recost_calls += calls
        self.max_recost_calls_single = max(self.max_recost_calls_single, calls)


def _product(sv: SelectivityVector) -> float:
    out = 1.0
    for s in sv:
        out *= s
    return out
