"""The paper's contribution: the SCR online PQO technique."""

from .bounds import (
    BoundingFunction,
    LINEAR_BOUND,
    QUADRATIC_BOUND,
    adversarial_corner,
    compute_cost_gl,
    compute_g,
    compute_gl,
    compute_l,
    cost_bounds,
    cost_corner,
    recost_suboptimality_bound,
    suboptimality_bound,
)
from .dynamic_lambda import DynamicLambda
from .get_plan import (
    CandidateOrder,
    CheckKind,
    CheckMode,
    GetPlan,
    GetPlanDecision,
    certificate_kind,
)
from .manage_cache import (
    EvictionPolicy,
    ManageCache,
    ManageCacheStats,
    default_lambda_r,
)
from .coverage import CoverageReport, sample_coverage
from .manager import PQOManager, TemplateState, choose_lambda
from .persistence import (
    CacheCorruptionError,
    CacheSnapshot,
    dump_cache,
    load_cache,
)
from .seeding import SeedingReport, grid_points, random_points, seed_cache
from .spatial_index import IndexedGetPlan, InstanceGridIndex
from .plan_cache import CachedPlan, InstanceEntry, PlanCache
from .regions import RecostRegion, SelectivityRegion
from .scr import SCR
from .technique import OnlinePQOTechnique, PlanChoice
from .violations import ViolationDetector, ViolationReport

__all__ = [
    "BoundingFunction",
    "CandidateOrder",
    "EvictionPolicy",
    "CacheCorruptionError",
    "CacheSnapshot",
    "CoverageReport",
    "sample_coverage",
    "IndexedGetPlan",
    "InstanceGridIndex",
    "PQOManager",
    "TemplateState",
    "choose_lambda",
    "dump_cache",
    "load_cache",
    "SeedingReport",
    "grid_points",
    "random_points",
    "seed_cache",
    "CachedPlan",
    "CheckKind",
    "CheckMode",
    "DynamicLambda",
    "GetPlan",
    "GetPlanDecision",
    "InstanceEntry",
    "LINEAR_BOUND",
    "ManageCache",
    "ManageCacheStats",
    "OnlinePQOTechnique",
    "PlanCache",
    "PlanChoice",
    "QUADRATIC_BOUND",
    "RecostRegion",
    "SCR",
    "SelectivityRegion",
    "ViolationDetector",
    "ViolationReport",
    "adversarial_corner",
    "certificate_kind",
    "compute_cost_gl",
    "compute_g",
    "compute_gl",
    "compute_l",
    "cost_bounds",
    "cost_corner",
    "default_lambda_r",
    "recost_suboptimality_bound",
    "suboptimality_bound",
]
