"""Deterministic fault injection for the three engine APIs.

The paper's guarantee (Theorem 1, Appendix G) assumes a well-behaved
engine; a production deployment gets one that fails, hangs and returns
garbage.  :class:`FaultInjector` wraps an :class:`~repro.engine.api.EngineAPI`
and injects configurable failure modes per API — transient exceptions,
deadline overruns, corrupted costs (NaN / negative / inflated) and
stale selectivity vectors — from a seeded RNG so every chaos run is
exactly reproducible.  The resilience layer
(:mod:`repro.engine.resilience`) is tested against this injector, and
the chaos workload it enables is reused by later scaling work.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Optional

import random

from ..optimizer.optimizer import OptimizationResult
from ..optimizer.recost import ShrunkenMemo
from ..query.instance import (
    QueryInstance,
    SelectivityVector,
    UncertainSelectivityVector,
    clamp_selectivity,
)
from .api import EngineAPI


class EngineFault(Exception):
    """Base class for injected / detected engine failures."""


class TransientEngineError(EngineFault):
    """A retryable failure: connection reset, deadlock victim, etc."""


class EngineTimeoutError(EngineFault):
    """A call exceeded its deadline (real or injected overrun)."""


@dataclass
class FaultProfile:
    """Failure rates for one engine API.

    All rates are probabilities in ``[0, 1]`` drawn per call from the
    injector's seeded RNG, so a given (profile, seed) pair produces the
    same fault sequence every run.

    Attributes
    ----------
    error_rate:
        Probability of raising :class:`TransientEngineError` instead of
        answering.
    timeout_rate:
        Probability of raising :class:`EngineTimeoutError`, modelling a
        deadline overrun without actually sleeping.
    latency_rate / latency_seconds:
        Probability of a *real* latency spike of ``latency_seconds``
        before answering (lets deadline enforcement in the resilience
        layer observe genuine overruns).
    corrupt_rate:
        Probability of corrupting the *result*: for recost, a NaN,
        negative or inflated cost; for sVector, a stale (previous
        instance's) vector.
    inflate_factor:
        Multiplier used by the "inflated cost" corruption mode.
    """

    error_rate: float = 0.0
    timeout_rate: float = 0.0
    latency_rate: float = 0.0
    latency_seconds: float = 0.0
    corrupt_rate: float = 0.0
    inflate_factor: float = 100.0

    def __post_init__(self) -> None:
        for name in ("error_rate", "timeout_rate", "latency_rate", "corrupt_rate"):
            rate = getattr(self, name)
            if not (0.0 <= rate <= 1.0):
                raise ValueError(f"{name} must be in [0, 1], got {rate}")


@dataclass
class FaultConfig:
    """Per-API fault profiles for one injector."""

    optimize: FaultProfile = field(default_factory=FaultProfile)
    recost: FaultProfile = field(default_factory=FaultProfile)
    selectivity: FaultProfile = field(default_factory=FaultProfile)

    @classmethod
    def chaos(
        cls,
        recost_failure_rate: float = 0.2,
        optimize_timeout_rate: float = 0.05,
        svector_corrupt_rate: float = 0.02,
    ) -> "FaultConfig":
        """The chaos-testing workload profile the acceptance bar names:
        flaky recost (errors + corrupted costs), occasionally hanging
        optimizer, rarely-stale selectivity vectors."""
        return cls(
            optimize=FaultProfile(timeout_rate=optimize_timeout_rate),
            recost=FaultProfile(
                error_rate=recost_failure_rate / 2.0,
                corrupt_rate=recost_failure_rate / 2.0,
            ),
            selectivity=FaultProfile(corrupt_rate=svector_corrupt_rate),
        )


@dataclass(frozen=True)
class InjectedFault:
    """Record of one injected fault, for assertions and reports."""

    api: str
    mode: str          # "error" | "timeout" | "latency" | "corrupt:<kind>"
    call_index: int


class FaultInjector:
    """An :class:`EngineAPI` lookalike that injects failures.

    Sits *between* the resilience layer and the real engine::

        ResilientEngineAPI(FaultInjector(engine, config, seed=...))

    Fault draws consume a private seeded RNG in a fixed per-call order,
    so runs are deterministic regardless of wall-clock timing.
    """

    def __init__(
        self,
        engine: EngineAPI,
        config: Optional[FaultConfig] = None,
        seed: int = 0,
    ) -> None:
        self.inner = engine
        self.config = config or FaultConfig()
        self._rng = random.Random(seed)
        self.injected: list[InjectedFault] = []
        self._calls = 0
        self._last_sv: Optional[SelectivityVector] = None
        self._last_usv: Optional[UncertainSelectivityVector] = None

    # -- EngineAPI façade ----------------------------------------------------

    @property
    def template(self):
        return self.inner.template

    @property
    def counters(self):
        return self.inner.counters

    @property
    def trace(self):
        return self.inner.trace

    def begin_instance(self, index: int) -> None:
        self.inner.begin_instance(index)

    def reset_counters(self) -> None:
        self.inner.reset_counters()

    # -- injection -----------------------------------------------------------

    def _note(self, api: str, mode: str) -> None:
        self.injected.append(InjectedFault(api, mode, self._calls))

    def injected_count(self, api: Optional[str] = None) -> int:
        if api is None:
            return len(self.injected)
        return sum(1 for f in self.injected if f.api == api)

    def _pre_call(self, api: str, profile: FaultProfile) -> None:
        """Draw the exception/latency faults for one call."""
        self._calls += 1
        if self._rng.random() < profile.error_rate:
            self._note(api, "error")
            raise TransientEngineError(f"injected transient {api} failure")
        if self._rng.random() < profile.timeout_rate:
            self._note(api, "timeout")
            raise EngineTimeoutError(f"injected {api} deadline overrun")
        if profile.latency_rate and self._rng.random() < profile.latency_rate:
            self._note(api, "latency")
            time.sleep(profile.latency_seconds)

    def selectivity_vector(self, instance: QueryInstance) -> SelectivityVector:
        profile = self.config.selectivity
        self._pre_call("selectivity", profile)
        sv = self.inner.selectivity_vector(instance)
        if self._rng.random() < profile.corrupt_rate:
            # Stale vector: replay the previous instance's sVector; if
            # there is none yet, return a NaN vector (which surfaces as
            # the ValueError SelectivityVector validation raises).
            if self._last_sv is not None and self._last_sv != sv:
                self._note("selectivity", "corrupt:stale")
                return self._last_sv
            self._note("selectivity", "corrupt:nan")
            return SelectivityVector.from_sequence([math.nan] * len(sv))
        self._last_sv = sv
        return sv

    def selectivity_vector_with_error(
        self, instance: QueryInstance
    ) -> UncertainSelectivityVector:
        """Uncertain sVector under the same fault profile as the point
        variant: transient errors, timeouts, and stale/NaN corruption."""
        profile = self.config.selectivity
        self._pre_call("selectivity", profile)
        usv = self.inner.selectivity_vector_with_error(instance)
        if self._rng.random() < profile.corrupt_rate:
            if self._last_usv is not None and self._last_usv.point != usv.point:
                self._note("selectivity", "corrupt:stale")
                return self._last_usv
            self._note("selectivity", "corrupt:nan")
            # Surfaces as SelectivityVector's validation ValueError.
            return UncertainSelectivityVector.exact(
                SelectivityVector.from_sequence([math.nan] * len(usv))
            )
        self._last_usv = usv
        return usv

    def __getattr__(self, name: str):
        if name == "inner":
            raise AttributeError(name)
        return getattr(self.inner, name)

    def optimize(self, sv: SelectivityVector) -> OptimizationResult:
        self._pre_call("optimize", self.config.optimize)
        return self.inner.optimize(sv)

    def recost(self, shrunken: ShrunkenMemo, sv: SelectivityVector) -> float:
        profile = self.config.recost
        self._pre_call("recost", profile)
        cost = self.inner.recost(shrunken, sv)
        if self._rng.random() < profile.corrupt_rate:
            kind = self._rng.choice(("nan", "negative", "inflated"))
            self._note("recost", f"corrupt:{kind}")
            if kind == "nan":
                return math.nan
            if kind == "negative":
                return -abs(cost)
            return cost * profile.inflate_factor
        return cost


class DriftingCostEngine:
    """An engine façade whose cost model drifts by a settable factor.

    Models the slow divergence between the optimizer's cost model and
    reality (statistics refresh, hardware change, data growth): after
    :meth:`set_factor`, every Optimize and Recost result is scaled by
    ``factor`` while selectivity estimation passes through untouched.
    Costs stored in the plan cache *before* the shift become stale, so
    predicted-vs-recosted calibration ratios move by exactly
    ``ln factor`` — the signal the drift observatory must detect, and
    the situation a recost sweep must repair.

    Composes like the other façades::

        DriftingCostEngine(engine, factor=1.0)  # starts calibrated
    """

    def __init__(self, engine: EngineAPI, factor: float = 1.0) -> None:
        if factor <= 0.0:
            raise ValueError(f"factor must be > 0, got {factor}")
        self.inner = engine
        self.factor = factor

    def set_factor(self, factor: float) -> None:
        """Shift the cost model (1.0 = calibrated)."""
        if factor <= 0.0:
            raise ValueError(f"factor must be > 0, got {factor}")
        self.factor = factor

    # -- EngineAPI façade ----------------------------------------------------

    @property
    def template(self):
        return self.inner.template

    @property
    def counters(self):
        return self.inner.counters

    @property
    def trace(self):
        return self.inner.trace

    def begin_instance(self, index: int) -> None:
        self.inner.begin_instance(index)

    def reset_counters(self) -> None:
        self.inner.reset_counters()

    def selectivity_vector(self, instance: QueryInstance) -> SelectivityVector:
        return self.inner.selectivity_vector(instance)

    def selectivity_vector_with_error(
        self, instance: QueryInstance
    ) -> UncertainSelectivityVector:
        return self.inner.selectivity_vector_with_error(instance)

    def optimize(self, sv: SelectivityVector) -> OptimizationResult:
        result = self.inner.optimize(sv)
        if self.factor == 1.0:
            return result
        return OptimizationResult(
            plan=result.plan,
            cost=result.cost * self.factor,
            shrunken_memo=result.shrunken_memo,
            memo_groups=result.memo_groups,
            memo_expressions=result.memo_expressions,
        )

    def recost(self, shrunken: ShrunkenMemo, sv: SelectivityVector) -> float:
        return self.inner.recost(shrunken, sv) * self.factor

    def __getattr__(self, name: str):
        if name == "inner":
            raise AttributeError(name)
        return getattr(self.inner, name)


class NoisyEngine:
    """An engine façade whose sVector API returns perturbed selectivities.

    Models histogram estimation error with the standard multiplicative
    log-noise shape: ``s' = clamp(s * exp(eps))`` with
    ``eps ~ U(-noise, +noise)`` per dimension, drawn from a seeded RNG
    so every run is reproducible.  Optimize and recost pass through
    untouched — the *technique* sees noisy selectivities while an oracle
    holding the instances' true vectors measures the real damage.

    Composable with the resilience layer exactly like
    :class:`FaultInjector`::

        ResilientEngineAPI(NoisyEngine(engine, noise=0.3, seed=5))

    The uncertain variant :meth:`selectivity_vector_with_error` is
    *honest*: its interval always contains the wrapped engine's point
    estimate, because the noise band ``e^{±noise}`` is known exactly and
    any interval the inner engine reports rides along (rescaled onto the
    noisy point).  This is what lets the robust check mode keep the
    λ-guarantee under noise.
    """

    def __init__(self, engine: EngineAPI, noise: float, seed: int = 0) -> None:
        if noise < 0.0:
            raise ValueError(f"noise must be >= 0, got {noise}")
        self.inner = engine
        self.noise = noise
        self._rng = random.Random(seed)

    # -- EngineAPI façade ----------------------------------------------------

    @property
    def template(self):
        return self.inner.template

    @property
    def counters(self):
        return self.inner.counters

    @property
    def trace(self):
        return self.inner.trace

    def begin_instance(self, index: int) -> None:
        self.inner.begin_instance(index)

    def reset_counters(self) -> None:
        self.inner.reset_counters()

    def optimize(self, sv: SelectivityVector) -> OptimizationResult:
        return self.inner.optimize(sv)

    def recost(self, shrunken: ShrunkenMemo, sv: SelectivityVector) -> float:
        return self.inner.recost(shrunken, sv)

    def __getattr__(self, name: str):
        if name == "inner":
            raise AttributeError(name)
        return getattr(self.inner, name)

    # -- the noisy sVector APIs ----------------------------------------------

    def _draw(self, dims: int) -> list[float]:
        return [self._rng.uniform(-self.noise, self.noise) for _ in range(dims)]

    def selectivity_vector(self, instance: QueryInstance) -> SelectivityVector:
        sv = self.inner.selectivity_vector(instance)
        if self.noise <= 0.0:
            return sv
        return SelectivityVector.from_sequence(
            [clamp_selectivity(s * math.exp(e))
             for s, e in zip(sv, self._draw(len(sv)))]
        )

    def selectivity_vector_with_error(
        self, instance: QueryInstance
    ) -> UncertainSelectivityVector:
        usv = self.inner.selectivity_vector_with_error(instance)
        if self.noise <= 0.0:
            return usv
        band = math.exp(self.noise)
        bounds = []
        for lo, p, hi, e in zip(
            usv.lo, usv.point, usv.hi, self._draw(len(usv))
        ):
            noisy = clamp_selectivity(p * math.exp(e))
            # The clamp keeps noisy >= floor >= p * e^{-noise} territory:
            # p = noisy / e^eps lies in [noisy/band, noisy*band], so the
            # inner interval rescaled onto the noisy point and widened by
            # the band still contains the truth the inner interval
            # claimed to contain.
            n_lo = min(noisy, clamp_selectivity((lo / p) * noisy / band))
            n_hi = max(noisy, clamp_selectivity((hi / p) * noisy * band))
            bounds.append((n_lo, noisy, n_hi))
        return UncertainSelectivityVector.from_bounds(
            bounds, coverage=usv.coverage
        )
