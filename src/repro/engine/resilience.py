"""Fault-tolerant wrapper around the three engine APIs.

Production engines fail, hang and return garbage; the λ-guarantee must
survive that without ever being *silently* weakened.  This module wraps
any :class:`~repro.engine.api.EngineAPI` (or a
:class:`~repro.engine.faults.FaultInjector` around one) with:

* **retries** with exponential backoff and deterministic, seeded jitter;
* **per-API deadlines** — a call that answers after its deadline is
  treated as failed;
* a **circuit breaker** on the Recost API, short-circuiting calls while
  the engine is misbehaving;
* **fail-closed degradation** that preserves the guarantee:

  - a failed recost is reported as cost ``+inf`` so the cost check can
    only *miss* — SCR never certifies a bound it did not verify;
  - a failed optimize raises :class:`OptimizeUnavailableError`; SCR
    catches it and serves the best cached plan explicitly flagged
    ``uncertified``;
  - a failed sVector call reuses the last-known-good vector inflated by
    a conservative factor, and the served instance is flagged
    ``uncertified``.

Every fault, retry and breaker transition is counted in
:class:`~repro.engine.api.ResilienceCounters` and traced in the
:class:`~repro.engine.tracing.TraceLog`.
"""

from __future__ import annotations

import math
import random
import threading
import time
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Optional, TypeVar

from ..optimizer.optimizer import OptimizationResult
from ..optimizer.recost import ShrunkenMemo
from ..query.instance import (
    QueryInstance,
    SelectivityVector,
    UncertainSelectivityVector,
)
from ..obs.handle import base_engine
from .api import EngineAPI
from .faults import EngineFault, EngineTimeoutError

T = TypeVar("T")

#: Exception types treated as a (retryable) engine failure.  ValueError
#: and ArithmeticError cover garbage results that fail validation inside
#: the engine (e.g. a NaN selectivity rejected by SelectivityVector).
FAILURE_TYPES = (EngineFault, ValueError, ArithmeticError)


class OptimizeUnavailableError(EngineFault):
    """The optimizer failed every retry; callers must degrade explicitly."""


class SelectivityUnavailableError(EngineFault):
    """sVector failed every retry and no last-known-good vector exists."""


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter.

    ``backoff(attempt, rng)`` for attempt ``1, 2, ...`` returns
    ``min(max_backoff, base * multiplier**(attempt-1))`` scaled by a
    jitter factor in ``[1, 1+jitter]`` drawn from the caller's seeded
    RNG — deterministic for a fixed seed, desynchronized across
    templates with different seeds.
    """

    max_attempts: int = 3
    base_backoff: float = 0.005
    multiplier: float = 2.0
    max_backoff: float = 0.1
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")

    def backoff(self, attempt: int, rng: random.Random) -> float:
        raw = min(self.max_backoff, self.base_backoff * self.multiplier ** (attempt - 1))
        return raw * (1.0 + self.jitter * rng.random())


class BreakerState(Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


@dataclass
class CircuitBreaker:
    """Count-based circuit breaker (no wall-clock dependence).

    ``failure_threshold`` consecutive failures open the circuit; while
    open, ``allow()`` rejects calls until ``cooldown_calls`` rejections
    have elapsed, then one probe is let through (half-open).  The probe
    closes the breaker on success and re-opens it on failure.
    """

    failure_threshold: int = 5
    cooldown_calls: int = 20
    state: BreakerState = BreakerState.CLOSED
    consecutive_failures: int = 0
    rejected_in_cooldown: int = 0
    opens: int = 0
    closes: int = 0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.cooldown_calls < 1:
            raise ValueError("cooldown_calls must be >= 1")

    @property
    def is_open(self) -> bool:
        return self.state is BreakerState.OPEN

    def allow(self) -> tuple[bool, Optional[str]]:
        """Gate one call; returns (allowed, transition-or-None)."""
        if self.state is BreakerState.OPEN:
            self.rejected_in_cooldown += 1
            if self.rejected_in_cooldown >= self.cooldown_calls:
                self.state = BreakerState.HALF_OPEN
                return True, "open->half-open"
            return False, None
        return True, None

    def record_success(self) -> Optional[str]:
        self.consecutive_failures = 0
        if self.state is BreakerState.HALF_OPEN:
            self.state = BreakerState.CLOSED
            self.closes += 1
            return "half-open->closed"
        return None

    def record_failure(self) -> Optional[str]:
        if self.state is BreakerState.HALF_OPEN:
            self._open()
            return "half-open->open"
        self.consecutive_failures += 1
        if (
            self.state is BreakerState.CLOSED
            and self.consecutive_failures >= self.failure_threshold
        ):
            self._open()
            return "closed->open"
        return None

    def _open(self) -> None:
        self.state = BreakerState.OPEN
        self.opens += 1
        self.rejected_in_cooldown = 0
        self.consecutive_failures = 0


@dataclass(frozen=True)
class ResiliencePolicy:
    """Tunables for one :class:`ResilientEngineAPI`."""

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker_failure_threshold: int = 5
    breaker_cooldown_calls: int = 20
    # Per-API deadlines in seconds (None disables enforcement).
    optimize_deadline: Optional[float] = None
    recost_deadline: Optional[float] = None
    selectivity_deadline: Optional[float] = None
    # Conservative inflation applied to a reused last-known-good sVector.
    svector_inflation: float = 1.5

    def __post_init__(self) -> None:
        if self.svector_inflation < 1.0:
            raise ValueError("svector_inflation must be >= 1")


class ResilientEngineAPI:
    """Drop-in :class:`EngineAPI` façade with fault tolerance.

    Composes rather than subclasses: unknown attributes delegate to the
    wrapped engine, and ``counters`` are the wrapped engine's own (its
    ``resilience`` sub-counters are filled in by this layer).

    Parameters
    ----------
    engine:
        The engine to protect — a raw :class:`EngineAPI` or a
        :class:`~repro.engine.faults.FaultInjector` around one.
    policy:
        Retry / breaker / deadline tunables.
    seed:
        Seed for the deterministic backoff jitter.
    sleep:
        Injectable sleep (tests pass a no-op to stay fast).
    """

    def __init__(
        self,
        engine: EngineAPI,
        policy: Optional[ResiliencePolicy] = None,
        seed: int = 0,
        sleep: Optional[Callable[[float], None]] = None,
    ) -> None:
        self.inner = engine
        self.policy = policy or ResiliencePolicy()
        self._rng = random.Random(seed)
        self._sleep = sleep if sleep is not None else time.sleep
        self.recost_breaker = CircuitBreaker(
            failure_threshold=self.policy.breaker_failure_threshold,
            cooldown_calls=self.policy.breaker_cooldown_calls,
        )
        self._last_good_sv: Optional[SelectivityVector] = None
        self._last_good_usv: Optional[UncertainSelectivityVector] = None
        # Per-call state lives in thread-local storage: under concurrent
        # serving several threads share one engine, and a shared flag or
        # instance index would let thread B's call clobber thread A's
        # before A reads it (losing A's uncertified marking).
        self._tls = threading.local()

    @property
    def _index(self) -> int:
        return getattr(self._tls, "index", -1)

    @property
    def _budget_deadline(self) -> Optional[float]:
        """This thread's end-to-end call budget (absolute monotonic time)."""
        return getattr(self._tls, "budget_deadline", None)

    @contextmanager
    def call_budget(self, expires_at: Optional[float]):
        """Bound every engine call in the block by one shared deadline.

        ``expires_at`` is an absolute :func:`time.monotonic` value — the
        *remaining* budget of an end-to-end serving deadline.  While the
        scope is active (thread-locally, so concurrent servers sharing
        one engine don't clobber each other): a call starting past the
        budget fails immediately, a call *answering* past it is treated
        as timed out (fail-closed, like a per-API deadline overrun), and
        retries whose backoff would overshoot the budget are skipped.
        """
        prev = getattr(self._tls, "budget_deadline", None)
        self._tls.budget_deadline = expires_at
        try:
            yield
        finally:
            self._tls.budget_deadline = prev

    @property
    def last_selectivity_degraded(self) -> bool:
        """True iff *this thread's* most recent selectivity_vector answer
        was a degraded (stale + inflated) fallback; techniques read this
        to mark the instance uncertified.  Prefer
        :meth:`selectivity_vector_ex`, which returns the status with the
        vector instead of via shared state."""
        return getattr(self._tls, "selectivity_degraded", False)

    # -- façade --------------------------------------------------------------

    @property
    def template(self):
        return self.inner.template

    @property
    def counters(self):
        return self.inner.counters

    @property
    def trace(self):
        return self.inner.trace

    def begin_instance(self, index: int) -> None:
        self._tls.index = index
        self.inner.begin_instance(index)

    def reset_counters(self) -> None:
        self.inner.reset_counters()

    def __getattr__(self, name: str):
        if name == "inner":
            raise AttributeError(name)
        return getattr(self.inner, name)

    # -- retry machinery -----------------------------------------------------

    @property
    def _instruments(self):
        """Registry instruments attached to the base engine (or None)."""
        return getattr(base_engine(self.inner), "instruments", None)

    def _count_fault(self, api: str) -> None:
        res = self.counters.resilience
        if api == "optimize":
            res.faults_optimize += 1
        elif api == "recost":
            res.faults_recost += 1
        else:
            res.faults_selectivity += 1
        instruments = self._instruments
        if instruments is not None:
            instruments.faults[api].inc()

    def _count_degraded(self, api: str) -> None:
        instruments = self._instruments
        if instruments is not None:
            instruments.degraded[api].inc()
            # A degraded answer is fabricated locally, so no sample for
            # it ever reaches the calibration/drift feeds — note the
            # gap for the doctor's coverage accounting.
            instruments.feed_gaps[api].inc()

    def _attempt(
        self,
        api: str,
        fn: Callable[[], T],
        deadline: Optional[float],
        validate: Optional[Callable[[T], bool]] = None,
    ) -> T:
        """One guarded call: deadline enforcement + result validation."""
        budget = self._budget_deadline
        if budget is not None and time.monotonic() >= budget:
            raise EngineTimeoutError(
                f"{api} call skipped: end-to-end budget exhausted"
            )
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if deadline is not None and elapsed > deadline:
            raise EngineTimeoutError(
                f"{api} call took {elapsed:.4f}s > deadline {deadline:.4f}s"
            )
        if budget is not None and time.monotonic() > budget:
            raise EngineTimeoutError(
                f"{api} call answered past its end-to-end budget"
            )
        if validate is not None and not validate(result):
            raise ValueError(f"{api} returned an invalid result: {result!r}")
        return result

    def _call_with_retries(
        self,
        api: str,
        fn: Callable[[], T],
        deadline: Optional[float],
        validate: Optional[Callable[[T], bool]] = None,
        on_failure: Optional[Callable[[], None]] = None,
        on_success: Optional[Callable[[], None]] = None,
    ) -> T:
        retry = self.policy.retry
        last_error: Optional[Exception] = None
        for attempt in range(1, retry.max_attempts + 1):
            try:
                result = self._attempt(api, fn, deadline, validate)
            except FAILURE_TYPES as exc:
                last_error = exc
                self._count_fault(api)
                if self.trace is not None:
                    self.trace.fault(api, self._index, detail=str(exc)[:120])
                if on_failure is not None:
                    on_failure()
                if attempt < retry.max_attempts:
                    backoff = retry.backoff(attempt, self._rng)
                    budget = self._budget_deadline
                    if (
                        budget is not None
                        and time.monotonic() + backoff >= budget
                    ):
                        break  # budget can't fund another attempt
                    self.counters.resilience.retries += 1
                    instruments = self._instruments
                    if instruments is not None:
                        instruments.retries.inc()
                    if self.trace is not None:
                        self.trace.retry(api, self._index, attempt, backoff)
                    self._sleep(backoff)
                continue
            if on_success is not None:
                on_success()
            return result
        assert last_error is not None
        raise last_error

    # -- the three APIs ------------------------------------------------------

    def selectivity_vector(self, instance: QueryInstance) -> SelectivityVector:
        """sVector with retries; degrades to last-known-good, inflated.

        The inflation pushes every selectivity *up* (clamped to 1.0),
        which shrinks G·L budgets and recost ratios conservatively; the
        caller still marks the instance uncertified via
        :attr:`last_selectivity_degraded` (same thread only) or, better,
        the paired status from :meth:`selectivity_vector_ex`.
        """
        return self.selectivity_vector_ex(instance)[0]

    def selectivity_vector_ex(
        self, instance: QueryInstance
    ) -> tuple[SelectivityVector, bool]:
        """sVector plus its per-call degradation status.

        Returns ``(sv, degraded)`` where ``degraded`` is True iff the
        vector is a stale-inflated fallback and the instance must be
        served uncertified.  Returning the status with the vector (and
        mirroring it thread-locally) keeps it race-free when many
        threads share one engine.
        """
        self._tls.selectivity_degraded = False
        try:
            sv = self._call_with_retries(
                "selectivity",
                lambda: self.inner.selectivity_vector(instance),
                self.policy.selectivity_deadline,
            )
        except FAILURE_TYPES as exc:
            if self._last_good_sv is None:
                raise SelectivityUnavailableError(
                    "sVector failed and no last-known-good vector exists"
                ) from exc
            inflated = SelectivityVector.from_sequence(
                [min(1.0, s * self.policy.svector_inflation)
                 for s in self._last_good_sv]
            )
            self.counters.resilience.selectivity_fallbacks += 1
            self._count_degraded("selectivity")
            self._tls.selectivity_degraded = True
            if self.trace is not None:
                self.trace.degraded(
                    "selectivity", self._index,
                    detail=f"stale vector inflated x{self.policy.svector_inflation:g}",
                )
            return inflated, True
        self._last_good_sv = sv
        return sv, False

    def selectivity_vector_with_error(
        self, instance: QueryInstance
    ) -> UncertainSelectivityVector:
        """Uncertain sVector with retries; degrades to a *widened* stale box.

        Degraded reads inflate the interval instead of guessing: the
        last-known-good box is widened by the inflation factor, so the
        robust checks become strictly more pessimistic instead of
        trusting a stale point estimate.
        """
        return self.selectivity_vector_with_error_ex(instance)[0]

    def selectivity_vector_with_error_ex(
        self, instance: QueryInstance
    ) -> tuple[UncertainSelectivityVector, bool]:
        """Uncertain sVector plus its per-call degradation status.

        Returns ``(usv, degraded)``.  A degraded box is the last-known-good
        box widened by ``svector_inflation`` (or, when only a point
        vector was ever seen, a zero-width box around it, widened): the
        stale interval says nothing about *this* instance's truth, so
        the caller must still serve the instance uncertified — the
        widening only keeps the robust checks on the pessimistic side.
        """
        self._tls.selectivity_degraded = False
        try:
            usv = self._call_with_retries(
                "selectivity",
                lambda: self.inner.selectivity_vector_with_error(instance),
                self.policy.selectivity_deadline,
            )
        except FAILURE_TYPES as exc:
            stale = self._last_good_usv
            if stale is None and self._last_good_sv is not None:
                stale = UncertainSelectivityVector.exact(self._last_good_sv)
            if stale is None:
                raise SelectivityUnavailableError(
                    "sVector failed and no last-known-good vector exists"
                ) from exc
            widened = stale.widened(self.policy.svector_inflation)
            self.counters.resilience.selectivity_fallbacks += 1
            self._count_degraded("selectivity")
            self._tls.selectivity_degraded = True
            if self.trace is not None:
                self.trace.degraded(
                    "selectivity", self._index,
                    detail=(
                        "stale interval widened "
                        f"x{self.policy.svector_inflation:g}"
                    ),
                )
            return widened, True
        self._last_good_usv = usv
        self._last_good_sv = usv.point
        return usv, False

    def optimize(self, sv: SelectivityVector) -> OptimizationResult:
        """Optimize with retries; exhaustion raises
        :class:`OptimizeUnavailableError` for the technique to degrade
        (SCR serves its best cached plan, flagged uncertified)."""
        try:
            return self._call_with_retries(
                "optimize",
                lambda: self.inner.optimize(sv),
                self.policy.optimize_deadline,
                validate=lambda r: math.isfinite(r.cost) and r.cost > 0,
            )
        except FAILURE_TYPES as exc:
            raise OptimizeUnavailableError(
                f"optimize failed after {self.policy.retry.max_attempts} attempts"
            ) from exc

    def recost(self, shrunken: ShrunkenMemo, sv: SelectivityVector) -> float:
        """Recost behind the circuit breaker, failing *closed*.

        Any failure path returns ``+inf``: the cost check ``R·L ≤ λ/S``
        can then only miss, so a flaky recost can cause extra optimizer
        calls but never an unverified certification.
        """
        allowed, transition = self.recost_breaker.allow()
        if transition is not None:
            self._breaker_event(transition)
        if not allowed:
            res = self.counters.resilience
            res.breaker_short_circuits += 1
            res.recost_failed_closed += 1
            self._count_degraded("recost")
            if self.trace is not None:
                self.trace.degraded("recost", self._index, detail="breaker open")
            return math.inf

        def on_failure() -> None:
            t = self.recost_breaker.record_failure()
            if t is not None:
                self._breaker_event(t)

        def on_success() -> None:
            t = self.recost_breaker.record_success()
            if t is not None:
                self._breaker_event(t)

        try:
            return self._call_with_retries(
                "recost",
                lambda: self.inner.recost(shrunken, sv),
                self.policy.recost_deadline,
                validate=lambda c: math.isfinite(c) and c > 0,
                on_failure=on_failure,
                on_success=on_success,
            )
        except FAILURE_TYPES:
            self.counters.resilience.recost_failed_closed += 1
            self._count_degraded("recost")
            if self.trace is not None:
                self.trace.degraded(
                    "recost", self._index, detail="failed closed (miss)"
                )
            return math.inf

    def _breaker_event(self, transition: str) -> None:
        res = self.counters.resilience
        if transition.endswith("->open"):
            res.breaker_opens += 1
        elif transition.endswith("->closed"):
            res.breaker_closes += 1
        instruments = self._instruments
        if instruments is not None:
            instruments.breaker_transition(transition)
        if self.trace is not None:
            self.trace.breaker("recost", self._index, transition)


def resilient_engine_factory(
    policy: Optional[ResiliencePolicy] = None,
    seed: int = 0,
    sleep: Optional[Callable[[float], None]] = None,
) -> Callable[[EngineAPI], ResilientEngineAPI]:
    """An engine wrapper suitable for :class:`~repro.core.manager.PQOManager`.

    Each wrapped engine gets its own jitter stream derived from the base
    seed and the template name, so retries across templates do not
    synchronize.
    """

    def wrap(engine: EngineAPI) -> ResilientEngineAPI:
        # str hash is randomized per process; crc32 keeps seeds stable.
        template_seed = seed + (zlib.crc32(engine.template.name.encode()) & 0xFFFF)
        return ResilientEngineAPI(
            engine, policy=policy, seed=template_seed, sleep=sleep
        )

    return wrap
