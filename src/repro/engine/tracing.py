"""Decision and API-call tracing for debugging and analysis.

A :class:`TraceLog` records one event per engine API call or technique
decision, with enough detail to replay or audit a run: which check
fired, which anchor was used, what bound was certified.  The examples
use it to narrate SCR's behaviour; tests use it to assert decision
sequences precisely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator, Optional


class TraceEventKind(Enum):
    """Kinds of traced events."""

    SELECTIVITY_VECTOR = "svector"
    OPTIMIZE = "optimize"
    RECOST = "recost"
    DECISION = "decision"
    # Resilience-layer events (fault handling around the engine APIs):
    FAULT = "fault"          # a call failed or returned garbage
    RETRY = "retry"          # a failed call is being retried
    BREAKER = "breaker"      # circuit-breaker state transition
    DEGRADED = "degraded"    # a fallback answer was served
    # Concurrent-serving-layer events (shard scheduling decisions):
    SERVING = "serving"      # batch admission, single-flight, revalidation
    # Overload-protection events (admission control, brownout, shedding):
    OVERLOAD = "overload"    # brownout transitions, shed/uncertified serves


@dataclass(frozen=True)
class TraceEvent:
    """One traced event."""

    kind: TraceEventKind
    sequence_id: int
    detail: str = ""
    seconds: float = 0.0
    check: str = ""
    plan_signature: str = ""
    certified_bound: Optional[float] = None


@dataclass
class TraceLog:
    """An append-only in-memory trace with simple query helpers."""

    events: list[TraceEvent] = field(default_factory=list)
    enabled: bool = True

    def record(self, event: TraceEvent) -> None:
        if self.enabled:
            self.events.append(event)

    def decision(
        self,
        sequence_id: int,
        check: str,
        plan_signature: str,
        certified_bound: Optional[float] = None,
    ) -> None:
        self.record(TraceEvent(
            kind=TraceEventKind.DECISION,
            sequence_id=sequence_id,
            check=check,
            plan_signature=plan_signature,
            certified_bound=certified_bound,
        ))

    def api_call(
        self, kind: TraceEventKind, sequence_id: int, seconds: float,
        detail: str = "",
    ) -> None:
        self.record(TraceEvent(
            kind=kind, sequence_id=sequence_id, seconds=seconds, detail=detail
        ))

    def fault(self, api: str, sequence_id: int, detail: str = "") -> None:
        """One engine API call failed (exception, timeout or garbage)."""
        self.record(TraceEvent(
            kind=TraceEventKind.FAULT, sequence_id=sequence_id,
            check=api, detail=detail,
        ))

    def retry(self, api: str, sequence_id: int, attempt: int,
              backoff_seconds: float) -> None:
        """A failed call is being retried after ``backoff_seconds``."""
        self.record(TraceEvent(
            kind=TraceEventKind.RETRY, sequence_id=sequence_id,
            check=api, detail=f"attempt {attempt}",
            seconds=backoff_seconds,
        ))

    def breaker(self, api: str, sequence_id: int, transition: str) -> None:
        """Circuit-breaker transition, e.g. ``closed->open``."""
        self.record(TraceEvent(
            kind=TraceEventKind.BREAKER, sequence_id=sequence_id,
            check=api, detail=transition,
        ))

    def degraded(self, api: str, sequence_id: int, detail: str = "") -> None:
        """A fallback answer was served instead of a live engine result."""
        self.record(TraceEvent(
            kind=TraceEventKind.DEGRADED, sequence_id=sequence_id,
            check=api, detail=detail,
        ))

    def serving(self, event: str, sequence_id: int, detail: str = "") -> None:
        """A concurrent-serving-layer scheduling event, e.g.
        ``single_flight_collapse`` or ``epoch_retry``."""
        self.record(TraceEvent(
            kind=TraceEventKind.SERVING, sequence_id=sequence_id,
            check=event, detail=detail,
        ))

    def overload(self, event: str, sequence_id: int, detail: str = "") -> None:
        """An overload-protection decision with its reason code, e.g.
        ``shed`` / ``uncertified_serve`` / ``brownout`` transitions."""
        self.record(TraceEvent(
            kind=TraceEventKind.OVERLOAD, sequence_id=sequence_id,
            check=event, detail=detail,
        ))

    def __len__(self) -> int:
        return len(self.events)

    def of_kind(self, kind: TraceEventKind) -> Iterator[TraceEvent]:
        return (e for e in self.events if e.kind is kind)

    def decisions(self) -> list[TraceEvent]:
        return list(self.of_kind(TraceEventKind.DECISION))

    def check_counts(self) -> dict[str, int]:
        """Histogram of decision checks ('selectivity', 'cost', ...)."""
        counts: dict[str, int] = {}
        for event in self.of_kind(TraceEventKind.DECISION):
            counts[event.check] = counts.get(event.check, 0) + 1
        return counts

    def summary(self) -> str:
        """One-paragraph human-readable trace summary."""
        counts = self.check_counts()
        total = sum(counts.values())
        parts = [f"{total} decisions"]
        for check, count in sorted(counts.items()):
            parts.append(f"{check}: {count}")
        return ", ".join(parts)

    def to_jsonable(self, include_timing: bool = False) -> list[dict]:
        """The event sequence as JSON-serializable dicts.

        Wall-clock durations are excluded by default so that traces of
        deterministic runs are byte-for-byte reproducible — the golden-
        trace regression test relies on this.  Certified bounds are
        rounded to 9 decimals to absorb printing differences without
        hiding real semantic drift.
        """
        rows = []
        for event in self.events:
            row: dict = {"kind": event.kind.value, "seq": event.sequence_id}
            if event.check:
                row["check"] = event.check
            if event.detail:
                row["detail"] = event.detail
            if event.plan_signature:
                row["plan"] = event.plan_signature
            if event.certified_bound is not None:
                row["bound"] = round(event.certified_bound, 9)
            if include_timing:
                row["seconds"] = event.seconds
            rows.append(row)
        return rows
