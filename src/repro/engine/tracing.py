"""Decision and API-call tracing for debugging and analysis.

A :class:`TraceLog` records one event per engine API call or technique
decision, with enough detail to replay or audit a run: which check
fired, which anchor was used, what bound was certified.  The examples
use it to narrate SCR's behaviour; tests use it to assert decision
sequences precisely.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from enum import Enum
from typing import Iterator, Optional

#: Default ring capacity.  Far above anything a test or example emits
#: (the golden trace is a few hundred events) but bounded, so a serving
#: process tracing forever cannot grow without limit.
DEFAULT_TRACE_CAPACITY = 65536


class TraceEventKind(Enum):
    """Kinds of traced events."""

    SELECTIVITY_VECTOR = "svector"
    OPTIMIZE = "optimize"
    RECOST = "recost"
    DECISION = "decision"
    # Resilience-layer events (fault handling around the engine APIs):
    FAULT = "fault"          # a call failed or returned garbage
    RETRY = "retry"          # a failed call is being retried
    BREAKER = "breaker"      # circuit-breaker state transition
    DEGRADED = "degraded"    # a fallback answer was served
    # Concurrent-serving-layer events (shard scheduling decisions):
    SERVING = "serving"      # batch admission, single-flight, revalidation
    # Overload-protection events (admission control, brownout, shedding):
    OVERLOAD = "overload"    # brownout transitions, shed/uncertified serves


@dataclass(frozen=True)
class TraceEvent:
    """One traced event."""

    kind: TraceEventKind
    sequence_id: int
    detail: str = ""
    seconds: float = 0.0
    check: str = ""
    plan_signature: str = ""
    certified_bound: Optional[float] = None


class TraceLog:
    """A bounded in-memory trace with simple query helpers.

    ``record`` is lock-guarded so concurrent serving shards can share
    one log without interleaving corruption; retention is a ring buffer
    of ``capacity`` events — once full, the oldest events are replaced
    and counted in :attr:`dropped_events` instead of growing without
    bound.  ``events`` reads a consistent oldest-first snapshot, so all
    existing call sites (and the golden-trace fixture, whose runs stay
    far below the default capacity) see the same sequence as before.
    """

    def __init__(
        self,
        events: Optional[list[TraceEvent]] = None,
        enabled: bool = True,
        capacity: int = DEFAULT_TRACE_CAPACITY,
    ) -> None:
        if capacity < 1:
            raise ValueError("trace capacity must be >= 1")
        self.enabled = enabled
        self.capacity = capacity
        self._lock = threading.Lock()
        self._ring: list[TraceEvent] = list(events) if events else []
        self._start = 0            # ring read position once saturated
        self.dropped_events = 0
        self.total_recorded = len(self._ring)

    @property
    def events(self) -> list[TraceEvent]:
        """Retained events, oldest first (consistent snapshot)."""
        with self._lock:
            return self._ring[self._start:] + self._ring[: self._start]

    def record(self, event: TraceEvent) -> None:
        if not self.enabled:
            return
        with self._lock:
            self.total_recorded += 1
            if len(self._ring) < self.capacity:
                self._ring.append(event)
            else:
                self._ring[self._start] = event
                self._start = (self._start + 1) % self.capacity
                self.dropped_events += 1

    def decision(
        self,
        sequence_id: int,
        check: str,
        plan_signature: str,
        certified_bound: Optional[float] = None,
    ) -> None:
        self.record(TraceEvent(
            kind=TraceEventKind.DECISION,
            sequence_id=sequence_id,
            check=check,
            plan_signature=plan_signature,
            certified_bound=certified_bound,
        ))

    def api_call(
        self, kind: TraceEventKind, sequence_id: int, seconds: float,
        detail: str = "",
    ) -> None:
        self.record(TraceEvent(
            kind=kind, sequence_id=sequence_id, seconds=seconds, detail=detail
        ))

    def fault(self, api: str, sequence_id: int, detail: str = "") -> None:
        """One engine API call failed (exception, timeout or garbage)."""
        self.record(TraceEvent(
            kind=TraceEventKind.FAULT, sequence_id=sequence_id,
            check=api, detail=detail,
        ))

    def retry(self, api: str, sequence_id: int, attempt: int,
              backoff_seconds: float) -> None:
        """A failed call is being retried after ``backoff_seconds``."""
        self.record(TraceEvent(
            kind=TraceEventKind.RETRY, sequence_id=sequence_id,
            check=api, detail=f"attempt {attempt}",
            seconds=backoff_seconds,
        ))

    def breaker(self, api: str, sequence_id: int, transition: str) -> None:
        """Circuit-breaker transition, e.g. ``closed->open``."""
        self.record(TraceEvent(
            kind=TraceEventKind.BREAKER, sequence_id=sequence_id,
            check=api, detail=transition,
        ))

    def degraded(self, api: str, sequence_id: int, detail: str = "") -> None:
        """A fallback answer was served instead of a live engine result."""
        self.record(TraceEvent(
            kind=TraceEventKind.DEGRADED, sequence_id=sequence_id,
            check=api, detail=detail,
        ))

    def serving(self, event: str, sequence_id: int, detail: str = "") -> None:
        """A concurrent-serving-layer scheduling event, e.g.
        ``single_flight_collapse`` or ``epoch_retry``."""
        self.record(TraceEvent(
            kind=TraceEventKind.SERVING, sequence_id=sequence_id,
            check=event, detail=detail,
        ))

    def overload(self, event: str, sequence_id: int, detail: str = "") -> None:
        """An overload-protection decision with its reason code, e.g.
        ``shed`` / ``uncertified_serve`` / ``brownout`` transitions."""
        self.record(TraceEvent(
            kind=TraceEventKind.OVERLOAD, sequence_id=sequence_id,
            check=event, detail=detail,
        ))

    def __len__(self) -> int:
        return len(self.events)

    def of_kind(self, kind: TraceEventKind) -> Iterator[TraceEvent]:
        return (e for e in self.events if e.kind is kind)

    def decisions(self) -> list[TraceEvent]:
        return list(self.of_kind(TraceEventKind.DECISION))

    def check_counts(self) -> dict[str, int]:
        """Histogram of decision checks ('selectivity', 'cost', ...)."""
        counts: dict[str, int] = {}
        for event in self.of_kind(TraceEventKind.DECISION):
            counts[event.check] = counts.get(event.check, 0) + 1
        return counts

    def summary(self) -> str:
        """One-paragraph human-readable trace summary."""
        counts = self.check_counts()
        total = sum(counts.values())
        parts = [f"{total} decisions"]
        for check, count in sorted(counts.items()):
            parts.append(f"{check}: {count}")
        return ", ".join(parts)

    def to_jsonable(self, include_timing: bool = False) -> list[dict]:
        """The event sequence as JSON-serializable dicts.

        Wall-clock durations are excluded by default so that traces of
        deterministic runs are byte-for-byte reproducible — the golden-
        trace regression test relies on this.  Certified bounds are
        rounded to 9 decimals to absorb printing differences without
        hiding real semantic drift.
        """
        rows = []
        for event in self.events:
            row: dict = {"kind": event.kind.value, "seq": event.sequence_id}
            if event.check:
                row["check"] = event.check
            if event.detail:
                row["detail"] = event.detail
            if event.plan_signature:
                row["plan"] = event.plan_signature
            if event.certified_bound is not None:
                row["bound"] = round(event.certified_bound, 9)
            if include_timing:
                row["seconds"] = event.seconds
            rows.append(row)
        return rows
