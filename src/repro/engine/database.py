"""Database façade: schema + data + statistics + per-template engines.

A :class:`Database` bundles everything the paper's SQL Server instance
provided: the catalog, generated data, derived statistics, and a
factory for per-template :class:`~repro.engine.api.EngineAPI` objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..catalog.datagen import DatabaseData, generate_database
from ..catalog.schema import Schema
from ..catalog.statistics import DatabaseStatistics, build_statistics
from ..optimizer.cost_model import CostModel
from ..optimizer.optimizer import QueryOptimizer
from ..query.template import QueryTemplate
from ..selectivity.estimator import SelectivityEstimator
from .api import EngineAPI


@dataclass
class Database:
    """One logical database: catalog, data, statistics, engines."""

    schema: Schema
    data: DatabaseData
    stats: DatabaseStatistics
    estimator: SelectivityEstimator
    cost_model: CostModel = field(default_factory=CostModel)
    _engines: dict[str, EngineAPI] = field(default_factory=dict)

    @classmethod
    def create(
        cls,
        schema: Schema,
        seed: int = 0,
        histogram_buckets: int = 64,
        cost_model: Optional[CostModel] = None,
    ) -> "Database":
        """Generate data, build statistics and wrap them in a Database."""
        data = generate_database(schema, seed=seed)
        stats = build_statistics(schema, data, buckets=histogram_buckets)
        estimator = SelectivityEstimator(stats)
        return cls(
            schema=schema,
            data=data,
            stats=stats,
            estimator=estimator,
            cost_model=cost_model or CostModel(),
        )

    @property
    def name(self) -> str:
        return self.schema.name

    def engine(self, template: QueryTemplate) -> EngineAPI:
        """Engine API for a template (cached per template name)."""
        if template.database != self.schema.name:
            raise ValueError(
                f"template {template.name} targets database "
                f"{template.database!r}, not {self.schema.name!r}"
            )
        api = self._engines.get(template.name)
        if api is None:
            optimizer = QueryOptimizer(
                template, self.stats, self.estimator, self.cost_model
            )
            api = EngineAPI(template, optimizer, self.estimator)
            self._engines[template.name] = api
        return api
