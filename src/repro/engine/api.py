"""The three engine APIs online PQO needs, with call accounting.

Section 4.2 of the paper lists the database-engine requirements:
a traditional optimizer call, a *compute selectivity vector* call, and
a *recost plan* call.  :class:`EngineAPI` wraps them for one query
template and records call counts and wall-clock time per API, which is
what the optimization-overhead metrics and the recost-speedup benchmark
report.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from typing import Optional

from ..optimizer.optimizer import OptimizationResult, QueryOptimizer
from ..optimizer.recost import ShrunkenMemo
from ..query.instance import (
    QueryInstance,
    SelectivityVector,
    UncertainSelectivityVector,
)
from ..query.template import QueryTemplate
from ..selectivity.estimator import SelectivityEstimator
from .tracing import TraceEventKind, TraceLog


@dataclass
class ApiAccounting:
    """Counters and timers for one engine API."""

    calls: int = 0
    total_seconds: float = 0.0

    def record(self, seconds: float) -> None:
        self.calls += 1
        self.total_seconds += seconds

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.calls if self.calls else 0.0


@dataclass
class ResilienceCounters:
    """Fault-handling accounting kept alongside the API counters.

    Populated by :class:`~repro.engine.resilience.ResilientEngineAPI`;
    stays all-zero when the engine runs without a resilience layer.
    """

    faults_optimize: int = 0
    faults_recost: int = 0
    faults_selectivity: int = 0
    retries: int = 0
    breaker_opens: int = 0
    breaker_closes: int = 0
    breaker_short_circuits: int = 0
    recost_failed_closed: int = 0      # recost failures served as a miss
    optimize_fallbacks: int = 0        # optimizer failures served from cache
    selectivity_fallbacks: int = 0     # sVector failures served stale+inflated

    @property
    def total_faults(self) -> int:
        return (
            self.faults_optimize + self.faults_recost + self.faults_selectivity
        )


@dataclass
class EngineCounters:
    """Accounting for the three APIs of one :class:`EngineAPI`."""

    optimize: ApiAccounting = field(default_factory=ApiAccounting)
    recost: ApiAccounting = field(default_factory=ApiAccounting)
    selectivity: ApiAccounting = field(default_factory=ApiAccounting)
    resilience: ResilienceCounters = field(default_factory=ResilienceCounters)

    def reset(self) -> None:
        self.optimize = ApiAccounting()
        self.recost = ApiAccounting()
        self.selectivity = ApiAccounting()
        self.resilience = ResilienceCounters()

    @property
    def recost_speedup(self) -> float:
        """Mean optimizer-call time divided by mean recost time."""
        if self.recost.calls == 0 or self.recost.mean_seconds == 0.0:
            return float("inf") if self.optimize.calls else 0.0
        return self.optimize.mean_seconds / self.recost.mean_seconds


class EngineAPI:
    """Engine façade for one query template.

    All online PQO techniques (SCR and the baselines) interact with the
    database engine exclusively through this object, so their optimizer
    overheads are measured identically.
    """

    def __init__(
        self,
        template: QueryTemplate,
        optimizer: QueryOptimizer,
        estimator: SelectivityEstimator,
        trace: Optional[TraceLog] = None,
    ) -> None:
        self.template = template
        self.optimizer = optimizer
        self.estimator = estimator
        self.counters = EngineCounters()
        self.trace = trace
        # Observability handle + pre-resolved metric children; attached
        # via repro.obs.instrument_engine.  None keeps the hot path at
        # one attribute check per call.
        self.obs = None
        self.instruments = None
        # Thread-local: under concurrent serving several worker threads
        # share one engine, and a plain attribute would misattribute
        # trace events to whichever instance called begin_instance last.
        self._index_tls = threading.local()

    @property
    def _instance_index(self) -> int:
        return getattr(self._index_tls, "index", -1)

    def begin_instance(self, index: int) -> None:
        """Tag this thread's subsequent API calls with the workload
        instance index.

        Techniques call this once per arriving instance so trace events
        are attributable to the instance that triggered them.
        """
        self._index_tls.index = index

    def _observe_call(self, api: str, start: float, elapsed: float) -> None:
        """Feed one engine call into the attached observability handle."""
        instruments = self.instruments
        if instruments is None:
            return
        instruments.call_seconds[api].observe(elapsed)
        spans = self.obs.spans
        if spans.enabled:
            spans.record(
                f"engine.{api}", start, elapsed,
                template=self.template.name, seq=self._instance_index,
            )

    def selectivity_vector(self, instance: QueryInstance) -> SelectivityVector:
        """Compute the instance's sVector (cheap; always on the hot path)."""
        start = time.perf_counter()
        sv = self.estimator.selectivity_vector(self.template, instance)
        elapsed = time.perf_counter() - start
        self.counters.selectivity.record(elapsed)
        if self.instruments is not None:
            self._observe_call("selectivity", start, elapsed)
            self.instruments.calibration.record_sv(sv)
        return sv

    def selectivity_vector_with_error(
        self, instance: QueryInstance
    ) -> UncertainSelectivityVector:
        """The sVector plus per-dimension confidence bounds.

        Shares the ``selectivity`` API accounting with
        :meth:`selectivity_vector` — it is the same logical-property
        computation, just surfacing the estimator's uncertainty.
        """
        start = time.perf_counter()
        usv = self.estimator.selectivity_vector_with_error(
            self.template, instance
        )
        elapsed = time.perf_counter() - start
        self.counters.selectivity.record(elapsed)
        if self.instruments is not None:
            self._observe_call("selectivity", start, elapsed)
            self.instruments.calibration.record_sv(usv.point)
        return usv

    def optimize(self, sv: SelectivityVector) -> OptimizationResult:
        """Full optimizer call (the expensive operation PQO avoids)."""
        start = time.perf_counter()
        result = self.optimizer.optimize(sv)
        elapsed = time.perf_counter() - start
        self.counters.optimize.record(elapsed)
        if self.trace is not None:
            self.trace.api_call(
                TraceEventKind.OPTIMIZE, self._instance_index, elapsed,
                detail=result.plan.signature()[:80],
            )
        if self.instruments is not None:
            self._observe_call("optimize", start, elapsed)
        return result

    def recost(self, shrunken: ShrunkenMemo, sv: SelectivityVector) -> float:
        """Recost call: cost of a stored plan at a new instance."""
        start = time.perf_counter()
        cost = self.optimizer.recost(shrunken, sv)
        elapsed = time.perf_counter() - start
        self.counters.recost.record(elapsed)
        if self.trace is not None:
            self.trace.api_call(
                TraceEventKind.RECOST, self._instance_index, elapsed
            )
        if self.instruments is not None:
            self._observe_call("recost", start, elapsed)
        return cost

    def reset_counters(self) -> None:
        self.counters.reset()
