"""Engine façade: Database + the three engine APIs with accounting."""

from .api import ApiAccounting, EngineAPI, EngineCounters
from .database import Database
from .tracing import TraceEvent, TraceEventKind, TraceLog

__all__ = [
    "ApiAccounting",
    "Database",
    "EngineAPI",
    "EngineCounters",
    "TraceEvent",
    "TraceEventKind",
    "TraceLog",
]
