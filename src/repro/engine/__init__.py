"""Engine façade: Database + the three engine APIs with accounting,
fault injection and the resilience layer."""

from .api import ApiAccounting, EngineAPI, EngineCounters, ResilienceCounters
from .database import Database
from .faults import (
    EngineFault,
    EngineTimeoutError,
    FaultConfig,
    FaultInjector,
    FaultProfile,
    NoisyEngine,
    TransientEngineError,
)
from .resilience import (
    BreakerState,
    CircuitBreaker,
    OptimizeUnavailableError,
    ResiliencePolicy,
    ResilientEngineAPI,
    RetryPolicy,
    SelectivityUnavailableError,
    resilient_engine_factory,
)
from .tracing import TraceEvent, TraceEventKind, TraceLog

__all__ = [
    "ApiAccounting",
    "BreakerState",
    "CircuitBreaker",
    "Database",
    "EngineAPI",
    "EngineCounters",
    "EngineFault",
    "EngineTimeoutError",
    "FaultConfig",
    "FaultInjector",
    "FaultProfile",
    "NoisyEngine",
    "OptimizeUnavailableError",
    "ResilienceCounters",
    "ResiliencePolicy",
    "ResilientEngineAPI",
    "RetryPolicy",
    "SelectivityUnavailableError",
    "TraceEvent",
    "TraceEventKind",
    "TraceLog",
    "TransientEngineError",
    "resilient_engine_factory",
]
