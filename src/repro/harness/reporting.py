"""Paper-style textual reporting of experiment results.

Every experiment renders its result as the rows/series the paper's
corresponding figure or table plots, so EXPERIMENTS.md can record
paper-vs-measured side by side.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence


def format_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
    float_format: str = "{:.2f}",
) -> str:
    """Render dict-rows as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(columns or rows[0].keys())

    def cell(value: Any) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[cell(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered))
        for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for r in rendered:
        lines.append("  ".join(v.rjust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)


def format_series(
    name: str, xs: Sequence[Any], ys: Sequence[float], y_format: str = "{:.2f}"
) -> str:
    """Render an (x, y) series as one labelled line per point."""
    lines = [name]
    for x, y in zip(xs, ys):
        lines.append(f"  {x}: {y_format.format(y)}")
    return "\n".join(lines)


def percent(value: float) -> str:
    return f"{value:.1f}%"
