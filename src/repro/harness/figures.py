"""ASCII chart rendering for experiment outputs.

The paper's figures are scatter/line/bar plots; this module renders the
same series as terminal charts so `examples/full_evaluation.py` and the
benchmarks can show the *shape* of each figure without a plotting
dependency.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence


def bar_chart(
    values: Mapping[str, float],
    title: str | None = None,
    width: int = 48,
    value_format: str = "{:.1f}",
    log_scale: bool = False,
) -> str:
    """Horizontal bar chart, one row per labelled value."""
    if not values:
        return f"{title}\n(no data)" if title else "(no data)"
    items = list(values.items())
    raw = [max(0.0, float(v)) for _, v in items]
    scaled = [math.log10(1 + v) for v in raw] if log_scale else raw
    peak = max(scaled) or 1.0
    label_width = max(len(k) for k, _ in items)
    lines = [title] if title else []
    if log_scale:
        lines.append(f"(bar lengths log-scaled)")
    for (label, value), s in zip(items, scaled):
        bar = "#" * max(1 if value > 0 else 0, round(width * s / peak))
        lines.append(
            f"{label.rjust(label_width)} | {bar} {value_format.format(value)}"
        )
    return "\n".join(lines)


def line_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    title: str | None = None,
    width: int = 56,
    height: int = 14,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Multi-series scatter/line chart on a character grid.

    Each series gets a distinct glyph; points are plotted on a
    ``height`` x ``width`` grid spanning the data's bounding box.
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return f"{title}\n(no data)" if title else "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    glyphs = "*o+x@%&="
    legend = []
    for idx, (name, pts) in enumerate(series.items()):
        glyph = glyphs[idx % len(glyphs)]
        legend.append(f"{glyph} {name}")
        for x, y in pts:
            col = round((x - x_lo) / x_span * (width - 1))
            row = height - 1 - round((y - y_lo) / y_span * (height - 1))
            grid[row][col] = glyph

    lines = [title] if title else []
    lines.append(f"{y_hi:>10.2f} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{y_lo:>10.2f} ┤" + "".join(grid[-1]))
    lines.append(" " * 12 + "└" + "─" * width)
    lines.append(
        " " * 12 + f"{x_lo:g}".ljust(width - 8) + f"{x_hi:g}".rjust(8)
    )
    footer = "  ".join(legend)
    if x_label or y_label:
        footer += f"   (x: {x_label}, y: {y_label})"
    lines.append(footer)
    return "\n".join(lines)


def rows_to_series(
    rows: Sequence[Mapping[str, object]],
    group_key: str,
    x_key: str,
    y_key: str,
) -> dict[str, list[tuple[float, float]]]:
    """Pivot experiment rows into line_chart input.

    E.g. Figure 11's rows (technique, m, numopt_pct) become one series
    per technique over (m, numopt_pct).
    """
    series: dict[str, list[tuple[float, float]]] = {}
    for row in rows:
        name = str(row[group_key])
        series.setdefault(name, []).append(
            (float(row[x_key]), float(row[y_key]))  # type: ignore[arg-type]
        )
    for pts in series.values():
        pts.sort()
    return series
