"""Ground-truth oracle for metric computation.

Computing ``SO(q)`` for every instance requires the optimal cost at
``q`` and the chosen plan's cost at ``q`` even when the technique under
test made no optimizer call.  The oracle provides both *outside* the
technique's accounting: it holds its own optimizer and memoizes optimal
results per selectivity vector, so the same instance set can be
evaluated under many techniques and orderings without re-paying plan
search.

The oracle is also used to pre-compute optimal costs/plans that the
non-random orderings of Appendix H.1 need.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine.database import Database
from ..optimizer.optimizer import OptimizationResult, QueryOptimizer
from ..optimizer.recost import ShrunkenMemo
from ..query.instance import QueryInstance, SelectivityVector
from ..query.template import QueryTemplate


@dataclass
class OraclePoint:
    """Ground truth for one selectivity vector."""

    optimal_cost: float
    plan_signature: str
    shrunken_memo: ShrunkenMemo


class Oracle:
    """Memoized Optimize-Always over one (database, template) pair."""

    def __init__(self, db: Database, template: QueryTemplate) -> None:
        self.template = template
        self._optimizer = QueryOptimizer(
            template, db.stats, db.estimator, db.cost_model
        )
        self._cache: dict[tuple[float, ...], OraclePoint] = {}
        self.optimizer_calls = 0

    def optimal(self, sv: SelectivityVector) -> OraclePoint:
        """Optimal cost/plan at ``sv`` (cached)."""
        key = tuple(sv)
        point = self._cache.get(key)
        if point is None:
            result: OptimizationResult = self._optimizer.optimize(sv)
            self.optimizer_calls += 1
            point = OraclePoint(
                optimal_cost=result.cost,
                plan_signature=result.plan.signature(),
                shrunken_memo=result.shrunken_memo,
            )
            self._cache[key] = point
        return point

    def plan_cost(self, shrunken: ShrunkenMemo, sv: SelectivityVector) -> float:
        """Cost of an arbitrary plan at ``sv`` (pure recost, uncounted)."""
        return self._optimizer.recost(shrunken, sv)

    def annotate(
        self, instances: list[QueryInstance]
    ) -> tuple[list[float], list[str]]:
        """Optimal costs and plan signatures for an instance list.

        Feeds the cost- and plan-aware orderings of Appendix H.1.
        """
        costs: list[float] = []
        signatures: list[str] = []
        for inst in instances:
            point = self.optimal(inst.selectivities)
            costs.append(point.optimal_cost)
            signatures.append(point.plan_signature)
        return costs, signatures

    @property
    def distinct_plans_seen(self) -> int:
        """|P|: distinct optimal plans over all oracle queries so far."""
        return len({p.plan_signature for p in self._cache.values()})

    def feed_calibration(
        self,
        calibration,
        sv: SelectivityVector,
        predicted_cost: float,
        kind: str = "exact",
    ):
        """Feed one predicted-vs-true cost pair into the drift observatory.

        ``calibration`` is a per-template handle
        (:class:`~repro.obs.calibration.TemplateCalibration`, e.g.
        ``scr.calibration`` or ``obs.calibration.template(name)``);
        ``predicted_cost`` is what the technique's engine claimed (the
        optimizer result's cost, or an anchor's stored ``C``); the truth
        is this oracle's memoized optimal cost at the *clean* ``sv``.
        This is the only feed that can see estimation noise the engine
        is internally consistent about (e.g. a NoisyEngine's perturbed
        selectivities), because only the oracle holds ground truth.
        Returns the :class:`~repro.obs.calibration.DriftEvent` if this
        sample crossed the detector, else None.
        """
        point = self.optimal(sv)
        return calibration.record_ratio(
            "oracle", kind, predicted=predicted_cost, actual=point.optimal_cost
        )
