"""Evaluation metrics (section 2.1 of the paper).

Per instance: cost sub-optimality ``SO(q) = Cost(P(q), q) /
Cost(Popt(q), q)``.  Per sequence: ``MSO`` (max SO), ``TotalCostRatio``
(sum of chosen costs over sum of optimal costs — always in
``[1, MSO]``), ``numOpt`` (optimizer calls) and ``numPlans`` (peak
plans cached).  Across sequences the paper reports averages and 95th
percentiles, reproduced by :class:`MetricAggregate`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class InstanceRecord:
    """Measured outcome for one processed query instance."""

    sequence_id: int
    chosen_cost: float
    optimal_cost: float
    used_optimizer: bool
    check: str
    recost_calls: int = 0
    plan_signature: str = ""
    #: False when the technique served a degraded (fallback) answer with
    #: no verified λ bound; such instances are excluded from guarantee
    #: accounting (certified_mso / certified_violations).
    certified: bool = True

    @property
    def suboptimality(self) -> float:
        if self.optimal_cost <= 0:
            raise ValueError("optimal cost must be positive")
        # Chosen cost can dip below "optimal" cost only through model
        # noise; clamp so SO >= 1 as the definition requires.
        return max(1.0, self.chosen_cost / self.optimal_cost)


@dataclass
class SequenceResult:
    """All records of one (technique, workload sequence) run."""

    technique: str
    template: str
    ordering: str
    lam: float | None
    records: list[InstanceRecord] = field(default_factory=list)
    num_plans: int = 0           # peak plans cached (the paper's numPlans)
    total_recost_calls: int = 0

    def add(self, record: InstanceRecord) -> None:
        self.records.append(record)

    @property
    def m(self) -> int:
        return len(self.records)

    @property
    def suboptimalities(self) -> np.ndarray:
        return np.array([r.suboptimality for r in self.records])

    @property
    def mso(self) -> float:
        """Worst-case sub-optimality across the sequence."""
        return float(self.suboptimalities.max()) if self.records else 1.0

    @property
    def total_cost_ratio(self) -> float:
        """Aggregate sub-optimality: sum(chosen) / sum(optimal)."""
        chosen = sum(r.chosen_cost for r in self.records)
        optimal = sum(r.optimal_cost for r in self.records)
        return max(1.0, chosen / optimal) if optimal > 0 else 1.0

    @property
    def num_opt(self) -> int:
        return sum(1 for r in self.records if r.used_optimizer)

    @property
    def num_opt_percent(self) -> float:
        return 100.0 * self.num_opt / self.m if self.m else 0.0

    @property
    def num_uncertified(self) -> int:
        """Instances served by degraded paths with no verified bound."""
        return sum(1 for r in self.records if not r.certified)

    @property
    def certified_mso(self) -> float:
        """Worst-case sub-optimality over *certified* instances only —
        the population the λ-guarantee covers under engine faults."""
        certified = [r.suboptimality for r in self.records if r.certified]
        return float(max(certified)) if certified else 1.0

    def violations(self, lam: float) -> int:
        """Instances whose SO exceeded the bound (assumption violations)."""
        return int((self.suboptimalities > lam * (1 + 1e-9)).sum())

    def certified_violations(self, lam: float) -> int:
        """Certified instances whose SO exceeded λ; must be zero unless
        the BCG assumption itself was violated."""
        return sum(
            1 for r in self.records
            if r.certified and r.suboptimality > lam * (1 + 1e-9)
        )

    def running_num_opt_percent(self, prefix_lengths: Sequence[int]) -> list[float]:
        """numOpt %% over growing prefixes (Figures 11 and 18)."""
        flags = np.array([r.used_optimizer for r in self.records], dtype=np.int64)
        cum = np.cumsum(flags)
        return [100.0 * cum[n - 1] / n for n in prefix_lengths if 0 < n <= self.m]


def percentile(values: Sequence[float], p: float) -> float:
    """Percentile of a sample; 0.0 on an empty sample."""
    arr = np.asarray(list(values), dtype=np.float64)
    return float(np.percentile(arr, p)) if arr.size else 0.0


@dataclass(frozen=True)
class LatencySummary:
    """p50/p99-style summary of per-instance serving latencies.

    Produced from the raw latency samples each serving shard records;
    the concurrent serving layer reports one of these per shard plus a
    fleet-wide aggregate.
    """

    count: int
    mean_ms: float
    p50_ms: float
    p99_ms: float
    max_ms: float

    @classmethod
    def from_seconds(cls, samples: Sequence[float]) -> "LatencySummary":
        arr = np.asarray(list(samples), dtype=np.float64) * 1e3
        if arr.size == 0:
            return cls(count=0, mean_ms=0.0, p50_ms=0.0, p99_ms=0.0, max_ms=0.0)
        return cls(
            count=int(arr.size),
            mean_ms=float(arr.mean()),
            p50_ms=float(np.percentile(arr, 50.0)),
            p99_ms=float(np.percentile(arr, 99.0)),
            max_ms=float(arr.max()),
        )

    @classmethod
    def from_histogram(cls, histogram) -> "LatencySummary":
        """Summary from a registry :class:`~repro.obs.registry.Histogram`
        child (seconds buckets).  Percentiles are bucket-interpolated —
        the raw samples are gone once aggregated — so they agree with
        :meth:`from_seconds` only up to bucket resolution; ``max`` is
        clamped to the highest finite bucket edge reached."""
        count = histogram.count
        if count == 0:
            return cls(count=0, mean_ms=0.0, p50_ms=0.0, p99_ms=0.0, max_ms=0.0)
        return cls(
            count=count,
            mean_ms=histogram.sum / count * 1e3,
            p50_ms=histogram.quantile(0.50) * 1e3,
            p99_ms=histogram.quantile(0.99) * 1e3,
            max_ms=histogram.quantile(1.0) * 1e3,
        )


@dataclass(frozen=True)
class ServiceLevelSummary:
    """Outcome-labeled service summary for a run under load.

    The overload-protected serving layer resolves every submission as
    exactly one of ``certified`` (λ bound verified), ``uncertified``
    (served from cache without a verified bound) or ``shed`` (refused,
    nothing cached).  Given the per-response latencies of the *served*
    outcomes and the shed count, this summarizes the service level the
    operator actually delivered against a deadline budget.
    """

    total: int
    certified: int
    uncertified: int
    shed: int
    deadline_hit_rate: float
    p99_in_deadline_ms: float

    @classmethod
    def from_outcomes(
        cls,
        latencies_s: Sequence[float],
        certified_flags: Sequence[bool],
        shed: int,
        deadline_seconds: float | None = None,
    ) -> "ServiceLevelSummary":
        if len(latencies_s) != len(certified_flags):
            raise ValueError("one latency sample per served outcome required")
        arr = np.asarray(list(latencies_s), dtype=np.float64)
        served = int(arr.size)
        certified = int(sum(bool(c) for c in certified_flags))
        if deadline_seconds is None:
            in_deadline = arr
            hit_rate = 1.0 if served else 0.0
        else:
            in_deadline = arr[arr <= deadline_seconds]
            total_responses = served + shed
            hit_rate = (
                float(in_deadline.size) / total_responses
                if total_responses
                else 0.0
            )
        p99 = (
            float(np.percentile(in_deadline * 1e3, 99.0))
            if in_deadline.size
            else 0.0
        )
        return cls(
            total=served + shed,
            certified=certified,
            uncertified=served - certified,
            shed=shed,
            deadline_hit_rate=hit_rate,
            p99_in_deadline_ms=p99,
        )


@dataclass
class MetricAggregate:
    """Average / percentile summaries across many sequences."""

    values: np.ndarray

    @classmethod
    def over(cls, results: Sequence[SequenceResult], metric: str) -> "MetricAggregate":
        extractors = {
            "mso": lambda r: r.mso,
            "total_cost_ratio": lambda r: r.total_cost_ratio,
            "num_opt_percent": lambda r: r.num_opt_percent,
            "num_plans": lambda r: float(r.num_plans),
        }
        try:
            fn = extractors[metric]
        except KeyError:
            raise ValueError(
                f"unknown metric {metric!r}; options: {sorted(extractors)}"
            ) from None
        return cls(np.array([fn(r) for r in results], dtype=np.float64))

    @property
    def mean(self) -> float:
        return float(self.values.mean()) if self.values.size else 0.0

    def percentile(self, p: float) -> float:
        return float(np.percentile(self.values, p)) if self.values.size else 0.0

    @property
    def p95(self) -> float:
        return self.percentile(95.0)

    @property
    def maximum(self) -> float:
        return float(self.values.max()) if self.values.size else 0.0
