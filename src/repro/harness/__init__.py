"""Evaluation harness: metrics, oracle, runner, per-figure experiments."""

from .experiments import ExperimentConfig, Experiments, standard_factories
from .figures import bar_chart, line_chart, rows_to_series
from .metrics import InstanceRecord, MetricAggregate, SequenceResult
from .oracle import Oracle, OraclePoint
from .reporting import format_series, format_table, percent
from .runner import SequenceSpec, WorkloadRunner, run_sequence

__all__ = [
    "ExperimentConfig",
    "Experiments",
    "InstanceRecord",
    "MetricAggregate",
    "Oracle",
    "OraclePoint",
    "SequenceResult",
    "SequenceSpec",
    "WorkloadRunner",
    "bar_chart",
    "format_series",
    "format_table",
    "line_chart",
    "percent",
    "rows_to_series",
    "run_sequence",
    "standard_factories",
]
