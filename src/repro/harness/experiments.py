"""Per-figure experiment definitions (evaluation section of the paper).

Each experiment regenerates the data behind one table or figure:
workload, parameter sweep, techniques, and the same rows/series the
paper reports.  Benchmarks under ``benchmarks/`` invoke these with
scaled-down configurations; ``examples/full_evaluation.py`` runs them
at larger scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..baselines import PCM, Density, Ellipse, OptimizeOnce, Ranges
from ..core.dynamic_lambda import DynamicLambda
from ..core.scr import SCR
from ..engine.api import EngineAPI
from ..core.technique import OnlinePQOTechnique
from ..query.template import QueryTemplate
from ..workload.orderings import ALL_ORDERINGS, Ordering
from ..workload.suite import SuiteConfig
from ..workload.templates import dimension_sweep_template
from .metrics import MetricAggregate, SequenceResult
from .runner import SequenceSpec, WorkloadRunner

TechniqueFactory = Callable[[EngineAPI], OnlinePQOTechnique]


def standard_factories(lam: float = 2.0) -> dict[str, TechniqueFactory]:
    """The paper's Table 2 technique line-up."""
    return {
        "OptOnce": OptimizeOnce,
        f"PCM{lam:g}": lambda e: PCM(e, lam=lam),
        "Ellipse": lambda e: Ellipse(e, delta=0.90),
        "Density": lambda e: Density(e, radius=0.1, confidence=0.5),
        "Ranges": lambda e: Ranges(e, slack=0.01),
        f"SCR{lam:g}": lambda e: SCR(e, lam=lam),
    }


@dataclass
class ExperimentConfig:
    """Scale knobs shared by all experiments."""

    suite: SuiteConfig = field(default_factory=SuiteConfig)
    db_scale: float = 0.5
    orderings: Sequence[Ordering] = field(
        default_factory=lambda: list(ALL_ORDERINGS)
    )
    lam: float = 2.0

    @classmethod
    def smoke(cls) -> "ExperimentConfig":
        return cls(
            suite=SuiteConfig.smoke(),
            db_scale=0.3,
            orderings=[Ordering.RANDOM, Ordering.DECREASING_COST],
        )


class Experiments:
    """Runs and caches the per-figure experiments."""

    def __init__(self, config: ExperimentConfig | None = None) -> None:
        self.config = config or ExperimentConfig()
        self.runner = WorkloadRunner(db_scale=self.config.db_scale)
        self._suite_cache: dict[str, list[SequenceResult]] = {}

    # -- shared suite driver -------------------------------------------------

    def suite_results(
        self,
        factories: dict[str, TechniqueFactory] | None = None,
        orderings: Sequence[Ordering] | None = None,
        lam: float | None = None,
    ) -> dict[str, list[SequenceResult]]:
        """Run each technique over every (template, ordering) sequence."""
        factories = factories or standard_factories(self.config.lam)
        orderings = list(orderings or self.config.orderings)
        out: dict[str, list[SequenceResult]] = {}
        templates = self.config.suite.templates()
        for name, factory in factories.items():
            key = f"{name}|{','.join(o.value for o in orderings)}"
            if key in self._suite_cache:
                out[name] = self._suite_cache[key]
                continue
            results: list[SequenceResult] = []
            for template in templates:
                m = self.config.suite.sequence_length(template)
                for ordering in orderings:
                    spec = SequenceSpec(
                        template=template,
                        m=m,
                        ordering=ordering,
                        seed=self.config.suite.seed,
                    )
                    results.append(self.runner.run(spec, factory, lam=lam))
            self._suite_cache[key] = results
            out[name] = results
        return out

    # -- Figures 6 & 7: MSO / TotalCostRatio distributions ---------------------

    def suboptimality_distributions(
        self, technique_names: Sequence[str] | None = None
    ) -> dict[str, dict[str, list[float]]]:
        """Per-technique (MSO, TC) pairs sorted by TC (Figures 6-7)."""
        names = list(
            technique_names
            or ["OptOnce", "Ellipse", f"PCM{self.config.lam:g}",
                f"SCR{self.config.lam:g}"]
        )
        all_results = self.suite_results()
        out: dict[str, dict[str, list[float]]] = {}
        for name in names:
            results = all_results[name]
            pairs = sorted(
                ((r.total_cost_ratio, r.mso) for r in results), key=lambda p: p[0]
            )
            out[name] = {
                "total_cost_ratio": [p[0] for p in pairs],
                "mso": [p[1] for p in pairs],
            }
        return out

    # -- Figures 8, 10, 14: λ sweeps -------------------------------------------

    def lambda_sweep(
        self, lambdas: Sequence[float] = (1.1, 1.2, 1.5, 2.0)
    ) -> list[dict[str, float]]:
        """SCR metrics as λ varies (Figures 8, 10 and 14)."""
        rows = []
        for lam in lambdas:
            results = self.suite_results(
                {f"SCR{lam:g}": lambda e, lam=lam: SCR(e, lam=lam)}, lam=lam
            )[f"SCR{lam:g}"]
            tc = MetricAggregate.over(results, "total_cost_ratio")
            opt = MetricAggregate.over(results, "num_opt_percent")
            plans = MetricAggregate.over(results, "num_plans")
            rows.append({
                "lambda": lam,
                "tc_mean": tc.mean,
                "tc_p95": tc.p95,
                "numopt_mean": opt.mean,
                "numopt_p95": opt.p95,
                "numplans_mean": plans.mean,
                "numplans_p95": plans.p95,
            })
        return rows

    # -- Figures 9, 13, 16, 17: per-technique aggregates ------------------------

    def technique_aggregates(
        self, factories: dict[str, TechniqueFactory] | None = None
    ) -> list[dict[str, float | str]]:
        """Mean/p95 of all four metrics per technique."""
        all_results = self.suite_results(factories)
        rows: list[dict[str, float | str]] = []
        for name, results in all_results.items():
            rows.append({
                "technique": name,
                "mso_mean": MetricAggregate.over(results, "mso").mean,
                "mso_p95": MetricAggregate.over(results, "mso").p95,
                "tc_mean": MetricAggregate.over(results, "total_cost_ratio").mean,
                "tc_p95": MetricAggregate.over(results, "total_cost_ratio").p95,
                "numopt_mean": MetricAggregate.over(results, "num_opt_percent").mean,
                "numopt_p95": MetricAggregate.over(results, "num_opt_percent").p95,
                "numplans_mean": MetricAggregate.over(results, "num_plans").mean,
                "numplans_p95": MetricAggregate.over(results, "num_plans").p95,
            })
        return rows

    # -- Figure 11 / 18: numOpt % vs workload length -----------------------------

    def numopt_vs_m(
        self,
        template: QueryTemplate,
        lengths: Sequence[int] = (250, 500, 1000, 2000),
        factories: dict[str, TechniqueFactory] | None = None,
    ) -> list[dict[str, float | str]]:
        """Running numOpt %% over growing workloads (one template)."""
        factories = factories or {
            "SCR1.1": lambda e: SCR(e, lam=1.1),
            "SCR2": lambda e: SCR(e, lam=2.0),
            "PCM2": lambda e: PCM(e, lam=2.0),
            "Ellipse": lambda e: Ellipse(e, delta=0.90),
        }
        m = max(lengths)
        spec = SequenceSpec(
            template=template, m=m, ordering=Ordering.RANDOM,
            seed=self.config.suite.seed,
        )
        rows: list[dict[str, float | str]] = []
        for name, factory in factories.items():
            result = self.runner.run(spec, factory)
            running = result.running_num_opt_percent(lengths)
            for length, value in zip(lengths, running):
                rows.append({"technique": name, "m": length, "numopt_pct": value})
        return rows

    # -- Figure 12: numOpt % vs dimensions ----------------------------------------

    def numopt_vs_dimensions(
        self,
        dims: Sequence[int] = (2, 4, 6, 8, 10),
        m: int | None = None,
    ) -> list[dict[str, float | str]]:
        """SCR2 vs PCM2 as d grows (rd2 sweep templates)."""
        m = m or self.config.suite.instances_high_d
        rows: list[dict[str, float | str]] = []
        for d in dims:
            template = dimension_sweep_template(d)
            spec = SequenceSpec(
                template=template, m=m, ordering=Ordering.RANDOM,
                seed=self.config.suite.seed,
            )
            for name, factory in (
                ("SCR2", lambda e: SCR(e, lam=2.0)),
                ("PCM2", lambda e: PCM(e, lam=2.0)),
            ):
                result = self.runner.run(spec, factory)
                rows.append({
                    "technique": name,
                    "d": d,
                    "numopt_pct": result.num_opt_percent,
                    "numplans": result.num_plans,
                })
        return rows

    # -- Figure 15: sequences that Optimize-Once already handles -------------------

    def easy_sequence_comparison(self) -> list[dict[str, float | str]]:
        """Restrict to sequences where OptOnce has MSO < 2 (Figure 15)."""
        all_results = self.suite_results()
        once = all_results["OptOnce"]
        easy_keys = {
            (r.template, r.ordering) for r in once if r.mso < 2.0
        }
        rows: list[dict[str, float | str]] = []
        for name, results in all_results.items():
            subset = [r for r in results if (r.template, r.ordering) in easy_keys]
            if not subset:
                continue
            rows.append({
                "technique": name,
                "sequences": len(subset),
                "numplans_mean": MetricAggregate.over(subset, "num_plans").mean,
                "numopt_mean": MetricAggregate.over(subset, "num_opt_percent").mean,
            })
        return rows

    # -- Figure 19: plan budget k ------------------------------------------------

    def plan_budget_sweep(
        self, budgets: Sequence[int | None] = (None, 10, 5, 2)
    ) -> list[dict[str, float | str]]:
        """numOpt as a hard plan budget is enforced (section 6.3.1)."""
        rows: list[dict[str, float | str]] = []
        for k in budgets:
            label = "unbounded" if k is None else str(k)
            factories = {
                f"SCR2/k={label}": lambda e, k=k: SCR(e, lam=2.0, plan_budget=k)
            }
            results = self.suite_results(factories)[f"SCR2/k={label}"]
            rows.append({
                "k": label,
                "numopt_mean": MetricAggregate.over(
                    results, "num_opt_percent").mean,
                "numopt_p95": MetricAggregate.over(results, "num_opt_percent").p95,
                "numplans_mean": MetricAggregate.over(results, "num_plans").mean,
                "tc_mean": MetricAggregate.over(results, "total_cost_ratio").mean,
            })
        return rows

    # -- Figure 20: random orderings only --------------------------------------------

    def random_ordering_overheads(self) -> list[dict[str, float | str]]:
        results = self.suite_results(orderings=[Ordering.RANDOM])
        rows: list[dict[str, float | str]] = []
        for name, res in results.items():
            rows.append({
                "technique": name,
                "numopt_mean": MetricAggregate.over(res, "num_opt_percent").mean,
                "numopt_p95": MetricAggregate.over(res, "num_opt_percent").p95,
            })
        return rows

    # -- Figure 21: Recost-augmented baselines ------------------------------------------

    def recost_augmented_baselines(self) -> list[dict[str, float | str]]:
        """Appendix H.6: heuristics + SCR-style redundancy check."""
        lam = self.config.lam
        lam_r = np.sqrt(lam)
        factories: dict[str, TechniqueFactory] = {
            "Ellipse": lambda e: Ellipse(e, delta=0.90),
            "Ellipse+R": lambda e: Ellipse(e, delta=0.90, lambda_r=lam_r),
            "Density": lambda e: Density(e),
            "Density+R": lambda e: Density(e, lambda_r=lam_r),
            "Ranges": lambda e: Ranges(e, slack=0.01),
            "Ranges+R": lambda e: Ranges(e, slack=0.01, lambda_r=lam_r),
            f"SCR{lam:g}": lambda e: SCR(e, lam=lam),
        }
        rows: list[dict[str, float | str]] = []
        for name, results in self.suite_results(factories).items():
            rows.append({
                "technique": name,
                "mso_mean": MetricAggregate.over(results, "mso").mean,
                "tc_mean": MetricAggregate.over(results, "total_cost_ratio").mean,
                "numopt_mean": MetricAggregate.over(results, "num_opt_percent").mean,
                "numplans_mean": MetricAggregate.over(results, "num_plans").mean,
            })
        return rows

    # -- Appendix D: dynamic λ -------------------------------------------------------

    def dynamic_lambda_experiment(
        self,
        template: QueryTemplate,
        m: int = 1000,
        lambda_min: float = 1.1,
        lambda_max: float = 10.0,
    ) -> list[dict[str, float | str]]:
        """Static λ_min vs the dynamic [λ_min, λ_max] schedule."""
        spec = SequenceSpec(
            template=template, m=m, ordering=Ordering.RANDOM,
            seed=self.config.suite.seed,
        )
        static = self.runner.run(
            spec, lambda e: SCR(e, lam=lambda_min), lam=lambda_min
        )
        oracle = self.runner.oracle(template)
        costs, _ = oracle.annotate(self.runner.base_instances(
            template, m, self.config.suite.seed))
        schedule = DynamicLambda(
            lambda_min=lambda_min,
            lambda_max=lambda_max,
            cost_scale=float(np.median(costs)),
        )
        dynamic = self.runner.run(
            spec,
            lambda e: SCR(e, lam=lambda_max, lambda_for=schedule),
            lam=lambda_max,
        )
        rows = []
        for label, res in (("static", static), ("dynamic", dynamic)):
            rows.append({
                "mode": label,
                "numplans": res.num_plans,
                "numopt": res.num_opt,
                "tc": res.total_cost_ratio,
            })
        return rows

    # -- Appendix E: λ_r sweep ---------------------------------------------------------

    def lambda_r_sweep(
        self,
        template: QueryTemplate,
        m: int = 2000,
        lam: float = 1.1,
        lambda_rs: Sequence[float | None] = (1.0, 1.01, None, 1.5),
    ) -> list[dict[str, float | str]]:
        """Redundancy-threshold ablation (``None`` means √λ)."""
        spec = SequenceSpec(
            template=template, m=m, ordering=Ordering.RANDOM,
            seed=self.config.suite.seed,
        )
        rows = []
        for lam_r in lambda_rs:
            label = "sqrt" if lam_r is None else f"{lam_r:g}"
            result = self.runner.run(
                spec, lambda e: SCR(e, lam=lam, lambda_r=lam_r), lam=lam
            )
            rows.append({
                "lambda_r": label,
                "numplans": result.num_plans,
                "numopt": result.num_opt,
                "tc": result.total_cost_ratio,
                "recost_calls": result.total_recost_calls,
            })
        return rows

    # -- Section 7.3: getPlan overhead anatomy ---------------------------------------------

    def getplan_overheads(
        self,
        template: QueryTemplate,
        m: int = 2000,
        lam: float = 1.1,
    ) -> list[dict[str, float | str]]:
        """Effect of GL-pruning and λ_r on recost calls and plans."""
        spec = SequenceSpec(
            template=template, m=m, ordering=Ordering.RANDOM,
            seed=self.config.suite.seed,
        )
        configs: list[tuple[str, TechniqueFactory]] = [
            ("naive (no prune, keep all)",
             lambda e: SCR(e, lam=lam, lambda_r=1.0,
                           max_recost_candidates=10**6)),
            ("GL-pruned, keep all",
             lambda e: SCR(e, lam=lam, lambda_r=1.0)),
            ("GL-pruned, lambda_r=sqrt",
             lambda e: SCR(e, lam=lam)),
        ]
        rows = []
        for label, factory in configs:
            captured: list[SCR] = []

            def wrap(e, factory=factory):
                tech = factory(e)
                captured.append(tech)
                return tech

            result = self.runner.run(spec, wrap, lam=lam)
            tech = captured[0]
            rows.append({
                "config": label,
                "numplans": result.num_plans,
                "max_recosts_per_getplan": tech.get_plan.max_recost_calls_single,
                "total_recosts": tech.get_plan.total_recost_calls,
                "tc": result.total_cost_ratio,
            })
        return rows
