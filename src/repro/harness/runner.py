"""Drive an online PQO technique over a workload sequence.

For every instance the runner asks the technique for a plan (through
the engine APIs, so optimizer/recost calls are counted against the
technique) and then scores the choice against the oracle's ground
truth: the optimal cost at the instance, and the chosen plan's recost
there.  This mirrors the paper's methodology of evaluating with
optimizer-estimated costs (section 2.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..catalog.registry import get_database
from ..core.technique import OnlinePQOTechnique
from ..engine.api import EngineAPI
from ..engine.database import Database
from ..query.instance import QueryInstance
from ..query.template import QueryTemplate
from ..workload.generator import instances_for_template
from ..workload.orderings import Ordering, order_instances
from .metrics import InstanceRecord, SequenceResult
from .oracle import Oracle

TechniqueFactory = Callable[[EngineAPI], OnlinePQOTechnique]


def run_sequence(
    db: Database,
    template: QueryTemplate,
    instances: Sequence[QueryInstance],
    technique_factory: TechniqueFactory,
    oracle: Oracle | None = None,
    ordering_label: str = "given",
    lam: float | None = None,
) -> SequenceResult:
    """Run one technique over one ordered instance sequence."""
    oracle = oracle or Oracle(db, template)
    engine = EngineAPI(
        template,
        oracle._optimizer,  # share the optimizer; accounting is per-EngineAPI
        db.estimator,
    )
    technique = technique_factory(engine)
    result = SequenceResult(
        technique=technique.name,
        template=template.name,
        ordering=ordering_label,
        lam=lam,
    )
    for instance in instances:
        choice = technique.process(instance)
        truth = oracle.optimal(instance.selectivities)
        if choice.plan_signature == truth.plan_signature:
            chosen_cost = truth.optimal_cost
        else:
            chosen_cost = oracle.plan_cost(
                choice.shrunken_memo, instance.selectivities
            )
        result.add(
            InstanceRecord(
                sequence_id=instance.sequence_id,
                chosen_cost=chosen_cost,
                optimal_cost=truth.optimal_cost,
                used_optimizer=choice.used_optimizer,
                check=choice.check,
                recost_calls=choice.recost_calls,
                plan_signature=choice.plan_signature,
                certified=choice.certified,
            )
        )
        result.total_recost_calls += choice.recost_calls
    result.num_plans = technique.max_plans_cached
    return result


@dataclass
class SequenceSpec:
    """A fully specified workload sequence: template + m + ordering."""

    template: QueryTemplate
    m: int
    ordering: Ordering
    seed: int = 0


class WorkloadRunner:
    """Caches databases, oracles and instance sets across runs.

    The paper evaluates every technique on the *same* 450 sequences;
    sharing the oracle across techniques makes that affordable.
    """

    def __init__(self, db_scale: float = 1.0, db_seed: int = 42) -> None:
        self.db_scale = db_scale
        self.db_seed = db_seed
        self._oracles: dict[str, Oracle] = {}
        self._instance_sets: dict[tuple[str, int, int], list[QueryInstance]] = {}

    def database(self, name: str) -> Database:
        return get_database(name, scale=self.db_scale, seed=self.db_seed)

    def oracle(self, template: QueryTemplate) -> Oracle:
        oracle = self._oracles.get(template.name)
        if oracle is None:
            oracle = Oracle(self.database(template.database), template)
            self._oracles[template.name] = oracle
        return oracle

    def base_instances(
        self, template: QueryTemplate, m: int, seed: int = 0
    ) -> list[QueryInstance]:
        key = (template.name, m, seed)
        instances = self._instance_sets.get(key)
        if instances is None:
            instances = instances_for_template(template, m, seed=seed)
            self._instance_sets[key] = instances
        return instances

    def ordered_instances(self, spec: SequenceSpec) -> list[QueryInstance]:
        instances = self.base_instances(spec.template, spec.m, spec.seed)
        if spec.ordering is Ordering.RANDOM:
            return order_instances(instances, spec.ordering, seed=spec.seed)
        oracle = self.oracle(spec.template)
        costs, signatures = oracle.annotate(instances)
        return order_instances(
            instances, spec.ordering, costs, signatures, seed=spec.seed
        )

    def run(
        self,
        spec: SequenceSpec,
        technique_factory: TechniqueFactory,
        lam: float | None = None,
    ) -> SequenceResult:
        """Run one technique over one sequence spec."""
        db = self.database(spec.template.database)
        ordered = self.ordered_instances(spec)
        return run_sequence(
            db,
            spec.template,
            ordered,
            technique_factory,
            oracle=self.oracle(spec.template),
            ordering_label=spec.ordering.value,
            lam=lam,
        )
