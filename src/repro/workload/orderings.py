"""Workload orderings (Appendix H.1 of the paper).

Different arrival orders stress online PQO techniques differently — a
decreasing-cost order, for example, starves PCM of usable dominating
pairs (section 7.3 highlights exactly this failure mode).  The paper
evaluates five orderings of the same instance set; all five are
implemented here.  Orders other than ``random`` need each instance's
optimal cost and plan, supplied by the harness's oracle pass.
"""

from __future__ import annotations

from collections import defaultdict
from enum import Enum
from typing import Sequence

import numpy as np

from ..query.instance import QueryInstance


class Ordering(Enum):
    """The five arrival orders of Appendix H.1."""

    RANDOM = "random"
    DECREASING_COST = "decreasing_cost"
    ROUND_ROBIN_PLANS = "round_robin_plans"
    INSIDE_OUT = "inside_out"
    OUTSIDE_IN = "outside_in"


ALL_ORDERINGS = list(Ordering)


def order_instances(
    instances: Sequence[QueryInstance],
    ordering: Ordering,
    optimal_costs: Sequence[float] | None = None,
    plan_signatures: Sequence[str] | None = None,
    seed: int = 0,
) -> list[QueryInstance]:
    """Rearrange ``instances`` according to ``ordering``.

    ``optimal_costs`` is required for every ordering except RANDOM;
    ``plan_signatures`` additionally for ROUND_ROBIN_PLANS.  Sequence
    ids are rewritten to reflect the new positions.
    """
    if ordering is Ordering.RANDOM:
        rng = np.random.default_rng(seed)
        permuted = [instances[i] for i in rng.permutation(len(instances))]
        return _renumber(permuted)

    if optimal_costs is None:
        raise ValueError(f"{ordering.value} ordering requires optimal costs")
    if len(optimal_costs) != len(instances):
        raise ValueError("optimal_costs length mismatch")

    if ordering is Ordering.DECREASING_COST:
        idx = np.argsort(-np.asarray(optimal_costs), kind="stable")
        return _renumber([instances[i] for i in idx])

    if ordering is Ordering.ROUND_ROBIN_PLANS:
        if plan_signatures is None:
            raise ValueError("round-robin ordering requires plan signatures")
        if len(plan_signatures) != len(instances):
            raise ValueError("plan_signatures length mismatch")
        by_plan: dict[str, list[int]] = defaultdict(list)
        for i, sig in enumerate(plan_signatures):
            by_plan[sig].append(i)
        queues = [list(ids) for _, ids in sorted(by_plan.items())]
        ordered: list[QueryInstance] = []
        while any(queues):
            for queue in queues:
                if queue:
                    ordered.append(instances[queue.pop(0)])
        return _renumber(ordered)

    costs = np.asarray(optimal_costs, dtype=np.float64)
    mean_cost = float(costs.mean())
    deviation = np.abs(costs - mean_cost)
    if ordering is Ordering.INSIDE_OUT:
        # Near-average costs first, diverging toward the extremes.
        idx = np.argsort(deviation, kind="stable")
    elif ordering is Ordering.OUTSIDE_IN:
        # Extreme costs first, converging toward the average.
        idx = np.argsort(-deviation, kind="stable")
    else:  # pragma: no cover - enum is closed
        raise ValueError(f"unknown ordering {ordering}")
    return _renumber([instances[i] for i in idx])


def _renumber(instances: list[QueryInstance]) -> list[QueryInstance]:
    return [inst.with_sequence_id(i) for i, inst in enumerate(instances)]
