"""Parameterized query template definitions over the four databases.

The paper evaluates 90 templates across TPC-H (skewed), TPC-DS and two
real-world databases, built by adding extra one-sided range predicates
(``col <= v`` / ``col >= v``) to benchmark queries; roughly a third
have d >= 4, and RD2 enables d up to 10.  This module defines the
hand-written seed templates that capture those query shapes; the suite
module expands them programmatically to any requested count.
"""

from __future__ import annotations

from ..query.expressions import ColumnRef
from ..query.template import AggregationKind, QueryTemplate, join, range_predicate


def tpch_templates() -> list[QueryTemplate]:
    """TPC-H-like SPJ(+aggregate) templates (d = 2..5)."""
    templates = [
        # Q3-like: customer x orders x lineitem, price/date parameters.
        QueryTemplate(
            name="tpch_shipping_priority",
            database="tpch",
            tables=["customer", "orders", "lineitem"],
            joins=[
                join("orders", "o_custkey", "customer", "c_custkey"),
                join("lineitem", "l_orderkey", "orders", "o_orderkey"),
            ],
            parameterized=[
                range_predicate("customer", "c_acctbal", "<="),
                range_predicate("orders", "o_orderdate", "<="),
                range_predicate("lineitem", "l_shipdate", ">="),
            ],
        ),
        # Q5-like: 5-way join through nation, two parameters.
        QueryTemplate(
            name="tpch_local_supplier",
            database="tpch",
            tables=["customer", "orders", "lineitem", "supplier", "nation"],
            joins=[
                join("orders", "o_custkey", "customer", "c_custkey"),
                join("lineitem", "l_orderkey", "orders", "o_orderkey"),
                join("lineitem", "l_suppkey", "supplier", "s_suppkey"),
                join("supplier", "s_nationkey", "nation", "n_nationkey"),
            ],
            parameterized=[
                range_predicate("orders", "o_orderdate", "<="),
                range_predicate("lineitem", "l_quantity", ">="),
            ],
            aggregation=AggregationKind.GROUP_BY,
            group_by=ColumnRef("nation", "n_nationkey"),
        ),
        # Q10-like: returned-items style, 4 parameters.
        QueryTemplate(
            name="tpch_returned_items",
            database="tpch",
            tables=["customer", "orders", "lineitem", "nation"],
            joins=[
                join("orders", "o_custkey", "customer", "c_custkey"),
                join("lineitem", "l_orderkey", "orders", "o_orderkey"),
                join("customer", "c_nationkey", "nation", "n_nationkey"),
            ],
            parameterized=[
                range_predicate("customer", "c_acctbal", ">="),
                range_predicate("orders", "o_totalprice", "<="),
                range_predicate("lineitem", "l_extendedprice", "<="),
                range_predicate("lineitem", "l_discount", ">="),
            ],
        ),
        # Q14-like: part x lineitem promotion effect, 3 parameters.
        QueryTemplate(
            name="tpch_promotion_effect",
            database="tpch",
            tables=["part", "lineitem"],
            joins=[join("lineitem", "l_partkey", "part", "p_partkey")],
            parameterized=[
                range_predicate("lineitem", "l_shipdate", "<="),
                range_predicate("part", "p_retailprice", "<="),
                range_predicate("lineitem", "l_quantity", "<="),
            ],
            aggregation=AggregationKind.COUNT,
        ),
        # Q11-like: partsupp value over supplier/nation, d = 3.
        QueryTemplate(
            name="tpch_important_stock",
            database="tpch",
            tables=["partsupp", "supplier", "nation"],
            joins=[
                join("partsupp", "ps_suppkey", "supplier", "s_suppkey"),
                join("supplier", "s_nationkey", "nation", "n_nationkey"),
            ],
            parameterized=[
                range_predicate("partsupp", "ps_supplycost", "<="),
                range_predicate("partsupp", "ps_availqty", ">="),
                range_predicate("supplier", "s_acctbal", ">="),
            ],
        ),
        # Wide scan-heavy 2-d template over the largest table.
        QueryTemplate(
            name="tpch_lineitem_scan",
            database="tpch",
            tables=["lineitem", "orders"],
            joins=[join("lineitem", "l_orderkey", "orders", "o_orderkey")],
            parameterized=[
                range_predicate("lineitem", "l_extendedprice", "<="),
                range_predicate("orders", "o_totalprice", "<="),
            ],
            order_by=ColumnRef("orders", "o_orderdate"),
        ),
        # Plan-stable template: no index on either predicate column, so
        # the optimal plan is a sequential scan at every instance.  Such
        # queries populate the paper's Figure 15 (sequences where
        # Optimize-Once already achieves MSO < 2).
        QueryTemplate(
            name="tpch_stable_scan",
            database="tpch",
            tables=["lineitem"],
            parameterized=[
                range_predicate("lineitem", "l_quantity", "<="),
                range_predicate("lineitem", "l_discount", "<="),
            ],
            aggregation=AggregationKind.COUNT,
        ),
        # 5-dimensional variant across three relations.
        QueryTemplate(
            name="tpch_five_dim",
            database="tpch",
            tables=["customer", "orders", "lineitem"],
            joins=[
                join("orders", "o_custkey", "customer", "c_custkey"),
                join("lineitem", "l_orderkey", "orders", "o_orderkey"),
            ],
            parameterized=[
                range_predicate("customer", "c_acctbal", "<="),
                range_predicate("orders", "o_totalprice", "<="),
                range_predicate("orders", "o_orderdate", ">="),
                range_predicate("lineitem", "l_quantity", "<="),
                range_predicate("lineitem", "l_extendedprice", ">="),
            ],
        ),
    ]
    return templates


def tpcds_templates() -> list[QueryTemplate]:
    """TPC-DS-like star-join templates (d = 2..6)."""
    return [
        # Q18-like: catalog_sales against customer demographics chain.
        QueryTemplate(
            name="tpcds_q18_like",
            database="tpcds",
            tables=["catalog_sales", "customer", "customer_demographics", "date_dim"],
            joins=[
                join("catalog_sales", "cs_bill_customer_sk", "customer", "c_customer_sk"),
                join("customer", "c_cdemo_sk", "customer_demographics", "cd_demo_sk"),
                join("catalog_sales", "cs_sold_date_sk", "date_dim", "d_date_sk"),
            ],
            parameterized=[
                range_predicate("catalog_sales", "cs_quantity", "<="),
                range_predicate("customer_demographics", "cd_purchase_estimate", "<="),
                range_predicate("customer", "c_birth_year", ">="),
            ],
            aggregation=AggregationKind.GROUP_BY,
            group_by=ColumnRef("date_dim", "d_year"),
        ),
        # Q25-like: store_sales star with item and store.
        QueryTemplate(
            name="tpcds_q25_like",
            database="tpcds",
            tables=["store_sales", "item", "store", "date_dim"],
            joins=[
                join("store_sales", "ss_item_sk", "item", "i_item_sk"),
                join("store_sales", "ss_store_sk", "store", "s_store_sk"),
                join("store_sales", "ss_sold_date_sk", "date_dim", "d_date_sk"),
            ],
            parameterized=[
                range_predicate("store_sales", "ss_net_profit", ">="),
                range_predicate("item", "i_current_price", "<="),
                range_predicate("store_sales", "ss_sales_price", "<="),
            ],
        ),
        # Promotion analysis, d = 4.
        QueryTemplate(
            name="tpcds_promo_analysis",
            database="tpcds",
            tables=["store_sales", "promotion", "item"],
            joins=[
                join("store_sales", "ss_promo_sk", "promotion", "p_promo_sk"),
                join("store_sales", "ss_item_sk", "item", "i_item_sk"),
            ],
            parameterized=[
                range_predicate("store_sales", "ss_quantity", "<="),
                range_predicate("promotion", "p_cost", "<="),
                range_predicate("item", "i_wholesale_cost", "<="),
                range_predicate("store_sales", "ss_wholesale_cost", ">="),
            ],
            aggregation=AggregationKind.COUNT,
        ),
        # Cross-channel fact comparison, d = 6.
        QueryTemplate(
            name="tpcds_six_dim",
            database="tpcds",
            tables=["store_sales", "item", "customer", "date_dim"],
            joins=[
                join("store_sales", "ss_item_sk", "item", "i_item_sk"),
                join("store_sales", "ss_customer_sk", "customer", "c_customer_sk"),
                join("store_sales", "ss_sold_date_sk", "date_dim", "d_date_sk"),
            ],
            parameterized=[
                range_predicate("store_sales", "ss_quantity", "<="),
                range_predicate("store_sales", "ss_sales_price", "<="),
                range_predicate("store_sales", "ss_net_profit", ">="),
                range_predicate("item", "i_current_price", "<="),
                range_predicate("item", "i_wholesale_cost", ">="),
                range_predicate("customer", "c_birth_year", ">="),
            ],
        ),
        # Plan-stable fact-only template (no usable index): another
        # Figure 15 "easy" query where one plan serves every instance.
        QueryTemplate(
            name="tpcds_stable_scan",
            database="tpcds",
            tables=["store_sales"],
            parameterized=[
                range_predicate("store_sales", "ss_quantity", "<="),
                range_predicate("store_sales", "ss_net_profit", ">="),
            ],
            aggregation=AggregationKind.COUNT,
        ),
        # Catalog-side 2-d template.
        QueryTemplate(
            name="tpcds_catalog_simple",
            database="tpcds",
            tables=["catalog_sales", "item"],
            joins=[join("catalog_sales", "cs_item_sk", "item", "i_item_sk")],
            parameterized=[
                range_predicate("catalog_sales", "cs_sales_price", "<="),
                range_predicate("item", "i_current_price", ">="),
            ],
        ),
    ]


def rd1_templates() -> list[QueryTemplate]:
    """Deep-join templates over the normalized rd1 schema (d = 2..5)."""
    return [
        QueryTemplate(
            name="rd1_order_value_chain",
            database="rd1",
            tables=["account", "contract", "order_hdr", "order_line"],
            joins=[
                join("contract", "k_account", "account", "a_id"),
                join("order_hdr", "o_contract", "contract", "k_id"),
                join("order_line", "ol_order", "order_hdr", "o_id"),
            ],
            parameterized=[
                range_predicate("account", "a_balance", ">="),
                range_predicate("contract", "k_value", "<="),
                range_predicate("order_hdr", "o_amount", "<="),
            ],
        ),
        QueryTemplate(
            name="rd1_full_chain",
            database="rd1",
            tables=["tenant", "account", "contract", "order_hdr", "order_line", "item_cat"],
            joins=[
                join("account", "a_tenant", "tenant", "t_id"),
                join("contract", "k_account", "account", "a_id"),
                join("order_hdr", "o_contract", "contract", "k_id"),
                join("order_line", "ol_order", "order_hdr", "o_id"),
                join("order_line", "ol_item", "item_cat", "ic_id"),
            ],
            parameterized=[
                range_predicate("account", "a_age_days", "<="),
                range_predicate("order_hdr", "o_date", ">="),
            ],
            aggregation=AggregationKind.COUNT,
        ),
        QueryTemplate(
            name="rd1_shipping_delays",
            database="rd1",
            tables=["order_hdr", "shipment", "contract"],
            joins=[
                join("shipment", "sh_order", "order_hdr", "o_id"),
                join("order_hdr", "o_contract", "contract", "k_id"),
            ],
            parameterized=[
                range_predicate("shipment", "sh_delay_days", ">="),
                range_predicate("order_hdr", "o_amount", ">="),
                range_predicate("shipment", "sh_cost", "<="),
                range_predicate("contract", "k_value", ">="),
            ],
        ),
        QueryTemplate(
            name="rd1_line_pricing",
            database="rd1",
            tables=["order_line", "item_cat", "order_hdr"],
            joins=[
                join("order_line", "ol_item", "item_cat", "ic_id"),
                join("order_line", "ol_order", "order_hdr", "o_id"),
            ],
            parameterized=[
                range_predicate("order_line", "ol_price", "<="),
                range_predicate("order_line", "ol_qty", ">="),
                range_predicate("item_cat", "ic_list_price", "<="),
                range_predicate("item_cat", "ic_weight", "<="),
                range_predicate("order_hdr", "o_amount", "<="),
            ],
        ),
    ]


def rd2_templates() -> list[QueryTemplate]:
    """High-dimensional templates over the wide rd2 fact (d = 5..10)."""
    def fact_preds(count: int, ops: str = "<=") -> list:
        return [range_predicate("fact_wide", f"f_m{i}", ops) for i in range(count)]

    return [
        QueryTemplate(
            name="rd2_five_dim",
            database="rd2",
            tables=["fact_wide", "dim_entity"],
            joins=[join("fact_wide", "f_entity", "dim_entity", "e_id")],
            parameterized=fact_preds(4) + [
                range_predicate("dim_entity", "e_score", "<="),
            ],
        ),
        QueryTemplate(
            name="rd2_seven_dim",
            database="rd2",
            tables=["fact_wide", "dim_entity", "dim_period"],
            joins=[
                join("fact_wide", "f_entity", "dim_entity", "e_id"),
                join("fact_wide", "f_period", "dim_period", "p_id"),
            ],
            parameterized=fact_preds(6) + [
                range_predicate("dim_entity", "e_score", ">="),
            ],
        ),
        QueryTemplate(
            name="rd2_ten_dim",
            database="rd2",
            tables=["fact_wide", "dim_entity", "dim_channel"],
            joins=[
                join("fact_wide", "f_entity", "dim_entity", "e_id"),
                join("fact_wide", "f_channel", "dim_channel", "ch_id"),
            ],
            parameterized=fact_preds(8) + [
                range_predicate("dim_entity", "e_score", "<="),
                range_predicate("dim_channel", "ch_spend", "<="),
            ],
        ),
    ]


def dimension_sweep_template(d: int) -> QueryTemplate:
    """An rd2 template with exactly ``d`` parameterized predicates.

    Used by the Figure 12 experiment (numOpt vs d, 2 <= d <= 10).
    """
    if not (1 <= d <= 12):
        raise ValueError("d must be between 1 and 12")
    preds = []
    for i in range(min(d, 10)):
        preds.append(range_predicate("fact_wide", f"f_m{i}", "<="))
    tables = ["fact_wide", "dim_entity"]
    joins = [join("fact_wide", "f_entity", "dim_entity", "e_id")]
    if d > 10:
        preds.append(range_predicate("dim_entity", "e_score", "<="))
    if d > 11:
        tables.append("dim_channel")
        joins.append(join("fact_wide", "f_channel", "dim_channel", "ch_id"))
        preds.append(range_predicate("dim_channel", "ch_spend", "<="))
    return QueryTemplate(
        name=f"rd2_sweep_d{d}",
        database="rd2",
        tables=tables,
        joins=joins,
        parameterized=preds,
    )


def seed_templates() -> list[QueryTemplate]:
    """All hand-written templates across the four databases."""
    return (
        tpch_templates() + tpcds_templates() + rd1_templates() + rd2_templates()
    )
