"""Workloads whose parameter distribution drifts over time.

The paper evaluates stationary (if adversarially ordered) workloads;
real applications shift — a reporting query moves from current-month to
year-end parameters, a dashboard's user base changes.  This module
generates *phased* workloads: the selectivity-space region mix changes
at phase boundaries, which stresses exactly the mechanisms the paper
adds for cache hygiene (usage counts, LFU eviction under a budget,
redundancy checks).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..query.instance import QueryInstance, SelectivityVector
from .generator import DEFAULT_BANDS, SelectivityBands, _log_uniform


@dataclass(frozen=True)
class Phase:
    """One workload phase: how many instances, and where they live.

    ``region`` selects the bucketization region the phase concentrates
    on: ``"small"`` (all dimensions small), ``"large"`` (all large), or
    an integer dimension index (large only in that dimension).
    """

    length: int
    region: str | int

    def __post_init__(self) -> None:
        if self.length < 1:
            raise ValueError("phase length must be >= 1")
        if isinstance(self.region, str) and self.region not in ("small", "large"):
            raise ValueError("region must be 'small', 'large' or a dim index")


@dataclass
class DriftingWorkload:
    """A sequence of phases over one template's selectivity space."""

    dimensions: int
    phases: list[Phase]
    bands: SelectivityBands = field(default_factory=lambda: DEFAULT_BANDS)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.dimensions < 1:
            raise ValueError("dimensions must be >= 1")
        if not self.phases:
            raise ValueError("at least one phase required")
        for phase in self.phases:
            if isinstance(phase.region, int) and not (
                0 <= phase.region < self.dimensions
            ):
                raise ValueError(
                    f"phase region dim {phase.region} out of range"
                )

    @property
    def total_length(self) -> int:
        return sum(p.length for p in self.phases)

    def phase_boundaries(self) -> list[int]:
        """Sequence ids at which a new phase begins (excluding 0)."""
        out = []
        total = 0
        for phase in self.phases[:-1]:
            total += phase.length
            out.append(total)
        return out

    def instances(self, template_name: str = "q") -> list[QueryInstance]:
        """Generate the full phased sequence."""
        rng = np.random.default_rng(self.seed)
        bands = self.bands
        result: list[QueryInstance] = []
        for phase in self.phases:
            for _ in range(phase.length):
                values = []
                for dim in range(self.dimensions):
                    large = (
                        phase.region == "large"
                        or (isinstance(phase.region, int)
                            and phase.region == dim)
                    )
                    if large:
                        lo, hi = bands.large_low, bands.large_high
                    else:
                        lo, hi = bands.small_low, bands.small_high
                    values.append(float(_log_uniform(rng, lo, hi, 1)[0]))
                result.append(QueryInstance(
                    template_name,
                    sv=SelectivityVector.from_sequence(values),
                    sequence_id=len(result),
                ))
        return result


def seasonal_workload(
    dimensions: int,
    phase_length: int = 100,
    cycles: int = 2,
    seed: int = 0,
) -> DriftingWorkload:
    """A small/large alternation repeated ``cycles`` times.

    Models seasonality: the same two parameter regimes recur, so a
    well-managed cache should stop paying optimizer calls after the
    first cycle (each regime's plans are already cached).
    """
    phases = []
    for _ in range(cycles):
        phases.append(Phase(phase_length, "small"))
        phases.append(Phase(phase_length, "large"))
    return DriftingWorkload(dimensions=dimensions, phases=phases, seed=seed)
