"""Workload instance generation (section 7.1 of the paper).

A workload sequence is challenging for online PQO when it has
(a) widely varying selectivities, (b) many parameters, (c) many
distinct optimal plans and (d) reuse potential.  The paper achieves
this with a *bucketization* of the selectivity space into ``d + 2``
regions:

* **Region0** — all parameterized predicates have small selectivity;
* **Region1** — all have large selectivity;
* **Region_di** (one per dimension) — only dimension ``i`` is large.

``m`` instances are drawn as ``m / (d + 2)`` per region and shuffled.
Selectivities are sampled log-uniformly inside each band so that low
selectivities are well represented; concrete predicate parameters can
then be obtained by histogram-quantile inversion when execution (not
just costing) is needed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..query.instance import QueryInstance, SelectivityVector
from ..query.template import QueryTemplate
from ..selectivity.estimator import SelectivityEstimator


@dataclass(frozen=True)
class SelectivityBands:
    """The "small" and "large" selectivity bands for bucketization."""

    small_low: float = 0.005
    small_high: float = 0.05
    large_low: float = 0.35
    large_high: float = 1.0

    def __post_init__(self) -> None:
        if not (0 < self.small_low < self.small_high <= self.large_low
                < self.large_high <= 1.0):
            raise ValueError("bands must satisfy 0 < s_lo < s_hi <= l_lo < l_hi <= 1")


DEFAULT_BANDS = SelectivityBands()


def _log_uniform(
    rng: np.random.Generator, low: float, high: float, size: int
) -> np.ndarray:
    return np.exp(rng.uniform(np.log(low), np.log(high), size=size))


def generate_selectivity_vectors(
    dimensions: int,
    m: int,
    seed: int = 0,
    bands: SelectivityBands = DEFAULT_BANDS,
) -> list[SelectivityVector]:
    """Sample ``m`` selectivity vectors using the d+2 region scheme."""
    if dimensions < 1:
        raise ValueError("dimensions must be >= 1")
    if m < 1:
        raise ValueError("m must be >= 1")
    rng = np.random.default_rng(seed)
    regions = dimensions + 2
    per_region = [m // regions] * regions
    for i in range(m - sum(per_region)):
        per_region[i % regions] += 1

    vectors: list[SelectivityVector] = []

    def sample(is_large: list[bool], count: int) -> None:
        cols = []
        for large in is_large:
            if large:
                cols.append(_log_uniform(rng, bands.large_low, bands.large_high, count))
            else:
                cols.append(_log_uniform(rng, bands.small_low, bands.small_high, count))
        matrix = np.column_stack(cols)
        for row in matrix:
            vectors.append(SelectivityVector.from_sequence(row))

    sample([False] * dimensions, per_region[0])               # Region0
    sample([True] * dimensions, per_region[1])                # Region1
    for dim in range(dimensions):                             # Region_di
        mask = [i == dim for i in range(dimensions)]
        sample(mask, per_region[2 + dim])

    order = rng.permutation(len(vectors))
    return [vectors[i] for i in order]


def instances_for_template(
    template: QueryTemplate,
    m: int,
    seed: int = 0,
    bands: SelectivityBands = DEFAULT_BANDS,
    estimator: SelectivityEstimator | None = None,
) -> list[QueryInstance]:
    """Generate ``m`` query instances for a template.

    With an ``estimator`` the target selectivities are inverted into
    concrete predicate parameters (required for actual execution);
    without one the instances carry the selectivity vector directly
    (sufficient for all cost-based experiments).
    """
    vectors = generate_selectivity_vectors(template.dimensions, m, seed, bands)
    instances = []
    for i, sv in enumerate(vectors):
        params: tuple[float, ...] = ()
        if estimator is not None:
            params = estimator.parameters_for_selectivities(template, sv)
        instances.append(
            QueryInstance(
                template_name=template.name,
                parameters=params,
                sv=sv,
                sequence_id=i,
            )
        )
    return instances
