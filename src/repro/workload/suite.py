"""The evaluation suite: templates, sequences and suite configuration.

The paper's evaluation uses 90 query templates and, for each, 5
orderings of a generated instance set (450 workload sequences of
1000 instances each, 2000 for d > 3).  This module expands the
hand-written seed templates into a suite of any requested size by
systematic variation (flipped predicate directions, dropped
dimensions, toggled aggregates), and packages sequence generation.

The default suite is scaled down (templates / instances) so the whole
benchmark battery runs on a laptop; the full paper-scale configuration
is one constructor call away.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..query.expressions import ComparisonOp, ParameterizedPredicate
from ..query.template import AggregationKind, QueryTemplate
from .generator import DEFAULT_BANDS, SelectivityBands
from .templates import seed_templates


def _flip(pred: ParameterizedPredicate) -> ParameterizedPredicate:
    flipped = {
        ComparisonOp.LE: ComparisonOp.GE,
        ComparisonOp.GE: ComparisonOp.LE,
        ComparisonOp.EQ: ComparisonOp.EQ,
    }[pred.op]
    return ParameterizedPredicate(pred.column, flipped)


def _variants(template: QueryTemplate) -> list[QueryTemplate]:
    """Derive systematic variants of one seed template."""
    out: list[QueryTemplate] = []
    # (a) flip the direction of every parameterized predicate.
    out.append(replace(
        template,
        name=f"{template.name}_flip",
        parameterized=[_flip(p) for p in template.parameterized],
    ))
    # (b) drop the last dimension (if that still leaves one).
    if template.dimensions > 1:
        out.append(replace(
            template,
            name=f"{template.name}_dropdim",
            parameterized=list(template.parameterized[:-1]),
        ))
    # (c) toggle a COUNT aggregate on plain SPJ templates.
    if template.aggregation is AggregationKind.NONE and template.order_by is None:
        out.append(replace(
            template,
            name=f"{template.name}_count",
            aggregation=AggregationKind.COUNT,
        ))
    # (d) flip only the first predicate (mixed directions).
    if template.dimensions > 1:
        mixed = [_flip(template.parameterized[0]), *template.parameterized[1:]]
        out.append(replace(
            template, name=f"{template.name}_mixed", parameterized=mixed
        ))
    # (e) drop the first dimension instead of the last.
    if template.dimensions > 2:
        out.append(replace(
            template,
            name=f"{template.name}_dropfirst",
            parameterized=list(template.parameterized[1:]),
        ))
    return out


def build_templates(count: int | None = None) -> list[QueryTemplate]:
    """The suite's templates: seeds first, then derived variants.

    ``count=None`` returns only the seed templates; otherwise seeds plus
    as many variants as needed, up to the number derivable (95+).
    """
    seeds = seed_templates()
    if count is None or count <= len(seeds):
        return seeds[: count or len(seeds)]
    templates = list(seeds)
    for seed in seeds:
        for variant in _variants(seed):
            if len(templates) >= count:
                return templates
            templates.append(variant)
    return templates


@dataclass(frozen=True)
class SuiteConfig:
    """Configuration of one evaluation run of the suite.

    The defaults are the scaled-down laptop configuration; call
    :meth:`paper_scale` for the paper's 90x5x1000 setting.
    """

    num_templates: int = 16
    instances_per_sequence: int = 200
    instances_high_d: int = 300   # templates with d > 3 get more (paper: 2000)
    seed: int = 7
    bands: SelectivityBands = field(default=DEFAULT_BANDS)

    @classmethod
    def paper_scale(cls) -> "SuiteConfig":
        return cls(
            num_templates=90,
            instances_per_sequence=1000,
            instances_high_d=2000,
        )

    @classmethod
    def smoke(cls) -> "SuiteConfig":
        """Tiny configuration for unit tests."""
        return cls(num_templates=4, instances_per_sequence=60, instances_high_d=80)

    def sequence_length(self, template: QueryTemplate) -> int:
        if template.dimensions > 3:
            return self.instances_high_d
        return self.instances_per_sequence

    def templates(self) -> list[QueryTemplate]:
        return build_templates(self.num_templates)
