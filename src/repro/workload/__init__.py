"""Workload generation: bucketized instances, orderings, the suite."""

from .drift import DriftingWorkload, Phase, seasonal_workload
from .generator import (
    DEFAULT_BANDS,
    SelectivityBands,
    generate_selectivity_vectors,
    instances_for_template,
)
from .orderings import ALL_ORDERINGS, Ordering, order_instances
from .suite import SuiteConfig, build_templates
from .templates import (
    dimension_sweep_template,
    rd1_templates,
    rd2_templates,
    seed_templates,
    tpcds_templates,
    tpch_templates,
)

__all__ = [
    "ALL_ORDERINGS",
    "DriftingWorkload",
    "Phase",
    "seasonal_workload",
    "DEFAULT_BANDS",
    "Ordering",
    "SelectivityBands",
    "SuiteConfig",
    "build_templates",
    "dimension_sweep_template",
    "generate_selectivity_vectors",
    "instances_for_template",
    "order_instances",
    "rd1_templates",
    "rd2_templates",
    "seed_templates",
    "tpcds_templates",
    "tpch_templates",
]
