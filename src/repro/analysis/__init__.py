"""Analysis tooling: plan diagrams and anorexic reduction."""

from .plan_diagram import (
    PlanDiagram,
    ReductionResult,
    anorexic_reduction,
    compute_plan_diagram,
)

__all__ = [
    "PlanDiagram",
    "ReductionResult",
    "anorexic_reduction",
    "compute_plan_diagram",
]
