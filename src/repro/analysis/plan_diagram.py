"""Plan diagrams and anorexic reduction (the paper's references [18], [8]).

A *plan diagram* [Reddy & Haritsa, VLDB 2005] maps each point of a 2-d
selectivity grid to its optimal plan; PQO difficulty correlates with
diagram density (the paper cites high plan density in low-cost regions
when motivating dynamic λ).  *Anorexic reduction* [Harish et al., VLDB
2007] swallows small plan regions into λ-tolerant neighbours, shrinking
the diagram to a handful of plans at bounded cost increase — the
offline analogue of SCR's redundancy check, and the basis of the
section 9 offline/online hybrid implemented in
:mod:`repro.core.seeding`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..engine.api import EngineAPI
from ..optimizer.recost import ShrunkenMemo
from ..query.instance import SelectivityVector


@dataclass
class PlanDiagram:
    """An n x n plan diagram over log-scaled 2-d selectivity space."""

    grid_size: int
    s1_values: np.ndarray
    s2_values: np.ndarray
    # cell[i][j] = plan index for (s1_values[i], s2_values[j]).
    cells: np.ndarray
    plans: list[str]                      # plan signatures by index
    shrunken: list[ShrunkenMemo]          # recost handles by index
    costs: np.ndarray = field(default=None)  # optimal cost per cell

    @property
    def plan_count(self) -> int:
        return len(set(self.cells.flatten()))

    def plan_areas(self) -> dict[int, int]:
        """Cells covered per plan index."""
        unique, counts = np.unique(self.cells, return_counts=True)
        return dict(zip(unique.tolist(), counts.tolist()))

    def render_ascii(self, glyphs: str = "ABCDEFGHIJKLMNOPQRSTUVWXYZ") -> str:
        """ASCII rendering (rows top-to-bottom = decreasing s2)."""
        remap = {p: i for i, p in enumerate(sorted(set(self.cells.flatten())))}
        lines = []
        for j in range(self.grid_size - 1, -1, -1):
            row = "".join(
                glyphs[remap[int(self.cells[i][j])] % len(glyphs)]
                for i in range(self.grid_size)
            )
            lines.append(row)
        return "\n".join(lines)


def compute_plan_diagram(
    engine: EngineAPI,
    grid_size: int = 16,
    low: float = 0.005,
    high: float = 1.0,
) -> PlanDiagram:
    """Optimize every grid point and record the winning plan."""
    if engine.template.dimensions != 2:
        raise ValueError("plan diagrams are defined for 2-d templates")
    axis = np.exp(np.linspace(math.log(low), math.log(high), grid_size))
    plan_index: dict[str, int] = {}
    plans: list[str] = []
    shrunken: list[ShrunkenMemo] = []
    cells = np.zeros((grid_size, grid_size), dtype=np.int64)
    costs = np.zeros((grid_size, grid_size))
    for i, s1 in enumerate(axis):
        for j, s2 in enumerate(axis):
            result = engine.optimize(SelectivityVector.of(s1, s2))
            signature = result.plan.signature()
            idx = plan_index.get(signature)
            if idx is None:
                idx = len(plans)
                plan_index[signature] = idx
                plans.append(signature)
                shrunken.append(result.shrunken_memo)
            cells[i][j] = idx
            costs[i][j] = result.cost
    return PlanDiagram(
        grid_size=grid_size,
        s1_values=axis,
        s2_values=axis,
        cells=cells,
        plans=plans,
        shrunken=shrunken,
        costs=costs,
    )


@dataclass(frozen=True)
class ReductionResult:
    """Outcome of anorexic reduction."""

    diagram: PlanDiagram
    plans_before: int
    plans_after: int
    max_cost_increase: float


def anorexic_reduction(
    diagram: PlanDiagram,
    engine: EngineAPI,
    lam: float = 1.2,
) -> ReductionResult:
    """Swallow plan regions into λ-tolerant replacements (greedy).

    Plans are considered smallest-area first; a plan is swallowed if a
    single surviving plan covers *all* of its cells within a factor
    ``lam`` of the cell's optimal cost.  This mirrors the cost-greedy
    variant of [8] and typically collapses diagrams to a few plans at
    ``lam = 1.2`` — the "anorexic" effect the paper leverages through
    its redundancy check.
    """
    if lam < 1.0:
        raise ValueError("lambda must be >= 1")
    cells = diagram.cells.copy()
    alive = sorted(set(cells.flatten()))
    plans_before = len(alive)
    max_increase = 1.0

    changed = True
    while changed:
        changed = False
        areas = {p: int((cells == p).sum()) for p in alive}
        for victim in sorted(alive, key=lambda p: areas[p]):
            if len(alive) <= 1:
                break
            victim_cells = np.argwhere(cells == victim)
            best_replacement = None
            best_worst = math.inf
            for candidate in alive:
                if candidate == victim:
                    continue
                worst = 1.0
                feasible = True
                for i, j in victim_cells:
                    sv = SelectivityVector.of(
                        diagram.s1_values[i], diagram.s2_values[j]
                    )
                    cost = engine.recost(diagram.shrunken[candidate], sv)
                    ratio = cost / diagram.costs[i][j]
                    worst = max(worst, ratio)
                    if ratio > lam:
                        feasible = False
                        break
                if feasible and worst < best_worst:
                    best_replacement = candidate
                    best_worst = worst
            if best_replacement is not None:
                cells[cells == victim] = best_replacement
                alive.remove(victim)
                max_increase = max(max_increase, best_worst)
                changed = True
                break

    reduced = PlanDiagram(
        grid_size=diagram.grid_size,
        s1_values=diagram.s1_values,
        s2_values=diagram.s2_values,
        cells=cells,
        plans=diagram.plans,
        shrunken=diagram.shrunken,
        costs=diagram.costs,
    )
    return ReductionResult(
        diagram=reduced,
        plans_before=plans_before,
        plans_after=len(alive),
        max_cost_increase=max_increase,
    )
