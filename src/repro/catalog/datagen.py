"""Synthetic data generation for catalog schemas.

The paper evaluates on TPC-H (with a skewed data generator), TPC-DS and
two proprietary real-world databases.  None of those datasets are
available here, so this module generates columnar data with the two
properties that matter for PQO evaluation:

* **wide, controllable selectivity ranges** for parameterized range
  predicates (driven by per-column skew), and
* **foreign-key joins with containment**, so that join cardinalities
  behave like benchmark databases.

Data is stored column-wise as numpy arrays, which both the statistics
builder and the executor consume directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .schema import Column, ColumnType, ForeignKey, Schema, Table


@dataclass
class TableData:
    """Columnar storage for one table: ``{column_name: np.ndarray}``."""

    name: str
    columns: dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def row_count(self) -> int:
        if not self.columns:
            return 0
        return len(next(iter(self.columns.values())))

    def column(self, name: str) -> np.ndarray:
        try:
            return self.columns[name]
        except KeyError:
            raise KeyError(f"table {self.name} has no generated column {name!r}") from None


@dataclass
class DatabaseData:
    """Generated data for every table of a schema."""

    schema_name: str
    tables: dict[str, TableData] = field(default_factory=dict)

    def table(self, name: str) -> TableData:
        try:
            return self.tables[name]
        except KeyError:
            raise KeyError(f"no generated data for table {name!r}") from None


def _zipf_weights(domain_size: int, skew: float) -> np.ndarray:
    """Zipf-like probability weights over ``domain_size`` values.

    ``skew == 0`` degenerates to uniform.  Weights follow ``1/rank**skew``,
    the standard Zipfian shape used by the TPC-H skew generator.
    """
    ranks = np.arange(1, domain_size + 1, dtype=np.float64)
    weights = ranks ** (-skew) if skew > 0 else np.ones(domain_size)
    return weights / weights.sum()


def generate_column(
    column: Column, row_count: int, rng: np.random.Generator
) -> np.ndarray:
    """Generate ``row_count`` values for a non-key column."""
    if column.skew > 0:
        # Sampling from an explicit Zipf distribution keeps the domain
        # bounded (numpy's ``zipf`` has unbounded support).
        weights = _zipf_weights(column.domain_size, column.skew)
        values = rng.choice(column.domain_size, size=row_count, p=weights)
        # Shuffle the value->frequency assignment so skew is not always
        # concentrated at the low end of the domain.
        perm = rng.permutation(column.domain_size)
        values = perm[values]
    else:
        values = rng.integers(0, column.domain_size, size=row_count)
    if column.ctype is ColumnType.FLOAT:
        jitter = rng.random(row_count)
        return values.astype(np.float64) + jitter
    return values.astype(np.int64)


def generate_table(
    table: Table, rng: np.random.Generator, fk_parents: dict[str, int] | None = None
) -> TableData:
    """Generate data for one table.

    ``fk_parents`` maps FK child column names to the parent table's row
    count; those columns are drawn uniformly from ``[0, parent_rows)`` so
    FK containment holds (parent PKs are dense ``0..rows-1``).
    """
    fk_parents = fk_parents or {}
    data = TableData(table.name)
    for col in table.columns:
        if col.name == table.primary_key:
            data.columns[col.name] = np.arange(table.row_count, dtype=np.int64)
        elif col.name in fk_parents:
            parent_rows = fk_parents[col.name]
            data.columns[col.name] = rng.integers(
                0, parent_rows, size=table.row_count, dtype=np.int64
            )
        else:
            data.columns[col.name] = generate_column(col, table.row_count, rng)
    return data


def generate_database(schema: Schema, seed: int = 0) -> DatabaseData:
    """Generate data for every table of ``schema`` deterministically."""
    schema.validate()
    rng = np.random.default_rng(seed)
    fk_by_table: dict[str, dict[str, int]] = {name: {} for name in schema.tables}
    for fk in schema.foreign_keys:
        parent = schema.table(fk.parent_table)
        fk_by_table[fk.child_table][fk.child_column] = parent.row_count

    db = DatabaseData(schema.name)
    # Generate parents before children only matters for value domains,
    # which we derive from row counts alone, so plain iteration suffices.
    for name, table in schema.tables.items():
        db.tables[name] = generate_table(table, rng, fk_by_table[name])
    return db


def fk_join_selectivity(schema: Schema, fk: ForeignKey) -> float:
    """Equi-join selectivity for a foreign-key edge.

    With dense parent keys and uniform FK references, the standard
    ``1 / max(distinct(left), distinct(right))`` estimate reduces to
    ``1 / parent_row_count``.
    """
    parent = schema.table(fk.parent_table)
    return 1.0 / parent.row_count
