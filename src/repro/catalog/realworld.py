"""Synthetic substitutes for the paper's real-world databases RD1/RD2.

The paper evaluates on two proprietary customer databases: RD1 (98 GB,
normalized, multi-block queries over many relations with 0.5–5 s
optimization times) and RD2 (780 GB, wide tables enabling query
templates with d >= 5 parameterized predicates).  Neither is available,
so we generate two databases with the *structural* properties the paper
needs from them:

* **rd1** — a normalized OLTP-ish schema with a deep FK chain
  (7 tables), giving long join paths and a large plan search space —
  the "expensive optimizer call" regime.
* **rd2** — a wide fact table with ten independently-skewed numeric
  attributes plus several dimensions, enabling templates with up to
  d = 10 parameterized predicates — the high-dimensional regime of
  Figures 12 and 18.

Scales are laptop-sized; the plan-space shape, join depth and
dimensionality are what carry over to the experiments.
"""

from __future__ import annotations

from .schema import Column, Schema, Table


def rd1_schema(scale: float = 1.0, skew: float = 1.0) -> Schema:
    """Normalized order-processing chain: 7 tables, deep FK path."""
    def rows(n: int) -> int:
        return max(5, int(n * scale))

    schema = Schema("rd1")
    schema.add_table(Table(
        "tenant",
        [Column("t_id", domain_size=rows(50)), Column("t_tier", domain_size=5)],
        row_count=rows(50), primary_key="t_id",
    ))
    schema.add_table(Table(
        "account",
        [
            Column("a_id", domain_size=rows(2_000)),
            Column("a_tenant", domain_size=rows(50)),
            Column("a_balance", domain_size=100_000, skew=skew),
            Column("a_age_days", domain_size=3_650, skew=0.4),
        ],
        row_count=rows(2_000), primary_key="a_id",
    ))
    schema.add_table(Table(
        "contract",
        [
            Column("k_id", domain_size=rows(6_000)),
            Column("k_account", domain_size=rows(2_000)),
            Column("k_value", domain_size=500_000, skew=skew),
        ],
        row_count=rows(6_000), primary_key="k_id",
    ))
    schema.add_table(Table(
        "order_hdr",
        [
            Column("o_id", domain_size=rows(40_000)),
            Column("o_contract", domain_size=rows(6_000)),
            Column("o_amount", domain_size=200_000, skew=skew),
            Column("o_date", domain_size=2_000, skew=0.3),
        ],
        row_count=rows(40_000), primary_key="o_id",
    ))
    schema.add_table(Table(
        "order_line",
        [
            Column("ol_order", domain_size=rows(40_000)),
            Column("ol_item", domain_size=rows(3_000)),
            Column("ol_qty", domain_size=100, skew=skew),
            Column("ol_price", domain_size=50_000, skew=skew),
        ],
        row_count=rows(140_000),
    ))
    schema.add_table(Table(
        "item_cat",
        [
            Column("ic_id", domain_size=rows(3_000)),
            Column("ic_weight", domain_size=5_000, skew=skew),
            Column("ic_list_price", domain_size=50_000, skew=skew),
        ],
        row_count=rows(3_000), primary_key="ic_id",
    ))
    schema.add_table(Table(
        "shipment",
        [
            Column("sh_order", domain_size=rows(40_000)),
            Column("sh_delay_days", domain_size=60, skew=skew),
            Column("sh_cost", domain_size=5_000, skew=skew),
        ],
        row_count=rows(35_000),
    ))

    for child, col, parent, pcol in [
        ("account", "a_tenant", "tenant", "t_id"),
        ("contract", "k_account", "account", "a_id"),
        ("order_hdr", "o_contract", "contract", "k_id"),
        ("order_line", "ol_order", "order_hdr", "o_id"),
        ("order_line", "ol_item", "item_cat", "ic_id"),
        ("shipment", "sh_order", "order_hdr", "o_id"),
    ]:
        schema.add_foreign_key(child, col, parent, pcol)

    for table, column in [
        ("tenant", "t_id"), ("account", "a_id"), ("account", "a_tenant"),
        ("account", "a_balance"), ("contract", "k_id"),
        ("contract", "k_account"), ("order_hdr", "o_id"),
        ("order_hdr", "o_contract"), ("order_hdr", "o_date"),
        ("order_line", "ol_order"), ("order_line", "ol_item"),
        ("item_cat", "ic_id"), ("shipment", "sh_order"),
    ]:
        schema.add_index(table, column)
    return schema


def rd2_schema(scale: float = 1.0, skew: float = 1.0) -> Schema:
    """Wide-fact analytics schema: 10 skewed metric columns on the fact."""
    def rows(n: int) -> int:
        return max(5, int(n * scale))

    schema = Schema("rd2")
    schema.add_table(Table(
        "dim_entity",
        [
            Column("e_id", domain_size=rows(4_000)),
            Column("e_segment", domain_size=20),
            Column("e_score", domain_size=10_000, skew=skew),
        ],
        row_count=rows(4_000), primary_key="e_id",
    ))
    schema.add_table(Table(
        "dim_period",
        [
            Column("p_id", domain_size=rows(1_000)),
            Column("p_quarter", domain_size=40),
        ],
        row_count=rows(1_000), primary_key="p_id",
    ))
    schema.add_table(Table(
        "dim_channel",
        [
            Column("ch_id", domain_size=rows(100)),
            Column("ch_spend", domain_size=10_000, skew=skew),
        ],
        row_count=rows(100), primary_key="ch_id",
    ))
    metric_columns = [
        Column(f"f_m{i}", domain_size=50_000, skew=skew * (0.5 + 0.1 * i))
        for i in range(10)
    ]
    schema.add_table(Table(
        "fact_wide",
        [
            Column("f_entity", domain_size=rows(4_000)),
            Column("f_period", domain_size=rows(1_000)),
            Column("f_channel", domain_size=rows(100)),
            *metric_columns,
        ],
        row_count=rows(150_000),
    ))

    for child, col, parent, pcol in [
        ("fact_wide", "f_entity", "dim_entity", "e_id"),
        ("fact_wide", "f_period", "dim_period", "p_id"),
        ("fact_wide", "f_channel", "dim_channel", "ch_id"),
    ]:
        schema.add_foreign_key(child, col, parent, pcol)

    for table, column in [
        ("dim_entity", "e_id"), ("dim_period", "p_id"), ("dim_channel", "ch_id"),
        ("fact_wide", "f_entity"), ("fact_wide", "f_period"),
        ("fact_wide", "f_m0"), ("fact_wide", "f_m1"),
    ]:
        schema.add_index(table, column)
    return schema
