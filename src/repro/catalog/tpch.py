"""A TPC-H-shaped schema with skewed data generation.

Substitutes for the paper's "TPC-H using data generator with skew"
(their reference [23], the Microsoft skewed dbgen).  The eight-table
schema and its foreign-key graph match TPC-H; row counts follow the
official per-table ratios at a configurable (laptop-sized) scale, and
non-key attribute columns carry Zipfian skew so that range-predicate
selectivities vary over several orders of magnitude.
"""

from __future__ import annotations

from .schema import Column, Schema, Table

# Rows per table at scale factor 1.0 of *this reproduction* (roughly
# TPC-H SF 0.002 — the ratios between tables are the TPC-H ratios).
_BASE_ROWS = {
    "region": 5,
    "nation": 25,
    "supplier": 200,
    "customer": 3_000,
    "part": 4_000,
    "partsupp": 16_000,
    "orders": 30_000,
    "lineitem": 120_000,
}


def tpch_schema(scale: float = 1.0, skew: float = 0.8) -> Schema:
    """Build the TPC-H-like schema.

    ``scale`` multiplies all row counts; ``skew`` is the Zipf parameter
    applied to the numeric attribute columns used by parameterized
    predicates.
    """
    rows = {name: max(5, int(count * scale)) for name, count in _BASE_ROWS.items()}
    schema = Schema("tpch")

    schema.add_table(Table(
        "region",
        [Column("r_regionkey", domain_size=rows["region"])],
        row_count=rows["region"],
        primary_key="r_regionkey",
    ))
    schema.add_table(Table(
        "nation",
        [
            Column("n_nationkey", domain_size=rows["nation"]),
            Column("n_regionkey", domain_size=rows["region"]),
        ],
        row_count=rows["nation"],
        primary_key="n_nationkey",
    ))
    schema.add_table(Table(
        "supplier",
        [
            Column("s_suppkey", domain_size=rows["supplier"]),
            Column("s_nationkey", domain_size=rows["nation"]),
            Column("s_acctbal", domain_size=10_000, skew=skew),
        ],
        row_count=rows["supplier"],
        primary_key="s_suppkey",
    ))
    schema.add_table(Table(
        "customer",
        [
            Column("c_custkey", domain_size=rows["customer"]),
            Column("c_nationkey", domain_size=rows["nation"]),
            Column("c_acctbal", domain_size=10_000, skew=skew),
            Column("c_mktsegment", domain_size=5),
        ],
        row_count=rows["customer"],
        primary_key="c_custkey",
    ))
    schema.add_table(Table(
        "part",
        [
            Column("p_partkey", domain_size=rows["part"]),
            Column("p_size", domain_size=50, skew=skew),
            Column("p_retailprice", domain_size=20_000, skew=skew),
        ],
        row_count=rows["part"],
        primary_key="p_partkey",
    ))
    schema.add_table(Table(
        "partsupp",
        [
            Column("ps_partkey", domain_size=rows["part"]),
            Column("ps_suppkey", domain_size=rows["supplier"]),
            Column("ps_supplycost", domain_size=10_000, skew=skew),
            Column("ps_availqty", domain_size=10_000, skew=skew),
        ],
        row_count=rows["partsupp"],
    ))
    schema.add_table(Table(
        "orders",
        [
            Column("o_orderkey", domain_size=rows["orders"]),
            Column("o_custkey", domain_size=rows["customer"]),
            Column("o_totalprice", domain_size=500_000, skew=skew),
            Column("o_orderdate", domain_size=2_400, skew=0.3),
        ],
        row_count=rows["orders"],
        primary_key="o_orderkey",
    ))
    schema.add_table(Table(
        "lineitem",
        [
            Column("l_orderkey", domain_size=rows["orders"]),
            Column("l_partkey", domain_size=rows["part"]),
            Column("l_suppkey", domain_size=rows["supplier"]),
            Column("l_quantity", domain_size=50, skew=skew),
            Column("l_extendedprice", domain_size=100_000, skew=skew),
            Column("l_discount", domain_size=11),
            Column("l_shipdate", domain_size=2_500, skew=0.3),
        ],
        row_count=rows["lineitem"],
    ))

    schema.add_foreign_key("nation", "n_regionkey", "region", "r_regionkey")
    schema.add_foreign_key("supplier", "s_nationkey", "nation", "n_nationkey")
    schema.add_foreign_key("customer", "c_nationkey", "nation", "n_nationkey")
    schema.add_foreign_key("partsupp", "ps_partkey", "part", "p_partkey")
    schema.add_foreign_key("partsupp", "ps_suppkey", "supplier", "s_suppkey")
    schema.add_foreign_key("orders", "o_custkey", "customer", "c_custkey")
    schema.add_foreign_key("lineitem", "l_orderkey", "orders", "o_orderkey")
    schema.add_foreign_key("lineitem", "l_partkey", "part", "p_partkey")
    schema.add_foreign_key("lineitem", "l_suppkey", "supplier", "s_suppkey")

    # Primary keys, foreign keys and the common predicate columns carry
    # indexes, matching a tuned benchmark installation.
    for table, column in [
        ("region", "r_regionkey"), ("nation", "n_nationkey"),
        ("nation", "n_regionkey"), ("supplier", "s_suppkey"),
        ("supplier", "s_nationkey"), ("customer", "c_custkey"),
        ("customer", "c_nationkey"), ("customer", "c_acctbal"),
        ("part", "p_partkey"), ("part", "p_retailprice"),
        ("partsupp", "ps_partkey"), ("partsupp", "ps_suppkey"),
        ("orders", "o_orderkey"), ("orders", "o_custkey"),
        ("orders", "o_orderdate"), ("orders", "o_totalprice"),
        ("lineitem", "l_orderkey"), ("lineitem", "l_partkey"),
        ("lineitem", "l_suppkey"), ("lineitem", "l_shipdate"),
    ]:
        schema.add_index(table, column)
    return schema
