"""A TPC-DS-shaped star/snowflake schema subset.

Substitutes for the paper's TPC-DS database.  It models the two big
fact tables (store_sales, catalog_sales) against shared dimensions —
the structure TPC-DS queries such as Q18 and Q25 join over — with many
numeric dimension/fact attributes so that templates with up to ten
parameterized predicates can be defined.
"""

from __future__ import annotations

from .schema import Column, Schema, Table

_BASE_ROWS = {
    "date_dim": 2_000,
    "item": 3_000,
    "customer": 5_000,
    "customer_demographics": 2_000,
    "store": 60,
    "promotion": 120,
    "store_sales": 90_000,
    "catalog_sales": 60_000,
}


def tpcds_schema(scale: float = 1.0, skew: float = 0.8) -> Schema:
    """Build the TPC-DS-like schema (two facts, six dimensions)."""
    rows = {name: max(5, int(count * scale)) for name, count in _BASE_ROWS.items()}
    schema = Schema("tpcds")

    schema.add_table(Table(
        "date_dim",
        [
            Column("d_date_sk", domain_size=rows["date_dim"]),
            Column("d_year", domain_size=8),
            Column("d_moy", domain_size=12),
            Column("d_dom", domain_size=31),
        ],
        row_count=rows["date_dim"],
        primary_key="d_date_sk",
    ))
    schema.add_table(Table(
        "item",
        [
            Column("i_item_sk", domain_size=rows["item"]),
            Column("i_current_price", domain_size=10_000, skew=skew),
            Column("i_wholesale_cost", domain_size=8_000, skew=skew),
            Column("i_brand_id", domain_size=500, skew=0.4),
        ],
        row_count=rows["item"],
        primary_key="i_item_sk",
    ))
    schema.add_table(Table(
        "customer",
        [
            Column("c_customer_sk", domain_size=rows["customer"]),
            Column("c_cdemo_sk", domain_size=rows["customer_demographics"]),
            Column("c_birth_year", domain_size=80),
        ],
        row_count=rows["customer"],
        primary_key="c_customer_sk",
    ))
    schema.add_table(Table(
        "customer_demographics",
        [
            Column("cd_demo_sk", domain_size=rows["customer_demographics"]),
            Column("cd_dep_count", domain_size=10),
            Column("cd_purchase_estimate", domain_size=10_000, skew=skew),
        ],
        row_count=rows["customer_demographics"],
        primary_key="cd_demo_sk",
    ))
    schema.add_table(Table(
        "store",
        [
            Column("s_store_sk", domain_size=rows["store"]),
            Column("s_number_employees", domain_size=300, skew=0.3),
        ],
        row_count=rows["store"],
        primary_key="s_store_sk",
    ))
    schema.add_table(Table(
        "promotion",
        [
            Column("p_promo_sk", domain_size=rows["promotion"]),
            Column("p_cost", domain_size=2_000, skew=skew),
        ],
        row_count=rows["promotion"],
        primary_key="p_promo_sk",
    ))
    schema.add_table(Table(
        "store_sales",
        [
            Column("ss_sold_date_sk", domain_size=rows["date_dim"]),
            Column("ss_item_sk", domain_size=rows["item"]),
            Column("ss_customer_sk", domain_size=rows["customer"]),
            Column("ss_store_sk", domain_size=rows["store"]),
            Column("ss_promo_sk", domain_size=rows["promotion"]),
            Column("ss_quantity", domain_size=100, skew=skew),
            Column("ss_sales_price", domain_size=20_000, skew=skew),
            Column("ss_net_profit", domain_size=30_000, skew=skew),
            Column("ss_wholesale_cost", domain_size=10_000, skew=skew),
        ],
        row_count=rows["store_sales"],
    ))
    schema.add_table(Table(
        "catalog_sales",
        [
            Column("cs_sold_date_sk", domain_size=rows["date_dim"]),
            Column("cs_item_sk", domain_size=rows["item"]),
            Column("cs_bill_customer_sk", domain_size=rows["customer"]),
            Column("cs_promo_sk", domain_size=rows["promotion"]),
            Column("cs_quantity", domain_size=100, skew=skew),
            Column("cs_sales_price", domain_size=20_000, skew=skew),
            Column("cs_net_profit", domain_size=30_000, skew=skew),
        ],
        row_count=rows["catalog_sales"],
    ))

    for child, col, parent, pcol in [
        ("customer", "c_cdemo_sk", "customer_demographics", "cd_demo_sk"),
        ("store_sales", "ss_sold_date_sk", "date_dim", "d_date_sk"),
        ("store_sales", "ss_item_sk", "item", "i_item_sk"),
        ("store_sales", "ss_customer_sk", "customer", "c_customer_sk"),
        ("store_sales", "ss_store_sk", "store", "s_store_sk"),
        ("store_sales", "ss_promo_sk", "promotion", "p_promo_sk"),
        ("catalog_sales", "cs_sold_date_sk", "date_dim", "d_date_sk"),
        ("catalog_sales", "cs_item_sk", "item", "i_item_sk"),
        ("catalog_sales", "cs_bill_customer_sk", "customer", "c_customer_sk"),
        ("catalog_sales", "cs_promo_sk", "promotion", "p_promo_sk"),
    ]:
        schema.add_foreign_key(child, col, parent, pcol)

    for table, column in [
        ("date_dim", "d_date_sk"), ("item", "i_item_sk"),
        ("item", "i_current_price"), ("customer", "c_customer_sk"),
        ("customer", "c_cdemo_sk"), ("customer_demographics", "cd_demo_sk"),
        ("store", "s_store_sk"), ("promotion", "p_promo_sk"),
        ("store_sales", "ss_sold_date_sk"), ("store_sales", "ss_item_sk"),
        ("store_sales", "ss_customer_sk"), ("store_sales", "ss_sales_price"),
        ("catalog_sales", "cs_sold_date_sk"), ("catalog_sales", "cs_item_sk"),
    ]:
        schema.add_index(table, column)
    return schema
