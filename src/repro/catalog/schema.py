"""Relational schema objects: columns, tables, indexes, foreign keys.

The catalog layer is the substrate the paper's engine (Microsoft SQL
Server) provided implicitly.  A :class:`Schema` describes the logical
shape of a database; actual rows live in :class:`repro.catalog.datagen`
generated columnar arrays, and derived statistics live in
:class:`repro.catalog.statistics`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Optional


class ColumnType(Enum):
    """Supported column data types.

    The reproduction only needs orderable numeric domains (predicates are
    range/equality comparisons on numeric columns) plus key columns.
    """

    INT = "int"
    FLOAT = "float"


@dataclass(frozen=True)
class Column:
    """A single column of a table.

    Parameters
    ----------
    name:
        Column name, unique within its table.
    ctype:
        Data type of the column.
    domain_size:
        Number of distinct values the column may take.  Generated data is
        drawn from ``[0, domain_size)`` for INT columns and
        ``[0.0, domain_size)`` for FLOAT columns.
    skew:
        Zipf-like skew parameter for generated data.  ``0.0`` means
        uniform; larger values concentrate mass on low values.  This is
        the knob that substitutes for the paper's "TPC-H with skew"
        data generator.
    """

    name: str
    ctype: ColumnType = ColumnType.INT
    domain_size: int = 1000
    skew: float = 0.0

    def __post_init__(self) -> None:
        if self.domain_size <= 0:
            raise ValueError(f"column {self.name}: domain_size must be positive")
        if self.skew < 0:
            raise ValueError(f"column {self.name}: skew must be non-negative")


@dataclass(frozen=True)
class Index:
    """A secondary index on a single column.

    The optimizer uses index existence to enable ``IndexScan`` and
    index-nested-loops join alternatives; the executor uses it to build
    sorted access paths.
    """

    table: str
    column: str

    @property
    def name(self) -> str:
        return f"idx_{self.table}_{self.column}"


@dataclass(frozen=True)
class ForeignKey:
    """A foreign key edge ``child.child_column -> parent.parent_column``.

    Join selectivities are derived from FK containment: an equi-join along
    a foreign key produces (about) one match per child row.
    """

    child_table: str
    child_column: str
    parent_table: str
    parent_column: str


@dataclass
class Table:
    """A table definition: name, columns, row count and primary key."""

    name: str
    columns: list[Column]
    row_count: int
    primary_key: Optional[str] = None

    def __post_init__(self) -> None:
        if self.row_count <= 0:
            raise ValueError(f"table {self.name}: row_count must be positive")
        names = [c.name for c in self.columns]
        if len(names) != len(set(names)):
            raise ValueError(f"table {self.name}: duplicate column names")
        if self.primary_key is not None and self.primary_key not in names:
            raise ValueError(
                f"table {self.name}: primary key {self.primary_key!r} not a column"
            )

    def column(self, name: str) -> Column:
        """Return the column named ``name`` or raise ``KeyError``."""
        for col in self.columns:
            if col.name == name:
                return col
        raise KeyError(f"table {self.name} has no column {name!r}")

    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]


@dataclass
class Schema:
    """A complete database schema: tables, indexes and foreign keys."""

    name: str
    tables: dict[str, Table] = field(default_factory=dict)
    indexes: list[Index] = field(default_factory=list)
    foreign_keys: list[ForeignKey] = field(default_factory=list)

    def add_table(self, table: Table) -> Table:
        if table.name in self.tables:
            raise ValueError(f"duplicate table {table.name!r}")
        self.tables[table.name] = table
        return table

    def add_index(self, table: str, column: str) -> Index:
        self._check_column(table, column)
        idx = Index(table, column)
        if idx not in self.indexes:
            self.indexes.append(idx)
        return idx

    def add_foreign_key(
        self, child_table: str, child_column: str, parent_table: str, parent_column: str
    ) -> ForeignKey:
        self._check_column(child_table, child_column)
        self._check_column(parent_table, parent_column)
        fk = ForeignKey(child_table, child_column, parent_table, parent_column)
        self.foreign_keys.append(fk)
        return fk

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise KeyError(f"schema {self.name} has no table {name!r}") from None

    def has_index(self, table: str, column: str) -> bool:
        return any(i.table == table and i.column == column for i in self.indexes)

    def foreign_key_between(
        self, table_a: str, table_b: str
    ) -> Optional[ForeignKey]:
        """Return an FK connecting the two tables in either direction."""
        for fk in self.foreign_keys:
            if {fk.child_table, fk.parent_table} == {table_a, table_b}:
                return fk
        return None

    def _check_column(self, table: str, column: str) -> None:
        self.table(table).column(column)

    def validate(self) -> None:
        """Raise if indexes or foreign keys reference missing columns."""
        for idx in self.indexes:
            self._check_column(idx.table, idx.column)
        for fk in self.foreign_keys:
            self._check_column(fk.child_table, fk.child_column)
            self._check_column(fk.parent_table, fk.parent_column)


def make_columns(specs: Iterable[tuple[str, int, float]]) -> list[Column]:
    """Build INT columns from ``(name, domain_size, skew)`` triples."""
    return [Column(name, ColumnType.INT, domain, skew) for name, domain, skew in specs]
