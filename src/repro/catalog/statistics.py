"""Database statistics: per-column histograms and per-table summaries.

These are the statistics the optimizer's cardinality model and the
selectivity-vector API consume.  They play the role of SQL Server's
statistics objects in the paper's prototype.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..selectivity.histogram import EquiDepthHistogram
from .datagen import DatabaseData
from .schema import Schema


@dataclass
class ColumnStatistics:
    """Statistics for one column: histogram, distinct count, bounds."""

    table: str
    column: str
    histogram: EquiDepthHistogram
    distinct_count: int
    min_value: float
    max_value: float


@dataclass
class TableStatistics:
    """Statistics for one table."""

    table: str
    row_count: int
    columns: dict[str, ColumnStatistics] = field(default_factory=dict)


@dataclass
class DatabaseStatistics:
    """All statistics for a database, keyed by table name."""

    schema: Schema
    tables: dict[str, TableStatistics] = field(default_factory=dict)

    def table(self, name: str) -> TableStatistics:
        try:
            return self.tables[name]
        except KeyError:
            raise KeyError(f"no statistics for table {name!r}") from None

    def column(self, table: str, column: str) -> ColumnStatistics:
        stats = self.table(table)
        try:
            return stats.columns[column]
        except KeyError:
            raise KeyError(f"no statistics for column {table}.{column}") from None

    def row_count(self, table: str) -> int:
        return self.table(table).row_count


def build_statistics(
    schema: Schema, data: DatabaseData, buckets: int = 64
) -> DatabaseStatistics:
    """Build equi-depth histograms and summaries from generated data."""
    stats = DatabaseStatistics(schema=schema)
    for name, table in schema.tables.items():
        tdata = data.table(name)
        tstats = TableStatistics(table=name, row_count=tdata.row_count)
        for col in table.columns:
            values = tdata.column(col.name)
            hist = EquiDepthHistogram.from_values(values, buckets=buckets)
            tstats.columns[col.name] = ColumnStatistics(
                table=name,
                column=col.name,
                histogram=hist,
                distinct_count=int(len(np.unique(values))),
                min_value=float(values.min()),
                max_value=float(values.max()),
            )
        stats.tables[name] = tstats
    return stats
