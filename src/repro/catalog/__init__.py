"""Catalog substrate: schemas, synthetic data, statistics."""

from .datagen import DatabaseData, TableData, generate_database
from .schema import Column, ColumnType, ForeignKey, Index, Schema, Table
from .statistics import (
    ColumnStatistics,
    DatabaseStatistics,
    TableStatistics,
    build_statistics,
)

__all__ = [
    "Column",
    "ColumnType",
    "ColumnStatistics",
    "DatabaseData",
    "DatabaseStatistics",
    "ForeignKey",
    "Index",
    "Schema",
    "Table",
    "TableData",
    "TableStatistics",
    "build_statistics",
    "generate_database",
]
