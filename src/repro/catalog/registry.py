"""Named database builders with memoized construction.

The evaluation touches four databases (tpch, tpcds, rd1, rd2); building
data + statistics takes a moment, so instances are cached per
(name, scale, seed) and shared across templates, techniques and
benchmark runs.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable

from ..engine.database import Database
from .realworld import rd1_schema, rd2_schema
from .schema import Schema
from .tpcds import tpcds_schema
from .tpch import tpch_schema

_BUILDERS: dict[str, Callable[[float], Schema]] = {
    "tpch": tpch_schema,
    "tpcds": tpcds_schema,
    "rd1": rd1_schema,
    "rd2": rd2_schema,
}


def database_names() -> list[str]:
    """All registered database names."""
    return sorted(_BUILDERS)


@lru_cache(maxsize=None)
def get_database(name: str, scale: float = 1.0, seed: int = 42) -> Database:
    """Build (once) and return the named database."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown database {name!r}; available: {database_names()}"
        ) from None
    schema = builder(scale)
    return Database.create(schema, seed=seed)
