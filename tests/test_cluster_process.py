"""Real-process cluster tests: spawn workers, kill one, recover.

Marked ``cluster`` and skipped unless ``RUN_CLUSTER_TESTS=1``: they
spawn worker processes and build catalog databases, which is too heavy
for the tier-1 suite.  CI runs them as a separate timeout-wrapped job.
"""

from __future__ import annotations

import os
import queue
import time

import pytest

from repro.cluster import (
    ClusterSupervisor,
    ClusterWorker,
    ProcessFaultInjector,
    Request,
    SnapshotStore,
    SupervisorPolicy,
    WorkerSpec,
    WorkerState,
)
from repro.workload.generator import instances_for_template
from repro.workload.templates import tpch_templates

pytestmark = pytest.mark.cluster

TEMPLATES = tpch_templates()[:2]
POLICY = SupervisorPolicy(
    heartbeat_timeout=0.8, restart_backoff_base=0.05, drain_timeout=15.0
)


def _submit_round(supervisor, streams, lo, hi):
    futures = []
    for i in range(lo, hi):
        for template in TEMPLATES:
            futures.append(supervisor.submit(
                template.name, streams[template.name][i].sv.values,
                sequence_id=i,
            ))
    return futures


def _await_all(futures, timeout=60.0):
    deadline = time.monotonic() + timeout
    for fut in futures:
        fut.result(timeout=max(0.1, deadline - time.monotonic()))


def _wait_for(predicate, timeout=20.0, what="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    raise AssertionError(f"timed out waiting for {what}")


def test_kill_recovery_with_warm_start(tmp_path):
    streams = {
        t.name: instances_for_template(t, 60, seed=1) for t in TEMPLATES
    }
    supervisor = ClusterSupervisor(
        TEMPLATES, num_workers=2, snapshot_dir=str(tmp_path),
        policy=POLICY, lam=2.0, db_scale=0.3,
        heartbeat_interval=0.1, snapshot_interval=0.3,
    )
    supervisor.start()
    try:
        _await_all(_submit_round(supervisor, streams, 0, 30))
        # Let a snapshot interval elapse so the replacement has food.
        _wait_for(
            lambda: SnapshotStore(str(tmp_path)).published_templates(),
            what="published snapshots",
        )

        injector = ProcessFaultInjector(supervisor, seed=1)
        assert injector.inject("kill").startswith("kill:")

        futures = _submit_round(supervisor, streams, 30, 60)
        _await_all(futures)
        assert all(fut.exception() is None for fut in futures)

        _wait_for(
            lambda: any(
                h.restarts > 0 and h.state is WorkerState.LIVE
                for h in supervisor.workers.values()
            ),
            what="killed worker to restart",
        )
        replaced = next(
            h for h in supervisor.workers.values() if h.restarts > 0
        )
        assert replaced.incarnation == 1
        assert replaced.warm_templates == len(TEMPLATES)

        report = supervisor.cluster_report()
        assert report["resolved"] == report["submitted"]
        assert report["supervisor_lambda_violations"] == 0
        assert report["worker_lambda_violations"] == 0
        text = supervisor.prometheus()
        assert 'source="supervisor"' in text
    finally:
        supervisor.close()
    report = supervisor.cluster_report()
    assert report["in_flight"] == 0
    assert report["resolved"] == report["submitted"]


def test_distributed_trace_spans_processes_and_survives_kill(tmp_path):
    """One trace_id connects supervisor and worker spans — even when the
    first dispatch dies and the request is retried on a peer."""
    from repro.obs import build_tree, explain_trace

    streams = {
        t.name: instances_for_template(t, 40, seed=4) for t in TEMPLATES
    }
    supervisor = ClusterSupervisor(
        TEMPLATES, num_workers=2, snapshot_dir=str(tmp_path),
        policy=POLICY, lam=2.0, db_scale=0.3,
        heartbeat_interval=0.1, trace=True,
    )
    supervisor.start()
    try:
        warm = _submit_round(supervisor, streams, 0, 10)
        _await_all(warm)

        # Every resolved request has a connected tree under one trace:
        # cluster.request -> cluster.dispatch -> worker serving spans.
        fut = warm[-1]
        assert fut.trace_id
        spans = supervisor.trace_spans(fut.trace_id)
        roots = build_tree(spans)
        assert len(roots) == 1
        assert roots[0].span.name == "cluster.request"
        assert {s.trace_id for s in spans} == {fut.trace_id}
        names = {s.name for s in spans}
        assert "cluster.dispatch" in names
        assert "serving.process" in names       # recorded inside the worker

        # Kill one worker outright; the supervisor hasn't noticed yet, so
        # the next round keeps dispatching to it and those requests must
        # be retried on the surviving peer under the *same* trace.
        victim = next(iter(supervisor.workers.values()))
        victim.process.kill()
        futures = _submit_round(supervisor, streams, 10, 40)
        _await_all(futures)
        assert all(fut.exception() is None for fut in futures)

        retried = []
        for fut in futures:
            spans = supervisor.trace_spans(fut.trace_id)
            dispatches = [s for s in spans if s.name == "cluster.dispatch"]
            if any(s.attrs.get("outcome") == "worker_died"
                   for s in dispatches):
                retried.append((fut, spans, dispatches))
        assert retried, "no request was stranded on the killed worker"

        fut, spans, dispatches = retried[0]
        roots = build_tree(spans)
        assert len(roots) == 1, "retried request split into several trees"
        root = roots[0].span
        assert root.attrs["attempts"] >= 2
        outcomes = [s.attrs["outcome"] for s in dispatches]
        assert "worker_died" in outcomes and "response" in outcomes
        workers_named = {
            (s.attrs["worker"], s.attrs["incarnation"]) for s in dispatches
        }
        assert len(workers_named) >= 2          # both sides of the retry
        # Forensics narrates the retry from the same span set.
        info = explain_trace(spans)
        assert info["attempts"] and len(info["attempts"]) >= 2
        assert info["outcome"] in ("certified", "uncertified")
    finally:
        supervisor.close()


def test_graceful_close_drains_everything(tmp_path):
    streams = {
        t.name: instances_for_template(t, 10, seed=2) for t in TEMPLATES
    }
    supervisor = ClusterSupervisor(
        TEMPLATES, num_workers=2, snapshot_dir=str(tmp_path),
        policy=POLICY, lam=2.0, db_scale=0.3, heartbeat_interval=0.1,
    )
    supervisor.start()
    futures = _submit_round(supervisor, streams, 0, 10)
    supervisor.close()
    assert all(fut.done() for fut in futures)
    report = supervisor.cluster_report()
    assert report["resolved"] == report["submitted"] == len(futures)
    # Graceful stop published final snapshots for the warmed templates.
    assert SnapshotStore(str(tmp_path)).published_templates()


class TestWarmStartInProcess:
    """ClusterWorker warm-start semantics without spawning processes."""

    def _boot(self, tmp_path, worker_id, incarnation=0):
        spec = WorkerSpec(
            worker_id=worker_id, incarnation=incarnation,
            templates=(TEMPLATES[0],), snapshot_dir=str(tmp_path),
            lam=2.0, db_scale=0.3, threads=2,
        )
        return ClusterWorker(spec, queue.Queue())

    def _serve(self, worker, n, seed=3):
        instances = instances_for_template(TEMPLATES[0], n, seed=seed)
        for i, inst in enumerate(instances):
            worker.serve(Request(
                request_id=i, template_name=TEMPLATES[0].name,
                sv=inst.sv.values, sequence_id=i,
            ))
        got = [worker.response_q.get(timeout=30.0) for _ in range(n)]
        assert all(r.ok for r in got)
        return got

    def test_warm_start_restores_instances_and_saves_optimizer_calls(
        self, tmp_path
    ):
        first = self._boot(tmp_path, "a")
        self._serve(first, 25)
        cold_calls = first.optimizer_calls
        assert first.publish_snapshots() == 1
        first.manager.close(wait=True)

        second = self._boot(tmp_path, "b")
        assert second.warm_templates == 1
        assert second.warm_instances > 0
        # The same workload again: the warm cache answers from
        # snapshots, so the replacement pays ≤20% of a cold start.
        self._serve(second, 25)
        warm_calls = second.optimizer_calls
        second.manager.close(wait=True)
        assert warm_calls <= max(1, 0.2 * cold_calls)

    def test_corrupt_snapshot_degrades_to_cold_start(self, tmp_path):
        first = self._boot(tmp_path, "a")
        self._serve(first, 10)
        first.publish_snapshots()
        first.manager.close(wait=True)

        store = SnapshotStore(str(tmp_path))
        store.corrupt(TEMPLATES[0].name)

        second = self._boot(tmp_path, "b")
        assert second.warm_templates == 0
        assert second.cold_templates == 1
        assert second.store.corrupt_loads == 1
        # Cold but alive: it still serves correctly.
        self._serve(second, 5)
        second.manager.close(wait=True)


def test_worker_spec_is_picklable():
    import pickle

    spec = WorkerSpec(
        worker_id="w0", incarnation=2, templates=tuple(TEMPLATES),
        snapshot_dir="/tmp/x",
    )
    clone = pickle.loads(pickle.dumps(spec))
    assert clone == spec
    assert clone.templates[0].name == TEMPLATES[0].name


def test_chaos_exit_code_constant_matches_sigkill_convention():
    from repro.cluster.worker import CHAOS_EXIT_CODE

    assert CHAOS_EXIT_CODE == 128 + 9
