"""Calibration observatory tests: detectors, feeds, drift, repair.

The acceptance bar of DESIGN.md §15: the calibration feeds grade a
well-calibrated engine A and stay alarm-free on a calm workload; an
injected cost-model shift raises a typed ``DriftEvent`` within a
bounded number of requests; a budgeted recost sweep repairs the cache
and clears the alarm; the anchor-attribution counters balance against
the getPlan hit counters (the identity the doctor self-checks); and the
doctor reports — local and cluster-merged — carry it all under a
stable schema.
"""

from __future__ import annotations

import json
import math

import pytest

from conftest import build_toy_schema
from repro.core.persistence import dump_cache, load_cache
from repro.core.scr import SCR
from repro.engine.database import Database
from repro.engine.faults import DriftingCostEngine, NoisyEngine
from repro.harness.oracle import Oracle
from repro.obs import Observability
from repro.obs.calibration import (
    CALIBRATION_BIAS,
    CALIBRATION_ERROR,
    DRIFT_ALARM,
    DRIFT_EVENTS,
    RECOST_SWEEPS,
    SWEEP_RECOST_CALLS,
    BlockShiftDetector,
    CalibrationTracker,
    Ewma,
    grade_for,
)
from repro.obs.doctor import (
    DOCTOR_SCHEMA,
    anchor_report,
    doctor_from_sources,
    render_doctor_report,
    template_health,
)
from repro.obs.registry import MetricsRegistry
from repro.query.instance import QueryInstance
from repro.query.template import QueryTemplate, join, range_predicate
from repro.serving import ConcurrentPQOManager
from repro.workload.generator import generate_selectivity_vectors

LAM = 2.0


def make_template(name: str = "cal_join") -> QueryTemplate:
    return QueryTemplate(
        name=name,
        database="toy",
        tables=["orders", "cust"],
        joins=[join("orders", "o_cust", "cust", "c_id")],
        parameterized=[
            range_predicate("orders", "o_date", "<="),
            range_predicate("cust", "c_bal", "<="),
        ],
    )


def make_db() -> Database:
    return Database.create(build_toy_schema(), seed=11)


def workload(template: QueryTemplate, m: int, seed: int = 21):
    return [
        QueryInstance(template.name, sv=sv)
        for sv in generate_selectivity_vectors(2, m, seed=seed)
    ]


# ---------------------------------------------------------------------------
# unit: the EWMA and the shift detector


class TestEwma:
    def test_seeded_by_first_sample(self):
        e = Ewma(alpha=0.25)
        assert e.value is None
        assert e.update(4.0) == 4.0
        assert e.update(8.0) == pytest.approx(4.0 + 0.25 * 4.0)

    def test_alpha_validated(self):
        with pytest.raises(ValueError):
            Ewma(alpha=0.0)
        with pytest.raises(ValueError):
            Ewma(alpha=1.5)


# Small geometry so unit tests exercise the rule in a few dozen samples
# (the production defaults only change the scale, not the logic).
FAST = dict(tau=0.3, k=3, m=4, block=5, ref=4, lag=2, warm=3)


def feed_blocks(det: BlockShiftDetector, levels, block: int = 5) -> list[int]:
    """Feed constant-level blocks; return indices of blocks that fired."""
    fired = []
    for i, level in enumerate(levels):
        for _ in range(block):
            if det.update(level):
                fired.append(i)
    return fired


class TestBlockShiftDetector:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            BlockShiftDetector(k=5, m=4)
        with pytest.raises(ValueError):
            BlockShiftDetector(k=0)
        with pytest.raises(ValueError):
            BlockShiftDetector(lag=0)
        with pytest.raises(ValueError):
            BlockShiftDetector(ref=1)

    def test_calm_stream_is_silent(self):
        det = BlockShiftDetector(**FAST)
        # Small deterministic jitter around zero, well inside tau.
        for i in range(200):
            assert not det.update(0.05 * math.sin(0.7 * i))
        assert det.warmed_up
        assert abs(det.last_deviation) < FAST["tau"]

    def test_sustained_shift_fires(self):
        det = BlockShiftDetector(**FAST)
        fired = feed_blocks(det, [0.0] * 10 + [0.5] * 8)
        assert fired, "a 0.5-shift over 8 blocks must trip tau=0.3"
        # Fires only after the runs rule has k=3 shifted deviations,
        # never on the very first shifted block.
        assert fired[0] > 10

    def test_downward_shift_fires_too(self):
        det = BlockShiftDetector(**FAST)
        assert feed_blocks(det, [0.0] * 10 + [-0.5] * 8)

    def test_single_outlier_block_is_ignored(self):
        det = BlockShiftDetector(**FAST)
        # One wild block in a calm stream: the runs rule needs k=3 of
        # the last m=4 deviations on the same side, so one is noise.
        assert not feed_blocks(det, [0.0] * 10 + [5.0] + [0.0] * 10)

    def test_warmup_suppresses_the_rule(self):
        det = BlockShiftDetector(**FAST)
        # Wild swings entirely inside the warm-up window: never fires,
        # and the detector is not yet armed.
        assert not feed_blocks(det, [0.0, 10.0, -10.0])
        assert not det.warmed_up

    def test_slow_trend_tracked_without_alarm(self):
        det = BlockShiftDetector(**FAST)
        # Drifting by 0.02 per block: the lagged reference trails by
        # lag=2 blocks, so deviations stay ~0.04 << tau.
        assert not feed_blocks(det, [0.02 * i for i in range(40)])

    def test_reset_relearns_from_scratch(self):
        det = BlockShiftDetector(**FAST)
        feed_blocks(det, [0.0] * 12)
        det.reset()
        assert det.n == 0 and det.blocks == 0
        assert det.reference is None and not det.warmed_up


class TestGrades:
    def test_grade_edges(self):
        assert grade_for(0.0) == "A"
        assert grade_for(0.05) == "A"
        assert grade_for(0.06) == "B"
        assert grade_for(0.35) == "C"
        assert grade_for(0.5) == "D"
        assert grade_for(1.0) == "F"


# ---------------------------------------------------------------------------
# unit: record_ratio / record_sv semantics on a bare tracker


@pytest.fixture
def fast_detectors(monkeypatch):
    """Shrink the default detector geometry so tracker-level tests see
    events within tens of samples instead of hundreds."""
    import repro.obs.calibration as calibration

    monkeypatch.setattr(calibration, "CALIBRATION_DETECTOR", FAST)
    monkeypatch.setattr(
        calibration, "SELECTIVITY_DETECTOR", dict(FAST, tau=2.0)
    )


class TestRecordRatio:
    def setup_method(self):
        self.registry = MetricsRegistry()
        self.tracker = CalibrationTracker(self.registry)
        self.cal = self.tracker.template("t1")

    def _hist_child(self, kind="exact", feed="recost"):
        return self.registry.get(CALIBRATION_ERROR).labels(
            template="t1", kind=kind, feed=feed
        )

    def test_inside_interval_observes_zero_excess(self):
        # Actual lands inside the Cost Bounding Lemma interval: the
        # histogram sees 0 (the model's claim held) while the bias EWMA
        # keeps the signed ratio.
        self.cal.record_ratio(
            "recost", "exact", predicted=100.0, actual=120.0,
            log_slack_hi=0.5, log_slack_lo=0.5,
        )
        child = self._hist_child()
        assert child.count == 1
        assert child.sum == 0.0
        bias = self.registry.value(
            CALIBRATION_BIAS, template="t1", feed="recost"
        )
        assert bias == pytest.approx(math.log(1.2))

    def test_outside_interval_observes_the_excess(self):
        self.cal.record_ratio(
            "recost", "exact",
            predicted=100.0, actual=100.0 * math.exp(1.0),
            log_slack_hi=0.3,
        )
        assert self._hist_child().sum == pytest.approx(0.7)

    def test_low_side_excess_uses_low_slack(self):
        self.cal.record_ratio(
            "recost", "exact",
            predicted=100.0, actual=100.0 * math.exp(-1.0),
            log_slack_hi=5.0, log_slack_lo=0.4,
        )
        assert self._hist_child().sum == pytest.approx(0.6)

    def test_non_positive_costs_are_ignored(self):
        assert self.cal.record_ratio("recost", "exact", 0.0, 5.0) is None
        assert self.cal.record_ratio("recost", "exact", 5.0, -1.0) is None
        assert self.cal.samples["recost"] == 0

    def test_oracle_feed_degenerates_to_abs_log_ratio(self):
        self.cal.record_ratio(
            "oracle", "exact", predicted=10.0, actual=10.0 * math.e
        )
        assert self._hist_child(feed="oracle").sum == pytest.approx(1.0)

    def test_score_grades_and_na_without_samples(self):
        assert self.cal.score()["grade"] == "n/a"
        for _ in range(20):
            self.cal.record_ratio(
                "recost", "exact", 100.0, 101.0, log_slack_hi=0.5
            )
        score = self.cal.score()
        assert score["grade"] == "A"
        assert score["feeds"]["recost"]["samples"] == 20
        # The grade takes the worst feed: a bad oracle feed drags it.
        for _ in range(20):
            self.cal.record_ratio("oracle", "exact", 1.0, math.exp(2.0))
        worst = self.cal.score()
        assert worst["grade"] == "F"
        assert worst["headroom_factor_p90"] > math.exp(1.0)


class TestDriftEvents:
    def test_shift_emits_one_latched_event(self, fast_detectors):
        registry = MetricsRegistry()
        tracker = CalibrationTracker(registry)
        cal = tracker.template("t1")
        for _ in range(60):  # 12 calm blocks of 5
            cal.record_ratio("recost", "exact", 100.0, 100.0)
        for _ in range(60):  # sustained 1.6x shift
            cal.record_ratio("recost", "exact", 100.0, 160.0)
        assert cal.alarms["calibration"]
        assert len(tracker.events) == 1  # latched: no re-fire while up
        event = tracker.events[0]
        assert event.template == "t1" and event.signal == "calibration"
        assert event.value > 0.3  # EWMA moved toward ln 1.6
        assert "recost sweep" in event.recommended_action
        assert registry.value(
            DRIFT_EVENTS, template="t1", signal="calibration"
        ) == 1
        assert registry.value(
            DRIFT_ALARM, template="t1", signal="calibration"
        ) == 1
        assert tracker.active_alarms() == [
            {"template": "t1", "signal": "calibration"}
        ]

        cal.clear_alarm("calibration")
        assert not cal.alarms["calibration"]
        assert registry.value(
            DRIFT_ALARM, template="t1", signal="calibration"
        ) == 0

    def test_selectivity_signal_watches_log_area(self, fast_detectors):
        tracker = CalibrationTracker(MetricsRegistry())
        cal = tracker.template("t1")
        assert cal.record_sv((0.5, 0.0)) is None  # degenerate sv skipped
        assert cal.sv_samples == 0
        for _ in range(60):
            cal.record_sv((0.1, 0.2))
        for _ in range(60):  # region-mix change: log area moves ~9 nats
            cal.record_sv((0.001, 0.0002))
        assert cal.alarms["selectivity"]
        assert tracker.events[0].signal == "selectivity"
        assert "seeding" in tracker.events[0].recommended_action

    def test_event_log_is_bounded(self, fast_detectors):
        tracker = CalibrationTracker(MetricsRegistry(), max_events=1)
        for name in ("a", "b"):
            cal = tracker.template(name)
            for _ in range(60):
                cal.record_ratio("recost", "exact", 100.0, 100.0)
            for _ in range(60):
                cal.record_ratio("recost", "exact", 100.0, 160.0)
        assert len(tracker.events) == 1
        # Both alarms latched even though only one event was kept.
        assert len(tracker.active_alarms()) == 2

    def test_on_event_callbacks_fire(self, fast_detectors):
        tracker = CalibrationTracker(MetricsRegistry())
        seen = []
        tracker.on_event.append(seen.append)
        cal = tracker.template("t1")
        for _ in range(60):
            cal.record_ratio("recost", "exact", 100.0, 100.0)
        for _ in range(60):
            cal.record_ratio("recost", "exact", 100.0, 160.0)
        assert len(seen) == 1 and seen[0].template == "t1"

    def test_note_sweep_books_and_clears(self):
        registry = MetricsRegistry()
        tracker = CalibrationTracker(registry)
        cal = tracker.template("t1")
        cal.alarms["calibration"] = True
        tracker.note_sweep("t1", recost_calls=40)
        assert not cal.alarms["calibration"]
        assert registry.value(RECOST_SWEEPS, template="t1") == 1
        assert registry.value(SWEEP_RECOST_CALLS, template="t1") == 40


# ---------------------------------------------------------------------------
# integration: SCR on the toy engine


class TestCalmServing:
    def test_calm_run_grades_a_with_no_alarms(self):
        db, template = make_db(), make_template()
        obs = Observability()
        scr = SCR(db.engine(template), lam=LAM, obs=obs)
        for q in workload(template, 150):
            scr.process(q)
        cal = scr.calibration
        assert cal is not None
        # The recost feed is free: cost checks already paid the calls.
        assert cal.samples["recost"] > 50
        assert cal.sv_samples == 150
        score = cal.score()
        assert score["grade"] == "A"
        assert score["alarms"] == {
            "calibration": False, "selectivity": False,
        }
        assert not obs.calibration.events

    def test_anchor_accounting_identity(self):
        db, template = make_db(), make_template()
        scr = SCR(db.engine(template), lam=LAM)
        for q in workload(template, 150):
            scr.process(q)
        gp, cache = scr.get_plan, scr.cache
        sel, cost, spend = cache.anchor_hit_totals(exclude_adopted=True)
        assert (sel, cost) == (gp.selectivity_hits, gp.cost_hits)
        assert spend <= gp.total_recost_calls
        health, errors = template_health(template.name, scr)
        assert errors == []
        assert health["anchors"]["optimizer_calls_saved"] == sel + cost

    def test_anchor_report_ranks_and_totals(self):
        db, template = make_db(), make_template()
        scr = SCR(db.engine(template), lam=LAM)
        for q in workload(template, 100):
            scr.process(q)
        report = anchor_report(scr.cache, top=3)
        assert report["live_anchors"] == len(list(scr.cache.instances()))
        assert len(report["top"]) <= 3
        hits = [
            r["hits_selectivity"] + r["hits_cost"] for r in report["top"]
        ]
        assert hits == sorted(hits, reverse=True)
        assert all(
            r["hits_selectivity"] + r["hits_cost"] == 0
            for r in report["bottom"]
        )
        assert report["wasted_optimizer_calls"] == (
            report["never_hit_live"] + report["evicted_never_hit"]
        )


class TestDriftToRepair:
    """The full observatory loop: inject drift, detect, sweep, verify."""

    def test_cost_model_drift_detected_and_swept(self):
        db, template = make_db(), make_template()
        obs = Observability()
        engine = DriftingCostEngine(db.engine(template))
        scr = SCR(engine, lam=LAM, obs=obs)

        # Calm phase: long enough to warm the block detector
        # (warm=16 blocks of 25 recost samples).
        for q in workload(template, 900, seed=7):
            scr.process(q)
        assert not scr.calibration.alarms["calibration"]

        # Inject a 1.6x cost-model shift.  Anchors stored before the
        # shift keep stale costs, so recost ratios move by ~ln 1.6 —
        # but only until misses re-anchor the cache under the new
        # model, so detection must land inside that window.
        engine.set_factor(1.6)
        detected_at = None
        for i, q in enumerate(workload(template, 800, seed=99)):
            scr.process(q)
            if scr.calibration.alarms["calibration"]:
                detected_at = i
                break
        assert detected_at is not None, "drift never detected"
        events = obs.calibration.events
        assert events and events[-1].signal == "calibration"
        assert events[-1].template == template.name

        # Budgeted repair: the sweep re-costs stale anchors and resets
        # the detector baseline; corrections average a sizable fraction
        # of ln 1.6 (some anchors already self-healed via misses).
        result = scr.recalibrate(budget=200)
        assert result.refreshed > 0
        assert result.recost_calls <= 200
        assert 0.05 < result.mean_correction < math.log(1.6) + 0.05
        assert not scr.calibration.alarms["calibration"]
        assert obs.registry.value(
            RECOST_SWEEPS, template=template.name
        ) == 1

        # Post-sweep the cache is calibrated *under the new model*:
        # no re-alarm and a clean grade.
        for q in workload(template, 300, seed=13):
            scr.process(q)
        assert not scr.calibration.alarms["calibration"]
        assert scr.calibration.score()["grade"] == "A"

    def test_sweep_budget_and_staleness_respected(self):
        db, template = make_db(), make_template()
        scr = SCR(db.engine(template), lam=LAM, obs=Observability())
        for q in workload(template, 200):
            scr.process(q)
        anchors = len(list(scr.cache.instances()))
        assert anchors > 3
        result = scr.recalibrate(budget=2)
        assert result.recost_calls == 2
        assert result.skipped >= anchors - 2
        # Everything was hit within the horizon: nothing stale enough.
        result = scr.recalibrate(min_staleness=10 ** 9)
        assert result.refreshed == 0
        assert result.skipped == anchors


class TestOracleFeed:
    def test_estimation_noise_degrades_oracle_score(self):
        db, template = make_db(), make_template()
        obs = Observability()
        oracle = Oracle(db, template)
        clean = db.engine(template)
        noisy = NoisyEngine(db.engine(template), noise=0.35, seed=3)
        cal_clean = obs.calibration.template("clean")
        cal_noisy = obs.calibration.template("noisy")
        for q in workload(template, 60, seed=5):
            pred = clean.optimize(clean.selectivity_vector(q)).cost
            oracle.feed_calibration(cal_clean, q.selectivities, pred)
            pred_n = noisy.optimize(noisy.selectivity_vector(q)).cost
            oracle.feed_calibration(cal_noisy, q.selectivities, pred_n)
        sc_clean = cal_clean.score()
        sc_noisy = cal_noisy.score()
        # The oracle feed sees noise the engine is internally
        # consistent about — the recost feed never can.
        assert sc_clean["grade"] == "A"
        assert sc_noisy["grade"] not in ("A", "B")
        assert (
            sc_noisy["feeds"]["oracle"]["abs_log_ratio_p90"]
            > 5 * sc_clean["feeds"]["oracle"]["abs_log_ratio_p90"]
        )


# ---------------------------------------------------------------------------
# persistence: attribution counters survive the round-trip


class TestAttributionPersistence:
    def _served_scr(self):
        db, template = make_db(), make_template()
        scr = SCR(db.engine(template), lam=LAM)
        for q in workload(template, 150):
            scr.process(q)
        return scr

    def test_round_trip_preserves_counters(self):
        scr = self._served_scr()
        cache = scr.cache
        cache.adopted_hits_selectivity = 7
        cache.adopted_hits_cost = 3
        cache.adopted_recost_spend = 5
        restored = load_cache(dump_cache(cache))
        by_sv = {
            tuple(e.sv): e for e in restored.instances()
        }
        for entry in cache.instances():
            twin = by_sv[tuple(entry.sv)]
            assert twin.hits_selectivity == entry.hits_selectivity
            assert twin.hits_cost == entry.hits_cost
            assert twin.recost_spend == entry.recost_spend
            assert twin.last_hit_tick == entry.last_hit_tick
        assert restored.anchor_hit_totals() == cache.anchor_hit_totals()
        assert restored.anchor_hit_totals(
            exclude_adopted=True
        ) == cache.anchor_hit_totals(exclude_adopted=True)
        assert restored.evicted_never_hit == cache.evicted_never_hit
        assert restored.adopted_hits_selectivity == 7
        assert restored.adopted_hits_cost == 3
        assert restored.adopted_recost_spend == 5

    def test_pre_attribution_dumps_restore_with_zeroed_counters(self):
        scr = self._served_scr()
        document = json.loads(dump_cache(scr.cache))
        payload = document["payload"]
        # Rewind the document to the pre-observatory shape: no
        # attribution fields anywhere.
        for inst in payload["instances"]:
            for field in (
                "hits_selectivity", "hits_cost",
                "recost_spend", "last_hit_tick",
            ):
                inst.pop(field)
        payload.pop("evicted")
        payload.pop("adopted")
        payload["version"] = 1  # legacy un-checksummed format
        restored = load_cache(json.dumps(payload))
        assert len(list(restored.instances())) == len(list(scr.cache.instances()))
        assert restored.anchor_hit_totals() == (0, 0, 0)
        assert restored.adopted_hits_selectivity == 0
        assert all(e.last_hit_tick == -1 for e in restored.instances())


# ---------------------------------------------------------------------------
# the doctor: local and cluster views


class TestDoctorReports:
    def _manager(self, template, m=60):
        db = make_db()
        obs = Observability()
        manager = ConcurrentPQOManager(database=db, max_workers=2, obs=obs)
        manager.register(template, lam=LAM)
        # Waves, not one broadcast: a single process_many probes every
        # instance against the same (initially empty) snapshot, so the
        # whole batch would miss and the hit counters — what the doctor
        # attributes — would stay zero.
        instances = workload(template, m)
        for i in range(0, m, 10):
            manager.process_many(instances[i:i + 10], dedupe=False)
        return manager, obs

    def test_local_report_schema_and_identity(self):
        template = make_template()
        manager, obs = self._manager(template)
        report = manager.doctor_report()
        manager.close()
        assert report["schema"] == DOCTOR_SCHEMA
        assert report["source"] == "local"
        assert report["errors"] == []
        health = report["templates"][template.name]
        assert health["requests"]["total"] == 60
        assert health["grade"] == health["calibration"]["grade"]
        assert health["alarms"] == []
        summary = report["summary"]
        assert summary["templates"] == 1
        assert summary["active_alarms"] == 0
        assert summary["optimizer_calls_saved"] == (
            health["anchors"]["optimizer_calls_saved"]
        )
        text = render_doctor_report(report)
        assert template.name in text

    def test_doctor_without_observability_degrades_gracefully(self):
        template = make_template()
        db = make_db()
        manager = ConcurrentPQOManager(database=db, max_workers=2)
        manager.register(template, lam=LAM)
        manager.process_many(workload(template, 30), dedupe=False)
        report = manager.doctor_report()
        manager.close()
        health = report["templates"][template.name]
        assert health["calibration"] is None
        assert health["grade"] == "n/a"
        assert report["errors"] == []
        render_doctor_report(report)  # must not require calibration

    def test_cluster_view_reproduces_merged_totals(self):
        template = make_template()
        m_a, obs_a = self._manager(template, m=60)
        m_b, obs_b = self._manager(template, m=40)
        snapshots = {
            "w0": obs_a.registry.snapshot(),
            "w1": obs_b.registry.snapshot(),
        }
        summaries = {
            "w0": m_a.anchor_summaries(),
            "w1": m_b.anchor_summaries(),
        }
        local_a = m_a.doctor_report()["templates"][template.name]
        local_b = m_b.doctor_report()["templates"][template.name]
        m_a.close()
        m_b.close()

        report = doctor_from_sources(snapshots, summaries)
        assert report["schema"] == DOCTOR_SCHEMA
        assert report["source"] == "cluster"
        assert report["sources"] == ["w0", "w1"]
        health = report["templates"][template.name]
        # The cluster view recomputes from snapshot buckets: sample
        # counts are exactly the sum of the workers' local counts.
        merged = health["calibration"]["feeds"]["recost"]["samples"]
        assert merged == (
            local_a["calibration"]["feeds"]["recost"]["samples"]
            + local_b["calibration"]["feeds"]["recost"]["samples"]
        )
        anchors = health["anchors"]
        assert anchors["optimizer_calls_saved"] == (
            local_a["anchors"]["optimizer_calls_saved"]
            + local_b["anchors"]["optimizer_calls_saved"]
        )
        assert render_doctor_report(report)

    def test_single_source_cluster_matches_local_grade(self):
        template = make_template()
        manager, obs = self._manager(template)
        local = manager.doctor_report()["templates"][template.name]
        snapshot = obs.registry.snapshot()
        summaries = {"w0": manager.anchor_summaries()}
        manager.close()
        cluster = doctor_from_sources({"w0": snapshot}, summaries)
        health = cluster["templates"][template.name]
        assert health["grade"] == local["grade"]
        assert health["calibration"]["feeds"]["recost"]["samples"] == (
            local["calibration"]["feeds"]["recost"]["samples"]
        )
