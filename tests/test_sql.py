"""Tests for the SQL front-end."""

import pytest

from repro.query.expressions import ColumnRef, ComparisonOp
from repro.query.sql import SqlParseError, parse_sql, template_to_sql
from repro.query.template import AggregationKind


class TestParseBasics:
    def test_single_table_parameterized(self):
        t = parse_sql(
            "SELECT * FROM orders WHERE orders.o_amount <= ?",
            name="q", database="toy",
        )
        assert t.tables == ["orders"]
        assert t.dimensions == 1
        assert t.parameterized[0].op is ComparisonOp.LE
        assert t.aggregation is AggregationKind.NONE

    def test_join_and_mixed_predicates(self):
        t = parse_sql(
            """SELECT * FROM orders, cust
               WHERE orders.o_cust = cust.c_id
                 AND orders.o_date <= ?
                 AND cust.c_bal >= ?
                 AND orders.o_amount <= 100""",
            name="q", database="toy",
        )
        assert len(t.joins) == 1
        assert t.joins[0].left == ColumnRef("orders", "o_cust")
        assert t.dimensions == 2
        assert len(t.fixed) == 1
        assert t.fixed[0].value == 100.0

    def test_count_aggregate(self):
        t = parse_sql(
            "SELECT COUNT(*) FROM orders WHERE orders.o_date <= ?",
            name="q", database="toy",
        )
        assert t.aggregation is AggregationKind.COUNT

    def test_group_by(self):
        t = parse_sql(
            """SELECT * FROM orders, cust
               WHERE orders.o_cust = cust.c_id AND orders.o_date <= ?
               GROUP BY cust.c_bal""",
            name="q", database="toy",
        )
        assert t.aggregation is AggregationKind.GROUP_BY
        assert t.group_by == ColumnRef("cust", "c_bal")

    def test_order_by(self):
        t = parse_sql(
            "SELECT * FROM orders WHERE orders.o_date <= ? "
            "ORDER BY orders.o_amount",
            name="q", database="toy",
        )
        assert t.order_by == ColumnRef("orders", "o_amount")

    def test_strict_operators_folded(self):
        t = parse_sql(
            "SELECT * FROM orders WHERE orders.o_date < ? "
            "AND orders.o_amount > ?",
            name="q", database="toy",
        )
        assert t.parameterized[0].op is ComparisonOp.LE
        assert t.parameterized[1].op is ComparisonOp.GE

    def test_parameter_order_is_textual(self):
        t = parse_sql(
            """SELECT * FROM orders, cust
               WHERE orders.o_cust = cust.c_id
                 AND cust.c_bal <= ? AND orders.o_date >= ?""",
            name="q", database="toy",
        )
        assert t.parameterized[0].column.table == "cust"
        assert t.parameterized[1].column.table == "orders"

    def test_equality_parameter(self):
        t = parse_sql(
            "SELECT * FROM orders WHERE orders.o_cust = ?",
            name="q", database="toy",
        )
        assert t.parameterized[0].op is ComparisonOp.EQ


class TestParseErrors:
    def test_missing_from(self):
        with pytest.raises(SqlParseError, match="shape"):
            parse_sql("SELECT *", name="q", database="d")

    def test_unqualified_column(self):
        with pytest.raises(SqlParseError, match="qualified column"):
            parse_sql(
                "SELECT * FROM orders WHERE amount <= ?",
                name="q", database="d",
            )

    def test_unsupported_conjunct(self):
        with pytest.raises(SqlParseError, match="unsupported WHERE"):
            parse_sql(
                "SELECT * FROM orders WHERE orders.o_a LIKE 'x%'",
                name="q", database="d",
            )

    def test_subquery_in_from_rejected(self):
        with pytest.raises(SqlParseError, match="table list"):
            parse_sql(
                "SELECT * FROM (SELECT * FROM t) WHERE t.x <= ?",
                name="q", database="d",
            )

    def test_disconnected_join_graph_caught_by_template(self):
        with pytest.raises(ValueError, match="not connected"):
            parse_sql(
                "SELECT * FROM orders, cust WHERE orders.o_date <= ?",
                name="q", database="d",
            )


class TestRoundTrip:
    def test_template_to_sql_round_trips(self):
        sql = """SELECT COUNT(*) FROM orders, cust
                 WHERE orders.o_cust = cust.c_id
                   AND orders.o_date <= ?
                   AND cust.c_bal >= 10"""
        t1 = parse_sql(sql, name="q", database="toy")
        rendered = template_to_sql(t1)
        t2 = parse_sql(rendered, name="q", database="toy")
        assert t1.tables == t2.tables
        assert t1.joins == t2.joins
        assert t1.parameterized == t2.parameterized
        assert t1.fixed == t2.fixed
        assert t1.aggregation == t2.aggregation


class TestEndToEnd:
    def test_parsed_template_optimizes(self, toy_db):
        t = parse_sql(
            """SELECT * FROM orders, cust
               WHERE orders.o_cust = cust.c_id
                 AND orders.o_date <= ? AND cust.c_bal <= ?""",
            name="sql_demo", database="toy",
        )
        engine = toy_db.engine(t)
        from repro.query.instance import SelectivityVector

        result = engine.optimize(SelectivityVector.of(0.1, 0.2))
        assert result.cost > 0

    def test_parsed_template_runs_under_scr(self, toy_db):
        from repro.core.scr import SCR
        from repro.workload.generator import instances_for_template

        t = parse_sql(
            "SELECT COUNT(*) FROM orders WHERE orders.o_amount <= ?",
            name="sql_scr", database="toy",
        )
        scr = SCR(toy_db.engine(t), lam=2.0)
        for inst in instances_for_template(t, 40, seed=3):
            scr.process(inst)
        assert scr.plans_cached >= 1
