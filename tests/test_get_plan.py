"""Tests for the getPlan module (Algorithm 1, section 6.2)."""

import pytest

from repro.core.get_plan import CheckKind, GetPlan
from repro.core.plan_cache import InstanceEntry, PlanCache
from repro.query.instance import SelectivityVector


@pytest.fixture()
def populated(toy_engine):
    """Cache with one anchor instance at (0.1, 0.1), S = 1."""
    cache = PlanCache()
    anchor_sv = SelectivityVector.of(0.1, 0.1)
    result = toy_engine.optimize(anchor_sv)
    plan = cache.add_plan(result.plan, result.shrunken_memo)
    cache.add_instance(InstanceEntry(
        sv=anchor_sv, plan_id=plan.plan_id,
        optimal_cost=result.cost, suboptimality=1.0,
    ))
    return cache, plan, result


class TestSelectivityCheck:
    def test_hit_inside_gl_region(self, populated, toy_engine):
        cache, plan, _ = populated
        get_plan = GetPlan(cache=cache, lam=2.0)
        # GL = 1.5 <= 2: pure selectivity hit, no recost calls.
        decision = get_plan(SelectivityVector.of(0.15, 0.1), toy_engine.recost)
        assert decision.hit
        assert decision.check is CheckKind.SELECTIVITY
        assert decision.recost_calls == 0
        assert decision.plan_id == plan.plan_id

    def test_usage_incremented_on_hit(self, populated, toy_engine):
        cache, _, _ = populated
        get_plan = GetPlan(cache=cache, lam=2.0)
        entry = next(cache.instances())
        before = entry.usage
        get_plan(SelectivityVector.of(0.11, 0.1), toy_engine.recost)
        assert entry.usage == before + 1

    def test_inferred_suboptimality_bound(self, populated, toy_engine):
        cache, _, _ = populated
        get_plan = GetPlan(cache=cache, lam=2.0)
        sv = SelectivityVector.of(0.15, 0.1)
        decision = get_plan(sv, toy_engine.recost)
        # Certified bound is S*G*L = 1.5 for this query point.
        assert decision.inferred_suboptimality == pytest.approx(1.5)

    def test_budget_shrinks_with_anchor_suboptimality(self, populated, toy_engine):
        cache, _, _ = populated
        entry = next(cache.instances())
        entry.suboptimality = 1.8  # anchor plan itself 1.8-suboptimal
        get_plan = GetPlan(cache=cache, lam=2.0, max_recost_candidates=0)
        # GL = 1.5 but budget is 2/1.8 = 1.11: must miss.
        decision = get_plan(SelectivityVector.of(0.15, 0.1), toy_engine.recost)
        assert not decision.hit


class TestCostCheck:
    def test_cost_check_rescues_failed_selectivity_check(
        self, populated, toy_engine
    ):
        cache, _, _ = populated
        get_plan = GetPlan(cache=cache, lam=2.0)
        # Outside the GL region (G = 8 along dim 1), but growing only
        # dimension 1 of this template barely moves the plan's cost
        # (orders-side predicate), so R stays small and RL <= lambda.
        sv = SelectivityVector.of(0.1, 0.8)
        decision = get_plan(sv, toy_engine.recost)
        if decision.hit:
            assert decision.check is CheckKind.COST
            assert decision.recost_calls >= 1
            assert decision.recost_ratio < 2.0

    def test_recost_cap_respected(self, populated, toy_engine):
        cache, _, _ = populated
        get_plan = GetPlan(cache=cache, lam=1.01, max_recost_candidates=0)
        decision = get_plan(SelectivityVector.of(0.9, 0.9), toy_engine.recost)
        assert not decision.hit
        assert decision.recost_calls == 0

    def test_miss_returns_optimizer_kind(self, populated, toy_engine):
        cache, _, _ = populated
        get_plan = GetPlan(cache=cache, lam=1.05)
        decision = get_plan(SelectivityVector.of(0.9, 0.9), toy_engine.recost)
        assert not decision.hit
        assert decision.check is CheckKind.OPTIMIZER

    def test_retired_anchor_skipped_in_cost_check(self, populated, toy_engine):
        cache, _, _ = populated
        entry = next(cache.instances())
        entry.retired = True
        get_plan = GetPlan(cache=cache, lam=2.0)
        sv = SelectivityVector.of(0.1, 0.8)
        decision = get_plan(sv, toy_engine.recost)
        # The only anchor is retired: no recost calls may happen.
        assert decision.recost_calls == 0

    def test_candidates_tried_in_gl_order(self, toy_engine):
        """With several anchors, the closest (lowest GL) is tried first."""
        cache = PlanCache()
        anchors = [
            SelectivityVector.of(0.5, 0.5),
            SelectivityVector.of(0.02, 0.02),
            SelectivityVector.of(0.25, 0.2),
        ]
        for sv in anchors:
            result = toy_engine.optimize(sv)
            plan = cache.add_plan(result.plan, result.shrunken_memo)
            cache.add_instance(InstanceEntry(
                sv=sv, plan_id=plan.plan_id,
                optimal_cost=result.cost, suboptimality=1.0,
            ))
        get_plan = GetPlan(cache=cache, lam=1.0 + 1e-9, max_recost_candidates=1)
        # Query close to anchor (0.25, 0.2): with budget ~1 nothing hits,
        # but exactly one recost call is made (the capped nearest anchor).
        decision = get_plan(SelectivityVector.of(0.28, 0.22), toy_engine.recost)
        assert decision.recost_calls == 1


class TestStatistics:
    def test_counters_accumulate(self, populated, toy_engine):
        cache, _, _ = populated
        get_plan = GetPlan(cache=cache, lam=2.0)
        get_plan(SelectivityVector.of(0.11, 0.1), toy_engine.recost)   # sel hit
        get_plan(SelectivityVector.of(0.9, 0.9), toy_engine.recost)    # miss
        assert get_plan.selectivity_hits == 1
        assert get_plan.misses == 1
        assert get_plan.entries_scanned >= 2

    def test_invalid_lambda_rejected(self):
        with pytest.raises(ValueError):
            GetPlan(cache=PlanCache(), lam=0.5)

    def test_negative_cap_rejected(self):
        with pytest.raises(ValueError):
            GetPlan(cache=PlanCache(), lam=2.0, max_recost_candidates=-1)


class TestDynamicLambdaHook:
    def test_lambda_for_overrides_static(self, populated, toy_engine):
        cache, _, _ = populated
        # Schedule grants lambda = 10 to every anchor: generous region.
        get_plan = GetPlan(cache=cache, lam=1.01, lambda_for=lambda c: 10.0)
        decision = get_plan(SelectivityVector.of(0.3, 0.25), toy_engine.recost)
        assert decision.hit
        assert decision.check is CheckKind.SELECTIVITY
