"""Tests for repro.catalog.datagen."""

import numpy as np
import pytest

from repro.catalog.datagen import (
    _zipf_weights,
    fk_join_selectivity,
    generate_column,
    generate_database,
    generate_table,
)
from repro.catalog.schema import Column, ColumnType, Table

from conftest import build_toy_schema


class TestZipfWeights:
    def test_uniform_when_skew_zero(self):
        w = _zipf_weights(10, 0.0)
        assert np.allclose(w, 0.1)

    def test_sums_to_one(self):
        w = _zipf_weights(100, 1.2)
        assert w.sum() == pytest.approx(1.0)

    def test_skew_concentrates_mass(self):
        w = _zipf_weights(100, 1.5)
        assert w[0] > 10 * w[50]


class TestGenerateColumn:
    def test_int_values_within_domain(self):
        rng = np.random.default_rng(0)
        col = Column("x", domain_size=50)
        values = generate_column(col, 1000, rng)
        assert values.dtype == np.int64
        assert values.min() >= 0
        assert values.max() < 50

    def test_skewed_values_within_domain(self):
        rng = np.random.default_rng(0)
        col = Column("x", domain_size=50, skew=1.0)
        values = generate_column(col, 2000, rng)
        assert values.min() >= 0 and values.max() < 50
        # Skew shows up as an uneven histogram.
        counts = np.bincount(values, minlength=50)
        assert counts.max() > 4 * max(1, counts[counts > 0].min())

    def test_float_column(self):
        rng = np.random.default_rng(0)
        col = Column("x", ColumnType.FLOAT, domain_size=10)
        values = generate_column(col, 500, rng)
        assert values.dtype == np.float64
        assert values.max() < 11.0

    def test_deterministic_given_seed(self):
        col = Column("x", domain_size=100, skew=0.5)
        a = generate_column(col, 100, np.random.default_rng(7))
        b = generate_column(col, 100, np.random.default_rng(7))
        assert np.array_equal(a, b)


class TestGenerateTable:
    def test_primary_key_dense(self):
        table = Table("t", [Column("pk"), Column("v")], row_count=100,
                      primary_key="pk")
        data = generate_table(table, np.random.default_rng(0))
        assert np.array_equal(data.column("pk"), np.arange(100))

    def test_fk_containment(self):
        table = Table("t", [Column("fk"), Column("v")], row_count=500)
        data = generate_table(table, np.random.default_rng(0), {"fk": 30})
        fk = data.column("fk")
        assert fk.min() >= 0 and fk.max() < 30

    def test_row_count(self):
        table = Table("t", [Column("a")], row_count=77)
        data = generate_table(table, np.random.default_rng(0))
        assert data.row_count == 77


class TestGenerateDatabase:
    def test_all_tables_present(self):
        schema = build_toy_schema()
        db = generate_database(schema, seed=3)
        assert set(db.tables) == {"orders", "cust"}

    def test_fk_values_reference_live_parents(self):
        schema = build_toy_schema()
        db = generate_database(schema, seed=3)
        fk = db.table("orders").column("o_cust")
        parents = db.table("cust").column("c_id")
        assert np.isin(fk, parents).all()

    def test_deterministic(self):
        schema = build_toy_schema()
        a = generate_database(schema, seed=9)
        b = generate_database(schema, seed=9)
        assert np.array_equal(
            a.table("orders").column("o_amount"),
            b.table("orders").column("o_amount"),
        )

    def test_missing_table_raises(self):
        schema = build_toy_schema()
        db = generate_database(schema, seed=3)
        with pytest.raises(KeyError):
            db.table("ghost")

    def test_missing_column_raises(self):
        schema = build_toy_schema()
        db = generate_database(schema, seed=3)
        with pytest.raises(KeyError):
            db.table("orders").column("ghost")


def test_fk_join_selectivity_is_inverse_parent_rows():
    schema = build_toy_schema()
    fk = schema.foreign_keys[0]
    sel = fk_join_selectivity(schema, fk)
    assert sel == pytest.approx(1.0 / schema.table("cust").row_count)
