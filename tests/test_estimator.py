"""Tests for histogram-backed selectivity estimation and inversion."""

import pytest

from repro.query.expressions import ColumnRef, ComparisonOp, FixedPredicate
from repro.query.instance import QueryInstance, SelectivityVector
from repro.query.template import QueryTemplate, range_predicate


@pytest.fixture()
def estimator(toy_db):
    return toy_db.estimator


@pytest.fixture(scope="module")
def template():
    from repro.query.template import join

    return QueryTemplate(
        name="q", database="toy", tables=["orders", "cust"],
        joins=[join("orders", "o_cust", "cust", "c_id")],
        parameterized=[
            range_predicate("orders", "o_date", "<="),
            range_predicate("cust", "c_bal", ">="),
        ],
    )


class TestPredicateSelectivity:
    def test_le_matches_data(self, toy_db, estimator):
        pred = range_predicate("orders", "o_date", "<=")
        values = toy_db.data.table("orders").column("o_date")
        for v in (100, 500, 900):
            true = (values <= v).mean()
            assert estimator.predicate_selectivity(pred, v) == pytest.approx(
                true, abs=0.03
            )

    def test_ge_matches_data(self, toy_db, estimator):
        pred = range_predicate("cust", "c_bal", ">=")
        values = toy_db.data.table("cust").column("c_bal")
        for v in (50, 300):
            true = (values >= v).mean()
            assert estimator.predicate_selectivity(pred, v) == pytest.approx(
                true, abs=0.05
            )

    def test_fixed_predicate_uses_embedded_value(self, toy_db, estimator):
        fixed = FixedPredicate(ColumnRef("orders", "o_date"), ComparisonOp.LE, 500)
        values = toy_db.data.table("orders").column("o_date")
        true = (values <= 500).mean()
        assert estimator.predicate_selectivity(fixed) == pytest.approx(true, abs=0.03)

    def test_parameterized_requires_value(self, estimator):
        pred = range_predicate("orders", "o_date", "<=")
        with pytest.raises(ValueError, match="bound value"):
            estimator.predicate_selectivity(pred)


class TestSelectivityVectorApi:
    def test_from_parameters(self, estimator, template):
        inst = QueryInstance("q", parameters=(500.0, 100.0))
        sv = estimator.selectivity_vector(template, inst)
        assert len(sv) == 2
        assert all(0 < s <= 1 for s in sv)

    def test_passthrough_when_no_parameters(self, estimator, template):
        sv0 = SelectivityVector.of(0.3, 0.4)
        inst = QueryInstance("q", sv=sv0)
        assert estimator.selectivity_vector(template, inst) == sv0

    def test_neither_rejected(self, estimator, template):
        with pytest.raises(ValueError, match="neither"):
            estimator.selectivity_vector(template, QueryInstance("q"))

    def test_wrong_arity_rejected(self, estimator, template):
        inst = QueryInstance("q", parameters=(1.0,))
        with pytest.raises(ValueError, match="parameters"):
            estimator.selectivity_vector(template, inst)


class TestInversion:
    def test_roundtrip(self, estimator, template):
        targets = SelectivityVector.of(0.2, 0.6)
        params = estimator.parameters_for_selectivities(template, targets)
        inst = QueryInstance("q", parameters=params)
        sv = estimator.selectivity_vector(template, inst)
        assert sv[0] == pytest.approx(0.2, abs=0.05)
        assert sv[1] == pytest.approx(0.6, abs=0.08)

    def test_dimension_mismatch(self, estimator, template):
        with pytest.raises(ValueError, match="dimension"):
            estimator.parameters_for_selectivities(
                template, SelectivityVector.of(0.5)
            )


class TestTableFilterSelectivity:
    def test_multiplies_parameterized(self, estimator, template):
        sv = SelectivityVector.of(0.25, 0.5)
        # orders has only the first predicate, cust only the second.
        assert estimator.table_filter_selectivity(
            template, "orders", sv
        ) == pytest.approx(0.25)
        assert estimator.table_filter_selectivity(
            template, "cust", sv
        ) == pytest.approx(0.5)

    def test_table_without_predicates_is_one(self, estimator):
        template = QueryTemplate(
            name="q1", database="toy", tables=["orders"],
        )
        sv = SelectivityVector.of()
        assert estimator.table_filter_selectivity(
            template, "orders", sv
        ) == pytest.approx(1.0)
