"""Tests for the operator cost model (section 5.4 cost shapes)."""

import pytest

from repro.optimizer.cost_model import CostModel, CostParameters
from repro.optimizer.operators import PhysicalOp


@pytest.fixture(scope="module")
def cm() -> CostModel:
    return CostModel()


class TestScanCosts:
    def test_seq_scan_linear_in_table_rows(self, cm):
        a = cm.seq_scan(1_000, 10)
        b = cm.seq_scan(2_000, 10)
        assert b > a
        assert (b - cm.params.startup) / (a - cm.params.startup) == pytest.approx(
            2.0, rel=0.05
        )

    def test_index_scan_linear_in_output(self, cm):
        a = cm.index_scan(100_000, 100)
        b = cm.index_scan(100_000, 200)
        growth = (b - a)
        assert growth == pytest.approx(
            100 * (cm.params.index_row + cm.params.output_row), rel=1e-6
        )

    def test_index_beats_seq_at_low_selectivity(self, cm):
        rows = 100_000
        assert cm.index_scan(rows, 10) < cm.seq_scan(rows, 10)

    def test_seq_beats_index_at_high_selectivity(self, cm):
        rows = 100_000
        assert cm.seq_scan(rows, 90_000) < cm.index_scan(rows, 90_000)


class TestJoinCosts:
    def test_hash_join_grows_as_sum(self, cm):
        base = cm.hash_join(1_000, 1_000, 100)
        doubled_one = cm.hash_join(2_000, 1_000, 100)
        doubled_both = cm.hash_join(2_000, 2_000, 100)
        assert base < doubled_one < doubled_both
        # s1 + s2 shape: doubling one input far less than doubles cost.
        assert doubled_one < 2 * base

    def test_hash_join_spill_discontinuity(self, cm):
        below = cm.hash_join(cm.params.hash_memory_rows * 0.99, 1_000, 10)
        above = cm.hash_join(cm.params.hash_memory_rows * 1.01, 1_000, 10)
        assert above > below * 1.5  # the memory->disk transition

    def test_inlj_grows_with_outer(self, cm):
        a = cm.index_nested_loops_join(100, 100_000, 100)
        b = cm.index_nested_loops_join(1_000, 100_000, 100)
        assert b > a

    def test_nlj_pays_inner_per_outer_row(self, cm):
        inner_cost = 500.0
        a = cm.nested_loops_join(10, inner_cost, 10)
        b = cm.nested_loops_join(100, inner_cost, 10)
        assert (b - cm.params.startup) / (a - cm.params.startup) > 8

    def test_merge_join_charges_sorts(self, cm):
        sorted_cost = cm.merge_join(1_000, 1_000, 10, True, True)
        unsorted_cost = cm.merge_join(1_000, 1_000, 10, False, False)
        assert unsorted_cost > sorted_cost
        one_sorted = cm.merge_join(1_000, 1_000, 10, True, False)
        assert sorted_cost < one_sorted < unsorted_cost


class TestUnaryCosts:
    def test_sort_superlinear(self, cm):
        a = cm.sort(1_000)
        b = cm.sort(2_000)
        assert (b - cm.params.startup) > 2 * (a - cm.params.startup)

    def test_stream_agg_cheaper_than_hash(self, cm):
        assert cm.stream_aggregate(10_000, 100) < cm.hash_aggregate(10_000, 100)

    def test_scalar_aggregate_linear(self, cm):
        a = cm.scalar_aggregate(1_000)
        b = cm.scalar_aggregate(2_000)
        assert (b - cm.params.startup) == pytest.approx(
            2 * (a - cm.params.startup), rel=1e-6
        )


class TestDispatch:
    def test_dispatch_matches_direct_seq_scan(self, cm):
        assert cm.operator_cost(
            PhysicalOp.SEQ_SCAN, out_rows=50, table_rows=1_000
        ) == cm.seq_scan(1_000, 50)

    def test_dispatch_matches_direct_hash_join(self, cm):
        assert cm.operator_cost(
            PhysicalOp.HASH_JOIN, out_rows=10, outer_rows=100, inner_rows=200
        ) == cm.hash_join(100, 200, 10)

    def test_dispatch_matches_merge_join_flags(self, cm):
        assert cm.operator_cost(
            PhysicalOp.MERGE_JOIN,
            out_rows=10, outer_rows=100, inner_rows=200,
            left_sorted=True, right_sorted=False,
        ) == cm.merge_join(100, 200, 10, True, False)

    def test_all_operators_dispatchable(self, cm):
        for op in PhysicalOp:
            cost = cm.operator_cost(
                op, out_rows=10, table_rows=100, outer_rows=50,
                inner_rows=50, inner_cost=10.0, groups=5,
            )
            assert cost > 0


class TestBcgCompliance:
    """The cost shapes of section 5.4: f(alpha)=alpha bounds per input."""

    @pytest.mark.parametrize("alpha", [1.5, 2.0, 5.0])
    def test_index_scan_growth_bounded_by_alpha(self, cm, alpha):
        rows, out = 100_000, 500.0
        base = cm.index_scan(rows, out)
        grown = cm.index_scan(rows, out * alpha)
        assert grown <= alpha * base * (1 + 1e-9)
        assert grown > base

    @pytest.mark.parametrize("alpha", [1.5, 2.0, 5.0])
    def test_hash_join_growth_bounded_by_alpha(self, cm, alpha):
        # Both inputs and the output scaled by alpha (one dimension's
        # selectivity increase propagates through cardinalities).
        base = cm.hash_join(5_000, 20_000, 1_000)
        grown = cm.hash_join(5_000 * alpha, 20_000, 1_000 * alpha)
        assert grown <= alpha * base * (1 + 1e-9)

    def test_sort_can_violate_linear_bound(self, cm):
        # n log n growth exceeds alpha for large enough alpha: this is
        # the operator class the paper bounds with a polynomial instead.
        alpha = 100.0
        base = cm.sort(100)
        grown = cm.sort(100 * alpha)
        assert grown > alpha * base * 0.9  # close to / beyond the bound

    def test_costs_monotone_in_cardinality(self, cm):
        """PCM: every operator's cost is non-decreasing in its input."""
        for n1, n2 in [(100, 200), (1_000, 5_000)]:
            assert cm.seq_scan(10_000, n1) <= cm.seq_scan(10_000, n2)
            assert cm.index_scan(10_000, n1) <= cm.index_scan(10_000, n2)
            assert cm.hash_join(n1, 1_000, 10) <= cm.hash_join(n2, 1_000, 10)
            assert cm.sort(n1) <= cm.sort(n2)


def test_custom_parameters_respected():
    params = CostParameters(seq_row=10.0)
    cm = CostModel(params)
    default = CostModel()
    assert cm.seq_scan(1_000, 10) > default.seq_scan(1_000, 10)
