"""Tests for the SCR plan cache data structure (section 6.1)."""

import pytest

from repro.core.plan_cache import InstanceEntry, PlanCache
from repro.query.instance import SelectivityVector


@pytest.fixture()
def cache_with_plans(toy_engine):
    """A cache holding two genuinely different plans."""
    cache = PlanCache()
    res_a = toy_engine.optimize(SelectivityVector.of(0.001, 0.001))
    res_b = toy_engine.optimize(SelectivityVector.of(0.9, 0.9))
    assert res_a.plan.signature() != res_b.plan.signature()
    plan_a = cache.add_plan(res_a.plan, res_a.shrunken_memo)
    plan_b = cache.add_plan(res_b.plan, res_b.shrunken_memo)
    return cache, plan_a, plan_b


class TestPlanList:
    def test_add_plan_dedupes_by_signature(self, cache_with_plans, toy_engine):
        cache, plan_a, _ = cache_with_plans
        res = toy_engine.optimize(SelectivityVector.of(0.001, 0.001))
        again = cache.add_plan(res.plan, res.shrunken_memo)
        assert again.plan_id == plan_a.plan_id
        assert cache.num_plans == 2

    def test_find_plan(self, cache_with_plans):
        cache, plan_a, _ = cache_with_plans
        assert cache.find_plan(plan_a.signature).plan_id == plan_a.plan_id
        assert cache.find_plan("nope") is None

    def test_max_plans_seen_tracks_peak(self, cache_with_plans):
        cache, plan_a, _ = cache_with_plans
        assert cache.max_plans_seen == 2
        cache.drop_plan(plan_a.plan_id)
        assert cache.num_plans == 1
        assert cache.max_plans_seen == 2

    def test_drop_unknown_plan(self, cache_with_plans):
        cache, _, _ = cache_with_plans
        with pytest.raises(KeyError):
            cache.drop_plan(999)


class TestInstanceList:
    def _entry(self, plan_id, sv=(0.1, 0.1), cost=100.0, s=1.0):
        return InstanceEntry(
            sv=SelectivityVector.of(*sv),
            plan_id=plan_id,
            optimal_cost=cost,
            suboptimality=s,
        )

    def test_add_requires_known_plan(self, cache_with_plans):
        cache, _, _ = cache_with_plans
        with pytest.raises(KeyError):
            cache.add_instance(self._entry(plan_id=999))

    def test_pointed_plan_cost(self):
        entry = InstanceEntry(
            sv=SelectivityVector.of(0.5),
            plan_id=0, optimal_cost=100.0, suboptimality=1.2,
        )
        assert entry.pointed_plan_cost == pytest.approx(120.0)

    def test_drop_plan_removes_pointing_instances(self, cache_with_plans):
        cache, plan_a, plan_b = cache_with_plans
        cache.add_instance(self._entry(plan_a.plan_id))
        cache.add_instance(self._entry(plan_a.plan_id, sv=(0.2, 0.2)))
        cache.add_instance(self._entry(plan_b.plan_id, sv=(0.3, 0.3)))
        cache.drop_plan(plan_a.plan_id)
        assert cache.num_instances == 1
        assert all(i.plan_id == plan_b.plan_id for i in cache.instances())

    def test_instances_for(self, cache_with_plans):
        cache, plan_a, plan_b = cache_with_plans
        cache.add_instance(self._entry(plan_a.plan_id))
        cache.add_instance(self._entry(plan_b.plan_id, sv=(0.4, 0.4)))
        assert len(cache.instances_for(plan_a.plan_id)) == 1

    def test_aggregate_usage_and_lfu_victim(self, cache_with_plans):
        cache, plan_a, plan_b = cache_with_plans
        hot = self._entry(plan_a.plan_id)
        hot.usage = 10
        cache.add_instance(hot)
        cold = self._entry(plan_b.plan_id, sv=(0.6, 0.6))
        cold.usage = 2
        cache.add_instance(cold)
        assert cache.aggregate_usage(plan_a.plan_id) == 10
        assert cache.min_usage_plan().plan_id == plan_b.plan_id

    def test_min_usage_plan_empty_cache(self):
        assert PlanCache().min_usage_plan() is None


class TestMemoryAccounting:
    def test_memory_grows_with_contents(self, cache_with_plans):
        cache, plan_a, _ = cache_with_plans
        before = cache.memory_bytes()
        cache.add_instance(InstanceEntry(
            sv=SelectivityVector.of(0.1, 0.1),
            plan_id=plan_a.plan_id, optimal_cost=1.0, suboptimality=1.0,
        ))
        assert cache.memory_bytes() == before + 100

    def test_plans_dominate_memory(self, cache_with_plans):
        """Section 6.1: plan list uses far more memory per entry than
        the ~100-byte instance 5-tuples."""
        cache, plan_a, _ = cache_with_plans
        assert cache.plan(plan_a.plan_id).memory_bytes() > 10 * 100
