"""Tests for the CLI and ASCII figure rendering."""

import pytest

from repro.cli import build_parser, main
from repro.harness.figures import bar_chart, line_chart, rows_to_series


class TestBarChart:
    def test_basic(self):
        text = bar_chart({"SCR2": 4.1, "PCM2": 10.0}, title="plans")
        lines = text.splitlines()
        assert lines[0] == "plans"
        assert "SCR2" in text and "PCM2" in text
        # PCM's bar is longer than SCR's.
        scr_line = next(l for l in lines if "SCR2" in l)
        pcm_line = next(l for l in lines if "PCM2" in l)
        assert pcm_line.count("#") > scr_line.count("#")

    def test_empty(self):
        assert "(no data)" in bar_chart({}, title="t")

    def test_log_scale(self):
        text = bar_chart({"a": 1.0, "b": 1000.0}, log_scale=True)
        a_line = next(l for l in text.splitlines() if l.startswith("a"))
        b_line = next(l for l in text.splitlines() if l.startswith("b"))
        # Log scaling compresses the 1000x gap well below 1000x.
        assert b_line.count("#") < 20 * max(1, a_line.count("#"))

    def test_zero_values_render(self):
        text = bar_chart({"x": 0.0, "y": 5.0})
        assert "0.0" in text


class TestLineChart:
    def test_basic_shape(self):
        series = {
            "SCR2": [(250, 11.2), (500, 6.2), (1000, 3.3)],
            "PCM2": [(250, 70.8), (500, 63.8), (1000, 52.6)],
        }
        text = line_chart(series, title="fig11", height=8, width=30)
        assert "fig11" in text
        assert "* SCR2" in text and "o PCM2" in text
        assert "70.80" in text  # y-axis max
        assert "250" in text and "1000" in text

    def test_empty(self):
        assert "(no data)" in line_chart({}, title="t")

    def test_single_point(self):
        text = line_chart({"s": [(1.0, 2.0)]})
        assert "*" in text

    def test_rows_to_series_pivot(self):
        rows = [
            {"technique": "SCR2", "m": 500, "numopt_pct": 6.2},
            {"technique": "SCR2", "m": 250, "numopt_pct": 11.2},
            {"technique": "PCM2", "m": 250, "numopt_pct": 70.8},
        ]
        series = rows_to_series(rows, "technique", "m", "numopt_pct")
        assert series["SCR2"] == [(250.0, 11.2), (500.0, 6.2)]  # sorted by x
        assert len(series["PCM2"]) == 1


class TestCli:
    def test_parser_commands(self):
        parser = build_parser()
        for argv in (
            ["info"],
            ["demo", "--m", "10"],
            ["compare", "--m", "10"],
            ["plan-diagram", "--grid", "4"],
            ["experiment", "budget"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_info_runs(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "templates" in out
        assert "tpch" in out

    def test_demo_runs(self, capsys):
        assert main(["demo", "--m", "30", "--template",
                     "tpch_promotion_effect"]) == 0
        out = capsys.readouterr().out
        assert "MSO" in out
        assert "plans cached" in out

    def test_plan_diagram_runs(self, capsys):
        assert main(["plan-diagram", "--template", "tpcds_catalog_simple",
                     "--grid", "6"]) == 0
        out = capsys.readouterr().out
        assert "distinct plans" in out

    def test_plan_diagram_rejects_high_d(self):
        with pytest.raises(SystemExit, match="2-d"):
            main(["plan-diagram", "--template", "tpch_shipping_priority"])

    def test_unknown_template(self):
        with pytest.raises(SystemExit, match="unknown template"):
            main(["demo", "--template", "nope"])
