"""Distributed tracing: context propagation, span trees, forensics.

Covers the causal-ID layer end to end at every scope it crosses:
contextvar propagation and span-ID semantics in one recorder,
cross-recorder ingestion (the worker → supervisor hand-off), sink
error isolation, the supervisor's cluster spans under the fake
launcher — including the killed-worker / retried-on-peer tree — and
the forensics renderer/explainer over all of it.
"""

from __future__ import annotations

import io
import json

import pytest
from test_cluster_supervisor import (
    FakeLauncher,
    FakeTemplate,
    mark_live,
)

from repro.cluster import ClusterSupervisor, SupervisorPolicy
from repro.cluster.transport import Heartbeat, Response
from repro.obs import (
    SINK_DETACH_AFTER,
    FakeClock,
    IdSource,
    SpanRecorder,
    TraceCollector,
    TraceContext,
    activate,
    build_tree,
    child_context,
    current_context,
    explain_trace,
    format_explanation,
    load_spans_jsonl,
    render_tree,
    start_trace,
    traces_in,
    write_spans_jsonl,
)


# -- context propagation -------------------------------------------------------


class TestTraceContext:
    def test_start_trace_roots_a_new_trace(self):
        ctx = start_trace()
        assert ctx.trace_id and ctx.span_id and ctx.parent_id == ""

    def test_child_context_parents_under_ambient(self):
        root = start_trace()
        with activate(root):
            child = child_context()
            assert child.trace_id == root.trace_id
            assert child.parent_id == root.span_id
            assert child.span_id != root.span_id

    def test_child_context_without_ambient_is_a_fresh_root(self):
        child = child_context()
        assert child.trace_id and child.parent_id == ""

    def test_activation_is_scoped(self):
        ctx = start_trace()
        assert current_context() is None
        with activate(ctx):
            assert current_context() is ctx
            inner = ctx.child()
            with activate(inner):
                assert current_context() is inner
            assert current_context() is ctx
        assert current_context() is None

    def test_activate_none_is_a_no_op(self):
        with activate(None):
            assert current_context() is None

    def test_id_source_is_deterministic_and_nonzero(self):
        a, b = IdSource(seed=5), IdSource(seed=5)
        ids_a = [a.trace_id() for _ in range(10)]
        ids_b = [b.trace_id() for _ in range(10)]
        assert ids_a == ids_b
        assert all(len(i) == 16 and int(i, 16) != 0 for i in ids_a)
        assert len(set(ids_a)) == 10

    def test_propagation_survives_a_thread_pool(self):
        from concurrent.futures import ThreadPoolExecutor

        root = start_trace()

        def in_worker(ctx):
            # A contextvar does NOT leak into pool threads by itself;
            # callers snapshot the context (as the serving manager
            # does) and re-activate it in the worker.
            with activate(ctx):
                return current_context()

        with activate(root):
            with ThreadPoolExecutor(max_workers=1) as pool:
                seen = pool.submit(in_worker, current_context()).result()
        assert seen is not None and seen.trace_id == root.trace_id


# -- recorder semantics --------------------------------------------------------


class TestRecorderIds:
    def setup_method(self):
        self.fake = FakeClock()
        self.rec = SpanRecorder(clock=self.fake.clock)

    def test_untraced_record_has_no_ids(self):
        self.rec.record("x", 0.0, 1.0)
        span = self.rec.spans()[0]
        assert span.trace_id == span.span_id == span.parent_id == ""

    def test_record_inside_context_parents_under_it(self):
        ctx = start_trace()
        with activate(ctx):
            self.rec.record("inner", 0.0, 1.0)
        span = self.rec.spans()[0]
        assert span.trace_id == ctx.trace_id
        assert span.parent_id == ctx.span_id
        assert span.span_id == ""

    def test_record_with_span_id_claims_the_context_span(self):
        ctx = start_trace()
        with activate(ctx):
            self.rec.record("request", 0.0, 1.0, span_id=ctx.span_id)
        span = self.rec.spans()[0]
        assert span.span_id == ctx.span_id
        assert span.parent_id == ctx.parent_id == ""

    def test_span_cm_nests(self):
        ctx = start_trace()
        with activate(ctx):
            with self.rec.span("outer"):
                with self.rec.span("inner"):
                    pass
        inner, outer = self.rec.spans()
        assert outer.parent_id == ctx.span_id
        assert inner.parent_id == outer.span_id
        assert inner.trace_id == outer.trace_id == ctx.trace_id

    def test_ingest_preserves_remote_ids_with_local_seq(self):
        remote = SpanRecorder(clock=self.fake.clock)
        ctx = start_trace()
        with activate(ctx):
            with remote.span("remote.work"):
                pass
        self.rec.record("local", 0.0, 1.0)
        for span in remote.spans():
            self.rec.ingest(span)
        ingested = self.rec.trace(ctx.trace_id)
        assert len(ingested) == 1
        assert ingested[0].span_id == remote.spans()[0].span_id
        seqs = [s.seq for s in self.rec.spans()]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)

    def test_jsonable_round_trip(self):
        from repro.obs.spans import Span

        ctx = start_trace()
        with activate(ctx):
            with self.rec.span("phase", template="t1", hit=True):
                pass
        row = self.rec.spans()[0].to_jsonable()
        clone = Span.from_jsonable(row)
        original = self.rec.spans()[0]
        assert clone.trace_id == original.trace_id
        assert clone.span_id == original.span_id
        assert clone.parent_id == original.parent_id
        assert clone.attrs == original.attrs


class TestSinkIsolation:
    def test_raising_sink_is_counted_and_detached(self):
        rec = SpanRecorder()
        good: list = []
        calls = {"n": 0}

        def bad_sink(span):
            calls["n"] += 1
            raise RuntimeError("exporter down")

        rec.attach_sink(good.append)
        rec.attach_sink(bad_sink)
        for i in range(SINK_DETACH_AFTER + 3):
            rec.record(f"s{i}", 0.0, 1.0)
        # The healthy sink saw everything; the broken one was detached
        # after its failure streak and never crashed the hot path.
        assert len(good) == SINK_DETACH_AFTER + 3
        assert calls["n"] == SINK_DETACH_AFTER
        assert rec.sink_errors == SINK_DETACH_AFTER

    def test_success_resets_the_failure_streak(self):
        rec = SpanRecorder()
        state = {"fail": True, "calls": 0}

        def flaky(span):
            state["calls"] += 1
            if state["fail"]:
                raise RuntimeError("boom")

        rec.attach_sink(flaky)
        for i in range(SINK_DETACH_AFTER - 1):
            rec.record(f"a{i}", 0.0, 1.0)
        state["fail"] = False
        rec.record("recovered", 0.0, 1.0)
        state["fail"] = True
        for i in range(SINK_DETACH_AFTER - 1):
            rec.record(f"b{i}", 0.0, 1.0)
        # Two partial streaks, neither reaching the threshold.
        assert state["calls"] == 2 * SINK_DETACH_AFTER - 1


class TestTraceCollector:
    def test_pop_returns_and_clears_one_trace(self):
        rec = SpanRecorder()
        collector = TraceCollector()
        rec.attach_sink(collector)
        ctx = start_trace()
        with activate(ctx):
            with rec.span("work"):
                pass
        rec.record("untraced", 0.0, 1.0)
        popped = collector.pop(ctx.trace_id)
        assert [s.name for s in popped] == ["work"]
        assert collector.pop(ctx.trace_id) == []

    def test_bounded_trace_count_evicts_oldest(self):
        rec = SpanRecorder()
        collector = TraceCollector(max_traces=2)
        rec.attach_sink(collector)
        contexts = [start_trace() for _ in range(3)]
        for ctx in contexts:
            with activate(ctx):
                rec.record("w", 0.0, 1.0)
        assert collector.pop(contexts[0].trace_id) == []
        assert collector.evicted_traces == 1
        assert len(collector.pop(contexts[2].trace_id)) == 1


# -- forensics -----------------------------------------------------------------


def _record_demo_trace(rec: SpanRecorder, ids: IdSource):
    """One deterministic cluster-shaped trace: root → dispatch →
    process → phases, with a dead first dispatch attempt."""
    root = start_trace(ids=ids)
    with activate(root):
        dead = root.child(ids)
        with activate(dead):
            rec.record("cluster.dispatch", 0.0, 0.4,
                       span_id=dead.span_id, worker="w0", incarnation=0,
                       attempt=0, outcome="worker_died")
        retry = root.child(ids)
        with activate(retry):
            rec.record("cluster.dispatch", 0.4, 0.5,
                       span_id=retry.span_id, worker="w1", incarnation=0,
                       attempt=1, outcome="response")
            process = retry.child(ids)
            with activate(process):
                rec.record("scr.selectivity_check", 0.41, 0.01,
                           hit=False, candidates=2, scanned=4)
                rec.record("scr.cost_check", 0.42, 0.02,
                           hit=True, recost_calls=2, bound=1.42,
                           certificate="exact")
                rec.record("engine.recost", 0.425, 0.005,
                           template="t1", seq=3)
                rec.record("serving.process", 0.41, 0.08,
                           span_id=process.span_id, template="t1", seq=3,
                           outcome="certified", check="cost",
                           certificate="exact", certified_bound=1.42,
                           recost_calls=2)
        rec.record("cluster.request", 0.0, 0.9, span_id=root.span_id,
                   template="t1", seq=3, outcome="certified", attempts=2,
                   worker="w1")
    return root


class TestForensics:
    def setup_method(self):
        self.rec = SpanRecorder(clock=FakeClock().clock)
        self.root = _record_demo_trace(self.rec, IdSource(seed=23))
        self.spans = self.rec.trace(self.root.trace_id)

    def test_build_tree_is_single_rooted_and_connected(self):
        roots = build_tree(self.spans)
        assert len(roots) == 1
        assert roots[0].name == "cluster.request"
        names = []

        def walk(node):
            names.append(node.name)
            for child in node.children:
                walk(child)

        walk(roots[0])
        assert len(names) == len(self.spans)
        assert names[0] == "cluster.request"
        assert "serving.process" in names

    def test_orphaned_span_degrades_to_extra_root(self):
        from repro.obs.spans import Span

        orphan = Span(
            name="lost.child", start_s=0.0, duration_s=0.1, seq=99,
            trace_id=self.root.trace_id, span_id="feedfacefeedface",
            parent_id="0000000000000bad",
        )
        roots = build_tree(self.spans + [orphan])
        assert {r.name for r in roots} == {"cluster.request", "lost.child"}

    def test_render_tree_shows_hierarchy_and_attrs(self):
        text = render_tree(self.spans)
        lines = text.splitlines()
        assert lines[0].startswith("cluster.request")
        assert any(line.startswith(("|- ", "`- ")) for line in lines)
        assert "worker=w0" in text and "worker_died" in text
        assert "certified_bound=1.42" in text

    def test_explain_reports_certificate_and_retry(self):
        info = explain_trace(self.spans)
        assert info["outcome"] == "certified"
        assert info["certificate"] == "exact"
        assert info["certified_bound"] == 1.42
        assert info["anchor_check"] == "cost"
        assert [a["outcome"] for a in info["attempts"]] == [
            "worker_died", "response",
        ]
        text = format_explanation(info)
        assert "worker died" in text
        assert "VERDICT: certified" in text

    def test_explain_shed_request(self):
        rec = SpanRecorder(clock=FakeClock().clock)
        ctx = start_trace(ids=IdSource(seed=7))
        with activate(ctx):
            rec.record("serving.process", 0.0, 0.01, span_id=ctx.span_id,
                       template="t9", seq=0, outcome="shed",
                       reason="queue_full", brownout=3)
        info = explain_trace(rec.trace(ctx.trace_id))
        assert info["shed_reason"] == "queue_full"
        assert info["brownout"] == 3
        assert any("shed" in line for line in info["narrative"])

    def test_jsonl_round_trip_through_file(self):
        buffer = io.StringIO()
        write_spans_jsonl(self.rec, buffer)
        reloaded = load_spans_jsonl(io.StringIO(buffer.getvalue()))
        assert len(reloaded) == len(self.rec.spans())
        by_trace = traces_in(reloaded)
        assert set(by_trace) == {self.root.trace_id}
        assert explain_trace(by_trace[self.root.trace_id])["outcome"] == (
            "certified"
        )

    def test_explanation_is_json_serializable(self):
        json.dumps(explain_trace(self.spans))


# -- supervisor cluster spans (fake launcher, no processes) --------------------


def make_traced_cluster(num_workers=2, **policy_kwargs):
    clock = FakeClock()
    supervisor = ClusterSupervisor(
        [FakeTemplate(f"t{i}") for i in range(12)],
        num_workers=num_workers,
        snapshot_dir="unused-by-fake-launcher",
        policy=SupervisorPolicy(**policy_kwargs),
        launcher=FakeLauncher(),
        clock=clock.clock,
        trace=True,
    )
    supervisor.start(monitor=False)
    mark_live(supervisor, *supervisor.workers)
    return supervisor, clock


def owned_template(sup, worker_id):
    names = [n for n in sup.templates if sup.ring.owner(n) == worker_id]
    assert names
    return names[0]


def worker_rows_for(request, outcome="certified"):
    """Spans a traced worker would ship back for ``request``."""
    rec = SpanRecorder()
    wire = TraceContext(
        trace_id=request.trace_id, span_id=request.parent_span_id
    )
    with activate(wire):
        with rec.span("serving.process", template=request.template_name,
                      seq=request.sequence_id, outcome=outcome):
            with rec.span("engine.selectivity"):
                pass
    return tuple(s.to_jsonable() for s in rec.spans())


def assert_connected_tree(spans, root_name="cluster.request"):
    ids = {s.span_id for s in spans if s.span_id}
    roots = [s for s in spans if not s.parent_id]
    assert len(roots) == 1 and roots[0].name == root_name
    for span in spans:
        if span.parent_id:
            assert span.parent_id in ids, (span.name, span.parent_id)


class TestSupervisorTracing:
    def test_trace_flag_reaches_worker_specs(self):
        sup, _ = make_traced_cluster()
        assert all(h.spec.trace for h in sup.workers.values())
        assert sup.obs.spans.enabled

    def test_untraced_supervisor_mints_no_ids(self):
        clock = FakeClock()
        sup = ClusterSupervisor(
            [FakeTemplate("t0")], num_workers=1, snapshot_dir="x",
            launcher=FakeLauncher(), clock=clock.clock,
        )
        sup.start(monitor=False)
        mark_live(sup, "w0")
        fut = sup.submit("t0", (0.1,))
        assert fut.trace_id == ""
        request = next(iter(sup._pending.values())).request
        assert request.trace_id == "" and request.parent_span_id == ""

    def test_served_request_yields_one_connected_tree(self):
        sup, _ = make_traced_cluster()
        name = owned_template(sup, "w0")
        fut = sup.submit(name, (0.1, 0.2), sequence_id=5)
        assert fut.trace_id
        rid, pending = next(iter(sup._pending.items()))
        request = pending.request
        assert request.trace_id == fut.trace_id and request.parent_span_id
        sup.response_q.put(Response(
            request_id=rid, worker_id="w0", incarnation=0,
            template_name=name, ok=True, certified=True,
            certificate="exact", certified_bound=1.3, check="cost",
            spans=worker_rows_for(request),
        ))
        sup.pump()
        assert fut.result(timeout=1).ok
        spans = sup.trace_spans(fut.trace_id)
        assert_connected_tree(spans)
        names = {s.name for s in spans}
        assert {"cluster.request", "cluster.dispatch",
                "serving.process", "engine.selectivity"} <= names
        root = next(s for s in spans if s.name == "cluster.request")
        assert root.attrs["outcome"] == "certified"
        assert root.attrs["attempts"] == 1

    def test_killed_worker_retry_keeps_one_trace_with_both_attempts(self):
        sup, clock = make_traced_cluster()
        name = owned_template(sup, "w0")
        fut = sup.submit(name, (0.3, 0.4), sequence_id=9)
        # Kill the owner mid-request: the supervisor re-routes to the
        # peer inside the *same* trace.
        sup.workers["w0"].process.alive = False
        clock.advance(0.1)
        sup.tick()
        rid, pending = next(iter(sup._pending.items()))
        request = pending.request
        assert pending.worker_id == "w1"
        assert request.attempt == 1
        assert request.trace_id == fut.trace_id
        sup.response_q.put(Response(
            request_id=rid, worker_id="w1", incarnation=0,
            template_name=name, ok=True, certified=True,
            certificate="exact", spans=worker_rows_for(request),
        ))
        sup.pump()
        assert fut.result(timeout=1).ok
        spans = sup.trace_spans(fut.trace_id)
        assert_connected_tree(spans)
        dispatches = sorted(
            (s for s in spans if s.name == "cluster.dispatch"),
            key=lambda s: s.attrs["attempt"],
        )
        assert [(d.attrs["worker"], d.attrs["outcome"]) for d in dispatches] \
            == [("w0", "worker_died"), ("w1", "response")]
        root = next(s for s in spans if s.name == "cluster.request")
        assert root.attrs["attempts"] == 2
        # The dead attempt's dispatch parent differs from the retry's:
        # the worker spans that died with w0 would have parented there.
        assert dispatches[0].span_id != dispatches[1].span_id
        info = explain_trace(spans)
        assert [a["outcome"] for a in info["attempts"]] == [
            "worker_died", "response",
        ]

    def test_worker_lost_resolves_root_span_as_shed(self):
        sup, clock = make_traced_cluster(
            num_workers=2, max_retries=0,
        )
        name = owned_template(sup, "w0")
        fut = sup.submit(name, (0.5,), sequence_id=2)
        sup.workers["w0"].process.alive = False
        clock.advance(0.1)
        sup.tick()
        assert fut.exception() is not None
        spans = sup.trace_spans(fut.trace_id)
        assert_connected_tree(spans)
        root = next(s for s in spans if s.name == "cluster.request")
        assert root.attrs["outcome"] == "shed"
        assert root.attrs["reason"] == "worker_lost"

    def test_malformed_worker_span_rows_do_not_poison_the_pump(self):
        sup, _ = make_traced_cluster()
        name = owned_template(sup, "w0")
        fut = sup.submit(name, (0.1,))
        rid, pending = next(iter(sup._pending.items()))
        good = worker_rows_for(pending.request)
        sup.response_q.put(Response(
            request_id=rid, worker_id="w0", incarnation=0,
            template_name=name, ok=True, certified=True,
            spans=(None, {"nonsense": 1}) + good,
        ))
        sup.pump()
        assert fut.result(timeout=1).ok
        assert_connected_tree(sup.trace_spans(fut.trace_id))


# -- dead-incarnation registry retention ---------------------------------------


def _worker_snapshot(n: int) -> dict:
    return {
        "repro_serving_latency_seconds": {
            "kind": "histogram", "help": "", "series": [{
                "labels": {"template": "t0"},
                "count": n, "sum": 0.01 * n,
                "buckets": [[0.1, n], ["+Inf", n]],
            }],
        },
        "repro_worker_requests_total": {
            "kind": "counter", "help": "", "series": [
                {"labels": {}, "value": float(n)},
            ],
        },
    }


def _kill_and_restart(sup, clock, wid="w0"):
    sup.workers[wid].process.alive = False
    clock.advance(0.05)
    sup.tick()            # declare dead, schedule restart
    clock.advance(10.0)
    sup.tick()            # fire the restart (compaction runs here)


class TestRegistryRetention:
    def _heartbeat(self, sup, wid, incarnation, n, violations=0):
        sup.response_q.put(Heartbeat(
            worker_id=wid, incarnation=incarnation, seq=1,
            requests_served=n, optimizer_calls=0,
            outcomes={"certified": n},
            registry=_worker_snapshot(n),
            lambda_violations=violations,
        ))
        sup.pump()

    def _cluster(self, retention):
        clock = FakeClock()
        sup = ClusterSupervisor(
            [FakeTemplate(f"t{i}") for i in range(4)],
            num_workers=2, snapshot_dir="x",
            policy=SupervisorPolicy(
                registry_retention=retention, restart_backoff_base=0.01,
            ),
            launcher=FakeLauncher(), clock=clock.clock,
        )
        sup.start(monitor=False)
        mark_live(sup, "w0", "w1")
        return sup, clock

    def test_history_is_bounded_and_totals_preserved(self):
        sup, clock = self._cluster(retention=1)
        for incarnation in range(4):
            self._heartbeat(sup, "w0", incarnation, n=10, violations=1)
            _kill_and_restart(sup, clock)
            mark_live(sup, "w0")
        w0_keys = [k for k in sup._registry_history if k[0] == "w0"]
        # Live incarnation 4 has no heartbeat yet; one dead incarnation
        # stays verbatim, the three older ones merged into the tombstone.
        assert w0_keys == [("w0", 3)]
        assert "w0" in sup._registry_tombstones
        tomb = sup._registry_tombstones["w0"]
        series = tomb["repro_worker_requests_total"]["series"][0]
        assert series["value"] == 30.0   # incarnations 0 + 1 + 2
        histogram = tomb["repro_serving_latency_seconds"]["series"][0]
        assert histogram["count"] == 30
        assert histogram["buckets"][0] == [0.1, 30]
        # Violations survive the merge: 4 incarnations x 1 each.
        assert sup.worker_lambda_violations() == 4
        assert sup._outcome_tombstones["w0"] == {"certified": 30}

    def test_merged_exposition_keeps_counts_monotone(self):
        sup, clock = self._cluster(retention=0)
        for incarnation in range(3):
            self._heartbeat(sup, "w0", incarnation, n=5)
            _kill_and_restart(sup, clock)
            mark_live(sup, "w0")
        text = sup.prometheus()
        assert 'source="w0:tomb"' in text
        # All 15 requests stay visible through the tombstone row.
        total = sum(
            float(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_worker_requests_total{")
        )
        assert total == 15.0
        report = sup.cluster_report()
        assert report["registry_tombstones"] == 1
        assert report["registry_incarnations"] == 0

    def test_retention_keeps_recent_incarnations_verbatim(self):
        sup, clock = self._cluster(retention=2)
        for incarnation in range(3):
            self._heartbeat(sup, "w0", incarnation, n=7)
            _kill_and_restart(sup, clock)
            mark_live(sup, "w0")
        kept = sorted(k for k in sup._registry_history if k[0] == "w0")
        assert kept == [("w0", 1), ("w0", 2)]
        tomb = sup._registry_tombstones["w0"]
        assert tomb["repro_worker_requests_total"]["series"][0]["value"] == 7.0


if __name__ == "__main__":
    import sys

    sys.exit(pytest.main([__file__, "-q"]))
