"""Tests for the evaluation metrics (section 2.1 definitions)."""

import pytest

from repro.harness.metrics import InstanceRecord, MetricAggregate, SequenceResult


def record(chosen: float, optimal: float, opt: bool = False,
           seq: int = 0) -> InstanceRecord:
    return InstanceRecord(
        sequence_id=seq, chosen_cost=chosen, optimal_cost=optimal,
        used_optimizer=opt, check="x",
    )


def make_result(pairs, technique="T") -> SequenceResult:
    result = SequenceResult(technique=technique, template="q", ordering="random",
                            lam=2.0)
    for i, (chosen, optimal, opt) in enumerate(pairs):
        result.add(record(chosen, optimal, opt, seq=i))
    return result


class TestInstanceRecord:
    def test_suboptimality(self):
        assert record(150.0, 100.0).suboptimality == pytest.approx(1.5)

    def test_suboptimality_clamped_at_one(self):
        # Model noise can make the "chosen" recost dip below optimal.
        assert record(99.0, 100.0).suboptimality == 1.0

    def test_zero_optimal_rejected(self):
        with pytest.raises(ValueError):
            _ = record(1.0, 0.0).suboptimality


class TestSequenceResult:
    def test_mso_is_max(self):
        result = make_result([(100, 100, True), (300, 100, False),
                              (150, 100, False)])
        assert result.mso == pytest.approx(3.0)

    def test_total_cost_ratio_in_range(self):
        result = make_result([(100, 100, True), (300, 100, False)])
        tc = result.total_cost_ratio
        assert 1.0 <= tc <= result.mso
        assert tc == pytest.approx(400 / 200)

    def test_num_opt(self):
        result = make_result([(1, 1, True), (1, 1, False), (1, 1, True)])
        assert result.num_opt == 2
        assert result.num_opt_percent == pytest.approx(200 / 3)

    def test_violations_counts_beyond_lambda(self):
        result = make_result([(100, 100, True), (250, 100, False),
                              (190, 100, False)])
        assert result.violations(2.0) == 1
        assert result.violations(1.5) == 2

    def test_running_num_opt_percent(self):
        result = make_result([(1, 1, True), (1, 1, True), (1, 1, False),
                              (1, 1, False)])
        running = result.running_num_opt_percent([2, 4])
        assert running == [pytest.approx(100.0), pytest.approx(50.0)]

    def test_running_ignores_overlong_prefixes(self):
        result = make_result([(1, 1, True)])
        assert result.running_num_opt_percent([1, 5]) == [pytest.approx(100.0)]

    def test_empty_sequence_defaults(self):
        result = SequenceResult("T", "q", "random", None)
        assert result.mso == 1.0
        assert result.total_cost_ratio == 1.0
        assert result.num_opt_percent == 0.0


class TestMetricAggregate:
    @pytest.fixture()
    def results(self):
        out = []
        for mso_target in (1.0, 2.0, 4.0):
            out.append(make_result([(100 * mso_target, 100, False),
                                    (100, 100, True)]))
        return out

    def test_over_mso(self, results):
        agg = MetricAggregate.over(results, "mso")
        assert agg.mean == pytest.approx((1 + 2 + 4) / 3)
        assert agg.maximum == pytest.approx(4.0)

    def test_over_num_opt(self, results):
        agg = MetricAggregate.over(results, "num_opt_percent")
        assert agg.mean == pytest.approx(50.0)

    def test_over_num_plans(self, results):
        for i, r in enumerate(results):
            r.num_plans = i + 1
        agg = MetricAggregate.over(results, "num_plans")
        assert agg.mean == pytest.approx(2.0)

    def test_percentile(self, results):
        agg = MetricAggregate.over(results, "mso")
        assert agg.percentile(0) == pytest.approx(1.0)
        assert agg.p95 <= agg.maximum

    def test_unknown_metric_rejected(self, results):
        with pytest.raises(ValueError, match="unknown metric"):
            MetricAggregate.over(results, "nope")

    def test_empty(self):
        agg = MetricAggregate.over([], "mso")
        assert agg.mean == 0.0
        assert agg.p95 == 0.0
